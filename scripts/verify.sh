#!/usr/bin/env bash
# Repo verification: tier-1 acceptance (release build + full test suite)
# plus a zero-warning lint gate. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> repro smoke: one figure through the parallel campaign engine"
cargo run --release -p bench --bin repro -- --quick --only fig1 --jobs 2

echo "==> repro smoke: store + resume round-trip is byte-identical"
# First run persists every point; second run must restore them all and
# export the same bytes (crash-consistency, DESIGN.md §12).
store_dir="$(mktemp -d)"
trap 'rm -rf "$store_dir"' EXIT
cargo run --release -p bench --bin repro -- --quick --only fig4 \
  --store "$store_dir/store" --json "$store_dir/a.json"
cargo run --release -p bench --bin repro -- --quick --only fig4 \
  --store "$store_dir/store" --resume --json "$store_dir/b.json"
cmp "$store_dir/a.json" "$store_dir/b.json"

echo "==> model validation: oracles, metamorphic invariants, differential fuzz"
# Exits non-zero if any oracle check fails (repro gates on failed checks).
cargo run --release -p bench --bin repro -- --quick --validate --fuzz-budget 60 --jobs 2

echo "==> predict: harvest -> train -> cross-validate -> accuracy ratchet"
# Counter-driven interference predictor (DESIGN.md §16): Quick-fidelity
# harvest of the full pair grid, cross-validation over three shuffle
# seeds, leave-one-family-out placement ranking, all gated against
# PREDICT_baseline.json. Never lower the baseline to make this pass.
cargo run --release -p bench --bin repro -- --quick --predict-check --jobs 2

echo "==> predict smoke: rank placements for a held-out workload"
# End-to-end advisor path: train without any bora/cg rows, rank the four
# placements, and print ground truth + regret next to the prediction.
cargo run --release -p bench --bin repro -- rank-placements --quick --jobs 2 \
  --preset bora --workload cg --cores 8 --metric bw --ground-truth

echo "==> allocator bench smoke: incremental vs reference solver"
cargo bench -p bench --features bench-harness --bench fluid

echo "==> engine + allreduce scaling smoke: events/sec floors"
# Small sizes + floors at ~1/4 of the current medians: this catches
# large regressions in the event queue / batching / solver hot path
# (synthetic section) and in the full mpisim/netsim/fabric stack (ring
# allreduce at 8->256 ranks; indexed matching + interned routes +
# memoized schedules put the 256-rank median near 800k events/s), not
# noise.
SCALING_NODES=64,256 SCALING_REPS=3 SCALING_FLOOR_EVENTS_PER_SEC=20000 \
  SCALING_ALLREDUCE_RANKS=8,64,256 SCALING_ALLREDUCE_FLOOR_EVENTS_PER_SEC=190000 \
  cargo bench -p bench --features bench-harness --bench scaling

echo "==> 1024-rank allreduce gate: one rep, wall limit + events/s floor"
# The 1k-rank capability claim, kept honest: 12.5M events / 2.1M messages
# must finish under a minute (median ~46 s here) and above 1/4 of the
# current 1024-rank median rate.
SCALING_NODES= SCALING_COLLECTIVE_ROWS= SCALING_REPS=1 \
  SCALING_ALLREDUCE_RANKS=1024 SCALING_ALLREDUCE_MAX_WALL_S=60 \
  SCALING_ALLREDUCE_FLOOR_EVENTS_PER_SEC=68000 \
  cargo bench -p bench --features bench-harness --bench scaling

echo "==> OK: build, tests, lints and repro smoke all green"
