#!/usr/bin/env bash
# Line-coverage ratchet: run `cargo llvm-cov` over the workspace test suite
# and fail when total line coverage drops more than the allowed slack below
# the checked-in baseline.
#
#   baseline:  coverage-baseline.txt (a single number, percent)
#   slack:     2.0 percentage points
#
# Updating the baseline: when coverage has genuinely improved (or a
# refactor moved code between crates), run this script locally with
# cargo-llvm-cov installed, take the "total line coverage" figure it
# prints, and write it into coverage-baseline.txt in the same change.
# Never lower the baseline to make a regression pass — shrink the diff or
# add tests instead.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_FILE=coverage-baseline.txt
SLACK_PP=2.0

if ! cargo llvm-cov --version >/dev/null 2>&1; then
    echo "coverage_gate: cargo-llvm-cov is not installed; skipping." >&2
    echo "coverage_gate: (CI installs it; locally: see https://github.com/taiki-e/cargo-llvm-cov)" >&2
    exit 0
fi

baseline=$(tr -d '[:space:]' < "$BASELINE_FILE")
summary=$(cargo llvm-cov --workspace --summary-only --json)

actual=$(python3 - "$summary" <<'EOF'
import json, sys
data = json.loads(sys.argv[1])
print(f"{data['data'][0]['totals']['lines']['percent']:.2f}")
EOF
)

echo "coverage_gate: total line coverage ${actual}% (baseline ${baseline}%, slack ${SLACK_PP}pp)"

python3 - "$actual" "$baseline" "$SLACK_PP" <<'EOF'
import sys
actual, baseline, slack = map(float, sys.argv[1:4])
floor = baseline - slack
if actual < floor:
    print(f"coverage_gate: FAIL — {actual:.2f}% is below the floor {floor:.2f}% "
          f"(baseline {baseline:.2f}% - {slack:.1f}pp)", file=sys.stderr)
    print("coverage_gate: add tests, or — if the baseline is genuinely stale — "
          "update coverage-baseline.txt per the header of scripts/coverage_gate.sh",
          file=sys.stderr)
    sys.exit(1)
if actual > baseline + 1.0:
    print(f"coverage_gate: note — coverage {actual:.2f}% is well above the baseline; "
          f"consider ratcheting coverage-baseline.txt up")
EOF

echo "coverage_gate: OK"
