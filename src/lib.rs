//! Umbrella crate re-exporting the whole workspace: the hardware simulator
//! substrates, the message-passing layer, the task runtime, the kernels and
//! the interference benchmark suite reproducing ICPP'21
//! "Interferences between Communications and Computations in Distributed HPC
//! Systems" (Denis, Jeannot, Swartvagher).

pub use interference;
pub use kernels;
pub use mpisim;
pub use netsim;
pub use memsim;
pub use freq;
pub use topology;
pub use simcore;
pub use taskrt;
