//! Property tests for the learner: bit-determinism of training, feature-
//! permutation invariance of the ridge solution, and monotonicity of the
//! predicted penalty in memory-channel pressure on synthetic
//! single-bottleneck pairs.

use predict::learn::{train, Params};
use proptest::prelude::*;
use proptest::TestRng;

/// Deterministic synthetic regression set: `n` rows of `dim` features with
/// a planted log-linear response plus bounded noise, all generated from
/// `seed` via splitmix — no global RNG, so every case is reproducible.
fn synthetic(seed: u64, n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = TestRng::new(seed);
    let coef: Vec<f64> = (0..dim).map(|_| rng.next_f64() * 0.6 - 0.3).collect();
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..dim).map(|_| rng.next_f64() * 4.0).collect();
        let log_y: f64 = x.iter().zip(&coef).map(|(v, c)| v * c).sum::<f64>()
            + (rng.next_f64() - 0.5) * 0.05;
        ys.push(log_y.exp());
        xs.push(x);
    }
    (xs, ys)
}

/// Ridge-only params (no stumps): the component whose permutation
/// equivariance is an exact algebraic property.
fn ridge_only() -> Params {
    Params {
        rounds: 0,
        ..Params::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Training twice on the same data yields bit-identical model bytes
    /// and bit-identical predictions — the determinism the store-backed
    /// campaign and the CI ratchet both rest on.
    #[test]
    fn training_is_bit_deterministic(seed in 0u64..1_000_000, n in 24usize..64) {
        let (xs, ys) = synthetic(seed, n, 6);
        let params = Params::default();
        let a = train(&xs, &ys, &params);
        let b = train(&xs, &ys, &params);
        prop_assert_eq!(a.encode(), b.encode());
        for x in &xs {
            prop_assert_eq!(a.predict(x).to_bits(), b.predict(x).to_bits());
        }
    }

    /// The ridge solution is equivariant under feature permutation:
    /// training on column-permuted data and predicting on permuted inputs
    /// must match the unpermuted model to numerical tolerance. Catches any
    /// accidental dependence on feature order (e.g. pivoting bugs in the
    /// linear solve).
    #[test]
    fn ridge_is_feature_permutation_invariant(seed in 0u64..1_000_000) {
        let dim = 5usize;
        let (xs, ys) = synthetic(seed, 40, dim);
        // Derive a permutation of the columns from the same seed.
        let mut rng = TestRng::new(seed ^ 0x9e37);
        let mut perm: Vec<usize> = (0..dim).collect();
        for i in (1..dim).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        let permute = |x: &[f64]| -> Vec<f64> { perm.iter().map(|&j| x[j]).collect() };
        let xs_p: Vec<Vec<f64>> = xs.iter().map(|x| permute(x)).collect();

        let base = train(&xs, &ys, &ridge_only());
        let permuted = train(&xs_p, &ys, &ridge_only());
        for x in &xs {
            let a = base.predict(x);
            let b = permuted.predict(&permute(x));
            prop_assert!(
                (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                "permutation changed ridge prediction: {} vs {}", a, b
            );
        }
    }

    /// On synthetic single-bottleneck pairs — penalty driven entirely by
    /// memory-channel pressure — the trained model's prediction is
    /// non-decreasing in that feature across its observed range. The
    /// monotone_up constraint on the stump ensemble plus a positively
    /// correlated ridge term must not invert the physical direction.
    #[test]
    fn prediction_monotone_in_channel_pressure(seed in 0u64..1_000_000) {
        let mut rng = TestRng::new(seed);
        let dim = 4usize;
        let pressure_col = 1usize;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..48 {
            let mut x: Vec<f64> = (0..dim).map(|_| rng.next_f64()).collect();
            let pressure = rng.next_f64() * 3.0;
            x[pressure_col] = pressure;
            // Saturating single-bottleneck law: no interference below
            // capacity 1.0, linear growth above it.
            ys.push(1.0 + (pressure - 1.0).max(0.0));
            xs.push(x);
        }
        let params = Params {
            monotone_up: vec![pressure_col],
            ..Params::default()
        };
        let model = train(&xs, &ys, &params);
        let probe: Vec<f64> = vec![0.5; dim];
        let mut last = f64::NEG_INFINITY;
        for step in 0..=30 {
            let mut x = probe.clone();
            x[pressure_col] = 3.0 * step as f64 / 30.0;
            let y = model.predict(&x);
            prop_assert!(
                y >= last - 1e-9,
                "prediction decreased with channel pressure at step {}: {} < {}",
                step, y, last
            );
            last = y;
        }
    }
}
