//! # predict — counter-driven interference prediction
//!
//! The placement-advisor subsystem (ROADMAP item 4, after Shubham et al.'s
//! counter-based slowdown prediction, arXiv 2410.18126): learn the
//! co-location penalty of a (communication, computation) pair from the
//! PMU-style telemetry counters of its **alone** runs, so a scheduler can
//! rank placements without ever co-running the candidates.
//!
//! * [`learn`] — the deterministic ridge + boosted-stump learner, k-fold
//!   cross-validation, and the exact-bits model codec.
//! * [`advisor`] — training over harvested pairs (`interference`'s
//!   `experiments::harvest`), unseen-pair prediction from alone-step
//!   features, and the `rank-placements` query.
//! * [`accuracy`] — the `repro --validate` campaign experiment gating
//!   cross-validated error and held-out placement-ranking accuracy against
//!   the `PREDICT_baseline.json` ratchet.
//!
//! Everything is bit-deterministic: identical training pairs and seed give
//! a byte-identical model file and bit-identical predictions at any
//! `--jobs` width (the harvest orders pairs by grid position and the
//! learner reduces every sum in fixed index order).

#![warn(missing_docs)]
// Dense matrix kernels (Gram accumulation, Gaussian elimination) read
// more clearly as index loops than as iterator chains over row pairs.
#![allow(clippy::needless_range_loop)]

pub mod accuracy;
pub mod advisor;
pub mod learn;

pub use advisor::{Advisor, RankedPlacement};
pub use learn::{cross_validate, train, CvReport, Model, Params};

/// Convenience re-export of [`simcheck::stats::median`] for binaries that
/// don't link simcheck directly.
pub fn median_of(xs: &[f64]) -> f64 {
    simcheck::stats::median(xs)
}
