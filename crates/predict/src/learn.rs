//! The deterministic counter→slowdown learner.
//!
//! Two stacked stages, both free of floating-point-order nondeterminism
//! (every sum reduces in fixed index order; no threading, no hashing):
//!
//! 1. **Ridge regression** on standardized features of log-slowdowns —
//!    solved exactly from the Gram matrix by Gaussian elimination with
//!    partial pivoting. The closed-form solution is invariant (to
//!    round-off) under feature permutation, which a property test pins.
//! 2. A **boosted fixed-depth decision-stump ensemble** on the ridge
//!    residuals — gradient boosting with a fixed shrinkage, each round
//!    picking the (feature, threshold) split minimizing squared error,
//!    ties broken toward the lowest feature id then lowest threshold so
//!    training is reproducible bit-for-bit. Features listed in
//!    `monotone_up` only admit splits whose right (greater) branch
//!    predicts ≥ the left branch, making the learned response monotone in
//!    those coordinates by construction.
//!
//! Targets are `ln(penalty)` — slowdowns are ratios, so errors compose
//! multiplicatively — and predictions return through `exp`. The integer
//! seed only drives the k-fold shuffle (SplitMix64 Fisher–Yates); training
//! itself is seed-free and therefore bit-identical for identical pairs in
//! identical order.

use interference::codec::{Dec, Enc};

/// One decision stump: `x[feature] >= threshold ? right : left`.
#[derive(Clone, Debug, PartialEq)]
pub struct Stump {
    /// Feature index the stump splits on.
    pub feature: u32,
    /// Split threshold (standardized feature space).
    pub threshold: f64,
    /// Prediction for `x < threshold`.
    pub left: f64,
    /// Prediction for `x >= threshold`.
    pub right: f64,
}

/// A trained counter→slowdown model.
#[derive(Clone, Debug, PartialEq)]
pub struct Model {
    /// Feature dimension.
    pub dim: usize,
    /// Per-feature standardization mean.
    pub mean: Vec<f64>,
    /// Per-feature standardization scale (1 for constant features).
    pub scale: Vec<f64>,
    /// Target (log-slowdown) mean, added back at prediction.
    pub y_mean: f64,
    /// Ridge weights over standardized features.
    pub weights: Vec<f64>,
    /// Boosted stump ensemble over standardized features.
    pub stumps: Vec<Stump>,
    /// Boosting shrinkage applied to every stump's contribution.
    pub shrink: f64,
}

/// Training hyper-parameters. [`Params::default`] is what every in-repo
/// caller uses; the fields are public for the property tests.
#[derive(Clone, Debug)]
pub struct Params {
    /// Ridge penalty λ on standardized features.
    pub lambda: f64,
    /// Boosting rounds (stump count upper bound).
    pub rounds: usize,
    /// Boosting shrinkage.
    pub shrink: f64,
    /// Candidate split quantiles per feature and round.
    pub cuts: usize,
    /// Feature indices whose learned response must be non-decreasing.
    pub monotone_up: Vec<usize>,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            lambda: 1.0,
            rounds: 200,
            shrink: 0.1,
            cuts: 16,
            monotone_up: Vec::new(),
        }
    }
}

fn standardize(features: &[Vec<f64>], dim: usize) -> (Vec<f64>, Vec<f64>) {
    let n = features.len() as f64;
    let mut mean = vec![0.0; dim];
    for x in features {
        for (m, v) in mean.iter_mut().zip(x) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut var = vec![0.0; dim];
    for x in features {
        for j in 0..dim {
            let d = x[j] - mean[j];
            var[j] += d * d;
        }
    }
    let scale = var
        .iter()
        .map(|v| {
            let s = (v / n).sqrt();
            if s > 0.0 {
                s
            } else {
                1.0
            }
        })
        .collect();
    (mean, scale)
}

/// Solve `A w = b` for symmetric positive-definite `A` by Gaussian
/// elimination with partial pivoting. `A` is consumed as a row-major
/// square matrix.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty column");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let p = a[col][col];
        if p == 0.0 {
            continue;
        }
        for row in (col + 1)..n {
            let f = a[row][col] / p;
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut w = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col][k] * w[k];
        }
        w[col] = if a[col][col] != 0.0 { acc / a[col][col] } else { 0.0 };
    }
    w
}

fn fit_stump(
    xs: &[Vec<f64>],
    residual: &[f64],
    params: &Params,
) -> Option<(Stump, f64)> {
    let n = xs.len();
    let dim = xs.first()?.len();
    let total: f64 = residual.iter().sum();
    let mut best: Option<(Stump, f64)> = None;
    for feature in 0..dim {
        let mut vals: Vec<f64> = xs.iter().map(|x| x[feature]).collect();
        vals.sort_by(f64::total_cmp);
        let monotone = params.monotone_up.contains(&feature);
        for c in 1..=params.cuts {
            // Candidate thresholds at fixed interior quantiles of the
            // feature's empirical distribution.
            let pos = c * (n - 1) / (params.cuts + 1);
            let threshold = vals[pos.min(n - 1)];
            let mut right_sum = 0.0;
            let mut right_n = 0usize;
            for (x, r) in xs.iter().zip(residual) {
                if x[feature] >= threshold {
                    right_sum += r;
                    right_n += 1;
                }
            }
            let left_n = n - right_n;
            if right_n == 0 || left_n == 0 {
                continue;
            }
            let left_sum = total - right_sum;
            let left = left_sum / left_n as f64;
            let right = right_sum / right_n as f64;
            if monotone && right < left {
                // Pool the branches: the isotonic projection of a
                // two-piece violation is the common mean, i.e. no split —
                // worthless, so skip.
                continue;
            }
            // Squared-error reduction of the split.
            let gain = left * left_sum + right * right_sum;
            // Deterministic tie-breaks: strictly greater gain wins;
            // equal-gain candidates resolve to the earliest feature and
            // lowest threshold by iteration order.
            let better = match &best {
                None => gain > 1e-12,
                Some((_, g)) => gain > *g + 1e-12,
            };
            if better {
                // Shrinkage applies at prediction; store raw branch means.
                best = Some((
                    Stump {
                        feature: feature as u32,
                        threshold,
                        left,
                        right,
                    },
                    gain,
                ));
            }
        }
    }
    best
}

/// Train a model on (features, log-target) pairs. `targets` are the raw
/// slowdown penalties (> 0); the learner works on their logarithms.
pub fn train(features: &[Vec<f64>], targets: &[f64], params: &Params) -> Model {
    assert_eq!(features.len(), targets.len());
    assert!(!features.is_empty(), "training set must be non-empty");
    let dim = features[0].len();
    let (mean, scale) = standardize(features, dim);
    let xs: Vec<Vec<f64>> = features
        .iter()
        .map(|x| {
            x.iter()
                .enumerate()
                .map(|(j, v)| (v - mean[j]) / scale[j])
                .collect()
        })
        .collect();
    let ys: Vec<f64> = targets.iter().map(|t| t.max(1e-9).ln()).collect();
    let y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
    let yc: Vec<f64> = ys.iter().map(|y| y - y_mean).collect();

    // Gram matrix + ridge diagonal, accumulated in fixed (i, j, row) order.
    let mut gram = vec![vec![0.0; dim]; dim];
    let mut xty = vec![0.0; dim];
    for (x, y) in xs.iter().zip(&yc) {
        for i in 0..dim {
            for j in i..dim {
                gram[i][j] += x[i] * x[j];
            }
            xty[i] += x[i] * y;
        }
    }
    for i in 0..dim {
        for j in 0..i {
            gram[i][j] = gram[j][i];
        }
        gram[i][i] += params.lambda;
    }
    let weights = solve(gram, xty);

    // Boost stumps on the ridge residuals.
    let mut residual: Vec<f64> = xs
        .iter()
        .zip(&yc)
        .map(|(x, y)| {
            let mut lin = 0.0;
            for (w, v) in weights.iter().zip(x) {
                lin += w * v;
            }
            y - lin
        })
        .collect();
    let mut stumps = Vec::new();
    for _ in 0..params.rounds {
        let Some((stump, _)) = fit_stump(&xs, &residual, params) else {
            break;
        };
        for (x, r) in xs.iter().zip(&mut residual) {
            let p = if x[stump.feature as usize] >= stump.threshold {
                stump.right
            } else {
                stump.left
            };
            *r -= params.shrink * p;
        }
        stumps.push(stump);
    }
    Model {
        dim,
        mean,
        scale,
        y_mean,
        weights,
        stumps,
        shrink: params.shrink,
    }
}

impl Model {
    /// Predicted slowdown penalty for a feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.dim, "feature dimension mismatch");
        let x: Vec<f64> = features
            .iter()
            .enumerate()
            .map(|(j, v)| (v - self.mean[j]) / self.scale[j])
            .collect();
        let mut y = self.y_mean;
        for (w, v) in self.weights.iter().zip(&x) {
            y += w * v;
        }
        for s in &self.stumps {
            y += self.shrink
                * if x[s.feature as usize] >= s.threshold {
                    s.right
                } else {
                    s.left
                };
        }
        y.exp()
    }

    /// Exact-bits serialization (the "model file" byte surface the
    /// determinism gate compares).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(self.dim as u32)
            .f64s(&self.mean)
            .f64s(&self.scale)
            .f64(self.y_mean)
            .f64s(&self.weights)
            .f64(self.shrink)
            .u32(self.stumps.len() as u32);
        for s in &self.stumps {
            e.u32(s.feature).f64(s.threshold).f64(s.left).f64(s.right);
        }
        e.into_bytes()
    }

    /// Inverse of [`Model::encode`]; `None` on any malformation.
    pub fn decode(bytes: &[u8]) -> Option<Model> {
        let mut d = Dec::new(bytes);
        let dim = d.u32()? as usize;
        let mean = d.f64s()?;
        let scale = d.f64s()?;
        let y_mean = d.f64()?;
        let weights = d.f64s()?;
        let shrink = d.f64()?;
        let n = d.u32()? as usize;
        let mut stumps = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            stumps.push(Stump {
                feature: d.u32()?,
                threshold: d.f64()?,
                left: d.f64()?,
                right: d.f64()?,
            });
        }
        if mean.len() != dim || scale.len() != dim || weights.len() != dim {
            return None;
        }
        d.finish(Model {
            dim,
            mean,
            scale,
            y_mean,
            weights,
            stumps,
            shrink,
        })
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Deterministic Fisher–Yates shuffle of `0..n` from an integer seed.
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed ^ 0x5eed_0f12_ab34_cd56;
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

/// Partition `0..n` into `k` folds after a seeded shuffle. Every index
/// appears in exactly one fold; folds differ in size by at most one.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    let k = k.clamp(2, n.max(2));
    let order = shuffled_indices(n, seed);
    (0..k)
        .map(|fold| order.iter().copied().skip(fold).step_by(k).collect())
        .collect()
}

/// Held-out error report of one cross-validation run.
#[derive(Clone, Debug)]
pub struct CvReport {
    /// Absolute relative errors of every held-out prediction, fold order.
    pub errors: Vec<f64>,
    /// Mean absolute relative error.
    pub mean: f64,
    /// Median absolute relative error.
    pub median: f64,
}

/// K-fold cross-validation: shuffle with the seed, hold each fold out,
/// train on the rest, score `|pred - truth| / truth` on the held-out
/// pairs. Deterministic per (pairs, seed, k).
pub fn cross_validate(
    features: &[Vec<f64>],
    targets: &[f64],
    params: &Params,
    k: usize,
    seed: u64,
) -> CvReport {
    let n = features.len();
    let mut errors = Vec::with_capacity(n);
    for held in kfold(n, k, seed) {
        if held.is_empty() {
            continue;
        }
        let held_set: Vec<bool> = {
            let mut v = vec![false; n];
            for &i in &held {
                v[i] = true;
            }
            v
        };
        let tf: Vec<Vec<f64>> = (0..n)
            .filter(|i| !held_set[*i])
            .map(|i| features[i].clone())
            .collect();
        let tt: Vec<f64> = (0..n).filter(|i| !held_set[*i]).map(|i| targets[i]).collect();
        if tf.is_empty() {
            continue;
        }
        let model = train(&tf, &tt, params);
        for &i in &held {
            let truth = targets[i];
            if truth != 0.0 {
                errors.push((model.predict(&features[i]) - truth).abs() / truth.abs());
            }
        }
    }
    let mean = simcheck::stats::mean(&errors);
    let median = simcheck::stats::median(&errors);
    CvReport {
        errors,
        mean,
        median,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut state = 7u64;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = (splitmix64(&mut state) % 1000) as f64 / 1000.0;
            let b = (splitmix64(&mut state) % 1000) as f64 / 1000.0;
            let c = (splitmix64(&mut state) % 1000) as f64 / 1000.0;
            xs.push(vec![a, b, c]);
            ys.push((0.8 * a - 0.3 * b + 0.1 * (c > 0.5) as u8 as f64).exp());
        }
        (xs, ys)
    }

    #[test]
    fn learns_a_planted_log_linear_model() {
        let (xs, ys) = synthetic(200);
        let model = train(&xs, &ys, &Params::default());
        let rep = cross_validate(&xs, &ys, &Params::default(), 5, 3);
        assert!(rep.median < 0.05, "median err {}", rep.median);
        // In-sample predictions track the target closely too.
        let e: Vec<f64> = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (model.predict(x) - y).abs() / y)
            .collect();
        assert!(simcheck::stats::median(&e) < 0.05);
    }

    #[test]
    fn training_is_bit_deterministic() {
        let (xs, ys) = synthetic(120);
        let a = train(&xs, &ys, &Params::default());
        let b = train(&xs, &ys, &Params::default());
        assert_eq!(a.encode(), b.encode());
        let (p, q) = (a.predict(&xs[7]), b.predict(&xs[7]));
        assert_eq!(p.to_bits(), q.to_bits());
    }

    #[test]
    fn model_codec_roundtrips() {
        let (xs, ys) = synthetic(60);
        let m = train(&xs, &ys, &Params::default());
        assert!(!m.stumps.is_empty());
        let d = Model::decode(&m.encode()).expect("roundtrip");
        assert_eq!(d, m);
        let mut bytes = m.encode();
        bytes.push(9);
        assert!(Model::decode(&bytes).is_none());
    }

    #[test]
    fn monotone_constraint_holds_structurally() {
        // Single-bottleneck synthetic pairs: penalty grows with feature 0,
        // the other features are noise.
        let mut state = 11u64;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..150 {
            let pressure = i as f64 / 150.0;
            let noise = (splitmix64(&mut state) % 1000) as f64 / 1000.0;
            xs.push(vec![pressure, noise]);
            ys.push((1.0 + 2.0 * pressure * pressure).max(1.0));
        }
        let params = Params {
            monotone_up: vec![0],
            ..Params::default()
        };
        let model = train(&xs, &ys, &params);
        let mut last = f64::NEG_INFINITY;
        for i in 0..=40 {
            let p = model.predict(&[i as f64 / 40.0, 0.5]);
            assert!(
                p >= last - 1e-9,
                "prediction dropped at pressure {}: {} < {}",
                i,
                p,
                last
            );
            last = p;
        }
    }

    #[test]
    fn shuffle_is_seeded_and_complete() {
        let a = shuffled_indices(50, 1);
        let b = shuffled_indices(50, 1);
        let c = shuffled_indices(50, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut s = a.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }
}
