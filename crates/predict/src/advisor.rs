//! The placement advisor: trains two [`Model`]s (communication and
//! computation penalty) over harvested pairs and answers the two queries a
//! scheduler would issue — *predict* the co-location penalty of a pair it
//! has never co-run, and *rank* candidate placements by predicted
//! interference. Prediction only ever executes the pair's two **alone**
//! steps; the together step is what the model replaces.

use interference::codec::{Dec, Enc};
use interference::experiments::harvest::{
    self, PairSpec, TrainingPair, FEATURES, MEM_CHANNEL_FEATURE, METRIC_FLAG_FEATURE,
};
use interference::experiments::Fidelity;
use topology::Placement;

use crate::learn::{self, Model, Params};

/// Expand a raw harvest feature vector with the latency-regime
/// interactions: the raw vector, then `metric_is_lat × f` for every other
/// raw feature. Latency and bandwidth pairs live in different physical
/// regimes (a ping-pong's microseconds vs a saturated channel's share);
/// the expansion lets one linear model carry a separate slope per regime
/// while stumps keep seeing the raw coordinates. A pure function of the
/// input, so predictions stay bit-deterministic.
pub fn engineer(features: &[f64]) -> Vec<f64> {
    let lat = features[METRIC_FLAG_FEATURE];
    let mut v = features.to_vec();
    for (j, f) in features.iter().enumerate() {
        if j != METRIC_FLAG_FEATURE {
            v.push(lat * f);
        }
    }
    v
}

/// Learner hyper-parameters used by every in-repo caller: defaults plus a
/// monotone-up constraint on the memory-channel-pressure feature (more
/// channel traffic never predicts less interference).
pub fn default_params() -> Params {
    Params {
        monotone_up: vec![MEM_CHANNEL_FEATURE],
        ..Params::default()
    }
}

/// A trained pair of models: communication- and computation-side
/// penalties over the same feature vector.
#[derive(Clone, Debug, PartialEq)]
pub struct Advisor {
    /// Communication-penalty model.
    pub comm: Model,
    /// Computation-penalty model.
    pub compute: Model,
}

/// One entry of a `rank-placements` answer, best (lowest combined
/// penalty) first.
#[derive(Clone, Debug)]
pub struct RankedPlacement {
    /// Index into [`Placement::all_combinations`].
    pub placement: usize,
    /// Human-readable placement label.
    pub label: &'static str,
    /// Predicted communication penalty (×).
    pub comm: f64,
    /// Predicted computation penalty (×).
    pub compute: f64,
    /// Combined penalty `comm × compute` — the ranking key.
    pub combined: f64,
}

impl Advisor {
    /// Train on harvested pairs with the given hyper-parameters.
    ///
    /// # Panics
    /// On an empty training set.
    pub fn train(pairs: &[TrainingPair], params: &Params) -> Advisor {
        let features: Vec<Vec<f64>> = pairs.iter().map(|p| engineer(&p.features)).collect();
        let comm_t: Vec<f64> = pairs.iter().map(|p| p.comm_penalty).collect();
        let comp_t: Vec<f64> = pairs.iter().map(|p| p.compute_penalty).collect();
        Advisor {
            comm: learn::train(&features, &comm_t, params),
            compute: learn::train(&features, &comp_t, params),
        }
    }

    /// Train on the pairs surviving `keep` — the leave-one-out /
    /// unseen-pair path (e.g. drop every pair sharing the query's
    /// workload family).
    pub fn train_excluding(
        pairs: &[TrainingPair],
        params: &Params,
        keep: impl Fn(&PairSpec) -> bool,
    ) -> Option<Advisor> {
        let kept: Vec<TrainingPair> = pairs.iter().filter(|p| keep(&p.spec)).cloned().collect();
        if kept.is_empty() {
            return None;
        }
        Some(Advisor::train(&kept, params))
    }

    /// Predicted (comm, compute) penalties for a raw feature vector.
    pub fn predict_features(&self, features: &[f64]) -> (f64, f64) {
        let x = engineer(features);
        (self.comm.predict(&x), self.compute.predict(&x))
    }

    /// Predicted combined penalty for a raw feature vector.
    pub fn predict_combined(&self, features: &[f64]) -> f64 {
        let (c, k) = self.predict_features(features);
        c * k
    }

    /// Predict the co-location penalty of a pair spec by running only its
    /// alone steps and pushing the counters through the models.
    pub fn predict_spec(
        &self,
        spec: &PairSpec,
        fidelity: Fidelity,
    ) -> Result<(f64, f64), String> {
        let features = harvest::alone_features(spec, fidelity)?;
        Ok(self.predict_features(&features))
    }

    /// Rank every candidate placement of a (preset, family, cores, metric)
    /// query by predicted combined penalty, best first. Ties resolve to
    /// the lower placement index, so the ordering is deterministic.
    pub fn rank_placements(
        &self,
        base: &PairSpec,
        fidelity: Fidelity,
    ) -> Result<Vec<RankedPlacement>, String> {
        let mut out = Vec::new();
        for (i, (label, _)) in Placement::all_combinations().iter().enumerate() {
            let spec = PairSpec {
                placement: i,
                ..*base
            };
            let (comm, compute) = self.predict_spec(&spec, fidelity)?;
            out.push(RankedPlacement {
                placement: i,
                label,
                comm,
                compute,
                combined: comm * compute,
            });
        }
        out.sort_by(|a, b| {
            a.combined
                .total_cmp(&b.combined)
                .then(a.placement.cmp(&b.placement))
        });
        Ok(out)
    }

    /// Exact-bits model file: both models plus the feature-table arity
    /// (so a stale file can't silently score permuted features).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(FEATURES.len() as u32);
        let comm = self.comm.encode();
        let compute = self.compute.encode();
        e.u32(comm.len() as u32);
        for b in &comm {
            e.u8(*b);
        }
        e.u32(compute.len() as u32);
        for b in &compute {
            e.u8(*b);
        }
        e.into_bytes()
    }

    /// Inverse of [`Advisor::encode`].
    pub fn decode(bytes: &[u8]) -> Option<Advisor> {
        let mut d = Dec::new(bytes);
        if d.u32()? as usize != FEATURES.len() {
            return None;
        }
        let nc = d.u32()? as usize;
        let mut comm = Vec::with_capacity(nc);
        for _ in 0..nc {
            comm.push(d.u8()?);
        }
        let nk = d.u32()? as usize;
        let mut compute = Vec::with_capacity(nk);
        for _ in 0..nk {
            compute.push(d.u8()?);
        }
        d.finish(Advisor {
            comm: Model::decode(&comm)?,
            compute: Model::decode(&compute)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interference::experiments::harvest::Family;
    use topology::presets::Preset;

    fn tiny_pairs() -> Vec<TrainingPair> {
        // Small but real harvest: one preset, one family keeps it quick.
        let exp = harvest::Harvest {
            filter: Some(|s: &PairSpec| {
                s.preset == Preset::Henri && matches!(s.family, Family::Stream | Family::Gemm)
            }),
        };
        let opts =
            interference::campaign::CampaignOptions::serial(Fidelity::Quick);
        let outs = interference::campaign::run_outcomes_with_store(&exp, &opts, None);
        harvest::collect_pairs(&outs)
    }

    #[test]
    fn advisor_trains_predicts_and_roundtrips() {
        let pairs = tiny_pairs();
        assert!(pairs.len() >= 16);
        let adv = Advisor::train(&pairs, &default_params());
        let (c, k) = adv.predict_features(&pairs[0].features);
        assert!(c.is_finite() && c > 0.0);
        assert!(k.is_finite() && k > 0.0);
        let d = Advisor::decode(&adv.encode()).expect("roundtrip");
        assert_eq!(d, adv);
        // A truncated or arity-mismatched file is rejected.
        assert!(Advisor::decode(&adv.encode()[..10]).is_none());
    }

    #[test]
    fn excluding_everything_yields_none() {
        let pairs = tiny_pairs();
        assert!(Advisor::train_excluding(&pairs, &default_params(), |_| false).is_none());
    }

    #[test]
    fn ranking_is_deterministic_and_complete() {
        let pairs = tiny_pairs();
        let adv = Advisor::train(&pairs, &default_params());
        let base = PairSpec {
            preset: Preset::Henri,
            placement: 0,
            family: Family::Stream,
            cores: 6,
            metric: interference::experiments::contention::Metric::Bandwidth,
        };
        let a = adv.rank_placements(&base, Fidelity::Quick).expect("rank");
        let b = adv.rank_placements(&base, Fidelity::Quick).expect("rank");
        assert_eq!(a.len(), 4);
        let order_a: Vec<usize> = a.iter().map(|r| r.placement).collect();
        let order_b: Vec<usize> = b.iter().map(|r| r.placement).collect();
        assert_eq!(order_a, order_b);
        assert!(a.windows(2).all(|w| w[0].combined <= w[1].combined));
    }
}
