//! Prediction-accuracy validation campaign (`repro --validate` /
//! `repro --predict-check`).
//!
//! Plans and runs the full harvest grid (delegating to
//! `interference::experiments::harvest`, so the result store and resume
//! work unchanged), then in `finalize`:
//!
//! * k-fold cross-validates the combined co-location penalty over three
//!   shuffle seeds, reporting per-preset median/mean absolute relative
//!   error **with spread** (Hunold & Carpen-Amarie: never a single lucky
//!   split);
//! * replays the leave-one-workload-family-out protocol: an advisor that
//!   never saw a family must still pick the ground-truth-best of the four
//!   candidate placements and rank them consistently (Spearman);
//! * gates both against `PREDICT_baseline.json` — the error ratchet
//!   (mirrors the coverage ratchet: regressions beyond slack fail, never
//!   lower the baseline to pass);
//! * re-trains and byte-compares the model file (determinism gate).

use interference::campaign::{Experiment, PointCtx, PointOutcome, PointValue, SweepPoint};
use interference::experiments::harvest::{self, Harvest, TrainingPair};
use interference::experiments::Fidelity;
use interference::report::{Check, FigureData};
use simcore::Series;
use simcheck::stats;
use topology::presets::Preset;

use crate::advisor::{default_params, Advisor};
use crate::learn::{self, Params};

/// Cross-validation fold count.
pub const CV_FOLDS: usize = 5;
/// Shuffle seeds the cross-validation repeats over (spread reporting).
pub const CV_SEEDS: [u64; 3] = [1, 2, 3];

/// The harvest grid the accuracy campaign measures (full grid).
const GRID: Harvest = Harvest { filter: None };

/// `repro --validate` campaign experiment gating the predictor.
pub struct PredictAccuracy;

/// Registry-external instance, mirroring `VALIDATION_EXPERIMENT`.
pub static ACCURACY_EXPERIMENT: &dyn Experiment = &PredictAccuracy;

/// Indexed held-out errors of the **combined** penalty (comm × compute):
/// `(pair index, |pred - truth| / truth)` for every pair, each held out
/// exactly once per seed.
pub fn cv_combined_errors(
    pairs: &[TrainingPair],
    params: &Params,
    k: usize,
    seed: u64,
) -> Vec<(usize, f64)> {
    let n = pairs.len();
    let mut out = Vec::with_capacity(n);
    for held in learn::kfold(n, k, seed) {
        let mut is_held = vec![false; n];
        for &i in &held {
            is_held[i] = true;
        }
        let train_set: Vec<TrainingPair> = (0..n)
            .filter(|i| !is_held[*i])
            .map(|i| pairs[i].clone())
            .collect();
        if train_set.is_empty() {
            continue;
        }
        let adv = Advisor::train(&train_set, params);
        for &i in &held {
            let truth = pairs[i].comm_penalty * pairs[i].compute_penalty;
            if truth != 0.0 {
                let pred = adv.predict_combined(&pairs[i].features);
                out.push((i, (pred - truth).abs() / truth.abs()));
            }
        }
    }
    out
}

/// Regret tolerance of the best-pick metric: the predicted-best placement
/// counts as a hit when its ground-truth penalty is within this factor of
/// the ground-truth optimum. Placements closer than run-to-run noise
/// (~2–3% between seeds) are genuine ties; demanding the exact argmin
/// there would score coin flips, not skill.
pub const BEST_PICK_REGRET: f64 = 1.05;

/// Leave-one-workload-family-out ranking evaluation.
pub struct RankEval {
    /// Fraction of held-out placement groups where the predicted-best
    /// placement's ground-truth penalty is within [`BEST_PICK_REGRET`] of
    /// the ground-truth best.
    pub best_pick: f64,
    /// Mean Spearman rank correlation between predicted and true combined
    /// penalties within each group of four placements.
    pub mean_spearman: f64,
    /// Held-out groups evaluated.
    pub groups: usize,
}

/// For each family: train on every other family, group the held-out pairs
/// by (preset, cores, metric) — each group is the same query under the
/// four candidate placements — and compare predicted vs ground-truth
/// placement order.
pub fn rank_eval(pairs: &[TrainingPair], params: &Params) -> RankEval {
    let mut hits = 0usize;
    let mut groups = 0usize;
    let mut rhos = Vec::new();
    for family in harvest::Family::all() {
        let Some(adv) =
            Advisor::train_excluding(pairs, params, |s| s.family != family)
        else {
            continue;
        };
        let held: Vec<&TrainingPair> =
            pairs.iter().filter(|p| p.spec.family == family).collect();
        // Group keys in first-appearance (grid) order.
        let mut keys: Vec<(Preset, u32, &'static str)> = Vec::new();
        for p in &held {
            let key = (p.spec.preset, p.spec.cores, p.spec.metric.tag());
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        for key in keys {
            let group: Vec<&&TrainingPair> = held
                .iter()
                .filter(|p| (p.spec.preset, p.spec.cores, p.spec.metric.tag()) == key)
                .collect();
            if group.len() < 2 {
                continue;
            }
            let truth: Vec<f64> = group
                .iter()
                .map(|p| p.comm_penalty * p.compute_penalty)
                .collect();
            let pred: Vec<f64> = group
                .iter()
                .map(|p| adv.predict_combined(&p.features))
                .collect();
            let arg_min = |xs: &[f64]| {
                let mut best = 0;
                for i in 1..xs.len() {
                    if xs[i] < xs[best] {
                        best = i;
                    }
                }
                best
            };
            groups += 1;
            if truth[arg_min(&pred)] <= truth[arg_min(&truth)] * BEST_PICK_REGRET {
                hits += 1;
            }
            rhos.push(stats::spearman(&pred, &truth));
        }
    }
    RankEval {
        best_pick: if groups > 0 {
            hits as f64 / groups as f64
        } else {
            0.0
        },
        mean_spearman: stats::mean(&rhos),
        groups,
    }
}

/// Minimal flat-JSON reader for the ratchet baseline: `{"key": number,
/// ...}`, no nesting. Returns `None` on any malformation.
pub fn parse_baseline(text: &str) -> Option<std::collections::BTreeMap<String, f64>> {
    let t = text.trim();
    let inner = t.strip_prefix('{')?.strip_suffix('}')?;
    let mut map = std::collections::BTreeMap::new();
    for entry in inner.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (k, v) = entry.split_once(':')?;
        let key = k.trim().strip_prefix('"')?.strip_suffix('"')?.to_string();
        map.insert(key, v.trim().parse::<f64>().ok()?);
    }
    Some(map)
}

/// Locate and parse `PREDICT_baseline.json`: `$PREDICT_BASELINE` if set,
/// else the repository root relative to this crate.
pub fn load_baseline() -> Result<std::collections::BTreeMap<String, f64>, String> {
    let path = std::env::var("PREDICT_BASELINE")
        .unwrap_or_else(|_| format!("{}/../../PREDICT_baseline.json", env!("CARGO_MANIFEST_DIR")));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    parse_baseline(&text).ok_or_else(|| format!("malformed baseline {path}"))
}

/// Summary of one accuracy evaluation (also the nightly error-report
/// artifact's content, via the exported figure notes).
pub struct AccuracyReport {
    /// Per-preset worst-seed median absolute relative error.
    pub preset_mape: Vec<(String, f64)>,
    /// Per-seed overall median error (spread line).
    pub seed_medians: Vec<f64>,
    /// Overall mean error across seeds.
    pub overall_mean: f64,
    /// Ranking evaluation.
    pub rank: RankEval,
}

/// Evaluate the predictor over harvested pairs (fidelity-independent).
pub fn evaluate(pairs: &[TrainingPair]) -> AccuracyReport {
    let params = default_params();
    let mut per_preset: Vec<(String, Vec<f64>)> = Preset::clusters()
        .iter()
        .map(|p| (p.spec().name, Vec::new()))
        .collect();
    let mut seed_medians = Vec::new();
    let mut all_errors = Vec::new();
    for seed in CV_SEEDS {
        let errs = cv_combined_errors(pairs, &params, CV_FOLDS, seed);
        let mut seed_errs = Vec::with_capacity(errs.len());
        for (i, e) in errs {
            seed_errs.push(e);
            all_errors.push(e);
            let name = pairs[i].spec.preset.spec().name;
            if let Some((_, v)) = per_preset.iter_mut().find(|(n, _)| *n == name) {
                v.push(e);
            }
        }
        seed_medians.push(stats::median(&seed_errs));
    }
    // Per preset, gate the *worst* seed's median: a preset passing on one
    // lucky shuffle still fails overall.
    let preset_mape = per_preset
        .iter()
        .map(|(name, errs)| {
            let per_seed = errs.len() / CV_SEEDS.len().max(1);
            let worst = (0..CV_SEEDS.len())
                .map(|s| stats::median(&errs[s * per_seed..(s + 1) * per_seed]))
                .fold(0.0f64, f64::max);
            (name.clone(), worst)
        })
        .collect();
    AccuracyReport {
        preset_mape,
        seed_medians,
        overall_mean: stats::mean(&all_errors),
        rank: rank_eval(pairs, &default_params()),
    }
}

impl Experiment for PredictAccuracy {
    fn name(&self) -> &'static str {
        "predict_accuracy"
    }

    fn anchor(&self) -> &'static str {
        "counter-driven slowdown prediction vs ground truth (arXiv 2410.18126; spread per Hunold & Carpen-Amarie)"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        GRID.plan(fidelity)
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        GRID.run_point(point, ctx)
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        GRID.encode_value(value)
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        GRID.decode_value(bytes)
    }

    fn finalize(&self, fidelity: Fidelity, points: &[PointOutcome]) -> Vec<FigureData> {
        let pairs = harvest::collect_pairs(points);
        let mut checks = Vec::new();
        let mut notes = Vec::new();
        let planned = GRID.specs(fidelity).len();
        checks.push(Check::new(
            "harvest complete",
            pairs.len() == planned,
            format!("{}/{} pairs", pairs.len(), planned),
        ));
        if pairs.is_empty() {
            return vec![figure(checks, notes, Vec::new())];
        }

        let report = evaluate(&pairs);
        let spread = stats::stddev(&report.seed_medians);
        notes.push(format!(
            "overall held-out median error per seed: {} (spread σ={:.4})",
            report
                .seed_medians
                .iter()
                .map(|m| format!("{:.3}", m))
                .collect::<Vec<_>>()
                .join(" / "),
            spread
        ));
        notes.push(format!(
            "mean held-out error {:.3}; rank eval: best-pick {:.0}% over {} groups, mean Spearman {:.3}",
            report.overall_mean,
            report.rank.best_pick * 100.0,
            report.rank.groups,
            report.rank.mean_spearman
        ));

        let fkey = match fidelity {
            Fidelity::Quick => "quick",
            Fidelity::Full => "full",
        };
        match load_baseline() {
            Err(e) => checks.push(Check::new("PREDICT_baseline.json present", false, e)),
            Ok(base) => {
                let slack = base.get("slack_mape").copied().unwrap_or(0.04);
                for (name, mape) in &report.preset_mape {
                    let key = format!("{fkey}.mape.{name}");
                    match base.get(&key) {
                        None => checks.push(Check::new(
                            format!("{name}: baseline entry {key}"),
                            false,
                            "missing from PREDICT_baseline.json",
                        )),
                        Some(b) => {
                            checks.push(Check::new(
                                format!("{name}: held-out median error ≤ 15%"),
                                *mape <= 0.15,
                                format!("worst-seed median {:.3}", mape),
                            ));
                            checks.push(Check::new(
                                format!("{name}: error ratchet"),
                                *mape <= b + slack,
                                format!("{:.3} vs baseline {:.3} + slack {:.2}", mape, b, slack),
                            ));
                        }
                    }
                }
                let rank_slack = base.get("slack_rank").copied().unwrap_or(0.05);
                let rank_base = base.get(&format!("{fkey}.best_pick")).copied();
                checks.push(Check::new(
                    "rank-placements best-pick ≥ 80%",
                    report.rank.best_pick >= 0.80,
                    format!(
                        "{:.1}% of {} held-out groups (≤{:.0}% regret)",
                        report.rank.best_pick * 100.0,
                        report.rank.groups,
                        (BEST_PICK_REGRET - 1.0) * 100.0
                    ),
                ));
                match rank_base {
                    None => checks.push(Check::new(
                        format!("baseline entry {fkey}.best_pick"),
                        false,
                        "missing from PREDICT_baseline.json",
                    )),
                    Some(b) => checks.push(Check::new(
                        "rank-placements ratchet",
                        report.rank.best_pick >= b - rank_slack,
                        format!(
                            "{:.3} vs baseline {:.3} - slack {:.2}",
                            report.rank.best_pick, b, rank_slack
                        ),
                    )),
                }
                checks.push(Check::new(
                    "held-out ranking positively correlated",
                    report.rank.mean_spearman >= 0.5,
                    format!("mean Spearman {:.3}", report.rank.mean_spearman),
                ));
            }
        }

        // Determinism gate: identical pairs → byte-identical model file
        // and bit-identical predictions.
        let params = default_params();
        let a = Advisor::train(&pairs, &params);
        let b = Advisor::train(&pairs, &params);
        let bytes_equal = a.encode() == b.encode();
        let preds_equal = pairs.iter().all(|p| {
            a.predict_combined(&p.features).to_bits()
                == b.predict_combined(&p.features).to_bits()
        });
        checks.push(Check::new(
            "training bit-deterministic",
            bytes_equal && preds_equal,
            format!(
                "model file {} B, re-train byte-identical; predictions bit-identical",
                a.encode().len()
            ),
        ));

        let mut series = Vec::new();
        let mut mape_series = Series::new("worst-seed median abs rel error");
        for (i, (_, m)) in report.preset_mape.iter().enumerate() {
            mape_series.push(i as f64, &[*m]);
        }
        series.push(mape_series);
        for (name, mape) in &report.preset_mape {
            notes.push(format!("{name}: worst-seed median error {:.3}", mape));
        }
        vec![figure(checks, notes, series)]
    }
}

fn figure(checks: Vec<Check>, notes: Vec<String>, series: Vec<Series>) -> FigureData {
    FigureData {
        id: "predict_accuracy",
        title: "Counter-driven interference prediction vs ground truth".into(),
        xlabel: "cluster preset (henri, bora, billy, pyxis)",
        ylabel: "held-out median absolute relative error",
        series,
        notes,
        checks,
        runs: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_parser_roundtrips() {
        let m = parse_baseline(
            "{\n  \"quick.mape.henri\": 0.05,\n  \"slack_mape\": 0.04,\n  \"quick.best_pick\": 1.0\n}\n",
        )
        .expect("parse");
        assert_eq!(m.len(), 3);
        assert!((m["quick.mape.henri"] - 0.05).abs() < 1e-12);
        assert!(parse_baseline("not json").is_none());
        assert!(parse_baseline("{\"a\": nope}").is_none());
    }

    #[test]
    fn rank_eval_on_planted_orderings() {
        // Synthetic pairs where the true penalty is a clean function of a
        // single feature: any family left out, the others suffice.
        let mut pairs = Vec::new();
        for family in harvest::Family::all() {
            for (pi, _) in topology::Placement::all_combinations().iter().enumerate() {
                let mut features = vec![0.0; harvest::FEATURES.len()];
                features[harvest::MEM_CHANNEL_FEATURE] = pi as f64 * 1e9;
                features[0] = family as u8 as f64;
                let penalty = 1.0 + 0.5 * pi as f64;
                pairs.push(TrainingPair {
                    spec: harvest::PairSpec {
                        preset: Preset::Henri,
                        placement: pi,
                        family,
                        cores: 6,
                        metric:
                            interference::experiments::contention::Metric::Bandwidth,
                    },
                    features,
                    comm_penalty: penalty,
                    compute_penalty: 1.0,
                });
            }
        }
        let eval = rank_eval(&pairs, &default_params());
        assert_eq!(eval.groups, 5);
        assert!(eval.best_pick > 0.99, "best_pick {}", eval.best_pick);
        assert!(eval.mean_spearman > 0.99);
    }
}
