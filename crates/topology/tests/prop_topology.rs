//! Property tests for topology invariants across all presets and random
//! placements.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use topology::{BindingPolicy, CoreId, NumaId, Placement, Preset};

fn preset_strategy() -> impl Strategy<Value = Preset> {
    prop_oneof![
        Just(Preset::Henri),
        Just(Preset::Bora),
        Just(Preset::Billy),
        Just(Preset::Pyxis),
        Just(Preset::Tiny2x2),
    ]
}

fn policy_strategy(numa_count: u32) -> impl Strategy<Value = BindingPolicy> {
    prop_oneof![
        Just(BindingPolicy::NearNic),
        Just(BindingPolicy::FarFromNic),
        (0..numa_count).prop_map(|n| BindingPolicy::Numa(NumaId(n))),
    ]
}

proptest! {
    /// Core → NUMA → socket maps are consistent and total.
    #[test]
    fn core_maps_are_total_and_consistent(preset in preset_strategy()) {
        let m = preset.spec();
        for c in 0..m.core_count() {
            let numa = m.numa_of_core(CoreId(c));
            prop_assert!(numa.0 < m.numa_count());
            prop_assert!(m.cores_of_numa(numa).contains(&CoreId(c)));
            let socket = m.socket_of_core(CoreId(c));
            prop_assert_eq!(m.socket_of_numa(numa), socket);
        }
    }

    /// NUMA nodes partition the cores exactly.
    #[test]
    fn numa_partition(preset in preset_strategy()) {
        let m = preset.spec();
        let mut seen = vec![false; m.core_count() as usize];
        for n in 0..m.numa_count() {
            for c in m.cores_of_numa(NumaId(n)) {
                prop_assert!(!seen[c.0 as usize], "core {} in two NUMA nodes", c.0);
                seen[c.0 as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Any resolvable placement yields a comm core distinct from every
    /// compute core, with all cores valid.
    #[test]
    fn placements_resolve_consistently(
        preset in preset_strategy(),
        thread_near in any::<bool>(),
        data_near in any::<bool>(),
    ) {
        let m = preset.spec();
        let placement = Placement {
            comm_thread: if thread_near { BindingPolicy::NearNic } else { BindingPolicy::FarFromNic },
            data: if data_near { BindingPolicy::NearNic } else { BindingPolicy::FarFromNic },
        };
        let r = m.resolve(placement);
        prop_assert!(r.comm_core.0 < m.core_count());
        prop_assert!(r.data_numa.0 < m.numa_count());
        prop_assert_eq!(r.compute_cores.len() as u32, m.core_count() - 1);
        prop_assert!(!r.compute_cores.contains(&r.comm_core));
        // Near/far semantics.
        let comm_near = m.numa_near_nic(m.numa_of_core(r.comm_core));
        prop_assert_eq!(comm_near, thread_near);
    }

    /// Explicit-NUMA policies are honored.
    #[test]
    fn explicit_numa_policy(preset in preset_strategy()) {
        let m = preset.spec();
        let strat = policy_strategy(m.numa_count());
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        for _ in 0..8 {
            let policy = strat.new_tree(&mut runner).unwrap().current();
            let r = m.resolve(Placement { comm_thread: policy, data: policy });
            if let BindingPolicy::Numa(n) = policy {
                prop_assert_eq!(r.data_numa, n);
                prop_assert_eq!(m.numa_of_core(r.comm_core), n);
            }
        }
    }

    /// Turbo frequency lookups are monotone non-increasing in active cores
    /// and in license strictness.
    #[test]
    fn flop_rate_monotone(preset in preset_strategy(), f in 0.5f64..4.0) {
        let m = preset.spec();
        prop_assert!(m.flop_rate(f, 0) <= m.flop_rate(f * 1.5, 0) + 1e-9);
        // Wider licenses never *reduce* per-cycle throughput.
        prop_assert!(m.flop_rate(f, 1) >= m.flop_rate(f, 0));
        prop_assert!(m.flop_rate(f, 2) >= m.flop_rate(f, 1));
    }

    /// Uncore-scaled memory bandwidth stays within [80 %, 100 %] of peak
    /// and is monotone in the uncore frequency.
    #[test]
    fn mem_bw_uncore_bounds(preset in preset_strategy(), t in 0.0f64..1.0) {
        let m = preset.spec();
        let (lo, hi) = m.uncore_range;
        let u = lo + t * (hi - lo);
        let bw = m.mem_bw_at_uncore(u);
        prop_assert!(bw >= m.mem_bw_per_numa * 0.8 - 1e-3);
        prop_assert!(bw <= m.mem_bw_per_numa + 1e-3);
        let bw2 = m.mem_bw_at_uncore(u + 0.01);
        prop_assert!(bw2 + 1e-6 >= bw);
    }
}
