//! Machine model: sockets, NUMA nodes, cores, NIC placement, frequency
//! ranges and the parameters of the memory system and network.
//!
//! All bandwidths are bytes/s, all frequencies GHz, all latencies seconds
//! (converted to `SimTime` by the simulator crates).

use std::fmt;

/// Identifies a core by its *logical number*, following the host's logical
/// numbering exactly as the paper does ("computing threads are bound to
/// cores respecting the order of the logical core numbering").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CoreId(pub u32);

/// Why a topology lookup or placement resolution failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// A core id is not on this machine.
    CoreOutOfRange {
        /// The offending core.
        core: CoreId,
        /// Number of cores on the machine.
        count: u32,
    },
    /// A NUMA id is not on this machine.
    NumaOutOfRange {
        /// The offending NUMA node.
        numa: NumaId,
        /// Number of NUMA nodes on the machine.
        count: u32,
    },
    /// A far-from-NIC placement was requested on a machine where every NUMA
    /// node shares the NIC's socket.
    NoFarNuma {
        /// Number of sockets on the machine.
        sockets: u32,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::CoreOutOfRange { core, count } => {
                write!(f, "core {:?} out of range (machine has {} cores)", core, count)
            }
            TopologyError::NumaOutOfRange { numa, count } => {
                write!(f, "numa {:?} out of range (machine has {} NUMA nodes)", numa, count)
            }
            TopologyError::NoFarNuma { sockets } => write!(
                f,
                "far NUMA requires at least two sockets (machine has {})",
                sockets
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Identifies a NUMA node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NumaId(pub u32);

/// Identifies a socket (package).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SocketId(pub u32);

/// The interconnect family of a cluster — only used for behavioural quirks
/// the paper reports (Omni-Path shows wide bandwidth deviation; §3.2 note 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetworkKind {
    /// Mellanox InfiniBand (EDR/HDR).
    InfiniBand,
    /// Intel Omni-Path 100 series.
    OmniPath,
}

/// Network interface + fabric parameters.
#[derive(Clone, Debug)]
pub struct NetworkSpec {
    /// Interconnect family.
    pub kind: NetworkKind,
    /// One-way wire latency in seconds (switch + cable + NIC hardware).
    pub wire_latency_s: f64,
    /// Link bandwidth in bytes/s (per direction).
    pub link_bw: f64,
    /// PCIe/NIC DMA path bandwidth in bytes/s (host-side bottleneck).
    pub dma_bw: f64,
    /// Eager → rendezvous protocol switch threshold in bytes.
    pub eager_threshold: usize,
    /// Relative run-to-run bandwidth jitter (lognormal sigma). Omni-Path's
    /// "wide deviation" is expressed here.
    pub bw_jitter: f64,
    /// Per-message software overhead on the communication core, in cycles.
    /// Divided by the core frequency this is the `o` of the LogP model.
    pub sw_overhead_cycles: f64,
    /// Number of uncore/memory control transactions issued per message by
    /// the communication thread (doorbells, completion-queue reads). Each
    /// costs a congestion-inflated memory access latency.
    pub ctrl_accesses: f64,
    /// Weight of NIC DMA flows in max-min arbitration, relative to one core
    /// (NICs keep many outstanding requests; measured shares on real
    /// machines are several cores' worth).
    pub nic_dma_weight: f64,
    /// Memory registration (page pinning) cost: fixed seconds + per-byte.
    pub reg_base_s: f64,
    /// Per-byte registration cost (seconds/byte).
    pub reg_per_byte_s: f64,
}

/// Full description of one cluster node type.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    /// Cluster name (henri, bora, billy, pyxis, …).
    pub name: String,
    /// Number of sockets (packages).
    pub sockets: u32,
    /// NUMA nodes per socket (sub-NUMA clustering counts here).
    pub numa_per_socket: u32,
    /// Cores per NUMA node.
    pub cores_per_numa: u32,

    /// Memory controller bandwidth per NUMA node, bytes/s, at max uncore
    /// frequency (STREAM-attainable, not theoretical peak).
    pub mem_bw_per_numa: f64,
    /// Single-core sustainable load/store bandwidth, bytes/s (a core cannot
    /// saturate a controller alone).
    pub per_core_bw: f64,
    /// Inter-socket (UPI/xGMI) link bandwidth, bytes/s, per direction.
    pub interlink_bw: f64,
    /// Intra-socket cross-NUMA (sub-NUMA clustering mesh) bandwidth,
    /// bytes/s, per direction. Unused on machines with one NUMA node per
    /// socket.
    pub intra_link_bw: f64,
    /// Extra latency of a remote-NUMA memory access, seconds.
    pub remote_access_lat_s: f64,
    /// Base latency of a local uncore/memory transaction, seconds.
    pub local_access_lat_s: f64,

    /// NUMA node the NIC is attached to.
    pub nic_numa: NumaId,
    /// Network parameters.
    pub network: NetworkSpec,

    /// Frequency of idle cores under a dynamic governor (GHz).
    pub idle_freq: f64,
    /// Frequency ceiling for "light" threads (communication/polling loops):
    /// such threads are architecturally active but do not trip the full
    /// turbo ladder. The paper observes the communication core pinned near
    /// 2.5 GHz on henri regardless of the surrounding load (§3.2, §3.3).
    pub light_freq_cap: f64,
    /// Minimum core frequency (GHz).
    pub min_freq: f64,
    /// Nominal (base) core frequency (GHz).
    pub base_freq: f64,
    /// Turbo table: `turbo_table[license][i]` = max frequency with `i+1`
    /// active cores in the socket; the last entry covers all larger counts.
    /// Index 0: normal instructions, 1: AVX2-class, 2: AVX512-class.
    pub turbo_table: [Vec<f64>; 3],
    /// Uncore frequency range (GHz): (min, max).
    pub uncore_range: (f64, f64),
    /// Scalar flops per cycle per core (FMA units × 2).
    pub flops_per_cycle: f64,
    /// Vector width multiplier per license: [normal, avx2, avx512].
    pub simd_mult: [f64; 3],

    /// Relative run-to-run latency jitter (lognormal sigma).
    pub lat_jitter: f64,
    /// Congestion latency knee: utilization above which queueing inflates
    /// access latency.
    pub congestion_knee: f64,
    /// Congestion latency slope (multiplier at full saturation).
    pub congestion_gain: f64,
    /// Extra small-message latency (seconds) when the package is mostly idle
    /// (uncore power management); vanishes once enough cores are active.
    /// Reproduces the paper's observation that latency *improves* when
    /// computation runs next to communication (§3.2, §3.3).
    pub idle_uncore_penalty_s: f64,
}

impl MachineSpec {
    /// Total number of NUMA nodes.
    pub fn numa_count(&self) -> u32 {
        self.sockets * self.numa_per_socket
    }

    /// Total number of cores.
    pub fn core_count(&self) -> u32 {
        self.numa_count() * self.cores_per_numa
    }

    /// NUMA node of a core. Logical numbering fills NUMA nodes in order.
    ///
    /// Panics on out-of-range cores; see [`MachineSpec::try_numa_of_core`].
    pub fn numa_of_core(&self, core: CoreId) -> NumaId {
        match self.try_numa_of_core(core) {
            Ok(n) => n,
            Err(e) => panic!("{}", e),
        }
    }

    /// Fallible [`MachineSpec::numa_of_core`].
    pub fn try_numa_of_core(&self, core: CoreId) -> Result<NumaId, TopologyError> {
        if core.0 >= self.core_count() {
            return Err(TopologyError::CoreOutOfRange {
                core,
                count: self.core_count(),
            });
        }
        Ok(NumaId(core.0 / self.cores_per_numa))
    }

    /// Socket of a NUMA node.
    ///
    /// Panics on out-of-range nodes; see [`MachineSpec::try_socket_of_numa`].
    pub fn socket_of_numa(&self, numa: NumaId) -> SocketId {
        match self.try_socket_of_numa(numa) {
            Ok(s) => s,
            Err(e) => panic!("{}", e),
        }
    }

    /// Fallible [`MachineSpec::socket_of_numa`].
    pub fn try_socket_of_numa(&self, numa: NumaId) -> Result<SocketId, TopologyError> {
        if numa.0 >= self.numa_count() {
            return Err(TopologyError::NumaOutOfRange {
                numa,
                count: self.numa_count(),
            });
        }
        Ok(SocketId(numa.0 / self.numa_per_socket))
    }

    /// Socket of a core.
    pub fn socket_of_core(&self, core: CoreId) -> SocketId {
        self.socket_of_numa(self.numa_of_core(core))
    }

    /// Fallible [`MachineSpec::socket_of_core`].
    pub fn try_socket_of_core(&self, core: CoreId) -> Result<SocketId, TopologyError> {
        self.try_socket_of_numa(self.try_numa_of_core(core)?)
    }

    /// Cores of a NUMA node, in logical order.
    ///
    /// Panics on out-of-range nodes; see [`MachineSpec::try_cores_of_numa`].
    pub fn cores_of_numa(&self, numa: NumaId) -> Vec<CoreId> {
        match self.try_cores_of_numa(numa) {
            Ok(c) => c,
            Err(e) => panic!("{}", e),
        }
    }

    /// Fallible [`MachineSpec::cores_of_numa`].
    pub fn try_cores_of_numa(&self, numa: NumaId) -> Result<Vec<CoreId>, TopologyError> {
        if numa.0 >= self.numa_count() {
            return Err(TopologyError::NumaOutOfRange {
                numa,
                count: self.numa_count(),
            });
        }
        let start = numa.0 * self.cores_per_numa;
        Ok((start..start + self.cores_per_numa).map(CoreId).collect())
    }

    /// Cores of a socket, in logical order.
    pub fn cores_of_socket(&self, socket: SocketId) -> Vec<CoreId> {
        (0..self.core_count())
            .map(CoreId)
            .filter(|&c| self.socket_of_core(c) == socket)
            .collect()
    }

    /// True if the NUMA node is on the same socket as the NIC.
    pub fn numa_near_nic(&self, numa: NumaId) -> bool {
        self.socket_of_numa(numa) == self.socket_of_numa(self.nic_numa)
    }

    /// A NUMA node on the socket opposite the NIC ("far from the NIC" in the
    /// paper's placement experiments). Panics on single-socket machines; see
    /// [`MachineSpec::try_far_numa`].
    pub fn far_numa(&self) -> NumaId {
        match self.try_far_numa() {
            Ok(n) => n,
            Err(e) => panic!("{}", e),
        }
    }

    /// Fallible [`MachineSpec::far_numa`].
    pub fn try_far_numa(&self) -> Result<NumaId, TopologyError> {
        let nic_socket = self.try_socket_of_numa(self.nic_numa)?;
        (0..self.numa_count())
            .map(NumaId)
            .rfind(|&n| self.socket_of_numa(n) != nic_socket)
            .ok_or(TopologyError::NoFarNuma {
                sockets: self.sockets,
            })
    }

    /// The NUMA node the NIC is attached to ("near").
    pub fn near_numa(&self) -> NumaId {
        self.nic_numa
    }

    /// Peak flop rate of one core at frequency `ghz` under a license.
    /// `license`: 0 normal, 1 AVX2, 2 AVX512.
    pub fn flop_rate(&self, ghz: f64, license: usize) -> f64 {
        ghz * 1e9 * self.flops_per_cycle * self.simd_mult[license]
    }

    /// Memory controller bandwidth at the given uncore frequency (linear in
    /// uncore frequency between 80 % and 100 % of max — matching the paper's
    /// small observed effect: 10.1 vs 10.5 GB/s over the full uncore range).
    pub fn mem_bw_at_uncore(&self, uncore_ghz: f64) -> f64 {
        let (lo, hi) = self.uncore_range;
        let t = ((uncore_ghz - lo) / (hi - lo)).clamp(0.0, 1.0);
        self.mem_bw_per_numa * (0.80 + 0.20 * t)
    }

    /// Resolve a placement request to concrete core/NUMA choices.
    ///
    /// Panics on invalid requests; see [`MachineSpec::try_resolve`].
    pub fn resolve(&self, p: Placement) -> ResolvedPlacement {
        match self.try_resolve(p) {
            Ok(r) => r,
            Err(e) => panic!("{}", e),
        }
    }

    /// Fallible [`MachineSpec::resolve`]: a far-from-NIC binding on a
    /// single-socket machine or an explicit out-of-range NUMA node comes
    /// back as [`TopologyError`] instead of a panic.
    pub fn try_resolve(&self, p: Placement) -> Result<ResolvedPlacement, TopologyError> {
        let comm_numa = match p.comm_thread {
            BindingPolicy::NearNic => self.near_numa(),
            BindingPolicy::FarFromNic => self.try_far_numa()?,
            BindingPolicy::Numa(n) => n,
        };
        // The paper binds the communication thread to the *last core* of the
        // chosen NUMA node.
        let comm_core = *self
            .try_cores_of_numa(comm_numa)?
            .last()
            .expect("non-empty NUMA node");
        let data_numa = match p.data {
            BindingPolicy::NearNic => self.near_numa(),
            BindingPolicy::FarFromNic => self.try_far_numa()?,
            BindingPolicy::Numa(n) => {
                if n.0 >= self.numa_count() {
                    return Err(TopologyError::NumaOutOfRange {
                        numa: n,
                        count: self.numa_count(),
                    });
                }
                n
            }
        };
        // Computing threads: logical order, skipping the comm core.
        let compute_cores: Vec<CoreId> = (0..self.core_count())
            .map(CoreId)
            .filter(|&c| c != comm_core)
            .collect();
        Ok(ResolvedPlacement {
            comm_core,
            data_numa,
            compute_cores,
        })
    }
}

/// Where to bind a thread or allocate data, relative to the NIC.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BindingPolicy {
    /// Same socket as the NIC.
    NearNic,
    /// The other socket.
    FarFromNic,
    /// An explicit NUMA node.
    Numa(NumaId),
}

/// A placement request: where the communication thread runs and where the
/// benchmark data lives (§4.3 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Placement {
    /// Binding of the communication thread.
    pub comm_thread: BindingPolicy,
    /// NUMA node of computation *and* communication buffers (the paper
    /// allocates both on a single node to maximize contention).
    pub data: BindingPolicy,
}

impl Placement {
    /// The paper's default for Figure 4: data near the NIC, communication
    /// thread far from it.
    pub fn fig4_default() -> Placement {
        Placement {
            comm_thread: BindingPolicy::FarFromNic,
            data: BindingPolicy::NearNic,
        }
    }

    /// All four near/far combinations (Table 1 rows).
    pub fn all_combinations() -> [(&'static str, Placement); 4] {
        use BindingPolicy::*;
        [
            (
                "data near, thread near",
                Placement {
                    comm_thread: NearNic,
                    data: NearNic,
                },
            ),
            (
                "data near, thread far",
                Placement {
                    comm_thread: FarFromNic,
                    data: NearNic,
                },
            ),
            (
                "data far, thread near",
                Placement {
                    comm_thread: NearNic,
                    data: FarFromNic,
                },
            ),
            (
                "data far, thread far",
                Placement {
                    comm_thread: FarFromNic,
                    data: FarFromNic,
                },
            ),
        ]
    }
}

/// Concrete binding produced by [`MachineSpec::resolve`].
#[derive(Clone, Debug)]
pub struct ResolvedPlacement {
    /// Core running the communication thread.
    pub comm_core: CoreId,
    /// NUMA node holding computation and communication buffers.
    pub data_numa: NumaId,
    /// Cores available for computing threads, in binding order.
    pub compute_cores: Vec<CoreId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::henri;

    #[test]
    fn henri_shape() {
        let m = henri();
        assert_eq!(m.sockets, 2);
        assert_eq!(m.numa_count(), 4);
        assert_eq!(m.core_count(), 36);
        assert_eq!(m.cores_per_numa, 9);
    }

    #[test]
    fn core_numa_socket_maps_consistent() {
        let m = henri();
        for c in 0..m.core_count() {
            let core = CoreId(c);
            let numa = m.numa_of_core(core);
            assert!(m.cores_of_numa(numa).contains(&core));
            let socket = m.socket_of_core(core);
            assert!(m.cores_of_socket(socket).contains(&core));
            assert_eq!(m.socket_of_numa(numa), socket);
        }
    }

    #[test]
    fn cores_of_numa_partition() {
        let m = henri();
        let mut seen = Vec::new();
        for n in 0..m.numa_count() {
            seen.extend(m.cores_of_numa(NumaId(n)));
        }
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len() as u32, m.core_count());
    }

    #[test]
    fn near_far_numa() {
        let m = henri();
        assert!(m.numa_near_nic(m.near_numa()));
        assert!(!m.numa_near_nic(m.far_numa()));
        assert_ne!(
            m.socket_of_numa(m.near_numa()),
            m.socket_of_numa(m.far_numa())
        );
    }

    #[test]
    fn resolve_fig4_placement() {
        let m = henri();
        let r = m.resolve(Placement::fig4_default());
        // Comm thread far from NIC, last core of a far NUMA node.
        assert!(!m.numa_near_nic(m.numa_of_core(r.comm_core)));
        // Data near NIC.
        assert!(m.numa_near_nic(r.data_numa));
        // 35 compute cores (36 minus the comm core), none equal to comm core.
        assert_eq!(r.compute_cores.len(), 35);
        assert!(!r.compute_cores.contains(&r.comm_core));
    }

    #[test]
    fn flop_rate_scales_with_freq_and_license() {
        let m = henri();
        let base = m.flop_rate(1.0, 0);
        assert!(m.flop_rate(2.0, 0) > base * 1.9);
        assert!(m.flop_rate(1.0, 2) > m.flop_rate(1.0, 0));
    }

    #[test]
    fn mem_bw_uncore_span() {
        let m = henri();
        let lo = m.mem_bw_at_uncore(m.uncore_range.0);
        let hi = m.mem_bw_at_uncore(m.uncore_range.1);
        assert!(lo < hi);
        assert!((hi / m.mem_bw_per_numa - 1.0).abs() < 1e-12);
        assert!((lo / hi - 0.80).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        let m = henri();
        let _ = m.numa_of_core(CoreId(10_000));
    }

    #[test]
    fn try_lookups_return_typed_errors() {
        let m = henri();
        assert_eq!(
            m.try_numa_of_core(CoreId(10_000)),
            Err(TopologyError::CoreOutOfRange {
                core: CoreId(10_000),
                count: 36
            })
        );
        assert_eq!(
            m.try_socket_of_numa(NumaId(99)),
            Err(TopologyError::NumaOutOfRange {
                numa: NumaId(99),
                count: 4
            })
        );
        assert!(m.try_cores_of_numa(NumaId(99)).is_err());
        // Healthy lookups agree with the panicking API.
        assert_eq!(m.try_numa_of_core(CoreId(5)), Ok(m.numa_of_core(CoreId(5))));
        assert_eq!(m.try_far_numa(), Ok(m.far_numa()));
    }

    #[test]
    fn try_resolve_rejects_bad_requests() {
        let m = henri();
        let bad = Placement {
            comm_thread: BindingPolicy::Numa(NumaId(99)),
            data: BindingPolicy::NearNic,
        };
        assert!(matches!(
            m.try_resolve(bad),
            Err(TopologyError::NumaOutOfRange { .. })
        ));
        let bad_data = Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::Numa(NumaId(99)),
        };
        assert!(matches!(
            m.try_resolve(bad_data),
            Err(TopologyError::NumaOutOfRange { .. })
        ));
        // A single-socket machine has no far NUMA node.
        let mut single = henri();
        single.sockets = 1;
        single.nic_numa = NumaId(0);
        assert_eq!(
            single.try_far_numa(),
            Err(TopologyError::NoFarNuma { sockets: 1 })
        );
        let msg = single.try_far_numa().unwrap_err().to_string();
        assert!(msg.contains("at least two sockets"), "{}", msg);
    }

    #[test]
    fn all_placements_distinct() {
        let combos = Placement::all_combinations();
        for (i, (_, a)) in combos.iter().enumerate() {
            for (_, b) in &combos[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
