//! # fabric — routed inter-node topologies
//!
//! Pure-data description of the fabric connecting N nodes: a set of
//! **directed links** (each becomes one fluid resource in `netsim`, so every
//! hop of a multi-link path shares bandwidth through the max-min allocator)
//! plus a **deterministic routing table** precomputed at build time. Four
//! presets:
//!
//! * [`FabricKind::Direct`] — the paper's original two-node point-to-point
//!   wire. Its link names and order (`wire.0to1`, `wire.1to0`) are frozen:
//!   a direct fabric of two nodes reproduces the pre-fabric resource layout
//!   byte for byte, which is what keeps the fig1–fig10 golden traces valid.
//! * [`FabricKind::Switch`] — a single non-blocking crossbar: every node has
//!   one up-link and one down-link; any permutation of node pairs is
//!   contention-free. Routes are always 2 hops.
//! * [`FabricKind::Torus`] — a 2-D torus with dimension-order (X then Y)
//!   minimal routing; wrap-around direction ties break toward +.
//! * [`FabricKind::Dragonfly`] — groups of routers (one node per router),
//!   complete graph inside each group, one directed global link per ordered
//!   group pair, attached round-robin across the group's routers. Minimal
//!   routes are at most `intra → global → intra` (3 hops).
//!
//! Everything here is deterministic: same spec → same links, same routes —
//! no RNG anywhere, so `(src, dst)` alone pins a route.

use std::fmt;

/// Index of a directed link inside a [`Fabric`].
pub type LinkIdx = u32;

/// One directed link of the fabric.
#[derive(Clone, Debug)]
pub struct LinkSpec {
    /// Resource name (stable across builds; used by golden traces).
    pub name: String,
    /// Per-link bandwidth scale, applied on top of the machine's `link_bw`.
    pub bw_scale: f64,
    /// Vertex the link leaves. Vertices `< nodes` are nodes; `>= nodes`
    /// are internal fabric vertices (e.g. the crossbar of a switch).
    pub src: usize,
    /// Vertex the link enters.
    pub dst: usize,
}

/// The fabric family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricKind {
    /// Two nodes, one wire per direction (the paper's setup).
    Direct,
    /// Single crossbar switch: up/down link per node, 2-hop routes.
    Switch,
    /// 2-D torus `x × y`, dimension-order minimal routing.
    Torus {
        /// Ring size along X.
        x: usize,
        /// Ring size along Y.
        y: usize,
    },
    /// Dragonfly: `groups` groups of `routers` routers (one node each).
    Dragonfly {
        /// Number of groups.
        groups: usize,
        /// Routers (= nodes) per group.
        routers: usize,
    },
}

/// Declarative fabric description; [`FabricSpec::build`] precomputes links
/// and routes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FabricSpec {
    /// The fabric family and its shape.
    pub kind: FabricKind,
}

/// The three routed presets used by the collective experiments and oracles
/// (the degenerate [`FabricKind::Direct`] wire is not in this list — it only
/// exists for the two-rank paper scenarios).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricPreset {
    /// Non-blocking crossbar.
    Switch,
    /// 2-D torus, near-square shape.
    Torus,
    /// Dragonfly with a near-square group split.
    Dragonfly,
}

impl FabricPreset {
    /// All routed presets, in registry order.
    pub const ALL: [FabricPreset; 3] = [
        FabricPreset::Switch,
        FabricPreset::Torus,
        FabricPreset::Dragonfly,
    ];

    /// Stable preset name.
    pub fn name(&self) -> &'static str {
        match self {
            FabricPreset::Switch => "switch",
            FabricPreset::Torus => "torus",
            FabricPreset::Dragonfly => "dragonfly",
        }
    }

    /// Concrete spec for `nodes` nodes. Torus picks the most-square `x × y`
    /// factorisation; dragonfly the most-square `groups × routers` split.
    pub fn spec(&self, nodes: usize) -> FabricSpec {
        assert!(nodes >= 2, "a fabric needs at least two nodes");
        match self {
            FabricPreset::Switch => FabricSpec {
                kind: FabricKind::Switch,
            },
            FabricPreset::Torus => {
                let x = largest_divisor_le_sqrt(nodes);
                FabricSpec {
                    kind: FabricKind::Torus { x: nodes / x, y: x },
                }
            }
            FabricPreset::Dragonfly => {
                let g = largest_divisor_le_sqrt(nodes);
                FabricSpec {
                    kind: FabricKind::Dragonfly {
                        groups: g,
                        routers: nodes / g,
                    },
                }
            }
        }
    }
}

impl fmt::Display for FabricPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn largest_divisor_le_sqrt(n: usize) -> usize {
    (1..=n)
        .take_while(|d| d * d <= n)
        .filter(|d| n.is_multiple_of(*d))
        .last()
        .unwrap_or(1)
}

impl FabricSpec {
    /// The paper's two-node point-to-point wire.
    pub fn direct() -> FabricSpec {
        FabricSpec {
            kind: FabricKind::Direct,
        }
    }

    /// Crossbar switch over `nodes` nodes (shape is per-build, see
    /// [`FabricSpec::build_for`]).
    pub fn switch() -> FabricSpec {
        FabricSpec {
            kind: FabricKind::Switch,
        }
    }

    /// Number of nodes this spec describes, if the shape pins it (`None`
    /// for switch, whose size comes from [`FabricSpec::build_for`]).
    pub fn fixed_nodes(&self) -> Option<usize> {
        match self.kind {
            FabricKind::Direct => Some(2),
            FabricKind::Switch => None,
            FabricKind::Torus { x, y } => Some(x * y),
            FabricKind::Dragonfly { groups, routers } => Some(groups * routers),
        }
    }

    /// Build the fabric for `nodes` nodes. Panics if the shape pins a
    /// different node count.
    pub fn build_for(&self, nodes: usize) -> Fabric {
        if let Some(n) = self.fixed_nodes() {
            assert_eq!(n, nodes, "fabric shape {:?} pins {} nodes", self.kind, n);
        }
        assert!(nodes >= 2, "a fabric needs at least two nodes");
        match self.kind {
            FabricKind::Direct => build_direct(),
            FabricKind::Switch => build_switch(nodes),
            FabricKind::Torus { x, y } => build_torus(x, y),
            FabricKind::Dragonfly { groups, routers } => build_dragonfly(groups, routers),
        }
    }

    /// Build a shape-pinned fabric (direct/torus/dragonfly).
    pub fn build(&self) -> Fabric {
        let n = self
            .fixed_nodes()
            .expect("switch fabrics need build_for(nodes)");
        self.build_for(n)
    }
}

/// Dense identifier of an interned `(src, dst)` route: `src * nodes + dst`.
///
/// Stable for the lifetime of the [`Fabric`] that issued it; resolves to
/// the hop list through [`Fabric::route_by_id`] without any per-transfer
/// hashing or cloning.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RouteId(pub u32);

/// A built fabric: links plus a dense `(src, dst) → route` table.
///
/// Routes are interned at build time: every hop list lives in one shared
/// `LinkIdx` arena and the per-pair table stores only `(start, end)` spans,
/// so a 1024-node fabric does not carry a million separate allocations and
/// `route()` is a bounds-checked slice of the arena.
#[derive(Clone, Debug)]
pub struct Fabric {
    kind: FabricKind,
    nodes: usize,
    /// Total vertex count: nodes first, then internal fabric vertices.
    vertices: usize,
    links: Vec<LinkSpec>,
    /// All hop lists end to end, pair-major (`src * nodes + dst` order).
    route_arena: Vec<LinkIdx>,
    /// `route_spans[src * nodes + dst]` slices `route_arena`; empty span
    /// for `src == dst`.
    route_spans: Vec<(u32, u32)>,
}

impl Fabric {
    /// Intern the per-pair hop lists into the shared arena form. Builders
    /// construct routes pair-major, so spans are contiguous and ascending.
    fn assemble(
        kind: FabricKind,
        nodes: usize,
        vertices: usize,
        links: Vec<LinkSpec>,
        routes: Vec<Vec<LinkIdx>>,
    ) -> Fabric {
        debug_assert_eq!(routes.len(), nodes * nodes);
        let total: usize = routes.iter().map(Vec::len).sum();
        let mut route_arena = Vec::with_capacity(total);
        let mut route_spans = Vec::with_capacity(routes.len());
        for route in &routes {
            let start = route_arena.len() as u32;
            route_arena.extend_from_slice(route);
            route_spans.push((start, route_arena.len() as u32));
        }
        Fabric {
            kind,
            nodes,
            vertices,
            links,
            route_arena,
            route_spans,
        }
    }
    /// The fabric family.
    pub fn kind(&self) -> FabricKind {
        self.kind
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total vertex count (nodes plus internal fabric vertices such as a
    /// switch crossbar).
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// The directed links, in resource-creation order.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// The deterministic route from `src` to `dst` as link indices, hop by
    /// hop. Empty iff `src == dst`.
    pub fn route(&self, src: usize, dst: usize) -> &[LinkIdx] {
        self.route_by_id(self.route_id(src, dst))
    }

    /// The interned id of the `src → dst` route.
    pub fn route_id(&self, src: usize, dst: usize) -> RouteId {
        debug_assert!(src < self.nodes && dst < self.nodes);
        RouteId((src * self.nodes + dst) as u32)
    }

    /// Resolve an interned route id to its hop list.
    pub fn route_by_id(&self, id: RouteId) -> &[LinkIdx] {
        let (start, end) = self.route_spans[id.0 as usize];
        &self.route_arena[start as usize..end as usize]
    }

    /// Hop count of the `src → dst` route.
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        self.route(src, dst).len()
    }
}

fn build_direct() -> Fabric {
    Fabric::assemble(
        FabricKind::Direct,
        2,
        2,
        vec![
            LinkSpec {
                name: "wire.0to1".into(),
                bw_scale: 1.0,
                src: 0,
                dst: 1,
            },
            LinkSpec {
                name: "wire.1to0".into(),
                bw_scale: 1.0,
                src: 1,
                dst: 0,
            },
        ],
        vec![vec![], vec![0], vec![1], vec![]],
    )
}

fn build_switch(nodes: usize) -> Fabric {
    // Up-links first, then down-links: route(s, d) = [up(s), down(d)].
    // Vertex `nodes` is the crossbar.
    let crossbar = nodes;
    let mut links = Vec::with_capacity(2 * nodes);
    for i in 0..nodes {
        links.push(LinkSpec {
            name: format!("fab.n{}.up", i),
            bw_scale: 1.0,
            src: i,
            dst: crossbar,
        });
    }
    for i in 0..nodes {
        links.push(LinkSpec {
            name: format!("fab.n{}.down", i),
            bw_scale: 1.0,
            src: crossbar,
            dst: i,
        });
    }
    let mut routes = Vec::with_capacity(nodes * nodes);
    for s in 0..nodes {
        for d in 0..nodes {
            routes.push(if s == d {
                vec![]
            } else {
                vec![s as LinkIdx, (nodes + d) as LinkIdx]
            });
        }
    }
    Fabric::assemble(FabricKind::Switch, nodes, nodes + 1, links, routes)
}

/// Directions of a 2-D torus, in per-node link-creation order.
const TORUS_DIRS: [(&str, usize, isize); 4] = [
    ("xp", 0, 1),
    ("xn", 0, -1),
    ("yp", 1, 1),
    ("yn", 1, -1),
];

fn build_torus(x: usize, y: usize) -> Fabric {
    let nodes = x * y;
    let dims = [x, y];
    let coord = |i: usize| [i % x, i / x];
    let index = |c: [usize; 2]| c[1] * x + c[0];
    // Per-node directed links to each torus neighbour; dimensions of size 1
    // have no links. `link_of[node][dir]` resolves a hop to its link index.
    let mut links = Vec::new();
    let mut link_of = vec![[None; 4]; nodes];
    let step = |c: [usize; 2], dir: usize| {
        let (_, dim, sign) = TORUS_DIRS[dir];
        let mut n = c;
        let m = dims[dim] as isize;
        n[dim] = ((c[dim] as isize + sign).rem_euclid(m)) as usize;
        n
    };
    for (i, node_links) in link_of.iter_mut().enumerate().take(nodes) {
        for (d, (suffix, dim, sign)) in TORUS_DIRS.iter().enumerate() {
            // Rings of size 1 need no link; in rings of size 2 the tie
            // always breaks toward +, so the − link would never route.
            let needed = if *sign > 0 { 1 } else { 2 };
            if dims[*dim] > needed {
                node_links[d] = Some(links.len() as LinkIdx);
                links.push(LinkSpec {
                    name: format!("fab.n{}.{}", i, suffix),
                    bw_scale: 1.0,
                    src: i,
                    dst: index(step(coord(i), d)),
                });
            }
        }
    }
    let mut routes = Vec::with_capacity(nodes * nodes);
    for s in 0..nodes {
        for d in 0..nodes {
            let mut route = Vec::new();
            let mut cur = coord(s);
            let dst = coord(d);
            // Dimension-order: settle X, then Y; shorter ring direction
            // wins, ties toward +.
            for dim in 0..2 {
                let m = dims[dim];
                let fwd = (dst[dim] + m - cur[dim]) % m;
                let back = (cur[dim] + m - dst[dim]) % m;
                let (dir, steps) = if fwd <= back {
                    (2 * dim, fwd)
                } else {
                    (2 * dim + 1, back)
                };
                for _ in 0..steps {
                    route.push(link_of[index(cur)][dir].expect("dim > 1"));
                    cur = step(cur, dir);
                }
            }
            debug_assert_eq!(cur, dst);
            routes.push(route);
        }
    }
    Fabric::assemble(FabricKind::Torus { x, y }, nodes, nodes, links, routes)
}

/// Router of group `g` hosting the directed global link `g → h`: the `g − 1`
/// outgoing globals are dealt round-robin across the group's routers.
fn dfly_gateway(g: usize, h: usize, routers: usize) -> usize {
    (h - usize::from(h > g)) % routers
}

fn build_dragonfly(groups: usize, routers: usize) -> Fabric {
    assert!(groups >= 1 && routers >= 1);
    let nodes = groups * routers;
    let node = |g: usize, r: usize| g * routers + r;
    // Intra-group complete graph first (all ordered pairs, group-major),
    // then one directed global link per ordered group pair.
    let mut links = Vec::new();
    let mut intra = vec![None; nodes * routers];
    for g in 0..groups {
        for i in 0..routers {
            for j in 0..routers {
                if i != j {
                    intra[node(g, i) * routers + j] = Some(links.len() as LinkIdx);
                    links.push(LinkSpec {
                        name: format!("fab.g{}.r{}r{}", g, i, j),
                        bw_scale: 1.0,
                        src: node(g, i),
                        dst: node(g, j),
                    });
                }
            }
        }
    }
    let mut global = vec![None; groups * groups];
    for g in 0..groups {
        for h in 0..groups {
            if g != h {
                global[g * groups + h] = Some(links.len() as LinkIdx);
                links.push(LinkSpec {
                    name: format!("fab.g{}g{}", g, h),
                    bw_scale: 1.0,
                    src: node(g, dfly_gateway(g, h, routers)),
                    dst: node(h, dfly_gateway(h, g, routers)),
                });
            }
        }
    }
    let intra_link = |g: usize, i: usize, j: usize| intra[node(g, i) * routers + j].expect("i != j");
    let mut routes = Vec::with_capacity(nodes * nodes);
    for s in 0..nodes {
        for d in 0..nodes {
            let (gs, rs) = (s / routers, s % routers);
            let (gd, rd) = (d / routers, d % routers);
            let mut route = Vec::new();
            if s == d {
            } else if gs == gd {
                route.push(intra_link(gs, rs, rd));
            } else {
                let gw_s = dfly_gateway(gs, gd, routers);
                let gw_d = dfly_gateway(gd, gs, routers);
                if rs != gw_s {
                    route.push(intra_link(gs, rs, gw_s));
                }
                route.push(global[gs * groups + gd].expect("gs != gd"));
                if gw_d != rd {
                    route.push(intra_link(gd, gw_d, rd));
                }
            }
            routes.push(route);
        }
    }
    Fabric::assemble(
        FabricKind::Dragonfly { groups, routers },
        nodes,
        nodes,
        links,
        routes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Directed adjacency over all fabric vertices (nodes + internal).
    fn adjacency(f: &Fabric) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); f.vertices()];
        for l in f.links() {
            adj[l.src].push(l.dst);
        }
        adj
    }

    fn bfs_dist(adj: &[Vec<usize>], src: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; adj.len()];
        dist[src] = 0;
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    fn all_fabrics() -> Vec<(&'static str, Fabric)> {
        vec![
            ("direct", FabricSpec::direct().build()),
            ("switch4", FabricSpec::switch().build_for(4)),
            ("switch8", FabricSpec::switch().build_for(8)),
            ("torus4x2", FabricPreset::Torus.spec(8).build_for(8)),
            ("torus4x4", FabricPreset::Torus.spec(16).build_for(16)),
            ("torus5x3", FabricSpec { kind: FabricKind::Torus { x: 5, y: 3 } }.build()),
            ("dfly2x4", FabricPreset::Dragonfly.spec(8).build_for(8)),
            ("dfly3x3", FabricSpec { kind: FabricKind::Dragonfly { groups: 3, routers: 3 } }.build()),
            ("dfly4x4", FabricPreset::Dragonfly.spec(16).build_for(16)),
        ]
    }

    #[test]
    fn direct_fabric_freezes_paper_wire_names() {
        let f = FabricSpec::direct().build();
        assert_eq!(f.nodes(), 2);
        let names: Vec<_> = f.links().iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, ["wire.0to1", "wire.1to0"]);
        assert_eq!(f.route(0, 1), [0]);
        assert_eq!(f.route(1, 0), [1]);
    }

    #[test]
    fn routes_are_contiguous_and_loop_free() {
        // Every route starts at src, ends at dst, chains hop endpoints, and
        // never revisits a vertex (hence never reuses a link).
        for (name, f) in all_fabrics() {
            for s in 0..f.nodes() {
                for d in 0..f.nodes() {
                    let r = f.route(s, d);
                    if s == d {
                        assert!(r.is_empty(), "{}: self-route must be empty", name);
                        continue;
                    }
                    assert!(!r.is_empty(), "{}: missing route {}→{}", name, s, d);
                    let mut visited = std::collections::HashSet::from([s]);
                    let mut at = s;
                    for &l in r {
                        let link = &f.links()[l as usize];
                        assert_eq!(link.src, at, "{}: broken chain {}→{}", name, s, d);
                        at = link.dst;
                        assert!(
                            visited.insert(at),
                            "{}: route {}→{} revisits vertex {}",
                            name,
                            s,
                            d,
                            at
                        );
                    }
                    assert_eq!(at, d, "{}: route {}→{} ends at {}", name, s, d, at);
                }
            }
        }
    }

    #[test]
    fn routes_are_minimal_on_switch_and_torus() {
        for (name, f) in all_fabrics() {
            if matches!(f.kind(), FabricKind::Dragonfly { .. }) {
                // Dragonfly minimal routing is minimal w.r.t. the
                // gateway-constrained path set, not raw BFS; skip here.
                continue;
            }
            let adj = adjacency(&f);
            for s in 0..f.nodes() {
                let dist = bfs_dist(&adj, s);
                for d in 0..f.nodes() {
                    assert_eq!(
                        f.hops(s, d),
                        dist[d],
                        "{}: route {}→{} is not shortest",
                        name,
                        s,
                        d
                    );
                }
            }
        }
    }

    #[test]
    fn dragonfly_routes_bounded_and_valid() {
        for (name, f) in all_fabrics() {
            if let FabricKind::Dragonfly { routers, .. } = f.kind() {
                for s in 0..f.nodes() {
                    for d in 0..f.nodes() {
                        if s == d {
                            continue;
                        }
                        let same_group = s / routers == d / routers;
                        let max = if same_group { 1 } else { 3 };
                        assert!(
                            f.hops(s, d) <= max,
                            "{}: {}→{} takes {} hops",
                            name,
                            s,
                            d,
                            f.hops(s, d)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for (name, f) in all_fabrics() {
            let spec = FabricSpec { kind: f.kind() };
            let again = spec.build_for(f.nodes());
            let names: Vec<_> = f.links().iter().map(|l| l.name.clone()).collect();
            let names2: Vec<_> = again.links().iter().map(|l| l.name.clone()).collect();
            assert_eq!(names, names2, "{}: link set changed across builds", name);
            for s in 0..f.nodes() {
                for d in 0..f.nodes() {
                    assert_eq!(f.route(s, d), again.route(s, d), "{}: route changed", name);
                }
            }
        }
    }

    #[test]
    fn preset_shapes_cover_required_sizes() {
        for preset in FabricPreset::ALL {
            for nodes in [2, 8, 64, 256] {
                let f = preset.spec(nodes).build_for(nodes);
                assert_eq!(f.nodes(), nodes, "{} at {}", preset.name(), nodes);
            }
        }
    }

    #[test]
    fn switch_routes_disjoint_under_permutation() {
        // The crossbar guarantee behind the collective closed forms: any
        // node permutation routes over pairwise-disjoint links.
        let f = FabricSpec::switch().build_for(8);
        let perm = [3, 0, 7, 1, 6, 2, 5, 4]; // sample derangement-ish map
        let mut used = std::collections::HashSet::new();
        for (s, &d) in perm.iter().enumerate() {
            if s == d {
                continue;
            }
            for &l in f.route(s, d) {
                assert!(used.insert(l), "switch links must not be shared");
            }
        }
    }
}
