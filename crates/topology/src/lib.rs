//! # topology — machine descriptions
//!
//! Pure-data descriptions of the cluster nodes used by the paper: sockets,
//! NUMA nodes, cores, memory controllers, inter-NUMA links and the NIC
//! attachment point, plus frequency ranges and network parameters. The
//! simulator crates (`memsim`, `netsim`, `freq`) instantiate resources from
//! these specs; the presets in [`presets`] encode the four clusters of the
//! paper (§2.2) with their published characteristics.

#![warn(missing_docs)]

pub mod fabric;
pub mod machine;
pub mod presets;

pub use fabric::{Fabric, FabricKind, FabricPreset, FabricSpec, LinkIdx, LinkSpec};
pub use machine::{
    BindingPolicy, CoreId, MachineSpec, NetworkKind, NetworkSpec, NumaId, Placement, SocketId,
    TopologyError,
};
pub use presets::{billy, bora, henri, pyxis, tiny2x2, Preset};
