//! Cluster presets.
//!
//! The four node types of the paper (§2.2), with parameters assembled from
//! the published hardware characteristics and calibrated against the point
//! values the paper reports (see `EXPERIMENTS.md` for the mapping):
//!
//! * **henri** — dual Intel Xeon Gold 6140 @2.3 GHz, 36 cores / 4 NUMA nodes
//!   (sub-NUMA clustering), InfiniBand ConnectX-4 EDR. The main machine.
//! * **bora** — dual Intel Xeon Gold 6240 @2.6 GHz, 36 cores / 2 NUMA nodes,
//!   Intel Omni-Path 100 (wide bandwidth deviation).
//! * **billy** — dual AMD EPYC 7502 (Zen2) @2.5 GHz, 64 cores / 8 NUMA
//!   nodes, InfiniBand ConnectX-6 HDR.
//! * **pyxis** — dual Cavium ThunderX2 @2.5 GHz, 64 cores / 2 NUMA nodes,
//!   InfiniBand ConnectX-6 EDR (no turbo laddering).

use crate::machine::{MachineSpec, NetworkKind, NetworkSpec, NumaId};

/// Enumerates the presets for sweeps over machines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Preset {
    /// Dual Xeon Gold 6140, EDR InfiniBand.
    Henri,
    /// Dual Xeon Gold 6240, Omni-Path.
    Bora,
    /// Dual EPYC 7502, HDR InfiniBand.
    Billy,
    /// Dual ThunderX2, EDR InfiniBand.
    Pyxis,
    /// Small synthetic machine for fast tests.
    Tiny2x2,
}

impl Preset {
    /// Instantiate the preset.
    pub fn spec(self) -> MachineSpec {
        match self {
            Preset::Henri => henri(),
            Preset::Bora => bora(),
            Preset::Billy => billy(),
            Preset::Pyxis => pyxis(),
            Preset::Tiny2x2 => tiny2x2(),
        }
    }

    /// All real cluster presets.
    pub fn clusters() -> [Preset; 4] {
        [Preset::Henri, Preset::Bora, Preset::Billy, Preset::Pyxis]
    }
}

fn edr_network() -> NetworkSpec {
    NetworkSpec {
        kind: NetworkKind::InfiniBand,
        wire_latency_s: 0.50e-6,
        link_bw: 12.08e9,
        dma_bw: 10.8e9,
        eager_threshold: 64 * 1024,
        bw_jitter: 0.02,
        sw_overhead_cycles: 2300.0,
        ctrl_accesses: 4.0,
        nic_dma_weight: 2.0,
        reg_base_s: 0.5e-6,
        reg_per_byte_s: 1.0e-10,
    }
}

/// henri: the machine most of the paper's figures are measured on.
pub fn henri() -> MachineSpec {
    MachineSpec {
        name: "henri".into(),
        sockets: 2,
        numa_per_socket: 2,
        cores_per_numa: 9,
        // 6 DDR4-2666 channels per socket, split by SNC: ~45 GB/s STREAM per
        // NUMA node.
        mem_bw_per_numa: 45.0e9,
        per_core_bw: 12.0e9,
        interlink_bw: 20.0e9,
        intra_link_bw: 35.0e9,
        remote_access_lat_s: 120e-9,
        local_access_lat_s: 50e-9,
        nic_numa: NumaId(0),
        network: edr_network(),
        idle_freq: 1.0,
        light_freq_cap: 2.5,
        min_freq: 1.0,
        base_freq: 2.3,
        turbo_table: [
            // normal: Xeon Gold 6140 SSE turbo ladder
            vec![
                3.7, 3.7, 3.5, 3.5, 3.3, 3.3, 3.3, 3.3, 3.0, 3.0, 3.0, 3.0, 2.8, 2.8, 2.8, 2.8,
                2.5,
            ],
            // AVX2 ladder
            vec![
                3.4, 3.4, 3.2, 3.2, 3.1, 3.1, 3.1, 3.1, 2.8, 2.8, 2.8, 2.8, 2.6, 2.6, 2.6, 2.6,
                2.4,
            ],
            // AVX512 ladder (4 cores → 3.0 GHz, ≥17 cores → 2.3 GHz; Fig 3)
            vec![
                3.0, 3.0, 3.0, 3.0, 2.8, 2.8, 2.8, 2.8, 2.6, 2.6, 2.6, 2.6, 2.4, 2.4, 2.4, 2.4,
                2.3,
            ],
        ],
        uncore_range: (1.2, 2.4),
        flops_per_cycle: 4.0,
        simd_mult: [1.0, 2.0, 4.0],
        lat_jitter: 0.03,
        congestion_knee: 1.0,
        congestion_gain: 0.35,
        idle_uncore_penalty_s: 0.18e-6,
    }
}

/// bora: Omni-Path machine; one NUMA node per socket, wide bandwidth jitter.
pub fn bora() -> MachineSpec {
    MachineSpec {
        name: "bora".into(),
        sockets: 2,
        numa_per_socket: 1,
        cores_per_numa: 18,
        // 6 DDR4-2933 channels per socket, no SNC: ~90 GB/s per NUMA node.
        mem_bw_per_numa: 90.0e9,
        per_core_bw: 13.0e9,
        interlink_bw: 22.0e9,
        intra_link_bw: 40.0e9,
        remote_access_lat_s: 130e-9,
        local_access_lat_s: 55e-9,
        nic_numa: NumaId(0),
        network: NetworkSpec {
            kind: NetworkKind::OmniPath,
            wire_latency_s: 0.55e-6,
            link_bw: 12.3e9,
            dma_bw: 10.3e9,
            eager_threshold: 64 * 1024,
            // The paper: "the network bandwidth has a wide deviation" on
            // Omni-Path clusters.
            bw_jitter: 0.18,
            sw_overhead_cycles: 2600.0,
            ctrl_accesses: 5.0,
            nic_dma_weight: 2.0,
            reg_base_s: 0.6e-6,
            reg_per_byte_s: 1.2e-10,
        },
        idle_freq: 1.0,
        light_freq_cap: 2.6,
        min_freq: 1.0,
        base_freq: 2.6,
        turbo_table: [
            vec![
                3.9, 3.9, 3.7, 3.7, 3.5, 3.5, 3.5, 3.5, 3.3, 3.3, 3.3, 3.3, 3.1, 3.1, 3.1, 3.1,
                2.8,
            ],
            vec![
                3.6, 3.6, 3.4, 3.4, 3.3, 3.3, 3.3, 3.3, 3.0, 3.0, 3.0, 3.0, 2.8, 2.8, 2.8, 2.8,
                2.6,
            ],
            vec![
                3.2, 3.2, 3.2, 3.2, 3.0, 3.0, 3.0, 3.0, 2.8, 2.8, 2.8, 2.8, 2.6, 2.6, 2.6, 2.6,
                2.4,
            ],
        ],
        uncore_range: (1.2, 2.4),
        flops_per_cycle: 4.0,
        simd_mult: [1.0, 2.0, 4.0],
        lat_jitter: 0.03,
        congestion_knee: 1.0,
        congestion_gain: 0.35,
        idle_uncore_penalty_s: 0.18e-6,
    }
}

/// billy: AMD Zen2 EPYC machine, 8 NUMA nodes, HDR InfiniBand.
pub fn billy() -> MachineSpec {
    MachineSpec {
        name: "billy".into(),
        sockets: 2,
        numa_per_socket: 4,
        cores_per_numa: 8,
        // 8 DDR4-3200 channels per socket across 4 NUMA domains.
        mem_bw_per_numa: 38.0e9,
        per_core_bw: 14.0e9,
        interlink_bw: 36.0e9,
        intra_link_bw: 42.0e9,
        remote_access_lat_s: 130e-9,
        local_access_lat_s: 60e-9,
        nic_numa: NumaId(0),
        network: NetworkSpec {
            kind: NetworkKind::InfiniBand,
            wire_latency_s: 0.45e-6,
            link_bw: 24.2e9,
            dma_bw: 21.0e9,
            eager_threshold: 64 * 1024,
            bw_jitter: 0.02,
            sw_overhead_cycles: 2200.0,
            ctrl_accesses: 4.0,
            nic_dma_weight: 2.0,
            reg_base_s: 0.5e-6,
            reg_per_byte_s: 1.0e-10,
        },
        idle_freq: 1.2,
        light_freq_cap: 2.8,
        min_freq: 1.2,
        base_freq: 2.5,
        turbo_table: [
            // Zen2 has no AVX licensing penalty — all tables identical.
            vec![3.35, 3.35, 3.2, 3.2, 3.1, 3.1, 3.1, 3.1, 2.9, 2.9, 2.9, 2.9, 2.7],
            vec![3.35, 3.35, 3.2, 3.2, 3.1, 3.1, 3.1, 3.1, 2.9, 2.9, 2.9, 2.9, 2.7],
            vec![3.35, 3.35, 3.2, 3.2, 3.1, 3.1, 3.1, 3.1, 2.9, 2.9, 2.9, 2.9, 2.7],
        ],
        uncore_range: (1.4, 2.0),
        flops_per_cycle: 4.0,
        simd_mult: [1.0, 2.0, 2.0], // Zen2 executes AVX512-class work as AVX2
        lat_jitter: 0.03,
        congestion_knee: 1.0,
        congestion_gain: 0.30,
        idle_uncore_penalty_s: 0.12e-6,
    }
}

/// pyxis: ARM ThunderX2 machine; flat frequency, 2 large NUMA nodes.
pub fn pyxis() -> MachineSpec {
    MachineSpec {
        name: "pyxis".into(),
        sockets: 2,
        numa_per_socket: 1,
        cores_per_numa: 32,
        // 8 DDR4-2666 channels per socket: ~110 GB/s per NUMA node.
        mem_bw_per_numa: 110.0e9,
        per_core_bw: 10.0e9,
        interlink_bw: 30.0e9,
        intra_link_bw: 60.0e9,
        remote_access_lat_s: 160e-9,
        local_access_lat_s: 70e-9,
        nic_numa: NumaId(0),
        network: NetworkSpec {
            kind: NetworkKind::InfiniBand,
            wire_latency_s: 0.55e-6,
            link_bw: 12.08e9,
            dma_bw: 10.5e9,
            eager_threshold: 64 * 1024,
            bw_jitter: 0.02,
            sw_overhead_cycles: 3200.0,
            ctrl_accesses: 4.0,
            nic_dma_weight: 2.0,
            reg_base_s: 0.7e-6,
            reg_per_byte_s: 1.3e-10,
        },
        idle_freq: 1.0,
        light_freq_cap: 2.5,
        min_freq: 1.0,
        base_freq: 2.5,
        turbo_table: [
            // ThunderX2 99xx: no turbo laddering, 2.5 GHz flat.
            vec![2.5],
            vec![2.5],
            vec![2.5],
        ],
        uncore_range: (1.6, 2.2),
        flops_per_cycle: 2.0,
        simd_mult: [1.0, 1.0, 1.0], // 128-bit NEON only
        lat_jitter: 0.04,
        congestion_knee: 1.0,
        congestion_gain: 0.35,
        idle_uncore_penalty_s: 0.15e-6,
    }
}

/// A small 2-socket × 1-NUMA × 2-core machine for fast unit tests.
pub fn tiny2x2() -> MachineSpec {
    MachineSpec {
        name: "tiny2x2".into(),
        sockets: 2,
        numa_per_socket: 1,
        cores_per_numa: 2,
        mem_bw_per_numa: 10.0e9,
        per_core_bw: 6.0e9,
        interlink_bw: 5.0e9,
        intra_link_bw: 8.0e9,
        remote_access_lat_s: 100e-9,
        local_access_lat_s: 50e-9,
        nic_numa: NumaId(0),
        network: NetworkSpec {
            kind: NetworkKind::InfiniBand,
            wire_latency_s: 0.5e-6,
            link_bw: 10.0e9,
            dma_bw: 8.0e9,
            eager_threshold: 16 * 1024,
            bw_jitter: 0.0,
            sw_overhead_cycles: 2000.0,
            ctrl_accesses: 4.0,
            nic_dma_weight: 2.0,
            reg_base_s: 0.5e-6,
            reg_per_byte_s: 1.0e-10,
        },
        idle_freq: 1.0,
        light_freq_cap: 2.0,
        min_freq: 1.0,
        base_freq: 2.0,
        turbo_table: [vec![3.0, 2.5], vec![2.8, 2.4], vec![2.6, 2.2]],
        uncore_range: (1.0, 2.0),
        flops_per_cycle: 2.0,
        simd_mult: [1.0, 2.0, 4.0],
        lat_jitter: 0.0,
        congestion_knee: 1.0,
        congestion_gain: 0.35,
        idle_uncore_penalty_s: 0.1e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_instantiate() {
        for p in Preset::clusters() {
            let m = p.spec();
            assert!(m.core_count() > 0);
            assert!(m.numa_count() >= 2, "{} needs 2 NUMA nodes for near/far", m.name);
        }
        assert_eq!(tiny2x2().core_count(), 4);
    }

    #[test]
    fn paper_core_counts() {
        assert_eq!(henri().core_count(), 36);
        assert_eq!(bora().core_count(), 36);
        assert_eq!(billy().core_count(), 64);
        assert_eq!(pyxis().core_count(), 64);
    }

    #[test]
    fn paper_numa_counts() {
        assert_eq!(henri().numa_count(), 4);
        assert_eq!(bora().numa_count(), 2);
        assert_eq!(billy().numa_count(), 8);
        assert_eq!(pyxis().numa_count(), 2);
    }

    #[test]
    fn turbo_tables_monotone_nonincreasing() {
        for p in Preset::clusters() {
            let m = p.spec();
            for table in &m.turbo_table {
                assert!(!table.is_empty());
                for w in table.windows(2) {
                    assert!(w[0] >= w[1], "{}: turbo table not monotone", m.name);
                }
                // Turbo never drops below base... except AVX512 which may.
                assert!(*table.last().unwrap() >= m.min_freq);
            }
        }
    }

    #[test]
    fn avx_tables_never_exceed_normal() {
        for p in Preset::clusters() {
            let m = p.spec();
            let longest = m.turbo_table.iter().map(|t| t.len()).max().unwrap();
            for i in 0..longest {
                let at = |t: &Vec<f64>| *t.get(i).unwrap_or_else(|| t.last().unwrap());
                let normal = at(&m.turbo_table[0]);
                assert!(at(&m.turbo_table[1]) <= normal);
                assert!(at(&m.turbo_table[2]) <= at(&m.turbo_table[1]));
            }
        }
    }

    #[test]
    fn frequencies_ordered() {
        for p in Preset::clusters() {
            let m = p.spec();
            assert!(m.min_freq <= m.base_freq);
            assert!(m.idle_freq <= m.base_freq);
            assert!(m.base_freq <= m.turbo_table[0][0]);
            assert!(m.uncore_range.0 < m.uncore_range.1);
        }
    }

    #[test]
    fn network_sanity() {
        for p in Preset::clusters() {
            let n = p.spec().network;
            assert!(n.dma_bw <= n.link_bw * 1.05);
            assert!(n.wire_latency_s > 0.0 && n.wire_latency_s < 5e-6);
            assert!(n.eager_threshold > 0);
        }
        // Omni-Path is the jittery one.
        assert!(bora().network.bw_jitter > henri().network.bw_jitter * 3.0);
    }

    #[test]
    fn memory_hierarchy_sanity() {
        for p in Preset::clusters() {
            let m = p.spec();
            assert!(m.per_core_bw < m.mem_bw_per_numa);
            assert!(m.remote_access_lat_s > m.local_access_lat_s);
            // A few cores must be able to saturate a controller (otherwise
            // no contention is ever possible).
            assert!(m.per_core_bw * m.cores_per_numa as f64 > m.mem_bw_per_numa);
        }
    }
}
