//! Compute-phase executor.
//!
//! A *job* is a sequence of [`Phase`]s repeated for a number of iterations,
//! bound to one core. Each phase carries a flop count, a byte count (memory
//! traffic to a NUMA node) and an instruction license. The executor turns
//! phases into engine flows:
//!
//! * **pure compute** (`bytes == 0`): a flow of `cycles` over the core's
//!   cycle resource — frequency changes rescale the remaining work
//!   automatically;
//! * **mixed / memory phases**: a flow of `bytes` across the memory path,
//!   rate-capped by the roofline compute bound `flop_rate / (flops/byte)`
//!   and by the core's load/store bandwidth. The resulting duration is
//!   `max(T_compute, bytes / allocated_bw)` — the roofline with contention.
//!
//! Stall seconds (time spent below the cap) accumulate into [`JobStats`];
//! divided by busy time they give the "% of stalls due to memory accesses"
//! counter of the paper's Figure 10.

use freq::{Activity, FreqModel, License};
use simcore::{kind_index, split_kind_index, tag, tags, telemetry, Engine, FlowId, FlowSpec, SimTime};
use topology::{CoreId, NumaId};

use crate::{MemSystem, Requester};

/// One step of a job: `flops` of compute interleaved with `bytes` of memory
/// traffic against NUMA node `data`.
#[derive(Clone, Debug)]
pub struct Phase {
    /// Floating-point operations in this phase.
    pub flops: f64,
    /// Bytes moved between the core and `data`'s memory controller.
    pub bytes: f64,
    /// Home NUMA node of the data.
    pub data: NumaId,
    /// Instruction license (drives turbo laddering).
    pub license: License,
}

impl Phase {
    /// Arithmetic intensity in flops/byte (infinite for pure compute).
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }
}

/// A job: phases repeated `iterations` times on a fixed core.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Core executing the job.
    pub core: CoreId,
    /// Phases of one iteration.
    pub phases: Vec<Phase>,
    /// Number of iterations.
    pub iterations: u64,
}

/// Timing and counter results of a finished job.
#[derive(Clone, Debug)]
pub struct JobStats {
    /// Core the job ran on.
    pub core: CoreId,
    /// Simulated start time.
    pub started: SimTime,
    /// Simulated end time.
    pub finished: SimTime,
    /// Seconds spent stalled on memory (below the roofline cap).
    pub stalled_s: f64,
    /// Total bytes moved.
    pub bytes: f64,
    /// Total flops executed.
    pub flops: f64,
    /// Completed iterations (may be short of the spec if stopped early).
    pub iterations_done: u64,
}

impl JobStats {
    /// Wall-clock seconds.
    pub fn elapsed_s(&self) -> f64 {
        (self.finished - self.started).as_secs_f64()
    }

    /// Fraction of time stalled on memory accesses, in [0,1].
    pub fn stall_fraction(&self) -> f64 {
        let e = self.elapsed_s();
        if e > 0.0 {
            (self.stalled_s / e).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Attained memory bandwidth in bytes/s (the STREAM per-core metric).
    pub fn mem_bandwidth(&self) -> f64 {
        let e = self.elapsed_s();
        if e > 0.0 {
            self.bytes / e
        } else {
            0.0
        }
    }
}

/// PMU-style telemetry counter name for a phase's instruction license
/// (the simulated analogue of per-license cycle residency counters).
fn license_counter(license: License) -> &'static str {
    match license {
        License::Normal => "freq.license.normal",
        License::Avx2 => "freq.license.avx2",
        License::Avx512 => "freq.license.avx512",
    }
}

/// Handle to a running job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JobId(u32);

struct JobState {
    spec: JobSpec,
    iter: u64,
    phase: usize,
    flow: Option<FlowId>,
    stats: JobStats,
}

/// Executes compute jobs on one node. `exec_id` namespaces event tags so
/// several executors (one per simulated node) can share an engine.
pub struct Executor {
    exec_id: u32,
    jobs: Vec<Option<JobState>>,
}

impl Executor {
    /// Create an executor with the given id (must be unique per engine).
    pub fn new(exec_id: u32) -> Executor {
        Executor {
            exec_id,
            jobs: Vec::new(),
        }
    }

    /// True if the given event tag belongs to this executor.
    pub fn owns(&self, event_tag: u64) -> bool {
        if simcore::namespace(event_tag) != tags::ns::COMPUTE {
            return false;
        }
        let (kind, _) = split_kind_index(simcore::payload(event_tag));
        kind == self.exec_id
    }

    fn tag_for(&self, job: u32) -> u64 {
        tag(tags::ns::COMPUTE, kind_index(self.exec_id, job))
    }

    /// Start a job. Marks the core heavy (using the first phase's license),
    /// reapplies frequencies and launches the first phase.
    pub fn start(
        &mut self,
        engine: &mut Engine,
        mem: &MemSystem,
        freqs: &mut FreqModel,
        spec: JobSpec,
    ) -> JobId {
        assert!(!spec.phases.is_empty(), "job needs at least one phase");
        assert!(spec.iterations > 0, "job needs at least one iteration");
        let license = spec
            .phases
            .iter()
            .map(|p| p.license)
            .max()
            .expect("non-empty phases");
        let core = spec.core;
        let id = JobId(self.jobs.len() as u32);
        self.jobs.push(Some(JobState {
            stats: JobStats {
                core,
                started: engine.now(),
                finished: engine.now(),
                stalled_s: 0.0,
                bytes: 0.0,
                flops: 0.0,
                iterations_done: 0,
            },
            spec,
            iter: 0,
            phase: 0,
            flow: None,
        }));
        if freqs.set_activity(core, Activity::Heavy(license)) {
            telemetry::counter_add("freq.transitions", 1);
            mem.apply_freqs(engine, freqs);
            self.refresh_caps(engine, mem, freqs);
            freqs.record(engine.now());
        }
        self.launch_phase(engine, mem, freqs, id);
        id
    }

    /// Roofline rate cap of a phase on `core` at current frequency.
    fn phase_cap(mem: &MemSystem, freqs: &FreqModel, core: CoreId, phase: &Phase) -> Option<f64> {
        let per_core = mem
            .requester_cap(Requester::Core(core))
            .expect("cores are capped");
        if phase.flops <= 0.0 {
            return Some(per_core);
        }
        let f = freqs.core_freq(core);
        let flop_rate = mem.spec().flop_rate(f, phase.license.index());
        let roofline = flop_rate / (phase.flops / phase.bytes);
        Some(roofline.min(per_core))
    }

    fn launch_phase(
        &mut self,
        engine: &mut Engine,
        mem: &MemSystem,
        freqs: &FreqModel,
        id: JobId,
    ) {
        let etag = self.tag_for(id.0);
        let job = self.jobs[id.0 as usize].as_mut().expect("live job");
        let phase = &job.spec.phases[job.phase];
        let core = job.spec.core;
        // PMU-style phase counters: per-license residency (phase launches)
        // and memory-channel pressure (bytes put on the memory path). Both
        // are pure functions of the simulated work, so they are safe in the
        // deterministic journal.
        telemetry::counter_add(license_counter(phase.license), 1);
        if phase.bytes >= 1.0 {
            telemetry::counter_add("mem.channel.bytes", phase.bytes as u64);
        }
        if phase.bytes > 0.0 {
            let cap = Self::phase_cap(mem, freqs, core, phase);
            let flow = engine.start_flow(FlowSpec {
                path: mem.path(Requester::Core(core), phase.data),
                volume: phase.bytes,
                weight: 1.0,
                cap,
                tag: etag,
            });
            job.flow = Some(flow);
        } else if phase.flops > 0.0 {
            // Pure compute: volume in cycles over the core's own resource.
            let spec = mem.spec();
            let cycles =
                phase.flops / (spec.flops_per_cycle * spec.simd_mult[phase.license.index()]);
            let flow = engine.start_flow(FlowSpec {
                path: vec![mem.core_resource(core)],
                volume: cycles,
                weight: 1.0,
                cap: None,
                tag: etag,
            });
            job.flow = Some(flow);
        } else {
            // Empty phase: complete immediately via a zero timer.
            engine.after(SimTime::ZERO, etag);
            job.flow = None;
        }
    }

    /// Recompute the roofline caps of all active memory flows (after a
    /// frequency change).
    pub fn refresh_caps(&mut self, engine: &mut Engine, mem: &MemSystem, freqs: &FreqModel) {
        for job in self.jobs.iter().flatten() {
            if let Some(flow) = job.flow {
                let phase = &job.spec.phases[job.phase];
                if phase.bytes > 0.0 {
                    engine.set_flow_cap(flow, Self::phase_cap(mem, freqs, job.spec.core, phase));
                }
            }
        }
    }

    /// Handle a completion event. Returns finished job stats when a whole
    /// job completes. Panics if the tag is not owned by this executor.
    pub fn on_event(
        &mut self,
        engine: &mut Engine,
        mem: &MemSystem,
        freqs: &mut FreqModel,
        event: &simcore::Event,
    ) -> Option<(JobId, JobStats)> {
        assert!(self.owns(event.tag()), "foreign event");
        let (_, jid) = split_kind_index(simcore::payload(event.tag()));
        let id = JobId(jid);
        {
            let job = self.jobs[jid as usize].as_mut().expect("live job");
            // Accumulate phase results.
            if let simcore::Event::Flow { report, .. } = event {
                job.stats.stalled_s += report.stalled;
                // Memory-stall residency in integer picoseconds (counters
                // are integers; ps keeps sub-microsecond stalls visible).
                let ps = (report.stalled * 1e12).round() as u64;
                if ps > 0 {
                    telemetry::counter_add("mem.stall_ps", ps);
                }
            }
            let phase = &job.spec.phases[job.phase];
            job.stats.bytes += phase.bytes;
            job.stats.flops += phase.flops;
            job.flow = None;
            // Advance.
            job.phase += 1;
            if job.phase == job.spec.phases.len() {
                job.phase = 0;
                job.iter += 1;
                job.stats.iterations_done = job.iter;
                if job.iter == job.spec.iterations {
                    let mut st = self.jobs[jid as usize].take().expect("live job").stats;
                    st.finished = engine.now();
                    let core = st.core;
                    if freqs.set_activity(core, Activity::Idle) {
                        telemetry::counter_add("freq.transitions", 1);
                        mem.apply_freqs(engine, freqs);
                        self.refresh_caps(engine, mem, freqs);
                        freqs.record(engine.now());
                    }
                    return Some((id, st));
                }
            }
        }
        self.launch_phase(engine, mem, freqs, id);
        None
    }

    /// Cancel a running job, returning its partial stats.
    pub fn stop(
        &mut self,
        engine: &mut Engine,
        mem: &MemSystem,
        freqs: &mut FreqModel,
        id: JobId,
    ) -> Option<JobStats> {
        let mut job = self.jobs[id.0 as usize].take()?;
        if let Some(flow) = job.flow {
            if let Some(rep) = engine.cancel_flow(flow) {
                job.stats.stalled_s += rep.stalled;
                let phase = &job.spec.phases[job.phase];
                // Fraction of the phase completed when cancelled. Memory
                // phases have volume = bytes; pure-compute phases have
                // volume = cycles.
                let spec = mem.spec();
                let volume = if phase.bytes > 0.0 {
                    phase.bytes
                } else {
                    phase.flops / (spec.flops_per_cycle * spec.simd_mult[phase.license.index()])
                };
                let done_frac = if volume > 0.0 {
                    (1.0 - rep.remaining / volume).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                job.stats.bytes += phase.bytes * done_frac;
                job.stats.flops += phase.flops * done_frac;
            }
        }
        job.stats.finished = engine.now();
        if freqs.set_activity(job.spec.core, Activity::Idle) {
            telemetry::counter_add("freq.transitions", 1);
            mem.apply_freqs(engine, freqs);
            self.refresh_caps(engine, mem, freqs);
            freqs.record(engine.now());
        }
        Some(job.stats)
    }

    /// Number of jobs still running.
    pub fn live_jobs(&self) -> usize {
        self.jobs.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freq::{Governor, UncorePolicy};
    use topology::henri;

    fn setup() -> (Engine, MemSystem, FreqModel, Executor) {
        let mut e = Engine::new();
        let spec = henri();
        let m = MemSystem::build(&mut e, &spec, "n0.");
        let f = FreqModel::new(&spec, Governor::Performance { turbo: true }, UncorePolicy::Auto);
        m.apply_freqs(&mut e, &f);
        (e, m, f, Executor::new(0))
    }

    fn run_to_completion(
        e: &mut Engine,
        m: &MemSystem,
        f: &mut FreqModel,
        x: &mut Executor,
    ) -> Vec<(JobId, JobStats)> {
        let mut done = Vec::new();
        while let Some(ev) = e.next() {
            if x.owns(ev.tag()) {
                if let Some(d) = x.on_event(e, m, f, &ev) {
                    done.push(d);
                }
            }
        }
        done
    }

    #[test]
    fn pure_compute_duration_scales_with_freq() {
        let (mut e, m, mut f, mut x) = setup();
        // 3.7e9 flops of Normal work on one turboing core: flop rate =
        // 3.7 GHz × 4 flops/cycle = 14.8 Gflop/s → 0.25 s.
        x.start(
            &mut e,
            &m,
            &mut f,
            JobSpec {
                core: CoreId(0),
                phases: vec![Phase {
                    flops: 3.7e9,
                    bytes: 0.0,
                    data: NumaId(0),
                    license: License::Normal,
                }],
                iterations: 1,
            },
        );
        let done = run_to_completion(&mut e, &m, &mut f, &mut x);
        assert_eq!(done.len(), 1);
        let el = done[0].1.elapsed_s();
        assert!((el - 0.25).abs() < 1e-9, "elapsed {}", el);
    }

    #[test]
    fn memory_bound_phase_runs_at_per_core_bw() {
        let (mut e, m, mut f, mut x) = setup();
        // 12 GB at AI ≈ 0 on an idle machine: limited by per-core bw 12 GB/s.
        x.start(
            &mut e,
            &m,
            &mut f,
            JobSpec {
                core: CoreId(0),
                phases: vec![Phase {
                    flops: 0.0,
                    bytes: 12.0e9,
                    data: NumaId(0),
                    license: License::Normal,
                }],
                iterations: 1,
            },
        );
        let done = run_to_completion(&mut e, &m, &mut f, &mut x);
        let el = done[0].1.elapsed_s();
        assert!((el - 1.0).abs() < 1e-6, "elapsed {}", el);
        assert!((done[0].1.mem_bandwidth() - 12.0e9).abs() < 1e3);
    }

    #[test]
    fn roofline_crossover() {
        // Same bytes, increasing flops: below the machine balance the time
        // is constant (memory-bound), above it grows (compute-bound).
        let bytes = 1.2e9;
        let mut last = 0.0;
        let mut durations = Vec::new();
        for ai in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
            let (mut e, m, mut f, mut x) = setup();
            x.start(
                &mut e,
                &m,
                &mut f,
                JobSpec {
                    core: CoreId(0),
                    phases: vec![Phase {
                        flops: bytes * ai,
                        bytes,
                        data: NumaId(0),
                        license: License::Normal,
                    }],
                    iterations: 1,
                },
            );
            let done = run_to_completion(&mut e, &m, &mut f, &mut x);
            last = done[0].1.elapsed_s();
            durations.push(last);
        }
        // Memory-bound plateau: first two equal (0.1 s at 12 GB/s).
        assert!((durations[0] - 0.1).abs() < 1e-6);
        assert!((durations[1] - 0.1).abs() < 1e-6);
        // Compute-bound growth at the end: doubling AI doubles time.
        let n = durations.len();
        assert!(durations[n - 1] / durations[n - 2] > 1.8);
        let _ = last;
    }

    #[test]
    fn contention_divides_bandwidth_and_counts_stalls() {
        let (mut e, m, mut f, mut x) = setup();
        // 9 memory-bound cores on one controller: 9 × 12 GB/s demanded
        // vs 45 GB/s available → 5 GB/s each.
        for c in 0..9 {
            x.start(
                &mut e,
                &m,
                &mut f,
                JobSpec {
                    core: CoreId(c),
                    phases: vec![Phase {
                        flops: 0.0,
                        bytes: 5.0e9,
                        data: NumaId(0),
                        license: License::Normal,
                    }],
                    iterations: 1,
                },
            );
        }
        let done = run_to_completion(&mut e, &m, &mut f, &mut x);
        assert_eq!(done.len(), 9);
        for (_, st) in &done {
            assert!((st.mem_bandwidth() - 5.0e9).abs() < 1e7, "bw {}", st.mem_bandwidth());
            // Stalled (12-5)/12 of the time.
            assert!((st.stall_fraction() - 7.0 / 12.0).abs() < 0.01);
        }
    }

    #[test]
    fn multi_iteration_job_accumulates() {
        let (mut e, m, mut f, mut x) = setup();
        x.start(
            &mut e,
            &m,
            &mut f,
            JobSpec {
                core: CoreId(0),
                phases: vec![Phase {
                    flops: 1e6,
                    bytes: 1e6,
                    data: NumaId(0),
                    license: License::Normal,
                }],
                iterations: 10,
            },
        );
        let done = run_to_completion(&mut e, &m, &mut f, &mut x);
        assert_eq!(done[0].1.iterations_done, 10);
        assert!((done[0].1.bytes - 1e7).abs() < 1.0);
        assert!((done[0].1.flops - 1e7).abs() < 1.0);
    }

    #[test]
    fn stop_returns_partial_stats() {
        let (mut e, m, mut f, mut x) = setup();
        let id = x.start(
            &mut e,
            &m,
            &mut f,
            JobSpec {
                core: CoreId(0),
                phases: vec![Phase {
                    flops: 0.0,
                    bytes: 12.0e9,
                    data: NumaId(0),
                    license: License::Normal,
                }],
                iterations: 1,
            },
        );
        // Run for 0.5 s then stop.
        e.run_until(SimTime::from_millis(500), |_, _| {});
        let st = x.stop(&mut e, &m, &mut f, id).expect("was running");
        assert!((st.bytes - 6.0e9).abs() < 1e7, "bytes {}", st.bytes);
        assert_eq!(x.live_jobs(), 0);
        // Core returns to idle.
        assert_eq!(f.activity(CoreId(0)), Activity::Idle);
    }

    #[test]
    fn activity_transitions() {
        let (mut e, m, mut f, mut x) = setup();
        x.start(
            &mut e,
            &m,
            &mut f,
            JobSpec {
                core: CoreId(2),
                phases: vec![Phase {
                    flops: 1e9,
                    bytes: 0.0,
                    data: NumaId(0),
                    license: License::Avx512,
                }],
                iterations: 1,
            },
        );
        assert_eq!(f.activity(CoreId(2)), Activity::Heavy(License::Avx512));
        let _ = run_to_completion(&mut e, &m, &mut f, &mut x);
        assert_eq!(f.activity(CoreId(2)), Activity::Idle);
    }

    #[test]
    fn freq_change_mid_phase_respected() {
        // Start a compute-capped memory phase alone (cap = roofline at
        // turbo), then add 17 more heavy cores → frequency drops → cap
        // drops → phase takes longer than the single-core prediction.
        let (mut e, m, mut f, mut x) = setup();
        let bytes = 2.0e9;
        let ai = 4.0; // henri balance ≈ per-core 12GB/s vs flop-capped
        x.start(
            &mut e,
            &m,
            &mut f,
            JobSpec {
                core: CoreId(0),
                phases: vec![Phase {
                    flops: bytes * ai,
                    bytes,
                    data: NumaId(0),
                    license: License::Normal,
                }],
                iterations: 1,
            },
        );
        // Immediately also saturate the socket with 8 heavy pure-compute jobs.
        for c in 1..9 {
            x.start(
                &mut e,
                &m,
                &mut f,
                JobSpec {
                    core: CoreId(c),
                    phases: vec![Phase {
                        flops: 50e9,
                        bytes: 0.0,
                        data: NumaId(0),
                        license: License::Normal,
                    }],
                    iterations: 1,
                },
            );
        }
        let done = run_to_completion(&mut e, &m, &mut f, &mut x);
        let first = done
            .iter()
            .find(|(_, st)| st.core == CoreId(0))
            .expect("job 0 done");
        // At 3.7 GHz the roofline cap is 14.8/4 = 3.7 GB/s; with 9 active
        // cores the ladder gives 3.0 GHz → 3.0 GB/s. Duration must exceed
        // the solo-turbo prediction.
        let solo = bytes / (14.8e9 / ai);
        assert!(first.1.elapsed_s() > solo * 1.1, "no slowdown observed");
    }
}
