//! # memsim — memory system simulation
//!
//! Instantiates a machine's memory hierarchy as fluid resources:
//!
//! * one **memory controller** per NUMA node (capacity = STREAM bandwidth,
//!   scaled by the uncore frequency),
//! * one **intra-socket mesh link** per socket (sub-NUMA clustering
//!   traffic),
//! * one **inter-socket link** per direction (UPI/xGMI),
//! * one **cycle resource** per core (capacity = core frequency), used for
//!   pure-compute phases and per-message software overheads.
//!
//! Every memory access path is a list of resources: the data's home
//! controller, plus mesh/UPI hops when the requester (core or NIC) sits on a
//! different NUMA node or socket. Small-transaction *latency* (as opposed to
//! streaming bandwidth) is congestion-inflated: queueing at a hop grows with
//! the offered load on it (see [`MemSystem::access_latency`]) — this is the
//! mechanism behind the paper's latency curves (Figures 4a and 5a–c).

#![warn(missing_docs)]

pub mod counters;
pub mod exec;

use freq::FreqModel;
use simcore::{Engine, ResourceId, SimTime};
use topology::{CoreId, MachineSpec, NumaId, SocketId};

/// Who issues a memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Requester {
    /// A CPU core.
    Core(CoreId),
    /// The NIC's DMA engine.
    Nic,
}

/// The memory system of one simulated node.
pub struct MemSystem {
    /// Human-readable prefix ("n0.", "n1." …) for resource names.
    pub label: String,
    spec: MachineSpec,
    controllers: Vec<ResourceId>,
    /// One mesh resource per socket (intra-socket cross-NUMA traffic).
    meshes: Vec<ResourceId>,
    /// Inter-socket links, one per direction: `[s0→s1, s1→s0]` (two-socket
    /// machines only, which covers all presets).
    upi: [ResourceId; 2],
    /// Per-core cycle resources, unit = cycles/s.
    cores: Vec<ResourceId>,
}

impl MemSystem {
    /// Create all resources on the engine. Capacities start at nominal
    /// (max uncore, idle cores at idle frequency).
    pub fn build(engine: &mut Engine, spec: &MachineSpec, label: impl Into<String>) -> MemSystem {
        assert_eq!(spec.sockets, 2, "memsim models two-socket nodes");
        let label = label.into();
        let controllers = (0..spec.numa_count())
            .map(|n| {
                engine.add_resource(format!("{}mem{}", label, n), spec.mem_bw_per_numa)
            })
            .collect();
        let meshes = (0..spec.sockets)
            .map(|s| engine.add_resource(format!("{}mesh{}", label, s), spec.intra_link_bw))
            .collect();
        let upi = [
            engine.add_resource(format!("{}upi0to1", label), spec.interlink_bw),
            engine.add_resource(format!("{}upi1to0", label), spec.interlink_bw),
        ];
        let cores = (0..spec.core_count())
            .map(|c| {
                engine.add_resource(format!("{}core{}", label, c), spec.idle_freq * 1e9)
            })
            .collect();
        MemSystem {
            label,
            spec: spec.clone(),
            controllers,
            meshes,
            upi,
            cores,
        }
    }

    /// The machine spec this system was built from.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Cycle resource of a core.
    pub fn core_resource(&self, core: CoreId) -> ResourceId {
        self.cores[core.0 as usize]
    }

    /// Memory controller resource of a NUMA node.
    pub fn controller(&self, numa: NumaId) -> ResourceId {
        self.controllers[numa.0 as usize]
    }

    /// NUMA node a requester is attached to.
    pub fn numa_of(&self, req: Requester) -> NumaId {
        match req {
            Requester::Core(c) => self.spec.numa_of_core(c),
            Requester::Nic => self.spec.nic_numa,
        }
    }

    /// The resource path of a streaming access from `req` to memory on
    /// `data` (order: controller first, then hops toward the requester).
    pub fn path(&self, req: Requester, data: NumaId) -> Vec<ResourceId> {
        let req_numa = self.numa_of(req);
        let mut path = vec![self.controller(data)];
        if req_numa == data {
            return path;
        }
        let s_req = self.spec.socket_of_numa(req_numa);
        let s_data = self.spec.socket_of_numa(data);
        if s_req == s_data {
            path.push(self.meshes[s_req.0 as usize]);
        } else {
            // Data flows from `data`'s socket to the requester's socket.
            path.push(self.meshes[s_data.0 as usize]);
            path.push(self.upi_dir(s_data, s_req));
            path.push(self.meshes[s_req.0 as usize]);
        }
        path
    }

    /// Directed inter-socket link resource.
    pub fn upi_dir(&self, from: SocketId, to: SocketId) -> ResourceId {
        assert_ne!(from, to);
        if from.0 == 0 {
            self.upi[0]
        } else {
            self.upi[1]
        }
    }

    /// Apply current frequencies: core cycle capacities and uncore-scaled
    /// controller capacities. Call after every `FreqModel` activity change.
    pub fn apply_freqs(&self, engine: &mut Engine, freqs: &FreqModel) {
        for c in 0..self.spec.core_count() {
            engine.set_capacity(self.cores[c as usize], freqs.core_freq(CoreId(c)) * 1e9);
        }
        let bw = self.spec.mem_bw_at_uncore(freqs.uncore_freq());
        for &ctl in &self.controllers {
            engine.set_capacity(ctl, bw);
        }
    }

    /// Base (uncongested) latency of one memory transaction from `req` to
    /// NUMA node `data`, in seconds.
    pub fn base_access_latency(&self, req: Requester, data: NumaId) -> f64 {
        let req_numa = self.numa_of(req);
        if req_numa == data {
            self.spec.local_access_lat_s
        } else if self.spec.socket_of_numa(req_numa) == self.spec.socket_of_numa(data) {
            // Same socket, different sub-NUMA domain: between local and
            // remote.
            0.5 * (self.spec.local_access_lat_s + self.spec.remote_access_lat_s)
        } else {
            self.spec.remote_access_lat_s
        }
    }

    /// Congestion inflation factor of one hop given offered load `rho`
    /// (demand/capacity): queueing delay grows past the knee and saturates
    /// — transactions are eventually pipelined behind a bounded queue.
    fn hop_inflation(&self, rho: f64) -> f64 {
        let over = (rho - self.spec.congestion_knee).max(0.0);
        1.0 + self.spec.congestion_gain * over.min(16.0)
    }

    /// Latency of one small memory transaction (doorbell, descriptor read,
    /// task-list probe…) from `req` to `data`, inflated by congestion along
    /// the path. This is the key non-linearity behind the latency figures:
    /// a saturated hop multiplies small-transaction latency even though
    /// streaming flows still share bandwidth fairly.
    pub fn access_latency(&self, engine: &mut Engine, req: Requester, data: NumaId) -> SimTime {
        let base = self.base_access_latency(req, data);
        let mut factor = 1.0;
        for r in self.path(req, data) {
            let cap = engine.capacity(r);
            let rho = if cap > 0.0 { engine.demand(r) / cap } else { 0.0 };
            factor += self.hop_inflation(rho) - 1.0;
        }
        SimTime::from_secs_f64(base * factor)
    }

    /// The resource path of a *control* transaction (NIC doorbell,
    /// completion-queue update, MMIO) between a requester and the device on
    /// `target` NUMA node. Control transactions ride the on-chip mesh and
    /// the socket interconnect but **not** the DRAM controllers: doorbells
    /// are MMIO writes and completion queues stay cache-resident (DDIO).
    /// This is why small-message latency is insensitive to controller
    /// saturation when the communication thread sits near the NIC, yet
    /// collapses when its control path crosses a saturated UPI link
    /// (Figures 4a and 5a–c).
    pub fn control_path(&self, req: Requester, target: NumaId) -> Vec<ResourceId> {
        let req_numa = self.numa_of(req);
        let s_req = self.spec.socket_of_numa(req_numa);
        let s_tgt = self.spec.socket_of_numa(target);
        let mut path = vec![self.meshes[s_req.0 as usize]];
        if s_req != s_tgt {
            // Request and completion cross the socket link in both
            // directions; both must be healthy for low latency.
            path.push(self.upi_dir(s_req, s_tgt));
            path.push(self.upi_dir(s_tgt, s_req));
            path.push(self.meshes[s_tgt.0 as usize]);
        }
        path
    }

    /// Latency of one control transaction (see [`MemSystem::control_path`]),
    /// congestion-inflated along the mesh/UPI hops it crosses.
    pub fn control_latency(&self, engine: &mut Engine, req: Requester, target: NumaId) -> SimTime {
        let base = self.base_access_latency(req, target);
        let mut factor = 1.0;
        for r in self.control_path(req, target) {
            let cap = engine.capacity(r);
            let rho = if cap > 0.0 { engine.demand(r) / cap } else { 0.0 };
            factor += self.hop_inflation(rho) - 1.0;
        }
        SimTime::from_secs_f64(base * factor)
    }

    /// Streaming-transfer cap imposed by a single requester (one core's
    /// load/store machinery, or the NIC DMA engines — NICs are not capped
    /// here; their cap is the DMA bandwidth handled by netsim).
    pub fn requester_cap(&self, req: Requester) -> Option<f64> {
        match req {
            Requester::Core(_) => Some(self.spec.per_core_bw),
            Requester::Nic => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::henri;

    fn setup() -> (Engine, MemSystem) {
        let mut e = Engine::new();
        let m = MemSystem::build(&mut e, &henri(), "n0.");
        (e, m)
    }

    #[test]
    fn resource_counts() {
        let (mut e, m) = setup();
        // 4 controllers + 2 meshes + 2 UPI + 36 cores.
        assert_eq!(m.controllers.len(), 4);
        assert_eq!(m.meshes.len(), 2);
        assert_eq!(m.cores.len(), 36);
        // Controllers start at nominal bandwidth.
        assert_eq!(e.capacity(m.controller(NumaId(0))), 45.0e9);
        let _ = e.utilization(m.controller(NumaId(0)));
    }

    #[test]
    fn local_path_is_controller_only() {
        let (_, m) = setup();
        let p = m.path(Requester::Core(CoreId(0)), NumaId(0));
        assert_eq!(p, vec![m.controller(NumaId(0))]);
    }

    #[test]
    fn same_socket_path_crosses_mesh() {
        let (_, m) = setup();
        // Core 0 is on NUMA 0; NUMA 1 is the other half of socket 0.
        let p = m.path(Requester::Core(CoreId(0)), NumaId(1));
        assert_eq!(p.len(), 2);
        assert_eq!(p[0], m.controller(NumaId(1)));
        assert_eq!(p[1], m.meshes[0]);
    }

    #[test]
    fn cross_socket_path_crosses_upi() {
        let (_, m) = setup();
        // Core 0 (socket 0) reading from NUMA 3 (socket 1):
        let p = m.path(Requester::Core(CoreId(0)), NumaId(3));
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], m.controller(NumaId(3)));
        // Data moves socket1 → socket0.
        assert!(p.contains(&m.upi_dir(SocketId(1), SocketId(0))));
    }

    #[test]
    fn nic_attached_to_numa0() {
        let (_, m) = setup();
        assert_eq!(m.numa_of(Requester::Nic), NumaId(0));
        let p = m.path(Requester::Nic, NumaId(0));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn base_latency_ordering() {
        let (_, m) = setup();
        let local = m.base_access_latency(Requester::Core(CoreId(0)), NumaId(0));
        let intra = m.base_access_latency(Requester::Core(CoreId(0)), NumaId(1));
        let remote = m.base_access_latency(Requester::Core(CoreId(0)), NumaId(3));
        assert!(local < intra && intra < remote);
    }

    #[test]
    fn access_latency_inflates_under_load() {
        let (mut e, m) = setup();
        let quiet = m.access_latency(&mut e, Requester::Core(CoreId(35)), NumaId(0));
        // Saturate controller 0 with capped flows far beyond capacity.
        for i in 0..30 {
            e.start_flow(simcore::FlowSpec {
                path: vec![m.controller(NumaId(0))],
                volume: 1e12,
                weight: 1.0,
                cap: Some(12e9),
                tag: i,
            });
        }
        let busy = m.access_latency(&mut e, Requester::Core(CoreId(35)), NumaId(0));
        assert!(
            busy.as_secs_f64() > 2.0 * quiet.as_secs_f64(),
            "quiet {} busy {}",
            quiet,
            busy
        );
    }

    #[test]
    fn apply_freqs_scales_cores_and_controllers() {
        let (mut e, m) = setup();
        let mut f = FreqModel::new(
            &henri(),
            freq::Governor::Performance { turbo: true },
            freq::UncorePolicy::Auto,
        );
        // Idle: cores at 1 GHz, controllers at min-uncore bandwidth.
        m.apply_freqs(&mut e, &f);
        assert_eq!(e.capacity(m.core_resource(CoreId(0))), 1.0e9);
        assert!((e.capacity(m.controller(NumaId(0))) - 45.0e9 * 0.8).abs() < 1e6);
        // One heavy core: turbo + uncore max.
        f.set_activity(CoreId(0), freq::Activity::Heavy(freq::License::Normal));
        m.apply_freqs(&mut e, &f);
        assert_eq!(e.capacity(m.core_resource(CoreId(0))), 3.7e9);
        assert_eq!(e.capacity(m.controller(NumaId(0))), 45.0e9);
    }

    #[test]
    fn core_cap_is_per_core_bw() {
        let (_, m) = setup();
        assert_eq!(m.requester_cap(Requester::Core(CoreId(0))), Some(12.0e9));
        assert_eq!(m.requester_cap(Requester::Nic), None);
    }

    #[test]
    fn two_nodes_have_disjoint_resources() {
        let mut e = Engine::new();
        let a = MemSystem::build(&mut e, &henri(), "n0.");
        let b = MemSystem::build(&mut e, &henri(), "n1.");
        assert_ne!(a.controller(NumaId(0)), b.controller(NumaId(0)));
        assert_ne!(a.core_resource(CoreId(0)), b.core_resource(CoreId(0)));
    }
}
