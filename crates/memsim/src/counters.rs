//! Simulated PMU counters.
//!
//! The paper reads hardware counters via `pmu-tools`/`perf` to attribute CPU
//! stalls to memory accesses (Figure 10's bottom plot). The simulator keeps
//! the equivalent books directly: bytes delivered per memory controller,
//! utilization integrals and per-job stall seconds (in
//! [`crate::exec::JobStats`]). [`MemCounters`] snapshots the
//! controller/link-level view so experiments can difference two snapshots
//! around a measured region.

use simcore::Engine;
use topology::NumaId;

use crate::MemSystem;

/// Snapshot of the memory system's cumulative counters.
#[derive(Clone, Debug, PartialEq)]
pub struct MemCounters {
    /// Bytes delivered by each NUMA node's controller.
    pub controller_bytes: Vec<f64>,
    /// Utilization integral (seconds at 100 %) per controller.
    pub controller_busy_s: Vec<f64>,
    /// Bytes over the inter-socket links `[0→1, 1→0]`.
    pub upi_bytes: [f64; 2],
}

impl MemCounters {
    /// Take a snapshot.
    pub fn snapshot(engine: &Engine, mem: &MemSystem) -> MemCounters {
        let n = mem.spec().numa_count();
        MemCounters {
            controller_bytes: (0..n)
                .map(|i| engine.delivered(mem.controller(NumaId(i))))
                .collect(),
            controller_busy_s: (0..n)
                .map(|i| engine.busy_integral(mem.controller(NumaId(i))))
                .collect(),
            upi_bytes: [
                engine.delivered(mem.upi_dir(topology::SocketId(0), topology::SocketId(1))),
                engine.delivered(mem.upi_dir(topology::SocketId(1), topology::SocketId(0))),
            ],
        }
    }

    /// Counter deltas between two snapshots (self = later).
    pub fn since(&self, earlier: &MemCounters) -> MemCounters {
        MemCounters {
            controller_bytes: self
                .controller_bytes
                .iter()
                .zip(&earlier.controller_bytes)
                .map(|(a, b)| a - b)
                .collect(),
            controller_busy_s: self
                .controller_busy_s
                .iter()
                .zip(&earlier.controller_busy_s)
                .map(|(a, b)| a - b)
                .collect(),
            upi_bytes: [
                self.upi_bytes[0] - earlier.upi_bytes[0],
                self.upi_bytes[1] - earlier.upi_bytes[1],
            ],
        }
    }

    /// Total bytes through all controllers.
    pub fn total_bytes(&self) -> f64 {
        self.controller_bytes.iter().sum()
    }

    /// Mean controller utilization over a window of `dt` seconds.
    pub fn mean_utilization(&self, numa: NumaId, dt: f64) -> f64 {
        if dt <= 0.0 {
            0.0
        } else {
            (self.controller_busy_s[numa.0 as usize] / dt).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::FlowSpec;
    use topology::henri;

    #[test]
    fn snapshot_and_delta() {
        let mut e = Engine::new();
        let m = MemSystem::build(&mut e, &henri(), "n0.");
        let before = MemCounters::snapshot(&e, &m);
        assert_eq!(before.total_bytes(), 0.0);

        // Push 10 GB through controller 0 at its full 45 GB/s.
        e.start_flow(FlowSpec {
            path: vec![m.controller(NumaId(0))],
            volume: 10.0e9,
            weight: 1.0,
            cap: None,
            tag: 1,
        });
        while e.next().is_some() {}
        let after = MemCounters::snapshot(&e, &m);
        let d = after.since(&before);
        assert!((d.controller_bytes[0] - 10.0e9).abs() < 1.0);
        assert_eq!(d.controller_bytes[1], 0.0);
        assert!((d.total_bytes() - 10.0e9).abs() < 1.0);
        // Ran at 100 % for 10/45 s.
        let dt = 10.0 / 45.0;
        assert!((d.controller_busy_s[0] - dt).abs() < 1e-9);
        assert!((d.mean_utilization(NumaId(0), dt) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn upi_traffic_counted() {
        let mut e = Engine::new();
        let m = MemSystem::build(&mut e, &henri(), "n0.");
        // Remote read: core 0 (socket 0) from NUMA 3 (socket 1).
        let path = m.path(crate::Requester::Core(topology::CoreId(0)), NumaId(3));
        e.start_flow(FlowSpec {
            path,
            volume: 1.0e9,
            weight: 1.0,
            cap: None,
            tag: 1,
        });
        while e.next().is_some() {}
        let c = MemCounters::snapshot(&e, &m);
        // socket1 → socket0 direction carries the bytes.
        assert!((c.upi_bytes[1] - 1.0e9).abs() < 1.0);
        assert_eq!(c.upi_bytes[0], 0.0);
    }
}
