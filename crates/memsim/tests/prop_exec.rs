//! Property tests for the compute executor against closed-form roofline
//! predictions.

use freq::{FreqModel, Governor, License, UncorePolicy};
use memsim::exec::{Executor, JobSpec, Phase};
use memsim::MemSystem;
use proptest::prelude::*;
use simcore::Engine;
use topology::{henri, CoreId, NumaId};

fn setup(ghz: f64) -> (Engine, MemSystem, FreqModel, Executor) {
    let mut e = Engine::new();
    let spec = henri();
    let m = MemSystem::build(&mut e, &spec, "n0.");
    let f = FreqModel::new(&spec, Governor::Userspace(ghz), UncorePolicy::Fixed(2.4));
    m.apply_freqs(&mut e, &f);
    (e, m, f, Executor::new(0))
}

fn run_all(
    e: &mut Engine,
    m: &MemSystem,
    f: &mut FreqModel,
    x: &mut Executor,
) -> Vec<memsim::exec::JobStats> {
    let mut out = Vec::new();
    while let Some(ev) = e.next() {
        if x.owns(ev.tag()) {
            if let Some((_, st)) = x.on_event(e, m, f, &ev) {
                out.push(st);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-core phase duration equals the closed-form roofline time
    /// within float tolerance, for any intensity and frequency.
    #[test]
    fn single_core_matches_roofline(
        ai in 0.05f64..100.0,
        ghz in 1.0f64..2.3,
        mb in 1.0f64..64.0,
    ) {
        let (mut e, m, mut f, mut x) = setup(ghz);
        let bytes = mb * 1e6;
        x.start(&mut e, &m, &mut f, JobSpec {
            core: CoreId(0),
            phases: vec![Phase { flops: bytes * ai, bytes, data: NumaId(0), license: License::Normal }],
            iterations: 1,
        });
        let done = run_all(&mut e, &m, &mut f, &mut x);
        prop_assert_eq!(done.len(), 1);
        let spec = henri();
        let flop_rate = spec.flop_rate(ghz, 0);
        let rate = (flop_rate / ai).min(spec.per_core_bw);
        let predicted = bytes / rate;
        let measured = done[0].elapsed_s();
        prop_assert!(
            (measured - predicted).abs() / predicted < 1e-6,
            "ai {} ghz {}: measured {} predicted {}", ai, ghz, measured, predicted
        );
    }

    /// N identical memory-bound jobs on one controller share fairly: all
    /// finish simultaneously with equal attained bandwidth, and total
    /// throughput never exceeds the controller.
    #[test]
    fn fair_sharing_and_conservation(n in 1usize..9, mb in 1.0f64..32.0) {
        let (mut e, m, mut f, mut x) = setup(2.3);
        let bytes = mb * 1e6;
        for c in 0..n {
            x.start(&mut e, &m, &mut f, JobSpec {
                core: CoreId(c as u32),
                phases: vec![Phase { flops: 0.0, bytes, data: NumaId(0), license: License::Normal }],
                iterations: 1,
            });
        }
        let done = run_all(&mut e, &m, &mut f, &mut x);
        prop_assert_eq!(done.len(), n);
        let bw0 = done[0].mem_bandwidth();
        for st in &done {
            prop_assert!((st.mem_bandwidth() - bw0).abs() / bw0 < 1e-6);
        }
        let spec = henri();
        let total = bw0 * n as f64;
        let cap = spec.mem_bw_per_numa;
        prop_assert!(total <= cap * 1.0001, "total {} exceeds controller {}", total, cap);
        // Fair share: min(per-core, capacity/n).
        let expect = spec.per_core_bw.min(cap / n as f64);
        prop_assert!((bw0 - expect).abs() / expect < 1e-6);
    }

    /// Stall fraction is 0 when uncontended below per-core bandwidth, and
    /// in (0, 1] when the controller is oversubscribed.
    #[test]
    fn stall_fraction_semantics(n in 4usize..9) {
        // n cores, each demanding 12 GB/s, on a 45 GB/s controller: for
        // n ≥ 4, everyone is stalled.
        let (mut e, m, mut f, mut x) = setup(2.3);
        for c in 0..n {
            x.start(&mut e, &m, &mut f, JobSpec {
                core: CoreId(c as u32),
                phases: vec![Phase { flops: 0.0, bytes: 1e8, data: NumaId(0), license: License::Normal }],
                iterations: 1,
            });
        }
        let done = run_all(&mut e, &m, &mut f, &mut x);
        for st in &done {
            let s = st.stall_fraction();
            prop_assert!(s > 0.0 && s <= 1.0, "stall {}", s);
            // Closed form: 1 - share/demand.
            let share = 45e9 / n as f64;
            let expect = 1.0 - share / 12e9;
            prop_assert!((s - expect).abs() < 0.01, "stall {} expect {}", s, expect);
        }
    }

    /// Remote phases (across UPI) are never faster than local ones.
    #[test]
    fn remote_never_faster(mb in 1.0f64..32.0) {
        let run_on = |data: NumaId| {
            let (mut e, m, mut f, mut x) = setup(2.3);
            x.start(&mut e, &m, &mut f, JobSpec {
                core: CoreId(0),
                phases: vec![Phase { flops: 0.0, bytes: mb * 1e6, data, license: License::Normal }],
                iterations: 1,
            });
            run_all(&mut e, &m, &mut f, &mut x)[0].elapsed_s()
        };
        let local = run_on(NumaId(0));
        let remote = run_on(NumaId(3));
        prop_assert!(remote >= local * 0.999, "remote {} local {}", remote, local);
    }
}
