//! Property tests for the fault-injection subsystem: deterministic replay
//! (same seed + same plan ⇒ byte-identical trace) and conservation of the
//! delivered payload volume under retransmissions.

use freq::{Governor, UncorePolicy};
use mpisim::pingpong::{self, PingPongConfig};
use mpisim::Cluster;
use proptest::prelude::*;
use simcore::{FaultPlan, SimTime};
use topology::{henri, BindingPolicy, Placement};

fn cluster() -> Cluster {
    Cluster::new(
        &henri(),
        Governor::Userspace(2.3),
        UncorePolicy::Fixed(2.4),
        Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::NearNic,
        },
    )
}

/// Everything observable about one faulted ping-pong run.
#[derive(Debug, PartialEq)]
struct Trace {
    half_rtts: Vec<SimTime>,
    retries: Vec<u32>,
    retrans_bytes: Vec<u64>,
    end_time: SimTime,
}

fn faulted_pingpong(plan: &FaultPlan, pp: PingPongConfig) -> (Trace, f64) {
    let mut c = cluster();
    c.apply_faults(plan).expect("valid plan");
    c.set_time_budget(Some(SimTime::SEC * 5));
    c.enable_profiling();
    let res = pingpong::try_run(&mut c, pp).expect("bounded drop probability must complete");
    let trace = Trace {
        half_rtts: res.half_rtts.clone(),
        retries: c.send_profile().iter().map(|r| r.retries).collect(),
        retrans_bytes: c.send_profile().iter().map(|r| r.retrans_bytes).collect(),
        end_time: c.engine.now(),
    };
    (trace, c.net.wire_delivered(&c.engine))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed + same fault plan ⇒ byte-identical run trace.
    #[test]
    fn identical_plans_replay_identically(
        seed in 0u64..1_000_000,
        drop_cts in 0.0f64..0.5,
        drop_rts in 0.0f64..0.3,
    ) {
        let plan = FaultPlan::new(seed)
            .with_cts_drop(drop_cts)
            .with_rts_drop(drop_rts);
        let pp = PingPongConfig {
            size: 256 * 1024,
            reps: 4,
            warmup: 1,
            mtag: 0xFA,
        };
        let (a, _) = faulted_pingpong(&plan, pp);
        let (b, _) = faulted_pingpong(&plan, pp);
        prop_assert_eq!(&a, &b);
        // A different seed on a lossy fabric draws different drop decisions
        // somewhere in the trace; only check when drops are actually likely.
        if drop_cts > 0.2 {
            let other = FaultPlan::new(seed ^ 0xDEAD_BEEF)
                .with_cts_drop(drop_cts)
                .with_rts_drop(drop_rts);
            let (c, _) = faulted_pingpong(&other, pp);
            prop_assert!(
                c.retries != a.retries || c.half_rtts != a.half_rtts,
                "different seeds should diverge at p={}", drop_cts
            );
        }
    }

    /// Retransmitted control messages add latency but never payload: the
    /// wire delivers exactly the payload volume, retries or not.
    #[test]
    fn retransmission_conserves_delivered_volume(
        seed in 0u64..1_000_000,
        drop_cts in 0.0f64..0.5,
        size_kib in 128usize..1024,
        reps in 2u32..5,
    ) {
        let plan = FaultPlan::new(seed).with_cts_drop(drop_cts);
        let pp = PingPongConfig {
            size: size_kib * 1024,
            reps,
            warmup: 1,
            mtag: 0xFB,
        };
        let (trace, delivered) = faulted_pingpong(&plan, pp);
        // Two directions per round trip, warmup included.
        let expected = ((reps + 1) as f64) * 2.0 * (size_kib * 1024) as f64;
        prop_assert!(
            (delivered - expected).abs() < 1.0,
            "wire delivered {} B, payload is {} B (retries: {:?})",
            delivered, expected, trace.retries
        );
        // Retry accounting is internally consistent: control bytes are only
        // recorded for sends that actually retried.
        for (r, b) in trace.retries.iter().zip(&trace.retrans_bytes) {
            prop_assert_eq!(*r > 0, *b > 0);
            prop_assert!(*b <= (*r as u64 + 1) * 2 * netsim::CTRL_MSG_BYTES);
        }
    }

    /// An empty fault plan is a strict no-op: the event stream matches a
    /// cluster that never heard of fault injection.
    #[test]
    fn empty_plan_is_transparent(size_kib in 1usize..512, reps in 2u32..5) {
        let pp = PingPongConfig {
            size: size_kib * 1024,
            reps,
            warmup: 1,
            mtag: 0xFC,
        };
        let mut plain = cluster();
        let base = pingpong::run(&mut plain, pp);
        let (faulted, _) = faulted_pingpong(&FaultPlan::new(42), pp);
        prop_assert_eq!(&base.half_rtts, &faulted.half_rtts);
        prop_assert!(faulted.retries.iter().all(|&r| r == 0));
    }
}
