//! Property tests for the message-passing layer: matching semantics,
//! monotonicity of transfer times in size, and ping-pong consistency.

use freq::{Governor, UncorePolicy};
use mpisim::pingpong::{self, PingPongConfig};
use mpisim::Cluster;
use proptest::prelude::*;
use topology::{henri, BindingPolicy, Placement};

fn cluster() -> Cluster {
    Cluster::new(
        &henri(),
        Governor::Userspace(2.3),
        UncorePolicy::Fixed(2.4),
        Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::NearNic,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of matching sends/recvs completes them all (no
    /// lost or duplicated messages).
    #[test]
    fn random_interleavings_complete(
        order in prop::collection::vec(any::<bool>(), 1..16),
        size in 1usize..100_000,
    ) {
        let mut c = cluster();
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        let n = order.len() as u32;
        // Post sends/recvs in a random relative order, tags 0..n each way.
        let mut s_i = 0u32;
        let mut r_i = 0u32;
        for &send_first in &order {
            if send_first && s_i < n {
                sends.push(c.isend(0, size, s_i, 1000 + s_i as u64));
                s_i += 1;
            } else if r_i < n {
                recvs.push(c.irecv(1, r_i));
                r_i += 1;
            }
        }
        while s_i < n {
            sends.push(c.isend(0, size, s_i, 1000 + s_i as u64));
            s_i += 1;
        }
        while r_i < n {
            recvs.push(c.irecv(1, r_i));
            r_i += 1;
        }
        // Drain.
        while c.step().is_some() {}
        for &s in &sends {
            prop_assert!(c.test_send(s));
        }
        for &r in &recvs {
            prop_assert!(c.test_recv(r));
        }
    }

    /// One-way delivery time is monotone non-decreasing in message size.
    #[test]
    fn latency_monotone_in_size(exp in 2u32..26) {
        let t_for = |size: usize| {
            let mut c = cluster();
            let r = c.irecv(1, 1);
            c.isend(0, size, 1, 42);
            while !c.test_recv(r) {
                c.step().expect("progress");
            }
            c.engine.now()
        };
        let small = t_for(1 << exp);
        let large = t_for(1 << (exp + 1));
        prop_assert!(large >= small, "{:?} -> {:?}", small, large);
    }

    /// Ping-pong latency equals one-way delivery time within the protocol
    /// symmetry (half RTT ≈ one-way, small messages).
    #[test]
    fn half_rtt_matches_one_way(reps in 1u32..6) {
        let mut c = cluster();
        let res = pingpong::run(&mut c, PingPongConfig { size: 4, reps, warmup: 1, mtag: 7 });
        let rtt_half = res.median_latency_us();
        let mut c2 = cluster();
        let r = c2.irecv(1, 1);
        let t0 = c2.engine.now();
        c2.isend(0, 4, 1, 42);
        while !c2.test_recv(r) {
            c2.step().expect("progress");
        }
        let one_way = (c2.engine.now() - t0).as_micros_f64();
        prop_assert!((rtt_half - one_way).abs() / one_way < 0.1,
            "half rtt {} vs one-way {}", rtt_half, one_way);
    }

    /// Sending bandwidth recorded by the profiler never exceeds the
    /// physical DMA/link limits.
    #[test]
    fn profiler_within_physical_limits(size_mb in 1usize..64) {
        let mut c = cluster();
        c.enable_profiling();
        let size = size_mb << 20;
        let r = c.irecv(1, 1);
        c.isend(0, size, 1, 42);
        while !c.test_recv(r) {
            c.step().expect("progress");
        }
        for rec in c.send_profile() {
            prop_assert!(rec.bandwidth() <= henri().network.link_bw * 1.01);
        }
    }
}
