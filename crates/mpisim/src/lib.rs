//! # mpisim — an N-rank message-passing layer over the simulated fabric
//!
//! The paper's communication side is MadMPI (NewMadeleine's MPI interface):
//! a dedicated communication thread per process submits operations and makes
//! them progress. This crate provides the equivalent layer for the
//! simulator:
//!
//! * [`Cluster`] — owns the whole simulated world (N identical nodes:
//!   memory systems, frequency models, compute executors, NIC + routed
//!   fabric) and routes engine events to their subsystems;
//! * MPI-flavoured non-blocking point-to-point operations
//!   ([`Cluster::isend_to`] / [`Cluster::irecv_from`]) with FIFO tag
//!   matching and an unexpected-message queue; the paper's two-rank world is
//!   the degenerate case ([`Cluster::isend`] / [`Cluster::irecv`] wrap the
//!   N-rank path with `to = 1 - from`);
//! * [`collective`] — deterministic round-based schedules (ring/tree
//!   allreduce, binomial bcast, pairwise alltoall) executed as point-to-point
//!   sends;
//! * the [`pingpong`] benchmark (NetPIPE-style latency/bandwidth, §2.1);
//! * a per-send **profiler** recording the sending-side bandwidth exactly as
//!   the paper's §6 does ("the network bandwidth as perceived by the
//!   sending node").

#![warn(missing_docs)]

pub mod collective;
pub mod pingpong;

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use freq::{Activity, FreqModel, Governor, UncorePolicy};
use memsim::exec::{Executor, JobId, JobSpec, JobStats};
use memsim::MemSystem;
use netsim::{NetEvent, NetSim, NodeRef, TransferId};
use simcore::faults::{FaultPlan, FaultPlanError};
use simcore::telemetry::{self, Lane};
use simcore::{tags, Engine, EngineError, Event, JitterFamily, SimTime};
use topology::fabric::{Fabric, FabricSpec};
use topology::{CoreId, MachineSpec, NumaId, Placement};

/// When set, clusters built afterwards match messages with the original
/// single-queue linear scans (PR 8's matcher) instead of the indexed
/// per-`(dst, src, tag)` bins. Retained as the equivalence reference: the
/// whole-campaign replay in `tests/collective_equiv.rs` runs the same
/// campaigns both ways and asserts byte-identical exports, mirroring
/// `simcore::queue::FORCE_HEAP` / `simcore::fluid::FORCE_REFERENCE`.
pub static FORCE_SCAN_MATCH: AtomicBool = AtomicBool::new(false);

/// A request handle for a non-blocking operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReqId(u32);

#[derive(Clone, Debug, PartialEq)]
enum ReqState {
    Pending,
    Complete,
    /// The underlying transfer exhausted its retransmission budget.
    Failed,
}

/// Why a simulation drive could not complete.
#[derive(Clone, Debug)]
pub enum ClusterError {
    /// The engine wedged: a deadlock or a blown simulated-time budget.
    Wedged(EngineError),
    /// The simulation ran dry while requests were still outstanding.
    Dry {
        /// Send requests never completed.
        pending_sends: usize,
        /// Receive requests never completed.
        pending_recvs: usize,
    },
    /// A transfer gave up after exhausting its retransmissions.
    TransferFailed {
        /// The send request that failed.
        send: ReqId,
        /// Retransmissions attempted.
        retries: u32,
    },
    /// The injected fault plan failed validation.
    BadFaultPlan(FaultPlanError),
}

impl From<FaultPlanError> for ClusterError {
    fn from(e: FaultPlanError) -> Self {
        ClusterError::BadFaultPlan(e)
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Wedged(e) => write!(f, "cluster wedged: {}", e),
            ClusterError::Dry {
                pending_sends,
                pending_recvs,
            } => write!(
                f,
                "simulation ran dry with {} send(s) and {} receive(s) pending",
                pending_sends, pending_recvs
            ),
            ClusterError::TransferFailed { send, retries } => write!(
                f,
                "send request {:?} failed after {} retransmissions",
                send, retries
            ),
            ClusterError::BadFaultPlan(e) => write!(f, "invalid fault plan: {}", e),
        }
    }
}

impl std::error::Error for ClusterError {}

#[derive(Clone, Debug)]
struct SendReq {
    state: ReqState,
    /// Sender-side elapsed time, set at SendComplete.
    elapsed: Option<SimTime>,
    size: usize,
}

#[derive(Clone, Debug)]
struct RecvReq {
    node: usize,
    src: usize,
    mtag: u32,
    state: ReqState,
    matched: Option<TransferId>,
}

/// `Matcher::Indexed` side-table sentinel: "no request".
const NO_REQ: u32 = u32::MAX;

/// One `(dst, src, mtag)` match bin: FIFO order within the bin is exactly
/// the global posting/arrival order restricted to the bin's key, so popping
/// the front is equivalent to the reference matcher's first-match scan.
#[derive(Default, Debug)]
struct MatchBin {
    /// Posted-but-unmatched receive requests, in posting order.
    posted: VecDeque<u32>,
    /// Arrived-but-unmatched transfers, in arrival order. Failed transfers
    /// are removed lazily (see `Matcher::Indexed::cancelled`).
    unexpected: VecDeque<TransferId>,
}

/// Message-matching state. The default `Indexed` form makes post, match and
/// cancel O(1) amortised at any rank count; `Scan` is PR 8's single-queue
/// linear matcher, selected by [`FORCE_SCAN_MATCH`] at cluster build and
/// kept as the byte-identity reference.
///
/// The dense side tables rely on [`TransferId`]s being allocated in
/// lockstep with send requests: `Cluster` is the only `start_send` caller,
/// so `TransferId(i)` is always the i-th transfer this cluster started
/// (checked by a debug assertion on every send).
enum Matcher {
    Indexed {
        /// `(dst, src, mtag)` → match bin.
        bins: HashMap<(u32, u32, u32), MatchBin>,
        /// TransferId → (send request, sending rank).
        meta: Vec<(u32, u32)>,
        /// TransferId → matched receive request ([`NO_REQ`] while unmatched).
        recv_of: Vec<u32>,
        /// TransferId → payload arrived before any receive was posted.
        delivered: Vec<bool>,
        /// TransferId → transfer failed while possibly still queued in a
        /// bin; matching skips (and drops) cancelled entries lazily, so a
        /// failure never scans unrelated bins.
        cancelled: Vec<bool>,
        /// Send request → TransferId.
        send_transfer: Vec<TransferId>,
    },
    Scan {
        /// Posted-but-unmatched receives (all keys interleaved).
        posted: VecDeque<u32>,
        /// Arrived-but-unmatched transfers: (dest_node, src, mtag,
        /// transfer, delivered_already).
        unexpected: VecDeque<(usize, usize, u32, TransferId, bool)>,
        /// (transfer → send request, mtag, from) registry.
        transfer_req: Vec<(TransferId, u32, u32, usize)>,
    },
}

impl Matcher {
    fn new() -> Matcher {
        if FORCE_SCAN_MATCH.load(Ordering::Relaxed) {
            Matcher::Scan {
                posted: VecDeque::new(),
                unexpected: VecDeque::new(),
                transfer_req: Vec::new(),
            }
        } else {
            Matcher::Indexed {
                bins: HashMap::new(),
                meta: Vec::new(),
                recv_of: Vec::new(),
                delivered: Vec::new(),
                cancelled: Vec::new(),
                send_transfer: Vec::new(),
            }
        }
    }

    /// (send request, sending rank) of a transfer.
    fn send_of(&self, id: TransferId) -> (u32, usize) {
        match self {
            Matcher::Indexed { meta, .. } => {
                let (sreq, from) = meta[id.0 as usize];
                (sreq, from as usize)
            }
            Matcher::Scan { transfer_req, .. } => {
                let (_, sreq, _, from) = *transfer_req
                    .iter()
                    .find(|(t, _, _, _)| *t == id)
                    .expect("known transfer");
                (sreq, from)
            }
        }
    }
}

/// One record of the send profiler.
#[derive(Clone, Copy, Debug)]
pub struct SendRecord {
    /// Sending node.
    pub node: usize,
    /// Message size in bytes.
    pub size: usize,
    /// Time from submission to last byte out of the sender.
    pub elapsed: SimTime,
    /// Rendezvous retransmissions this send needed (0 on a healthy fabric).
    pub retries: u32,
    /// Control-message bytes re-sent across the wire.
    pub retrans_bytes: u64,
    /// Simulated time spent waiting in expired retransmission timeouts.
    pub retry_wait: SimTime,
}

impl SendRecord {
    /// Sending bandwidth in bytes/s.
    pub fn bandwidth(&self) -> f64 {
        self.size as f64 / self.elapsed.as_secs_f64()
    }
}

/// High-level events returned by [`Cluster::step`].
#[derive(Debug)]
pub enum ClusterEvent {
    /// A send request's payload fully left the sender.
    SendComplete(ReqId),
    /// A receive request completed (payload delivered and processed).
    RecvComplete(ReqId),
    /// A send request gave up after exhausting its retransmissions (only
    /// possible under an injected fault plan).
    SendFailed {
        /// The failed send request.
        req: ReqId,
        /// Retransmissions attempted.
        retries: u32,
    },
    /// A compute job finished on a node.
    JobDone {
        /// Node index.
        node: usize,
        /// Job handle.
        job: JobId,
        /// Final stats.
        stats: JobStats,
    },
    /// An event from a namespace this layer does not own (e.g. the task
    /// runtime); the caller dispatches it.
    Other(Event),
}

/// The complete simulated world: N identical nodes plus the routed fabric.
pub struct Cluster {
    /// The discrete-event engine.
    pub engine: Engine,
    /// Machine description shared by all nodes.
    pub spec: MachineSpec,
    /// Per-node memory systems.
    pub mem: Vec<MemSystem>,
    /// Per-node frequency models.
    pub freqs: Vec<FreqModel>,
    /// Per-node compute executors.
    pub exec: Vec<Executor>,
    /// NIC + fabric simulation.
    pub net: NetSim,
    /// Communication-thread core of each node.
    pub comm_core: Vec<CoreId>,
    /// NUMA node holding communication buffers on each node.
    pub data_numa: Vec<NumaId>,
    sends: Vec<SendReq>,
    recvs: Vec<RecvReq>,
    /// Tag-matching state (indexed bins by default; see [`Matcher`]).
    matcher: Matcher,
    /// Cluster events decoded from engine events but not yet returned by
    /// [`Cluster::try_step`] (one engine event can complete several
    /// requests at once).
    pending: VecDeque<ClusterEvent>,
    profile: Vec<SendRecord>,
    profiling: bool,
    /// Injected faults (empty when healthy); kept for straggler re-application.
    fault_plan: FaultPlan,
    /// Reused by [`Cluster::refresh_uncore`] to avoid a per-event allocation.
    uncore_scratch: Vec<f64>,
}

impl Cluster {
    /// Build the paper's cluster of two `spec` nodes joined by a direct wire
    /// under the given governor/uncore policy and placement (applied
    /// symmetrically to both nodes).
    pub fn new(
        spec: &MachineSpec,
        governor: Governor,
        uncore: UncorePolicy,
        placement: Placement,
    ) -> Cluster {
        Cluster::with_fabric(spec, FabricSpec::direct().build(), governor, uncore, placement)
    }

    /// Build a cluster of `fabric.nodes()` identical `spec` nodes joined by
    /// a routed fabric. All nodes share the governor/uncore policy and
    /// placement; [`Cluster::new`] is the degenerate two-node direct-wire
    /// case.
    pub fn with_fabric(
        spec: &MachineSpec,
        fabric: Fabric,
        governor: Governor,
        uncore: UncorePolicy,
        placement: Placement,
    ) -> Cluster {
        let nodes = fabric.nodes();
        let mut engine = Engine::new();
        let mem: Vec<MemSystem> = (0..nodes)
            .map(|i| MemSystem::build(&mut engine, spec, format!("n{}.", i)))
            .collect();
        let resolved = spec.resolve(placement);
        let comm_core = vec![resolved.comm_core; nodes];
        let data_numa = vec![resolved.data_numa; nodes];
        let mut freqs: Vec<FreqModel> = (0..nodes)
            .map(|_| FreqModel::new(spec, governor, uncore))
            .collect();
        // The communication thread busy-polls from the start (MadMPI's
        // pioman): architecturally active but light.
        for (f, m) in freqs.iter_mut().zip(&mem) {
            f.set_activity(resolved.comm_core, Activity::Light);
            m.apply_freqs(&mut engine, f);
        }
        let mut net = NetSim::build_fabric(&mut engine, spec, fabric);
        let uncore: Vec<f64> = freqs.iter().map(|f| f.uncore_freq()).collect();
        net.apply_uncore(&mut engine, spec, &uncore);
        Cluster {
            engine,
            spec: spec.clone(),
            mem,
            freqs,
            exec: (0..nodes).map(|i| Executor::new(i as u32)).collect(),
            net,
            comm_core,
            data_numa,
            sends: Vec::new(),
            recvs: Vec::new(),
            matcher: Matcher::new(),
            pending: VecDeque::new(),
            profile: Vec::new(),
            profiling: false,
            fault_plan: FaultPlan::default(),
            uncore_scratch: Vec::with_capacity(nodes),
        }
    }

    /// Number of nodes (MPI ranks) in this cluster.
    pub fn nodes(&self) -> usize {
        self.mem.len()
    }

    /// Install a fault plan: network windows/drops go to [`NetSim`], and
    /// straggler cores are pinned below nominal frequency (re-applied after
    /// every frequency change). Identical seeds replay identical faults.
    pub fn apply_faults(&mut self, plan: &FaultPlan) -> Result<(), FaultPlanError> {
        self.net.apply_faults(&mut self.engine, plan)?;
        self.fault_plan = plan.clone();
        self.refresh_uncore();
        Ok(())
    }

    /// The currently installed fault plan (empty when healthy).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Arm the engine's quiescence watchdog: any attempt to simulate past
    /// `budget` surfaces as [`ClusterError::Wedged`] from [`Cluster::try_step`].
    pub fn set_time_budget(&mut self, budget: Option<SimTime>) {
        self.engine.set_time_budget(budget);
    }

    /// Compute cores available on each node under the current placement
    /// (all cores except the communication core, in logical order).
    pub fn compute_cores(&self) -> Vec<CoreId> {
        (0..self.spec.core_count())
            .map(CoreId)
            .filter(|&c| c != self.comm_core[0])
            .collect()
    }

    /// Draw per-run jitter multipliers from `family` and apply them.
    pub fn apply_run_jitter(&mut self, family: &JitterFamily, run: u64) {
        let mut lat_rng = family.stream(run * 2 + 1);
        let mut bw_rng = family.stream(run * 2 + 2);
        let lat = lat_rng.jitter(self.spec.lat_jitter);
        let bw = bw_rng.jitter(self.spec.network.bw_jitter);
        self.net.set_jitter(&mut self.engine, lat, bw);
        // set_jitter resets the NIC capacities; re-apply the uncore scale.
        self.refresh_uncore();
    }

    /// Enable the sending-bandwidth profiler.
    pub fn enable_profiling(&mut self) {
        self.profiling = true;
    }

    /// Profiler records so far.
    pub fn send_profile(&self) -> &[SendRecord] {
        &self.profile
    }

    /// Start a compute job on a node.
    pub fn start_job(&mut self, node: usize, spec: JobSpec) -> JobId {
        let id = self.exec[node].start(
            &mut self.engine,
            &self.mem[node],
            &mut self.freqs[node],
            spec,
        );
        // Frequency/uncore changes may also move the NIC DMA ceiling.
        self.refresh_uncore();
        id
    }

    /// Stop a running job, returning its partial stats.
    pub fn stop_job(&mut self, node: usize, id: JobId) -> Option<JobStats> {
        let st = self.exec[node].stop(
            &mut self.engine,
            &self.mem[node],
            &mut self.freqs[node],
            id,
        );
        self.refresh_uncore();
        st
    }

    fn refresh_uncore(&mut self) {
        self.uncore_scratch.clear();
        self.uncore_scratch.extend(self.freqs.iter().map(|f| f.uncore_freq()));
        self.net.apply_uncore(&mut self.engine, &self.spec, &self.uncore_scratch);
        // Straggler cores: cap the core's cycle budget below what the
        // frequency model just applied. Idempotent, so safe to re-run after
        // every frequency change.
        for s in &self.fault_plan.stragglers {
            let core = CoreId(s.core as u32);
            let f = self.freqs[s.node].core_freq(core);
            self.engine
                .set_capacity(self.mem[s.node].core_resource(core), f * 1e9 * s.factor);
        }
    }

    /// Non-blocking send of `size` bytes from `from` to the other node of a
    /// two-node cluster. Degenerate case of [`Cluster::isend_to`].
    /// `buffer` keys the registration cache; reuse it to model the paper's
    /// recycled ping-pong buffers.
    pub fn isend(&mut self, from: usize, size: usize, mtag: u32, buffer: u64) -> ReqId {
        debug_assert_eq!(self.nodes(), 2, "isend() addresses `1 - from`; use isend_to");
        self.isend_to(from, 1 - from, size, mtag, buffer)
    }

    /// Non-blocking send of `size` bytes from rank `from` to rank `to`.
    /// `buffer` keys the registration cache; reuse it to model recycled
    /// communication buffers.
    pub fn isend_to(
        &mut self,
        from: usize,
        to: usize,
        size: usize,
        mtag: u32,
        buffer: u64,
    ) -> ReqId {
        assert!(from != to, "self-sends never touch the fabric");
        let transfer = {
            let nref = NodeRef {
                mem: &self.mem[from],
                freqs: &self.freqs[from],
                comm_core: self.comm_core[from],
            };
            self.net.start_send(
                &mut self.engine,
                from,
                to,
                &nref,
                size,
                self.data_numa[from],
                self.data_numa[to],
                buffer,
            )
        };
        let req = ReqId(self.sends.len() as u32);
        if telemetry::is_active() {
            telemetry::async_begin(
                self.engine.now(),
                "mpi.send",
                &format!("send {}B", size),
                req.0 as u64,
                Lane::Node(from as u8),
            );
        }
        self.sends.push(SendReq {
            state: ReqState::Pending,
            elapsed: None,
            size,
        });
        // Match against an already-posted receive.
        match &mut self.matcher {
            Matcher::Indexed {
                bins,
                meta,
                recv_of,
                delivered,
                cancelled,
                send_transfer,
            } => {
                debug_assert_eq!(
                    transfer.0 as usize,
                    meta.len(),
                    "transfer ids allocate in lockstep with sends"
                );
                meta.push((req.0, from as u32));
                recv_of.push(NO_REQ);
                delivered.push(false);
                cancelled.push(false);
                send_transfer.push(transfer);
                let bin = bins.entry((to as u32, from as u32, mtag)).or_default();
                if let Some(r) = bin.posted.pop_front() {
                    telemetry::counter_add("mpi.match.probes", 1);
                    telemetry::counter_add("mpi.match.bin_hit", 1);
                    recv_of[transfer.0 as usize] = r;
                    self.recvs[r as usize].matched = Some(transfer);
                    self.net.recv_ready(&mut self.engine, transfer);
                } else {
                    bin.unexpected.push_back(transfer);
                }
            }
            Matcher::Scan {
                posted,
                unexpected,
                transfer_req,
            } => {
                transfer_req.push((transfer, req.0, mtag, from));
                let recvs = &self.recvs;
                let mut probed = 0u64;
                let pos = posted.iter().position(|&r| {
                    probed += 1;
                    let rr = &recvs[r as usize];
                    rr.node == to && rr.src == from && rr.mtag == mtag
                });
                if probed > 0 {
                    telemetry::counter_add("mpi.match.probes", probed);
                }
                if let Some(pos) = pos {
                    let r = posted.remove(pos).expect("index valid");
                    self.recvs[r as usize].matched = Some(transfer);
                    self.net.recv_ready(&mut self.engine, transfer);
                } else {
                    unexpected.push_back((to, from, mtag, transfer, false));
                }
            }
        }
        req
    }

    /// Non-blocking receive at `node` from the other node of a two-node
    /// cluster with tag `mtag`. Degenerate case of [`Cluster::irecv_from`].
    pub fn irecv(&mut self, node: usize, mtag: u32) -> ReqId {
        debug_assert_eq!(self.nodes(), 2, "irecv() addresses `1 - node`; use irecv_from");
        self.irecv_from(node, 1 - node, mtag)
    }

    /// Non-blocking receive at rank `node` from rank `src` with tag `mtag`.
    pub fn irecv_from(&mut self, node: usize, src: usize, mtag: u32) -> ReqId {
        assert!(node != src, "self-receives never touch the fabric");
        let req = ReqId(self.recvs.len() as u32);
        telemetry::async_begin(
            self.engine.now(),
            "mpi.recv",
            "recv",
            req.0 as u64,
            Lane::Node(node as u8),
        );
        let mut rr = RecvReq {
            node,
            src,
            mtag,
            state: ReqState::Pending,
            matched: None,
        };
        // Match against an unexpected arrival.
        match &mut self.matcher {
            Matcher::Indexed {
                bins,
                recv_of,
                delivered,
                cancelled,
                ..
            } => {
                let bin = bins.entry((node as u32, src as u32, mtag)).or_default();
                let mut matched = None;
                let mut probed = 0u64;
                // Failed transfers are dropped lazily here, so a failure
                // elsewhere never scanned this bin.
                while let Some(t) = bin.unexpected.pop_front() {
                    probed += 1;
                    if cancelled[t.0 as usize] {
                        continue;
                    }
                    matched = Some(t);
                    break;
                }
                if probed > 0 {
                    telemetry::counter_add("mpi.match.probes", probed);
                }
                if let Some(transfer) = matched {
                    telemetry::counter_add("mpi.match.bin_hit", 1);
                    recv_of[transfer.0 as usize] = req.0;
                    rr.matched = Some(transfer);
                    if delivered[transfer.0 as usize] {
                        rr.state = ReqState::Complete;
                        // The payload already arrived: the request is
                        // instantaneous.
                        telemetry::async_end(
                            self.engine.now(),
                            "mpi.recv",
                            req.0 as u64,
                            Lane::Node(node as u8),
                        );
                    } else {
                        self.net.recv_ready(&mut self.engine, transfer);
                    }
                    self.recvs.push(rr);
                } else {
                    self.recvs.push(rr);
                    bin.posted.push_back(req.0);
                }
            }
            Matcher::Scan {
                posted, unexpected, ..
            } => {
                let mut probed = 0u64;
                let pos = unexpected.iter().position(|&(d, s, t, _, _)| {
                    probed += 1;
                    d == node && s == src && t == mtag
                });
                if probed > 0 {
                    telemetry::counter_add("mpi.match.probes", probed);
                }
                if let Some(pos) = pos {
                    let (_, _, _, transfer, delivered) =
                        unexpected.remove(pos).expect("index valid");
                    rr.matched = Some(transfer);
                    if delivered {
                        rr.state = ReqState::Complete;
                        // The payload already arrived: the request is
                        // instantaneous.
                        telemetry::async_end(
                            self.engine.now(),
                            "mpi.recv",
                            req.0 as u64,
                            Lane::Node(node as u8),
                        );
                    } else {
                        self.net.recv_ready(&mut self.engine, transfer);
                    }
                    self.recvs.push(rr);
                } else {
                    self.recvs.push(rr);
                    posted.push_back(req.0);
                }
            }
        }
        req
    }

    /// True if the request has completed.
    pub fn test_send(&self, req: ReqId) -> bool {
        self.sends[req.0 as usize].state == ReqState::Complete
    }

    /// True if the request has completed.
    pub fn test_recv(&self, req: ReqId) -> bool {
        self.recvs[req.0 as usize].state == ReqState::Complete
    }

    /// True if the send's transfer failed permanently (fault injection).
    pub fn send_failed(&self, req: ReqId) -> bool {
        self.sends[req.0 as usize].state == ReqState::Failed
    }

    /// True if the receive's matched transfer failed permanently.
    pub fn recv_failed(&self, req: ReqId) -> bool {
        self.recvs[req.0 as usize].state == ReqState::Failed
    }

    /// Sender-side elapsed time of a completed send.
    pub fn send_elapsed(&self, req: ReqId) -> Option<SimTime> {
        self.sends[req.0 as usize].elapsed
    }

    /// Retransmission accounting for a send request (zeroes when healthy).
    pub fn send_retry_stats(&self, req: ReqId) -> netsim::RetryStats {
        let transfer = match &self.matcher {
            Matcher::Indexed { send_transfer, .. } => send_transfer[req.0 as usize],
            Matcher::Scan { transfer_req, .. } => {
                let (transfer, ..) = *transfer_req
                    .iter()
                    .find(|(_, s, _, _)| *s == req.0)
                    .expect("known send request");
                transfer
            }
        };
        self.net.retry_stats(transfer)
    }

    /// Number of send requests still pending.
    pub fn pending_sends(&self) -> usize {
        self.sends
            .iter()
            .filter(|s| s.state == ReqState::Pending)
            .count()
    }

    /// Number of receive requests still pending.
    pub fn pending_recvs(&self) -> usize {
        self.recvs
            .iter()
            .filter(|r| r.state == ReqState::Pending)
            .count()
    }

    /// Advance the simulation by one event. Returns `None` when the engine
    /// is dry. Panics if the engine wedges; use [`Cluster::try_step`] for a
    /// typed error instead.
    pub fn step(&mut self) -> Option<ClusterEvent> {
        match self.try_step() {
            Ok(ev) => ev,
            Err(e) => panic!("{}", e),
        }
    }

    /// Advance the simulation by one event. `Ok(None)` means the engine ran
    /// dry; [`ClusterError::Wedged`] carries the engine's stall diagnostic.
    pub fn try_step(&mut self) -> Result<Option<ClusterEvent>, ClusterError> {
        loop {
            // One engine event can complete several requests (batched
            // deliveries land at one instant); surface every completion, in
            // order, before advancing the engine again.
            if let Some(out) = self.pending.pop_front() {
                return Ok(Some(out));
            }
            let Some(ev) = self.engine.try_next().map_err(ClusterError::Wedged)? else {
                return Ok(None);
            };
            match simcore::namespace(ev.tag()) {
                tags::ns::NET => {
                    let outs = {
                        let (mem, freqs, comm) = (&self.mem, &self.freqs, &self.comm_core);
                        self.net.on_event(
                            &mut self.engine,
                            |i| NodeRef {
                                mem: &mem[i],
                                freqs: &freqs[i],
                                comm_core: comm[i],
                            },
                            &ev,
                        )
                    };
                    self.apply_net_events(outs);
                }
                tags::ns::COMPUTE => {
                    let node = self
                        .exec
                        .iter()
                        .position(|e| e.owns(ev.tag()))
                        .expect("compute event has an owning executor");
                    let done = {
                        let (mem, freqs, exec) = (
                            &self.mem[node],
                            &mut self.freqs[node],
                            &mut self.exec[node],
                        );
                        exec.on_event(&mut self.engine, mem, freqs, &ev)
                    };
                    // Any frequency change may have moved uncore/NIC caps
                    // and other executors' rooflines.
                    self.refresh_uncore();
                    // Split-borrow safe: refresh the sibling executors' caps.
                    for other in (0..self.exec.len()).filter(|&o| o != node) {
                        let (m, f) = (&self.mem[other], &self.freqs[other]);
                        self.exec[other].refresh_caps(&mut self.engine, m, f);
                    }
                    if let Some((job, stats)) = done {
                        return Ok(Some(ClusterEvent::JobDone { node, job, stats }));
                    }
                }
                _ => return Ok(Some(ClusterEvent::Other(ev))),
            }
        }
    }

    fn apply_net_events(&mut self, outs: Vec<NetEvent>) {
        for out in outs {
            match out {
                NetEvent::SendComplete { id, sender_elapsed } => {
                    let (sreq, from) = self.matcher.send_of(id);
                    let s = &mut self.sends[sreq as usize];
                    s.state = ReqState::Complete;
                    s.elapsed = Some(sender_elapsed);
                    telemetry::async_end(
                        self.engine.now(),
                        "mpi.send",
                        sreq as u64,
                        Lane::Node(from as u8),
                    );
                    if self.profiling {
                        let rs = self.net.retry_stats(id);
                        self.profile.push(SendRecord {
                            node: from,
                            size: s.size,
                            elapsed: sender_elapsed,
                            retries: rs.retries,
                            retrans_bytes: rs.retrans_bytes,
                            retry_wait: rs.retry_wait,
                        });
                    }
                    self.pending.push_back(ClusterEvent::SendComplete(ReqId(sreq)));
                }
                NetEvent::Delivered { id } => {
                    // Find the matched receive, if any.
                    let ri = match &mut self.matcher {
                        Matcher::Indexed {
                            recv_of, delivered, ..
                        } => {
                            let r = recv_of[id.0 as usize];
                            if r == NO_REQ {
                                // Arrived before any receive was posted.
                                delivered[id.0 as usize] = true;
                                None
                            } else {
                                Some(r as usize)
                            }
                        }
                        Matcher::Scan { unexpected, .. } => {
                            let pos =
                                self.recvs.iter().position(|r| r.matched == Some(id));
                            if pos.is_none() {
                                if let Some(u) =
                                    unexpected.iter_mut().find(|(_, _, _, t, _)| *t == id)
                                {
                                    // Arrived before any receive was posted.
                                    u.4 = true;
                                }
                            }
                            pos
                        }
                    };
                    if let Some(ri) = ri {
                        self.recvs[ri].state = ReqState::Complete;
                        telemetry::async_end(
                            self.engine.now(),
                            "mpi.recv",
                            ri as u64,
                            Lane::Node(self.recvs[ri].node as u8),
                        );
                        self.pending.push_back(ClusterEvent::RecvComplete(ReqId(ri as u32)));
                    }
                }
                NetEvent::Failed { id, retries } => {
                    let (sreq, from) = self.matcher.send_of(id);
                    self.sends[sreq as usize].state = ReqState::Failed;
                    let lane = Lane::Node(from as u8);
                    telemetry::instant(self.engine.now(), "mpi", "send.failed", lane);
                    telemetry::async_end(self.engine.now(), "mpi.send", sreq as u64, lane);
                    // The matched receive (or queued unexpected arrival)
                    // will never complete either.
                    match &mut self.matcher {
                        Matcher::Indexed {
                            recv_of, cancelled, ..
                        } => {
                            let r = recv_of[id.0 as usize];
                            if r != NO_REQ {
                                self.recvs[r as usize].state = ReqState::Failed;
                            }
                            // Lazy removal from its bin: no queue sweep, no
                            // unrelated-bin scans.
                            cancelled[id.0 as usize] = true;
                        }
                        Matcher::Scan { unexpected, .. } => {
                            if let Some(ri) =
                                self.recvs.iter().position(|r| r.matched == Some(id))
                            {
                                self.recvs[ri].state = ReqState::Failed;
                            }
                            unexpected.retain(|&(_, _, _, t, _)| t != id);
                        }
                    }
                    self.pending.push_back(ClusterEvent::SendFailed {
                        req: ReqId(sreq),
                        retries,
                    });
                }
            }
        }
    }

    /// Run the simulation until `deadline`, discarding events (used to let
    /// background computation run alone).
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.engine.now() < deadline {
            // Peek: if no events remain, jump straight to the deadline.
            match self.step_until(deadline) {
                Some(_) => continue,
                None => break,
            }
        }
    }

    /// Like [`Cluster::step`] but never advances past `deadline`; returns
    /// `None` at the deadline.
    pub fn step_until(&mut self, deadline: SimTime) -> Option<ClusterEvent> {
        const SENTINEL: u64 = 0x00FF_FFFF_FFFF_FFFF;
        let sentinel_tag = simcore::tag(tags::ns::EXPERIMENT, SENTINEL);
        if self.engine.now() >= deadline {
            return None;
        }
        let timer = self.engine.at(deadline, sentinel_tag);
        match self.step() {
            Some(ClusterEvent::Other(e)) if e.tag() == sentinel_tag => None,
            Some(other) => {
                self.engine.cancel_timer(timer);
                Some(other)
            }
            None => {
                self.engine.cancel_timer(timer);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freq::License;
    use memsim::exec::Phase;
    use topology::{henri, BindingPolicy};

    fn cluster() -> Cluster {
        Cluster::new(
            &henri(),
            Governor::Userspace(2.3),
            UncorePolicy::Fixed(2.4),
            Placement::fig4_default(),
        )
    }

    fn drive_until_recv(c: &mut Cluster, r: ReqId) {
        while !c.test_recv(r) {
            c.step().expect("progress");
        }
    }

    #[test]
    fn send_recv_roundtrip() {
        let mut c = cluster();
        let r = c.irecv(1, 7);
        let s = c.isend(0, 1024, 7, 1);
        drive_until_recv(&mut c, r);
        assert!(c.test_send(s));
        assert!(c.engine.now() > SimTime::ZERO);
    }

    #[test]
    fn unexpected_message_then_recv() {
        let mut c = cluster();
        let s = c.isend(0, 64, 9, 1);
        // Drain until the network goes quiet (eager: delivered without recv).
        while c.step().is_some() {}
        let r = c.irecv(1, 9);
        // Eager message already arrived: receive completes immediately.
        assert!(c.test_recv(r));
        assert!(c.test_send(s));
    }

    #[test]
    fn tag_matching_is_selective() {
        let mut c = cluster();
        let r_b = c.irecv(1, 2);
        let r_a = c.irecv(1, 1);
        let _s = c.isend(0, 128, 1, 1);
        drive_until_recv(&mut c, r_a);
        // Tag 2 must still be pending.
        assert!(!c.test_recv(r_b));
    }

    #[test]
    fn fifo_matching_same_tag() {
        let mut c = cluster();
        let r1 = c.irecv(1, 5);
        let r2 = c.irecv(1, 5);
        c.isend(0, 64, 5, 1);
        drive_until_recv(&mut c, r1);
        assert!(!c.test_recv(r2), "second recv must wait for a second send");
        c.isend(0, 64, 5, 2);
        drive_until_recv(&mut c, r2);
    }

    /// ISSUE 9 satellite: a 1k-message churn across distinct tags must not
    /// scan unrelated bins. The indexed matcher probes exactly one entry
    /// per receive (its own bin's front); the pinned linear scanner walks
    /// the whole unexpected queue — the telemetry counters prove both.
    #[test]
    fn churn_does_not_scan_unrelated_bins() {
        let run = |force_scan: bool| -> (u64, u64) {
            std::thread::scope(|s| {
                s.spawn(move || {
                    telemetry::install();
                    FORCE_SCAN_MATCH.store(force_scan, Ordering::Relaxed);
                    let mut c = cluster();
                    FORCE_SCAN_MATCH.store(false, Ordering::Relaxed);
                    for t in 0..1000u32 {
                        c.isend(0, 64, t, 1);
                    }
                    // Drain: every eager payload lands unexpected, each in
                    // its own (dst, src, tag) bin.
                    while c.step().is_some() {}
                    for t in (0..1000u32).rev() {
                        let r = c.irecv(1, t);
                        assert!(c.test_recv(r), "eager payload already arrived");
                    }
                    let j = telemetry::take().expect("recorder installed");
                    (
                        j.counters.get("mpi.match.probes").copied().unwrap_or(0),
                        j.counters.get("mpi.match.bin_hit").copied().unwrap_or(0),
                    )
                })
                .join()
                .expect("test thread")
            })
        };
        let (idx_probes, idx_hits) = run(false);
        assert_eq!(idx_probes, 1000, "one probe per matched receive");
        assert_eq!(idx_hits, 1000, "every receive matches from its own bin");
        let (scan_probes, _) = run(true);
        assert_eq!(
            scan_probes, 500_500,
            "the reference scan walks every unrelated entry (arithmetic-series probe count)"
        );
    }

    #[test]
    fn rendezvous_roundtrip_and_profiler() {
        let mut c = cluster();
        c.enable_profiling();
        let size = 4 << 20;
        let r = c.irecv(1, 3);
        let s = c.isend(0, size, 3, 11);
        drive_until_recv(&mut c, r);
        assert!(c.test_send(s));
        let prof = c.send_profile();
        assert_eq!(prof.len(), 1);
        assert_eq!(prof[0].size, size);
        assert!(prof[0].bandwidth() > 1e9);
        assert_eq!(prof[0].node, 0);
    }

    #[test]
    fn job_and_message_interleave() {
        let mut c = cluster();
        // Memory-bound job on node 0 beside a big transfer.
        let job = c.start_job(
            0,
            JobSpec {
                core: CoreId(0),
                phases: vec![Phase {
                    flops: 0.0,
                    bytes: 1.0e9,
                    data: NumaId(0),
                    license: License::Normal,
                }],
                iterations: 1,
            },
        );
        let r = c.irecv(1, 1);
        let s = c.isend(0, 32 << 20, 1, 5);
        let mut job_done = false;
        let mut recv_done = false;
        while !(job_done && recv_done) {
            match c.step().expect("progress") {
                ClusterEvent::JobDone { job: j, .. } => {
                    assert_eq!(j, job);
                    job_done = true;
                }
                ClusterEvent::RecvComplete(rr) => {
                    assert_eq!(rr, r);
                    recv_done = true;
                }
                _ => {}
            }
        }
        assert!(c.test_send(s));
    }

    #[test]
    fn step_until_stops_at_deadline() {
        let mut c = cluster();
        let deadline = SimTime::from_micros(500);
        let r = c.irecv(1, 1);
        c.isend(0, 4, 1, 1);
        // The ping completes well before 500 µs; afterwards step_until
        // returns None at the deadline.
        let mut saw_recv = false;
        while let Some(ev) = c.step_until(deadline) {
            if matches!(ev, ClusterEvent::RecvComplete(_)) {
                saw_recv = true;
            }
        }
        assert!(saw_recv);
        assert_eq!(c.engine.now(), deadline);
        let _ = r;
    }

    #[test]
    fn placement_affects_comm_core() {
        let near = Cluster::new(
            &henri(),
            Governor::Userspace(2.3),
            UncorePolicy::Fixed(2.4),
            Placement {
                comm_thread: BindingPolicy::NearNic,
                data: BindingPolicy::NearNic,
            },
        );
        assert_eq!(near.comm_core[0], CoreId(8)); // last core of NUMA 0
        let far = cluster();
        assert_eq!(far.comm_core[0], CoreId(35)); // last core of NUMA 3
    }

    #[test]
    fn compute_cores_exclude_comm_core() {
        let c = cluster();
        let cores = c.compute_cores();
        assert_eq!(cores.len(), 35);
        assert!(!cores.contains(&c.comm_core[0]));
    }

    #[test]
    fn jitter_changes_latency_across_runs() {
        let fam = JitterFamily::new(99);
        let mut lats = Vec::new();
        for run in 0..3 {
            let mut c = cluster();
            c.apply_run_jitter(&fam, run);
            let r = c.irecv(1, 1);
            c.isend(0, 4, 1, 1);
            drive_until_recv(&mut c, r);
            lats.push(c.engine.now().as_secs_f64());
        }
        assert!(lats[0] != lats[1] || lats[1] != lats[2], "jitter had no effect");
    }
}
