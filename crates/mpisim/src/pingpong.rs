//! NetPIPE-style ping-pong benchmark (§2.1 of the paper).
//!
//! *Latency* is the duration of one communication — half a ping-pong
//! round trip. *Bandwidth* divides the message size by that latency.
//! Buffers are recycled across repetitions (registration-cache friendly),
//! exactly as the paper does.

use simcore::SimTime;

use crate::{Cluster, ClusterError, ClusterEvent};

/// Ping-pong parameters.
#[derive(Clone, Copy, Debug)]
pub struct PingPongConfig {
    /// Message size in bytes (4 B for the paper's latency metric, 64 MiB
    /// for its asymptotic bandwidth).
    pub size: usize,
    /// Measured repetitions.
    pub reps: u32,
    /// Warm-up repetitions (excluded from results; they also warm the
    /// registration cache).
    pub warmup: u32,
    /// Message tag.
    pub mtag: u32,
}

impl PingPongConfig {
    /// The paper's latency benchmark: 4-byte payloads.
    pub fn latency(reps: u32) -> PingPongConfig {
        PingPongConfig {
            size: 4,
            reps,
            warmup: 2,
            mtag: 0xBEEF,
        }
    }

    /// The paper's asymptotic bandwidth benchmark: 64 MiB payloads.
    pub fn bandwidth(reps: u32) -> PingPongConfig {
        PingPongConfig {
            size: 64 << 20,
            reps,
            warmup: 2,
            mtag: 0xBEEF,
        }
    }
}

/// Result of a ping-pong run.
#[derive(Clone, Debug)]
pub struct PingPongResult {
    /// Message size used.
    pub size: usize,
    /// Half-round-trip times, one per measured repetition.
    pub half_rtts: Vec<SimTime>,
}

impl PingPongResult {
    /// Latencies in microseconds.
    pub fn latencies_us(&self) -> Vec<f64> {
        self.half_rtts.iter().map(|t| t.as_micros_f64()).collect()
    }

    /// Bandwidths in bytes/s.
    pub fn bandwidths(&self) -> Vec<f64> {
        self.half_rtts
            .iter()
            .map(|t| self.size as f64 / t.as_secs_f64())
            .collect()
    }

    /// Median latency in microseconds.
    pub fn median_latency_us(&self) -> f64 {
        simcore::Summary::of(&self.latencies_us()).median
    }

    /// Median bandwidth in bytes/s.
    pub fn median_bandwidth(&self) -> f64 {
        simcore::Summary::of(&self.bandwidths()).median
    }
}

/// Run a ping-pong with no background activity handler.
pub fn run(cluster: &mut Cluster, cfg: PingPongConfig) -> PingPongResult {
    run_with_background(cluster, cfg, |_, _| {})
}

/// Run a ping-pong while forwarding non-ping-pong events (job completions,
/// runtime events) to `background` — used by the three-step protocol to keep
/// computation running beside the communication benchmark.
///
/// Panics if the simulation wedges or runs dry; on a faulted cluster use
/// [`try_run_with_background`].
pub fn run_with_background(
    cluster: &mut Cluster,
    cfg: PingPongConfig,
    background: impl FnMut(&mut Cluster, ClusterEvent),
) -> PingPongResult {
    match try_run_with_background(cluster, cfg, background) {
        Ok(res) => res,
        Err(e) => panic!("ping-pong cannot complete: {}", e),
    }
}

/// Fallible [`run`]: a wedged engine, a dried-up simulation or a permanently
/// failed transfer come back as [`ClusterError`] instead of a panic.
pub fn try_run(cluster: &mut Cluster, cfg: PingPongConfig) -> Result<PingPongResult, ClusterError> {
    try_run_with_background(cluster, cfg, |_, _| {})
}

/// Fallible [`run_with_background`].
pub fn try_run_with_background(
    cluster: &mut Cluster,
    cfg: PingPongConfig,
    mut background: impl FnMut(&mut Cluster, ClusterEvent),
) -> Result<PingPongResult, ClusterError> {
    assert!(cfg.size > 0 && cfg.reps > 0);
    let mut half_rtts = Vec::with_capacity(cfg.reps as usize);
    for rep in 0..(cfg.warmup + cfg.reps) {
        let t0 = cluster.engine.now();
        // Ping: 0 → 1. Buffers are recycled (stable ids per direction).
        let r = cluster.irecv(1, cfg.mtag);
        let s = cluster.isend(0, cfg.size, cfg.mtag, 0x1000);
        wait_recv(cluster, r, s, &mut background)?;
        // Pong: 1 → 0.
        let r = cluster.irecv(0, cfg.mtag);
        let s = cluster.isend(1, cfg.size, cfg.mtag, 0x2000);
        wait_recv(cluster, r, s, &mut background)?;
        if rep >= cfg.warmup {
            let rtt = cluster.engine.now() - t0;
            simcore::telemetry::sample("pingpong.half_rtt_us", (rtt / 2).as_micros_f64());
            half_rtts.push(rtt / 2);
        }
    }
    Ok(PingPongResult {
        size: cfg.size,
        half_rtts,
    })
}

fn wait_recv(
    cluster: &mut Cluster,
    req: crate::ReqId,
    send: crate::ReqId,
    background: &mut impl FnMut(&mut Cluster, ClusterEvent),
) -> Result<(), ClusterError> {
    while !cluster.test_recv(req) {
        if cluster.recv_failed(req) || cluster.send_failed(send) {
            return Err(ClusterError::TransferFailed {
                send,
                retries: cluster.send_retry_stats(send).retries,
            });
        }
        match cluster.try_step()? {
            Some(ClusterEvent::RecvComplete(r)) if r == req => break,
            Some(other) => background(cluster, other),
            None => {
                return Err(ClusterError::Dry {
                    pending_sends: cluster.pending_sends(),
                    pending_recvs: cluster.pending_recvs(),
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use freq::{Governor, UncorePolicy};
    use topology::{henri, BindingPolicy, Placement};

    fn cluster() -> Cluster {
        Cluster::new(
            &henri(),
            Governor::Userspace(2.3),
            UncorePolicy::Fixed(2.4),
            Placement {
                comm_thread: BindingPolicy::NearNic,
                data: BindingPolicy::NearNic,
            },
        )
    }

    #[test]
    fn latency_benchmark_shape() {
        let mut c = cluster();
        let res = run(&mut c, PingPongConfig::latency(5));
        assert_eq!(res.half_rtts.len(), 5);
        let lat = res.median_latency_us();
        // henri point value: ~1.8 µs.
        assert!((1.2..2.5).contains(&lat), "latency {} µs", lat);
        // Deterministic cluster, no jitter: all reps identical.
        let l = res.latencies_us();
        assert!(l.iter().all(|&x| (x - l[0]).abs() < 1e-9));
    }

    #[test]
    fn bandwidth_benchmark_shape() {
        let mut c = cluster();
        let res = run(&mut c, PingPongConfig::bandwidth(3));
        let bw = res.median_bandwidth();
        // henri point value: ~10.5 GB/s.
        assert!((9.0e9..11.5e9).contains(&bw), "bw {} GB/s", bw / 1e9);
    }

    #[test]
    fn bandwidth_grows_with_size() {
        let mut c = cluster();
        let sizes = [4usize, 4096, 1 << 20, 64 << 20];
        let mut last = 0.0;
        for (i, &size) in sizes.iter().enumerate() {
            let res = run(
                &mut c,
                PingPongConfig {
                    size,
                    reps: 2,
                    warmup: 1,
                    mtag: 10 + i as u32,
                },
            );
            let bw = res.median_bandwidth();
            assert!(bw > last, "bandwidth must grow with size: {} vs {}", bw, last);
            last = bw;
        }
    }

    #[test]
    fn latency_flat_for_tiny_sizes() {
        let mut c = cluster();
        let l4 = run(&mut c, PingPongConfig { size: 4, reps: 3, warmup: 1, mtag: 1 })
            .median_latency_us();
        let l64 = run(&mut c, PingPongConfig { size: 64, reps: 3, warmup: 1, mtag: 2 })
            .median_latency_us();
        assert!((l64 - l4).abs() / l4 < 0.05, "l4 {} l64 {}", l4, l64);
    }

    #[test]
    fn background_handler_sees_job_events() {
        use freq::License;
        use memsim::exec::Phase;
        use topology::{CoreId, NumaId};
        let mut c = cluster();
        c.start_job(
            0,
            memsim::exec::JobSpec {
                core: CoreId(0),
                phases: vec![Phase {
                    flops: 1e4,
                    bytes: 0.0,
                    data: NumaId(0),
                    license: License::Normal,
                }],
                iterations: 1,
            },
        );
        let mut jobs_seen = 0;
        let _ = run_with_background(&mut c, PingPongConfig::latency(3), |_, ev| {
            if matches!(ev, ClusterEvent::JobDone { .. }) {
                jobs_seen += 1;
            }
        });
        assert_eq!(jobs_seen, 1);
    }
}
