//! Collective operations as deterministic round-based schedules.
//!
//! A collective is compiled down to a [`Schedule`]: a sequence of rounds,
//! each a set of point-to-point messages that may proceed concurrently. The
//! executor ([`run`]) posts every receive of a round, then every send, and
//! drives the cluster until the round completes — a bulk-synchronous model
//! matching how MPI libraries pipeline chunked collectives (each round's
//! sends depend on data received in the previous round).
//!
//! Schedules carry enough semantic information (`chunk` identity and
//! combine-vs-copy) for [`Schedule::verify_semantics`] to prove, by tracking
//! per-rank contribution sets, that the message pattern actually computes
//! the collective — independently of any timing. `simcheck` fuzzes random
//! schedules through this checker and compares the simulated round times
//! against a naive sequential reference.
//!
//! Algorithms provided (the classics; see DESIGN.md §14 for closed forms):
//!
//! * [`Schedule::ring_allreduce`] — reduce-scatter + allgather on a ring,
//!   `2(n−1)` rounds of `⌈size/n⌉`-byte chunks;
//! * [`Schedule::tree_allreduce`] — binomial reduce to rank 0 then binomial
//!   broadcast, `2⌈log₂n⌉` rounds of full-payload messages;
//! * [`Schedule::binomial_bcast`] — `⌈log₂n⌉` rounds from rank 0;
//! * [`Schedule::pairwise_alltoall`] — `n−1` rounds, round `r` pairs rank
//!   `i` with `(i+r) mod n`.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use simcore::{Pcg32, SimTime};
use topology::fabric::Fabric;

use crate::{Cluster, ClusterError, ClusterEvent, ReqId};

/// When set, [`cached`] rebuilds and re-proves its schedule on every call
/// instead of consulting the process-wide cache. Equivalence pin for
/// `tests/collective_equiv.rs` (mirrors `FORCE_HEAP` / `FORCE_REFERENCE`).
pub static FORCE_SCHEDULE_REBUILD: AtomicBool = AtomicBool::new(false);

/// A collective algorithm, as a value — the cache key's first component.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Algorithm {
    /// [`Schedule::ring_allreduce`].
    RingAllreduce,
    /// [`Schedule::tree_allreduce`].
    TreeAllreduce,
    /// [`Schedule::binomial_bcast`].
    BinomialBcast,
    /// [`Schedule::pairwise_alltoall`].
    PairwiseAlltoall,
}

impl Algorithm {
    fn build(self, nodes: usize, payload: usize) -> Schedule {
        match self {
            Algorithm::RingAllreduce => Schedule::ring_allreduce(nodes, payload),
            Algorithm::TreeAllreduce => Schedule::tree_allreduce(nodes, payload),
            Algorithm::BinomialBcast => Schedule::binomial_bcast(nodes, payload),
            Algorithm::PairwiseAlltoall => Schedule::pairwise_alltoall(nodes, payload),
        }
    }
}

/// Schedule-cache hit/miss totals since process start. Process-global (the
/// cache outlives campaign points), so they are surfaced through
/// `repro --timings` rather than the per-point telemetry journal — a
/// point's journal must not depend on which sweep point ran first.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that compiled (and proved) a new schedule.
    pub misses: u64,
}

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Schedule-cache totals for this process.
pub fn cache_stats() -> CacheStats {
    CacheStats {
        hits: CACHE_HITS.load(Ordering::Relaxed),
        misses: CACHE_MISSES.load(Ordering::Relaxed),
    }
}

#[allow(clippy::type_complexity)]
fn cache() -> &'static Mutex<HashMap<(Algorithm, usize, usize), Arc<Schedule>>> {
    static CACHE: OnceLock<Mutex<HashMap<(Algorithm, usize, usize), Arc<Schedule>>>> =
        OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A compiled, semantics-proved schedule from the process-wide cache.
///
/// Schedules and their [`Schedule::verify_semantics`] proofs are pure
/// functions of `(algorithm, nodes, payload)` (chunking is derived from
/// them), so campaign sweeps that vary only background load, DVFS policy or
/// fabric preset stop recompiling and re-proving identical schedules at
/// every point. Keys follow the `core::store` content-addressing
/// discipline: the full input tuple is the key, and a cached entry is
/// returned only for an exact match. The first build of a key runs
/// `verify_semantics` and panics on a prover rejection — a builder bug, not
/// a runtime condition.
pub fn cached(algorithm: Algorithm, nodes: usize, payload: usize) -> Arc<Schedule> {
    if FORCE_SCHEDULE_REBUILD.load(Ordering::Relaxed) {
        let s = algorithm.build(nodes, payload);
        s.verify_semantics().expect("builder schedules always prove");
        return Arc::new(s);
    }
    let key = (algorithm, nodes, payload);
    if let Some(s) = cache().lock().expect("cache lock").get(&key) {
        CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(s);
    }
    // Build outside the lock: compilation can be expensive and must not
    // serialize unrelated campaign workers.
    let s = algorithm.build(nodes, payload);
    s.verify_semantics().expect("builder schedules always prove");
    let s = Arc::new(s);
    let mut map = cache().lock().expect("cache lock");
    let entry = map.entry(key).or_insert_with(|| Arc::clone(&s));
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    Arc::clone(entry)
}

/// What the schedule computes; fixes the semantic pre/post-conditions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollectiveOp {
    /// Every rank ends with the reduction of every rank's contribution.
    Allreduce,
    /// Every rank ends with `root`'s payload.
    Bcast {
        /// Originating rank.
        root: usize,
    },
    /// Every rank ends with one distinct block from every other rank.
    Alltoall,
}

/// One point-to-point message inside a round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleMsg {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload bytes.
    pub size: usize,
    /// Which logical chunk of the collective payload this message carries.
    pub chunk: u32,
    /// `true`: the receiver reduces the chunk into its own copy
    /// (contribution sets union); `false`: the receiver replaces its copy.
    pub combine: bool,
}

/// A set of messages that proceed concurrently.
#[derive(Clone, Debug, Default)]
pub struct Round {
    /// The round's messages; order is irrelevant to semantics and (by the
    /// interleave-independence invariant) to timing.
    pub msgs: Vec<ScheduleMsg>,
}

/// A compiled collective: rounds of point-to-point messages.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// The operation the schedule claims to compute.
    pub op: CollectiveOp,
    /// Number of participating ranks.
    pub nodes: usize,
    /// Collective payload in bytes (per-pair block size for alltoall).
    pub payload: usize,
    /// The rounds, executed with a barrier between consecutive rounds.
    pub rounds: Vec<Round>,
}

fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

fn log2_ceil(n: usize) -> u32 {
    assert!(n >= 1);
    usize::BITS - (n - 1).leading_zeros()
}

impl Schedule {
    /// Ring allreduce: reduce-scatter then allgather over the logical ring
    /// `i → (i+1) mod n`, `2(n−1)` rounds of `⌈payload/n⌉`-byte chunks.
    pub fn ring_allreduce(nodes: usize, payload: usize) -> Schedule {
        assert!(nodes >= 2, "a collective needs at least two ranks");
        let chunk_size = ceil_div(payload, nodes);
        let mut rounds = Vec::with_capacity(2 * (nodes - 1));
        // Reduce-scatter: round r, rank i sends chunk (i − r) mod n to its
        // ring successor, which reduces it into its own copy.
        for r in 0..nodes - 1 {
            let msgs = (0..nodes)
                .map(|i| ScheduleMsg {
                    src: i,
                    dst: (i + 1) % nodes,
                    size: chunk_size,
                    chunk: ((i + nodes - r % nodes) % nodes) as u32,
                    combine: true,
                })
                .collect();
            rounds.push(Round { msgs });
        }
        // Allgather: rank i now owns the fully-reduced chunk (i+1) mod n;
        // circulate completed chunks, round r forwarding (i + 1 − r) mod n.
        for r in 0..nodes - 1 {
            let msgs = (0..nodes)
                .map(|i| ScheduleMsg {
                    src: i,
                    dst: (i + 1) % nodes,
                    size: chunk_size,
                    chunk: ((i + 1 + nodes - r % nodes) % nodes) as u32,
                    combine: false,
                })
                .collect();
            rounds.push(Round { msgs });
        }
        Schedule {
            op: CollectiveOp::Allreduce,
            nodes,
            payload,
            rounds,
        }
    }

    /// Binomial-tree allreduce: reduce to rank 0, then broadcast back down;
    /// `2⌈log₂n⌉` rounds, every message carries the full payload.
    pub fn tree_allreduce(nodes: usize, payload: usize) -> Schedule {
        assert!(nodes >= 2, "a collective needs at least two ranks");
        let levels = log2_ceil(nodes);
        let mut rounds = Vec::with_capacity(2 * levels as usize);
        // Reduce: mirror of the broadcast, deepest level first.
        for k in (0..levels).rev() {
            let span = 1usize << k;
            let msgs = (0..span)
                .filter(|r| r + span < nodes)
                .map(|r| ScheduleMsg {
                    src: r + span,
                    dst: r,
                    size: payload,
                    chunk: 0,
                    combine: true,
                })
                .collect();
            rounds.push(Round { msgs });
        }
        rounds.extend(bcast_rounds(nodes, payload, 0));
        Schedule {
            op: CollectiveOp::Allreduce,
            nodes,
            payload,
            rounds,
        }
    }

    /// Binomial broadcast from rank 0: `⌈log₂n⌉` rounds, round `k` doubling
    /// the set of ranks holding the payload.
    pub fn binomial_bcast(nodes: usize, payload: usize) -> Schedule {
        assert!(nodes >= 2, "a collective needs at least two ranks");
        Schedule {
            op: CollectiveOp::Bcast { root: 0 },
            nodes,
            payload,
            rounds: bcast_rounds(nodes, payload, 0),
        }
    }

    /// Pairwise-exchange alltoall: `n−1` rounds, round `r` sending rank
    /// `i`'s block to `(i+r) mod n`; `block` bytes per (src, dst) pair.
    pub fn pairwise_alltoall(nodes: usize, block: usize) -> Schedule {
        assert!(nodes >= 2, "a collective needs at least two ranks");
        let rounds = (1..nodes)
            .map(|r| Round {
                msgs: (0..nodes)
                    .map(|i| ScheduleMsg {
                        src: i,
                        dst: (i + r) % nodes,
                        size: block,
                        chunk: i as u32,
                        combine: false,
                    })
                    .collect(),
            })
            .collect();
        Schedule {
            op: CollectiveOp::Alltoall,
            nodes,
            payload: block,
            rounds,
        }
    }

    /// Total point-to-point messages across all rounds.
    pub fn total_messages(&self) -> usize {
        self.rounds.iter().map(|r| r.msgs.len()).sum()
    }

    /// Prove the schedule computes its [`CollectiveOp`] by dataflow alone:
    /// track, per (rank, chunk), the set of original contributions the
    /// rank's copy reflects. Messages within a round read the senders'
    /// *pre-round* state (they are concurrent). Returns a description of
    /// the first violated condition.
    pub fn verify_semantics(&self) -> Result<(), String> {
        let n = self.nodes;
        // Contribution sets as rank bitmasks: bit `r` set ⇔ original rank
        // r's contribution is merged into this (rank, chunk) copy. The
        // prover's inner loop is word-parallel OR/compare, and each round
        // snapshots only the sets its messages actually read — the naïve
        // whole-state clone made 1k-rank proofs take hours.
        let words = n.div_ceil(64);
        let singleton = |r: usize| {
            let mut b = vec![0u64; words];
            b[r / 64] |= 1u64 << (r % 64);
            b
        };
        let to_set = |b: &[u64]| -> BTreeSet<usize> {
            (0..n).filter(|&r| b[r / 64] >> (r % 64) & 1 == 1).collect()
        };
        // state[rank][chunk] = contribution bitmask.
        let mut state: Vec<HashMap<u32, Vec<u64>>> = vec![HashMap::new(); n];
        match self.op {
            CollectiveOp::Allreduce => {
                // Every rank contributes to every chunk of the payload.
                let chunks: BTreeSet<u32> = self
                    .rounds
                    .iter()
                    .flat_map(|r| r.msgs.iter().map(|m| m.chunk))
                    .collect();
                for (rank, st) in state.iter_mut().enumerate() {
                    for &c in &chunks {
                        st.insert(c, singleton(rank));
                    }
                }
            }
            CollectiveOp::Bcast { root } => {
                state[root].insert(0, singleton(root));
            }
            CollectiveOp::Alltoall => {
                for (rank, st) in state.iter_mut().enumerate() {
                    st.insert(rank as u32, singleton(rank));
                }
            }
        }
        let mut reads: Vec<Vec<u64>> = Vec::new();
        for (ri, round) in self.rounds.iter().enumerate() {
            // Concurrent semantics: all sends read pre-round state. Snapshot
            // exactly the sets this round's messages send, then apply.
            reads.clear();
            for m in &round.msgs {
                if m.src >= n || m.dst >= n || m.src == m.dst {
                    return Err(format!("round {}: invalid endpoints {:?}", ri, m));
                }
                let Some(held) = state[m.src]
                    .get(&m.chunk)
                    .filter(|s| s.iter().any(|&w| w != 0))
                else {
                    return Err(format!(
                        "round {}: rank {} sends chunk {} it does not hold",
                        ri, m.src, m.chunk
                    ));
                };
                reads.push(held.clone());
            }
            for (m, held) in round.msgs.iter().zip(reads.drain(..)) {
                if m.combine {
                    let dst = state[m.dst]
                        .entry(m.chunk)
                        .or_insert_with(|| vec![0u64; words]);
                    for (d, s) in dst.iter_mut().zip(&held) {
                        *d |= s;
                    }
                } else {
                    state[m.dst].insert(m.chunk, held);
                }
            }
        }
        let full: Vec<u64> = {
            let mut b = vec![0u64; words];
            for (i, w) in b.iter_mut().enumerate() {
                let bits = (n - i * 64).min(64);
                *w = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
            }
            b
        };
        match self.op {
            CollectiveOp::Allreduce => {
                let chunks: BTreeSet<u32> = state[0].keys().copied().collect();
                for (rank, st) in state.iter().enumerate() {
                    for &c in &chunks {
                        if st.get(&c) != Some(&full) {
                            return Err(format!(
                                "rank {} chunk {} is not fully reduced: {:?}",
                                rank,
                                c,
                                st.get(&c).map(|b| to_set(b))
                            ));
                        }
                    }
                }
            }
            CollectiveOp::Bcast { root } => {
                let want = singleton(root);
                for (rank, st) in state.iter().enumerate() {
                    if st.get(&0) != Some(&want) {
                        return Err(format!("rank {} did not receive the broadcast", rank));
                    }
                }
            }
            CollectiveOp::Alltoall => {
                for (rank, st) in state.iter().enumerate() {
                    for s in 0..n {
                        if st.get(&(s as u32)) != Some(&singleton(s)) {
                            return Err(format!(
                                "rank {} is missing the block from rank {}",
                                rank, s
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Bytes each fabric link is expected to carry for this schedule
    /// (payload only; control traffic is latency-modelled, not byte-
    /// accounted). Indexed like [`Fabric::links`].
    pub fn link_bytes(&self, fabric: &Fabric) -> Vec<f64> {
        let mut bytes = vec![0.0f64; fabric.links().len()];
        for round in &self.rounds {
            for m in &round.msgs {
                for &l in fabric.route(m.src, m.dst) {
                    bytes[l as usize] += (m.size as f64).max(1.0);
                }
            }
        }
        bytes
    }

    /// Relabel ranks through the permutation `perm` (rank `i` becomes
    /// `perm[i]`). On a symmetric fabric the permuted schedule must complete
    /// in exactly the same simulated time — the rank-permutation invariant.
    pub fn permute_ranks(&self, perm: &[usize]) -> Schedule {
        assert_eq!(perm.len(), self.nodes);
        let mut seen = vec![false; self.nodes];
        for &p in perm {
            assert!(p < self.nodes && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let op = match self.op {
            CollectiveOp::Bcast { root } => CollectiveOp::Bcast { root: perm[root] },
            other => other,
        };
        let rounds = self
            .rounds
            .iter()
            .map(|r| Round {
                msgs: r
                    .msgs
                    .iter()
                    .map(|m| ScheduleMsg {
                        src: perm[m.src],
                        dst: perm[m.dst],
                        size: m.size,
                        // Alltoall chunk identity is the owning rank: relabel.
                        chunk: if self.op == CollectiveOp::Alltoall {
                            perm[m.chunk as usize] as u32
                        } else {
                            m.chunk
                        },
                        combine: m.combine,
                    })
                    .collect(),
            })
            .collect();
        Schedule {
            op,
            nodes: self.nodes,
            payload: self.payload,
            rounds,
        }
    }
}

fn bcast_rounds(nodes: usize, payload: usize, root: usize) -> Vec<Round> {
    assert_eq!(root, 0, "broadcast schedules are built root-0 then permuted");
    let levels = log2_ceil(nodes);
    (0..levels)
        .map(|k| {
            let span = 1usize << k;
            Round {
                msgs: (0..span)
                    .filter(|r| r + span < nodes)
                    .map(|r| ScheduleMsg {
                        src: r,
                        dst: r + span,
                        size: payload,
                        chunk: 0,
                        combine: false,
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Execute a schedule on the cluster: per round, post every receive, then
/// every send, then drive the engine until the round's requests complete.
/// Returns the simulated time the whole collective took.
///
/// `mtag_base + round` tags each round's messages; `buffer_base +
/// (src·nodes + dst)` keys the registration cache per pair, so a pair's
/// first rendezvous pays registration and later rounds run warm — the
/// recycled-buffer behaviour of real collectives.
pub fn run(
    cluster: &mut Cluster,
    schedule: &Schedule,
    mtag_base: u32,
    buffer_base: u64,
) -> Result<SimTime, ClusterError> {
    run_ordered(cluster, schedule, mtag_base, buffer_base, None)
}

/// [`run`], but with the *posting order* of each round's messages shuffled
/// by `shuffle_seed` when given. Timing must be independent of this order
/// (the interleave-independence invariant); `simcheck` exercises it.
pub fn run_ordered(
    cluster: &mut Cluster,
    schedule: &Schedule,
    mtag_base: u32,
    buffer_base: u64,
    shuffle_seed: Option<u64>,
) -> Result<SimTime, ClusterError> {
    assert_eq!(
        cluster.nodes(),
        schedule.nodes,
        "schedule rank count must match the cluster"
    );
    let start = cluster.engine.now();
    let nodes = schedule.nodes as u64;
    for (ri, round) in schedule.rounds.iter().enumerate() {
        let mut order: Vec<usize> = (0..round.msgs.len()).collect();
        if let Some(seed) = shuffle_seed {
            let mut rng = Pcg32::new(seed, ri as u64);
            // Fisher–Yates over the posting order.
            for i in (1..order.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
        }
        let mtag = mtag_base + ri as u32;
        let n = round.msgs.len();
        if n == 0 {
            continue;
        }
        let mut reqs: Vec<(ReqId, ReqId)> = Vec::with_capacity(n);
        // Pre-post every receive of the round, then every send: rendezvous
        // handshakes find their receive already matched.
        for &mi in &order {
            let m = &round.msgs[mi];
            let r = cluster.irecv_from(m.dst, m.src, mtag);
            reqs.push((r, ReqId(0)));
        }
        for (k, &mi) in order.iter().enumerate() {
            let m = &round.msgs[mi];
            let buffer = buffer_base + m.src as u64 * nodes + m.dst as u64;
            let s = cluster.isend_to(m.src, m.dst, m.size, mtag, buffer);
            reqs[k].1 = s;
        }
        // Barrier: the next round's sends depend on this round's data.
        // Event-driven: requests are checked once up front (some complete
        // instantly at posting time), then marked off as their completion
        // events arrive — no O(round × events) rescans of the request list.
        // Request ids allocate sequentially, so this round's occupy the
        // dense ranges [r_base, r_base+n) and [s_base, s_base+n).
        let r_base = reqs[0].0 .0;
        let s_base = reqs[0].1 .0;
        let mut open = 2 * n;
        let mut done = vec![(false, false); n];
        for (k, &(r, s)) in reqs.iter().enumerate() {
            debug_assert_eq!(r.0, r_base + k as u32);
            debug_assert_eq!(s.0, s_base + k as u32);
            if cluster.test_recv(r) {
                done[k].0 = true;
                open -= 1;
            }
            if cluster.test_send(s) {
                done[k].1 = true;
                open -= 1;
            }
        }
        while open > 0 {
            match cluster.try_step()? {
                Some(ClusterEvent::RecvComplete(ReqId(x))) => {
                    if let Some(k) = x.checked_sub(r_base).map(|k| k as usize) {
                        if k < n && !done[k].0 {
                            done[k].0 = true;
                            open -= 1;
                        }
                    }
                }
                Some(ClusterEvent::SendComplete(ReqId(x))) => {
                    if let Some(k) = x.checked_sub(s_base).map(|k| k as usize) {
                        if k < n && !done[k].1 {
                            done[k].1 = true;
                            open -= 1;
                        }
                    }
                }
                Some(ClusterEvent::SendFailed { req, retries }) => {
                    return Err(ClusterError::TransferFailed { send: req, retries });
                }
                Some(_) => {}
                None => {
                    return Err(ClusterError::Dry {
                        pending_sends: cluster.pending_sends(),
                        pending_recvs: cluster.pending_recvs(),
                    });
                }
            }
        }
    }
    Ok(cluster.engine.now() - start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use freq::{Governor, UncorePolicy};
    use topology::fabric::FabricPreset;
    use topology::{henri, tiny2x2, Placement};

    fn all_schedules(nodes: usize, payload: usize) -> Vec<(&'static str, Schedule)> {
        vec![
            ("ring_allreduce", Schedule::ring_allreduce(nodes, payload)),
            ("tree_allreduce", Schedule::tree_allreduce(nodes, payload)),
            ("binomial_bcast", Schedule::binomial_bcast(nodes, payload)),
            ("pairwise_alltoall", Schedule::pairwise_alltoall(nodes, payload)),
        ]
    }

    #[test]
    fn builders_pass_their_own_semantics() {
        for nodes in [2usize, 3, 4, 5, 8, 13, 16] {
            for (name, s) in all_schedules(nodes, 4096) {
                s.verify_semantics()
                    .unwrap_or_else(|e| panic!("{} n={}: {}", name, nodes, e));
            }
        }
    }

    #[test]
    fn round_counts_match_the_textbook() {
        let n = 8;
        assert_eq!(Schedule::ring_allreduce(n, 1024).rounds.len(), 2 * (n - 1));
        assert_eq!(Schedule::tree_allreduce(n, 1024).rounds.len(), 2 * 3);
        assert_eq!(Schedule::binomial_bcast(n, 1024).rounds.len(), 3);
        assert_eq!(Schedule::pairwise_alltoall(n, 1024).rounds.len(), n - 1);
        // Non-power-of-two: ⌈log₂ 5⌉ = 3.
        assert_eq!(Schedule::binomial_bcast(5, 64).rounds.len(), 3);
    }

    #[test]
    fn semantics_checker_rejects_a_dropped_message() {
        let mut s = Schedule::ring_allreduce(4, 4096);
        s.rounds[2].msgs.remove(1);
        assert!(s.verify_semantics().is_err());
        let mut b = Schedule::binomial_bcast(8, 64);
        b.rounds[1].msgs.pop();
        assert!(b.verify_semantics().is_err());
    }

    #[test]
    fn semantics_checker_rejects_chunks_not_held() {
        // Rank 1 forwards the broadcast a round too early (it only receives
        // the payload in round 0 — concurrent reads use pre-round state).
        let mut s = Schedule::binomial_bcast(4, 64);
        s.rounds[0].msgs.push(ScheduleMsg {
            src: 1,
            dst: 3,
            size: 64,
            chunk: 0,
            combine: false,
        });
        assert!(s.verify_semantics().is_err());
    }

    #[test]
    fn permuted_schedules_stay_semantically_valid() {
        let perm = [3usize, 0, 2, 1, 5, 4, 7, 6];
        for (name, s) in all_schedules(8, 2048) {
            let p = s.permute_ranks(&perm);
            p.verify_semantics()
                .unwrap_or_else(|e| panic!("{} permuted: {}", name, e));
        }
    }

    #[test]
    fn eight_rank_collectives_run_on_every_preset() {
        for preset in FabricPreset::ALL {
            let fabric = preset.spec(8).build_for(8);
            let mut c = Cluster::with_fabric(
                &henri(),
                fabric,
                Governor::Userspace(2.3),
                UncorePolicy::Fixed(2.4),
                Placement::fig4_default(),
            );
            let s = Schedule::ring_allreduce(8, 64 * 1024);
            let t = run(&mut c, &s, 100, 0x4000).expect("collective completes");
            assert!(t > SimTime::ZERO);
        }
    }

    #[test]
    fn ring_allreduce_two_ranks_matches_direct_world() {
        // n = 2 ring allreduce is exactly one exchange + one gather round on
        // the paper's direct wire.
        let mut c = Cluster::new(
            &tiny2x2(),
            Governor::Userspace(2.0),
            UncorePolicy::Fixed(2.0),
            Placement::fig4_default(),
        );
        let s = Schedule::ring_allreduce(2, 8192);
        assert_eq!(s.rounds.len(), 2);
        let t = run(&mut c, &s, 7, 0x100).expect("completes");
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn link_bytes_accounts_every_hop() {
        let fabric = FabricPreset::Torus.spec(8).build_for(8);
        let s = Schedule::pairwise_alltoall(8, 1000);
        let per_link = s.link_bytes(&fabric);
        let total: f64 = per_link.iter().sum();
        let hops: usize = s
            .rounds
            .iter()
            .flat_map(|r| r.msgs.iter())
            .map(|m| fabric.route(m.src, m.dst).len())
            .sum();
        assert_eq!(total, hops as f64 * 1000.0);
    }
}
