//! Rank-correlation and error statistics for the prediction-accuracy
//! checks (`repro --validate` gates the counter-driven predictor with
//! these; see DESIGN.md §16).
//!
//! Everything here reduces sums in the input's index order — the
//! determinism contract of the predict subsystem extends into its
//! evaluation.

/// Mean of a sample; 0 when empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Median of a sample via total-order sort; 0 when empty. Even-length
/// samples average the two central elements.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut s = xs.to_vec();
    s.sort_by(f64::total_cmp);
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Absolute relative errors `|pred - truth| / |truth|`, element-wise.
/// Pairs with `truth == 0` are skipped.
pub fn abs_rel_errors(pred: &[f64], truth: &[f64]) -> Vec<f64> {
    pred.iter()
        .zip(truth)
        .filter(|(_, t)| **t != 0.0)
        .map(|(p, t)| ((p - t) / t).abs())
        .collect()
}

/// Fractional ranks of a sample: ties share the average of the positions
/// they span (the standard treatment for rank correlations).
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let r = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = r;
        }
        i = j + 1;
    }
    out
}

/// Pearson correlation; 0 when either side is constant or lengths differ.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let (mx, my) = (mean(xs), mean(ys));
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Spearman rank correlation (Pearson over fractional ranks).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks(xs), &ranks(ys))
}

/// Kendall's tau-a: concordant minus discordant pairs over all pairs.
pub fn kendall(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len();
    if n != ys.len() || n < 2 {
        return 0.0;
    }
    let mut num = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = xs[j] - xs[i];
            let dy = ys[j] - ys[i];
            let s = (dx * dy).signum();
            if s > 0.0 {
                num += 1;
            } else if s < 0.0 {
                num -= 1;
            }
        }
    }
    num as f64 / (n * (n - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(stddev(&[2.0, 2.0, 2.0]) < 1e-12);
    }

    #[test]
    fn rel_errors_skip_zero_truth() {
        let e = abs_rel_errors(&[1.1, 5.0, 2.0], &[1.0, 0.0, 4.0]);
        assert_eq!(e.len(), 2);
        assert!((e[0] - 0.1).abs() < 1e-12);
        assert!((e[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rank_correlations() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &down) + 1.0).abs() < 1e-12);
        assert!((kendall(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((kendall(&xs, &down) + 1.0).abs() < 1e-12);
        // A monotone but nonlinear map keeps rank correlation at 1.
        let exp: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &exp) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tied_ranks_average() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
