//! # simcheck — validation subsystem for the interference simulator
//!
//! The golden-trace suite guards against *regressions* (byte-identity with
//! our own past output); this crate guards against *model drift* — the
//! simulated substrate silently diverging from the first-principles models
//! it claims to implement. Three layers (see `DESIGN.md` §11):
//!
//! * [`oracles`] — closed-form expected values derived independently from
//!   the topology/freq/netsim parameters (eager half-RTT `α + β·size`,
//!   rendezvous threshold crossover, max-min link shares, turbo-table
//!   frequencies, memory-channel saturation), compared against simulator
//!   runs within tight relative tolerances;
//! * [`metamorphic`] — invariants over randomly generated fluid scenarios:
//!   seed determinism, time-translation invariance, resource-permutation
//!   symmetry, contention/size monotonicity and byte conservation under
//!   fault windows;
//! * [`fuzz`] — a differential scenario fuzzer replaying random scripts
//!   under the incremental vs `fluid::reference` solvers and under permuted
//!   flow-insertion orders, shrinking any failure to a minimal script.
//!
//! Everything is deterministic given a seed; `repro --validate` wires the
//! three layers into the campaign engine and exports the outcomes as
//! machine-readable checks.

#![warn(missing_docs)]

pub mod collective;
pub mod fuzz;
pub mod metamorphic;
pub mod oracles;
pub mod scenario;
pub mod stats;

/// One validation verdict: a named quantity, its analytically expected
/// value, the simulated value, and whether the relative error is inside
/// the documented tolerance.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// What was checked (e.g. `"henri: eager t(16384 B)"`).
    pub name: String,
    /// Whether the check passed.
    pub pass: bool,
    /// Analytically expected value.
    pub expected: f64,
    /// Simulated value.
    pub actual: f64,
    /// Observed relative error.
    pub rel_err: f64,
    /// Relative tolerance the check was held to.
    pub tol: f64,
    /// Human-readable evidence.
    pub detail: String,
}

impl Outcome {
    /// Compare `actual` against `expected` within relative tolerance `tol`
    /// (plus a tiny absolute floor so exact-zero expectations work).
    pub fn compare(name: impl Into<String>, expected: f64, actual: f64, tol: f64) -> Outcome {
        let denom = expected.abs().max(1e-30);
        let rel_err = (actual - expected).abs() / denom;
        Outcome {
            name: name.into(),
            pass: rel_err <= tol,
            expected,
            actual,
            rel_err,
            tol,
            detail: format!(
                "expected {:.9e}, simulated {:.9e}, rel err {:.3e} (tol {:.1e})",
                expected, actual, rel_err, tol
            ),
        }
    }

    /// A boolean verdict with no numeric comparison (metamorphic/fuzz
    /// aggregates).
    pub fn bool(name: impl Into<String>, pass: bool, detail: impl Into<String>) -> Outcome {
        Outcome {
            name: name.into(),
            pass,
            expected: 0.0,
            actual: if pass { 0.0 } else { 1.0 },
            rel_err: 0.0,
            tol: 0.0,
            detail: detail.into(),
        }
    }

    /// A bound verdict: passes iff an aggregated worst-case error is at
    /// most `bound`.
    pub fn bound(name: impl Into<String>, worst: f64, bound: f64) -> Outcome {
        Outcome {
            name: name.into(),
            pass: worst <= bound,
            expected: bound,
            actual: worst,
            rel_err: worst,
            tol: bound,
            detail: format!("worst observed error {:.3e} (bound {:.1e})", worst, bound),
        }
    }

    /// An exactness verdict: passes iff the worst observed absolute
    /// deviation is exactly zero (used for table lookups that must match
    /// bit for bit).
    pub fn exact(name: impl Into<String>, worst_abs: f64, detail: impl Into<String>) -> Outcome {
        Outcome {
            name: name.into(),
            pass: worst_abs == 0.0,
            expected: 0.0,
            actual: worst_abs,
            rel_err: worst_abs,
            tol: 0.0,
            detail: detail.into(),
        }
    }
}
