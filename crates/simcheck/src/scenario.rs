//! Random fluid scenarios: a tiny deterministic "topology + traffic script"
//! model replayed directly on [`simcore::FluidNet`].
//!
//! A [`Scenario`] is a list of resource capacities (resource 0 is "the
//! link" — every flow crosses it, which makes conservation accounting
//! exact) plus a time-ordered script of operations. Scripts are generated
//! from a seed, can be transformed (time-shifted, resource-permuted) for
//! metamorphic checks, and replay under either fluid solver for the
//! differential fuzzer. Replays are fully deterministic: same scenario +
//! same solver ⇒ bit-identical outcome.

use std::collections::HashMap;

use simcore::fluid::{self, FluidNet};
use simcore::{Engine, Event, FlowId, FlowSpec, Pcg32, ResourceId, SimTime};

/// One script operation. `Cancel`/`SetFlowCap` refer to the *script index*
/// of the `Start` they target; if that flow already completed (or the index
/// was shrunk away) the operation is a no-op, which keeps scripts valid
/// under shrinking.
#[derive(Clone, Debug)]
pub enum Op {
    /// Start a flow across `path` (resource indices, always containing 0).
    Start {
        /// Resource indices the flow crosses (sorted, deduplicated).
        path: Vec<usize>,
        /// Units to transfer.
        volume: f64,
        /// Max-min weight.
        weight: f64,
        /// Optional rate cap (units/s).
        cap: Option<f64>,
    },
    /// Cancel the flow started by script event `start_ev`.
    Cancel {
        /// Script index of the targeted `Start`.
        start_ev: usize,
    },
    /// Set a resource capacity (capacity 0 models a fault window).
    SetCapacity {
        /// Resource index.
        res: usize,
        /// New capacity (units/s).
        capacity: f64,
    },
    /// Re-cap the flow started by script event `start_ev`.
    SetFlowCap {
        /// Script index of the targeted `Start`.
        start_ev: usize,
        /// New cap, or `None` to uncap.
        cap: Option<f64>,
    },
}

/// A timestamped operation.
#[derive(Clone, Debug)]
pub struct Ev {
    /// Event time in integer picoseconds (ties are allowed and meaningful:
    /// same-instant operations are applied in script order).
    pub t_ps: u64,
    /// The operation.
    pub op: Op,
}

/// Capacities plus script. See module docs.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Per-resource capacities; resource 0 is the common link.
    pub capacities: Vec<f64>,
    /// Time-ordered script (stable order within equal timestamps).
    pub events: Vec<Ev>,
}

/// Generation knobs.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Max number of resources (≥ 2 are always generated).
    pub max_resources: usize,
    /// Max script length.
    pub max_events: usize,
    /// Script horizon in picoseconds.
    pub horizon_ps: u64,
    /// Whether to inject capacity-zero fault windows.
    pub fault_windows: bool,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_resources: 5,
            max_events: 14,
            horizon_ps: 2_000_000, // 2 µs
            fault_windows: true,
        }
    }
}

impl Scenario {
    /// Generate a random scenario. Times are drawn from a coarse grid so
    /// same-instant batches occur often (they exercise the insertion-order
    /// sensitivity the differential fuzzer targets). `Cancel`/`SetFlowCap`
    /// always target a `Start` with a strictly earlier timestamp, so
    /// permuting same-instant `Start`s never changes semantics.
    pub fn generate(seed: u64, cfg: &GenConfig) -> Scenario {
        let mut rng = Pcg32::new(seed, 0x5caf_f01d);
        let n_res = 2 + rng.below(cfg.max_resources.max(2) as u32 - 1) as usize;
        let capacities: Vec<f64> = (0..n_res).map(|_| 1.0 + 99.0 * rng.next_f64()).collect();
        let grid = 16u64;
        let step = cfg.horizon_ps / grid;
        let n_ev = 3 + rng.below(cfg.max_events.max(4) as u32 - 3) as usize;
        // (time, op) in generation order; sorted stably afterwards so ties
        // keep generation order (Starts before the ops that reference them).
        let mut events: Vec<Ev> = Vec::new();
        for _ in 0..n_ev {
            let t_ps = (1 + rng.below(grid as u32 - 1) as u64) * step;
            let starts_before: Vec<usize> = events
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e.op, Op::Start { .. }) && e.t_ps < t_ps)
                .map(|(i, _)| i)
                .collect();
            let roll = rng.next_f64();
            let start_op = |rng: &mut Pcg32| {
                let mut path = vec![0usize];
                for r in 1..n_res {
                    if rng.next_f64() < 0.4 {
                        path.push(r);
                    }
                }
                Op::Start {
                    path,
                    volume: 1.0 + 400.0 * rng.next_f64(),
                    weight: 0.25 + 3.75 * rng.next_f64(),
                    cap: (rng.next_f64() < 0.3).then(|| 0.5 + 20.0 * rng.next_f64()),
                }
            };
            let op = if roll < 0.55 {
                start_op(&mut rng)
            } else if roll < 0.70 {
                if starts_before.is_empty() {
                    start_op(&mut rng)
                } else {
                    Op::Cancel {
                        start_ev: starts_before[rng.below(starts_before.len() as u32) as usize],
                    }
                }
            } else if roll < 0.85 {
                let res = rng.below(n_res as u32) as usize;
                if cfg.fault_windows && rng.next_f64() < 0.35 {
                    // A fault window: capacity to zero now, restored later
                    // (always restored, so every replay drains).
                    let t_end = t_ps + (1 + rng.below(4) as u64) * step;
                    events.push(Ev {
                        t_ps,
                        op: Op::SetCapacity { res, capacity: 0.0 },
                    });
                    events.push(Ev {
                        t_ps: t_end,
                        op: Op::SetCapacity {
                            res,
                            capacity: 1.0 + 99.0 * rng.next_f64(),
                        },
                    });
                    continue;
                }
                Op::SetCapacity {
                    res,
                    capacity: 0.5 + 99.5 * rng.next_f64(),
                }
            } else if starts_before.is_empty() {
                start_op(&mut rng)
            } else {
                Op::SetFlowCap {
                    start_ev: starts_before[rng.below(starts_before.len() as u32) as usize],
                    cap: (rng.next_f64() < 0.7).then(|| 0.5 + 20.0 * rng.next_f64()),
                }
            };
            events.push(Ev { t_ps, op });
        }
        // Stable sort: equal timestamps keep generation order, so targets
        // of Cancel/SetFlowCap stay resolvable by script index after the
        // indices are rewritten to sorted positions.
        let mut order: Vec<usize> = (0..events.len()).collect();
        order.sort_by_key(|&i| (events[i].t_ps, i));
        let mut new_index = vec![0usize; events.len()];
        for (new, &old) in order.iter().enumerate() {
            new_index[old] = new;
        }
        let mut sorted: Vec<Ev> = order.iter().map(|&i| events[i].clone()).collect();
        for ev in &mut sorted {
            match &mut ev.op {
                Op::Cancel { start_ev } | Op::SetFlowCap { start_ev, .. } => {
                    *start_ev = new_index[*start_ev];
                }
                _ => {}
            }
        }
        Scenario {
            capacities,
            events: sorted,
        }
    }

    /// Shift every event time by `delta_ps` (time-translation metamorphic
    /// transform).
    pub fn time_shifted(&self, delta_ps: u64) -> Scenario {
        let mut s = self.clone();
        for ev in &mut s.events {
            ev.t_ps += delta_ps;
        }
        s
    }

    /// Relabel resources: `perm[old] = new`. Capacities move with their
    /// resource; paths are remapped (and re-sorted — path order is
    /// semantically irrelevant).
    pub fn resource_permuted(&self, perm: &[usize]) -> Scenario {
        assert_eq!(perm.len(), self.capacities.len());
        let mut capacities = vec![0.0; self.capacities.len()];
        for (old, &new) in perm.iter().enumerate() {
            capacities[new] = self.capacities[old];
        }
        let mut s = Scenario {
            capacities,
            events: self.events.clone(),
        };
        for ev in &mut s.events {
            match &mut ev.op {
                Op::Start { path, .. } => {
                    for r in path.iter_mut() {
                        *r = perm[*r];
                    }
                    path.sort_unstable();
                }
                Op::SetCapacity { res, .. } => *res = perm[*res],
                _ => {}
            }
        }
        s
    }

    /// Render as a compact one-op-per-line script (shrunk-failure reports).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.capacities.iter().enumerate() {
            out.push_str(&format!("res r{} cap {:.6}\n", i, c));
        }
        for (i, ev) in self.events.iter().enumerate() {
            let t_ns = ev.t_ps as f64 / 1e3;
            match &ev.op {
                Op::Start {
                    path,
                    volume,
                    weight,
                    cap,
                } => {
                    let p: Vec<String> = path.iter().map(|r| format!("r{}", r)).collect();
                    out.push_str(&format!(
                        "[{}] @{:.3}ns start path=[{}] vol={:.6} w={:.6} cap={}\n",
                        i,
                        t_ns,
                        p.join(","),
                        volume,
                        weight,
                        cap.map_or("none".to_string(), |c| format!("{:.6}", c)),
                    ));
                }
                Op::Cancel { start_ev } => {
                    out.push_str(&format!("[{}] @{:.3}ns cancel [{}]\n", i, t_ns, start_ev));
                }
                Op::SetCapacity { res, capacity } => {
                    out.push_str(&format!(
                        "[{}] @{:.3}ns setcap r{} = {:.6}\n",
                        i, t_ns, res, capacity
                    ));
                }
                Op::SetFlowCap { start_ev, cap } => {
                    out.push_str(&format!(
                        "[{}] @{:.3}ns flowcap [{}] = {}\n",
                        i,
                        t_ns,
                        start_ev,
                        cap.map_or("none".to_string(), |c| format!("{:.6}", c)),
                    ));
                }
            }
        }
        out
    }
}

/// Which fluid solver drives a replay.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Solver {
    /// The production incremental solver ([`FluidNet::reallocate`]).
    Incremental,
    /// The from-scratch reference solver ([`fluid::reference`]).
    Reference,
}

fn realloc(net: &mut FluidNet, solver: Solver) {
    match solver {
        Solver::Incremental => {
            net.reallocate();
        }
        Solver::Reference => {
            fluid::reference::reallocate(net);
        }
    }
}

/// Everything a replay produces, in deterministic order.
#[derive(Clone, Debug)]
pub struct Replay {
    /// `(start script index, completion time in seconds)` in completion
    /// order.
    pub completions: Vec<(usize, f64)>,
    /// After each distinct script timestamp: the live flows' rates as
    /// `(start script index, rate)`, sorted by script index.
    pub snapshots: Vec<(u64, Vec<(usize, f64)>)>,
    /// Per-resource delivered units (integrated by the solver).
    pub delivered: Vec<f64>,
    /// Per-resource injected units: Σ volume over started flows crossing
    /// the resource.
    pub injected: Vec<f64>,
    /// Per-resource leftover units: remaining volume of cancelled and
    /// still-live flows crossing the resource at the end of the replay.
    pub leftover: Vec<f64>,
    /// True if the replay hit its progress guard (a bug in itself).
    pub stalled: bool,
}

/// Iteration guard: far above anything a generated script can need.
const MAX_STEPS: usize = 100_000;

/// Replay a scenario under a solver. Flows are tagged with their script
/// index, so completions and snapshots are directly comparable across
/// replays of transformed scenarios.
pub fn replay(sc: &Scenario, solver: Solver) -> Replay {
    let mut net = FluidNet::new();
    let rids: Vec<ResourceId> = sc
        .capacities
        .iter()
        .enumerate()
        .map(|(i, &c)| net.add_resource(format!("r{}", i), c))
        .collect();
    let n_res = rids.len();
    let mut rep = Replay {
        completions: Vec::new(),
        snapshots: Vec::new(),
        delivered: vec![0.0; n_res],
        injected: vec![0.0; n_res],
        leftover: vec![0.0; n_res],
        stalled: false,
    };
    // script index → (FlowId, path) for live flows.
    let mut live: HashMap<usize, (FlowId, Vec<usize>)> = HashMap::new();
    let mut now = 0.0f64;
    let mut steps = 0usize;

    let advance = |net: &mut FluidNet,
                   rep: &mut Replay,
                   live: &mut HashMap<usize, (FlowId, Vec<usize>)>,
                   now: &mut f64,
                   steps: &mut usize,
                   target: Option<f64>| {
        loop {
            *steps += 1;
            if *steps > MAX_STEPS {
                rep.stalled = true;
                return;
            }
            realloc(net, solver);
            let gap = target.map(|t| t - *now);
            if let Some(g) = gap {
                if g <= 0.0 {
                    return;
                }
            }
            if target.is_none() && net.active_flows() == 0 {
                return;
            }
            let dt = match (net.time_to_next_completion(), gap) {
                (Some(d), Some(g)) if d <= g => d,
                (Some(d), None) => d,
                (_, Some(g)) => g,
                (None, None) => {
                    // Open-ended drain but every remaining flow has rate 0:
                    // the script left a capacity at zero — a generator bug.
                    rep.stalled = true;
                    return;
                }
            };
            let done = net.elapse(dt);
            *now += dt;
            for r in done {
                let ev = r.tag as usize;
                live.remove(&ev);
                rep.completions.push((ev, *now));
            }
            if let Some(g) = gap {
                if dt >= g {
                    return;
                }
            }
        }
    };

    let mut i = 0usize;
    while i < sc.events.len() {
        let t_ps = sc.events[i].t_ps;
        let t_s = t_ps as f64 * 1e-12;
        advance(&mut net, &mut rep, &mut live, &mut now, &mut steps, Some(t_s));
        now = t_s;
        while i < sc.events.len() && sc.events[i].t_ps == t_ps {
            match &sc.events[i].op {
                Op::Start {
                    path,
                    volume,
                    weight,
                    cap,
                } => {
                    let id = net.start_flow(FlowSpec {
                        path: path.iter().map(|&r| rids[r]).collect(),
                        volume: *volume,
                        weight: *weight,
                        cap: *cap,
                        tag: i as u64,
                    });
                    for &r in path {
                        rep.injected[r] += volume;
                    }
                    live.insert(i, (id, path.clone()));
                }
                Op::Cancel { start_ev } => {
                    if let Some((id, path)) = live.remove(start_ev) {
                        if let Some(r) = net.cancel_flow(id) {
                            for &ri in &path {
                                rep.leftover[ri] += r.remaining;
                            }
                        }
                    }
                }
                Op::SetCapacity { res, capacity } => {
                    net.set_capacity(rids[*res], *capacity);
                }
                Op::SetFlowCap { start_ev, cap } => {
                    if let Some((id, _)) = live.get(start_ev) {
                        net.set_flow_cap(*id, *cap);
                    }
                }
            }
            i += 1;
        }
        realloc(&mut net, solver);
        let mut snap: Vec<(usize, f64)> = live
            .iter()
            .map(|(&ev, &(id, _))| (ev, net.flow_rate(id).expect("live flow")))
            .collect();
        snap.sort_unstable_by_key(|&(ev, _)| ev);
        rep.snapshots.push((t_ps, snap));
    }
    // Drain to quiescence.
    advance(&mut net, &mut rep, &mut live, &mut now, &mut steps, None);
    for (i, &rid) in rids.iter().enumerate() {
        rep.delivered[i] = net.delivered(rid);
    }
    // Whatever is still live after the drain (only possible when stalled)
    // counts as leftover.
    for (tag, remaining, _) in net.flow_snapshots() {
        if let Some((_, path)) = live.get(&(tag as usize)) {
            for &ri in path {
                rep.leftover[ri] += remaining;
            }
        }
    }
    rep
}

/// Which timer queue backs an engine-level replay.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueKind {
    /// The production hierarchical timing wheel.
    Wheel,
    /// The retained `BinaryHeap` + tombstone reference ([`simcore::queue::HeapQueue`]).
    HeapReference,
}

/// Everything an engine-level replay produces, in delivery order.
///
/// Unlike [`Replay`] (which drives `FluidNet` directly), this goes through
/// a real [`Engine`]: every script op is scheduled as a timer, flow
/// completions arrive as engine events, and extra short-lived "echo" timers
/// are inserted and cancelled along the way to generate tombstone traffic.
/// Two replays differing only in [`QueueKind`] must match **exactly** —
/// the event stream is the simulation.
#[derive(Clone, Debug)]
pub struct EngineReplay {
    /// `(time_ps, kind, tag)` for every delivered event, in delivery order;
    /// kind 0 = timer, 1 = flow completion.
    pub events: Vec<(u64, u8, u64)>,
    /// Per-resource delivered units at quiescence (bit-compared).
    pub delivered: Vec<f64>,
    /// True if the engine wedged (reported as a failure by the fuzzer).
    pub stalled: bool,
}

/// Tag namespaces for engine-replay timers: script ops and echo churn.
/// Flow tags are bare script indices, far below either base.
const TAG_SCRIPT: u64 = 1 << 32;
const TAG_ECHO: u64 = 1 << 33;

/// Replay a scenario through a real [`Engine`] on the chosen timer queue.
///
/// Each script event becomes a timer at its timestamp (same-instant ops
/// fire in insertion order — script order). On every script timer the op is
/// applied and an echo timer is scheduled a pseudo-random (but
/// script-derived, hence deterministic) delay ahead; the previous echo, if
/// still pending, is cancelled first. Echoes both fire and get cancelled
/// across a run, exercising lazy tombstone consumption, slot cascades and
/// staged-region cancellation in the wheel against the heap's eager order.
pub fn replay_engine(sc: &Scenario, kind: QueueKind) -> EngineReplay {
    let mut eng = match kind {
        QueueKind::Wheel => Engine::new(),
        QueueKind::HeapReference => Engine::with_heap_queue(),
    };
    let rids: Vec<ResourceId> = sc
        .capacities
        .iter()
        .enumerate()
        .map(|(i, &c)| eng.add_resource(format!("r{}", i), c))
        .collect();
    for (i, ev) in sc.events.iter().enumerate() {
        eng.at(SimTime(ev.t_ps), TAG_SCRIPT + i as u64);
    }
    let mut rep = EngineReplay {
        events: Vec::new(),
        delivered: Vec::new(),
        stalled: false,
    };
    let mut live: HashMap<usize, FlowId> = HashMap::new();
    let mut last_echo: Option<simcore::TimerId> = None;
    let events = sc.events.clone();
    let result = eng.try_run(|eng, event| {
        match &event {
            Event::Timer { tag } if *tag >= TAG_SCRIPT && *tag < TAG_ECHO => {
                let i = (*tag - TAG_SCRIPT) as usize;
                match &events[i].op {
                    Op::Start {
                        path,
                        volume,
                        weight,
                        cap,
                    } => {
                        let id = eng.start_flow(FlowSpec {
                            path: path.iter().map(|&r| rids[r]).collect(),
                            volume: *volume,
                            weight: *weight,
                            cap: *cap,
                            tag: i as u64,
                        });
                        live.insert(i, id);
                    }
                    Op::Cancel { start_ev } => {
                        if let Some(id) = live.remove(start_ev) {
                            eng.cancel_flow(id);
                        }
                    }
                    Op::SetCapacity { res, capacity } => {
                        eng.set_capacity(rids[*res], *capacity);
                    }
                    Op::SetFlowCap { start_ev, cap } => {
                        if let Some(id) = live.get(start_ev) {
                            eng.set_flow_cap(*id, *cap);
                        }
                    }
                }
                // Echo churn: cancel the previous echo (a tombstone if it
                // has not fired — cancel_timer is a no-op on consumed ids),
                // then schedule a fresh one at a script-derived offset.
                if let Some(id) = last_echo.take() {
                    eng.cancel_timer(id);
                }
                let delay = 1 + (i as u64).wrapping_mul(0x9e37_79b9) % 200_000;
                last_echo = Some(eng.after(SimTime(delay), TAG_ECHO + i as u64));
            }
            Event::Timer { .. } => {} // an echo survived to fire
            Event::Flow { tag, .. } => {
                live.remove(&(*tag as usize));
            }
        }
        rep.events.push((
            eng.now().0,
            matches!(event, Event::Flow { .. }) as u8,
            event.tag(),
        ));
    });
    rep.stalled = result.is_err();
    rep.delivered = rids.iter().map(|&r| eng.delivered(r)).collect();
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_scenarios_replay_cleanly() {
        for seed in 0..40u64 {
            let sc = Scenario::generate(seed, &GenConfig::default());
            let r = replay(&sc, Solver::Incremental);
            assert!(!r.stalled, "seed {} stalled:\n{}", seed, sc.render());
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let sc = Scenario::generate(7, &GenConfig::default());
        let a = replay(&sc, Solver::Incremental);
        let b = replay(&sc, Solver::Incremental);
        assert_eq!(a.completions.len(), b.completions.len());
        for (x, y) in a.completions.iter().zip(&b.completions) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1.to_bits(), y.1.to_bits());
        }
    }

    #[test]
    fn render_mentions_every_event() {
        let sc = Scenario::generate(3, &GenConfig::default());
        let text = sc.render();
        assert_eq!(
            text.lines().count(),
            sc.capacities.len() + sc.events.len(),
            "{}",
            text
        );
    }
}
