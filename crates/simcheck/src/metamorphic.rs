//! Metamorphic invariant checks over randomly generated fluid scenarios.
//!
//! Each invariant states a relation between a scenario's replay and the
//! replay of a *transformed* scenario (or of itself): rerunning cannot
//! change anything, shifting all times shifts all completions, relabelling
//! resources relabels the outcome, more contention never raises a rate,
//! more volume never finishes earlier, and bytes are conserved even across
//! capacity-zero fault windows. These hold for weighted max-min fairness by
//! construction — a violation is a solver bug, not a tolerance issue.
//!
//! Replays are pure f64 programs with no time quantisation, so tolerances
//! only absorb summation-order effects (≈ 1e-15 relative per operation):
//! [`TOL_META`] is comfortably above that and far below any real defect.

use simcore::{FlowSpec, Pcg32, SplitMix64};

use crate::scenario::{replay, GenConfig, Replay, Scenario, Solver};
use crate::Outcome;

/// Relative tolerance for metamorphic comparisons (see module docs).
pub const TOL_META: f64 = 1e-9;

/// The six invariants.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Invariant {
    /// Same seed, same replay — bit for bit.
    SeedDeterminism,
    /// Shifting every script time by Δ shifts every completion by Δ.
    TimeTranslation,
    /// Permuting resource labels permutes the outcome.
    PermutationSymmetry,
    /// Adding a contending flow never raises an existing flow's rate.
    ContentionMonotonicity,
    /// Growing a flow's volume never completes it earlier.
    SizeMonotonicity,
    /// Injected = delivered + leftover on the common link, faults included.
    Conservation,
}

impl Invariant {
    /// Every invariant, in display order.
    pub const ALL: [Invariant; 6] = [
        Invariant::SeedDeterminism,
        Invariant::TimeTranslation,
        Invariant::PermutationSymmetry,
        Invariant::ContentionMonotonicity,
        Invariant::SizeMonotonicity,
        Invariant::Conservation,
    ];

    /// Stable name used in check labels.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::SeedDeterminism => "seed_determinism",
            Invariant::TimeTranslation => "time_translation",
            Invariant::PermutationSymmetry => "permutation_symmetry",
            Invariant::ContentionMonotonicity => "contention_monotonicity",
            Invariant::SizeMonotonicity => "size_monotonicity",
            Invariant::Conservation => "conservation",
        }
    }

    /// Check the invariant over `count` scenarios derived from `base_seed`;
    /// returns one aggregated outcome.
    pub fn check(self, base_seed: u64, count: usize) -> Outcome {
        let mut seeds = SplitMix64::new(base_seed ^ 0x4d45_5441);
        let mut checked = 0usize;
        let mut first_failure: Option<String> = None;
        for _ in 0..count {
            let seed = seeds.next_u64();
            let verdict = match self {
                Invariant::SeedDeterminism => seed_determinism(seed),
                Invariant::TimeTranslation => time_translation(seed),
                Invariant::PermutationSymmetry => permutation_symmetry(seed),
                Invariant::ContentionMonotonicity => contention_monotonicity(seed),
                Invariant::SizeMonotonicity => size_monotonicity(seed),
                Invariant::Conservation => conservation(seed),
            };
            match verdict {
                Ok(applied) => checked += applied as usize,
                Err(why) => {
                    first_failure.get_or_insert(format!("seed {:#x}: {}", seed, why));
                }
            }
        }
        match first_failure {
            None => Outcome::bool(
                format!("metamorphic.{} [{} scenario(s)]", self.name(), count),
                true,
                format!("{} scenario(s) applicable, all hold", checked),
            ),
            Some(why) => Outcome::bool(
                format!("metamorphic.{} [{} scenario(s)]", self.name(), count),
                false,
                why,
            ),
        }
    }
}

/// Run every invariant; `count` scenarios each.
pub fn check_all(base_seed: u64, count: usize) -> Vec<Outcome> {
    Invariant::ALL
        .iter()
        .map(|inv| inv.check(base_seed, count))
        .collect()
}

fn cfg() -> GenConfig {
    GenConfig::default()
}

fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-30)
}

/// Exact (bitwise) replay equality.
fn assert_identical(a: &Replay, b: &Replay) -> Result<(), String> {
    if a.completions.len() != b.completions.len() {
        return Err(format!(
            "completion counts differ: {} vs {}",
            a.completions.len(),
            b.completions.len()
        ));
    }
    for (x, y) in a.completions.iter().zip(&b.completions) {
        if x.0 != y.0 || x.1.to_bits() != y.1.to_bits() {
            return Err(format!("completion diverges: {:?} vs {:?}", x, y));
        }
    }
    if a.snapshots.len() != b.snapshots.len() {
        return Err("snapshot counts differ".into());
    }
    for (sa, sb) in a.snapshots.iter().zip(&b.snapshots) {
        if sa.0 != sb.0 || sa.1.len() != sb.1.len() {
            return Err(format!("snapshot shape diverges at t={} ps", sa.0));
        }
        for (fa, fb) in sa.1.iter().zip(&sb.1) {
            if fa.0 != fb.0 || fa.1.to_bits() != fb.1.to_bits() {
                return Err(format!(
                    "rate diverges at t={} ps for flow [{}]",
                    sa.0, fa.0
                ));
            }
        }
    }
    for (da, db) in a.delivered.iter().zip(&b.delivered) {
        if da.to_bits() != db.to_bits() {
            return Err("delivered units diverge".into());
        }
    }
    Ok(())
}

/// Tolerant comparison of completions matched by script index; `shift_s`
/// is subtracted from `b`'s times first.
fn completions_match(a: &Replay, b: &Replay, shift_s: f64) -> Result<(), String> {
    if a.completions.len() != b.completions.len() {
        return Err(format!(
            "completion counts differ: {} vs {}",
            a.completions.len(),
            b.completions.len()
        ));
    }
    let mut xs: Vec<(usize, f64)> = a.completions.clone();
    let mut ys: Vec<(usize, f64)> = b
        .completions
        .iter()
        .map(|&(ev, t)| (ev, t - shift_s))
        .collect();
    xs.sort_unstable_by_key(|&(ev, _)| ev);
    ys.sort_unstable_by_key(|&(ev, _)| ev);
    for (x, y) in xs.iter().zip(&ys) {
        if x.0 != y.0 {
            return Err(format!("completion sets differ: [{}] vs [{}]", x.0, y.0));
        }
        if rel(x.1, y.1) > TOL_META {
            return Err(format!(
                "completion time of [{}] diverges: {} vs {} (rel {:.3e})",
                x.0,
                x.1,
                y.1,
                rel(x.1, y.1)
            ));
        }
    }
    Ok(())
}

/// Ok(true) = checked and holds; Ok(false) = not applicable for this seed.
type Verdict = Result<bool, String>;

fn seed_determinism(seed: u64) -> Verdict {
    let sc = Scenario::generate(seed, &cfg());
    let a = replay(&sc, Solver::Incremental);
    let b = replay(&Scenario::generate(seed, &cfg()), Solver::Incremental);
    if a.stalled || b.stalled {
        return Err("replay stalled".into());
    }
    assert_identical(&a, &b)?;
    Ok(true)
}

fn time_translation(seed: u64) -> Verdict {
    let sc = Scenario::generate(seed, &cfg());
    let delta_ps: u64 = 1_500_000_000; // 1.5 ms, far beyond the horizon
    let shifted = sc.time_shifted(delta_ps);
    let a = replay(&sc, Solver::Incremental);
    let b = replay(&shifted, Solver::Incremental);
    if a.stalled || b.stalled {
        return Err("replay stalled".into());
    }
    completions_match(&a, &b, delta_ps as f64 * 1e-12)?;
    Ok(true)
}

fn permutation_symmetry(seed: u64) -> Verdict {
    let sc = Scenario::generate(seed, &cfg());
    let n = sc.capacities.len();
    // A seed-dependent permutation (Fisher–Yates).
    let mut rng = Pcg32::new(seed, 0x9e37);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.below(i as u32 + 1) as usize);
    }
    let permuted = sc.resource_permuted(&perm);
    let a = replay(&sc, Solver::Incremental);
    let b = replay(&permuted, Solver::Incremental);
    if a.stalled || b.stalled {
        return Err("replay stalled".into());
    }
    completions_match(&a, &b, 0.0)?;
    for (old, &new) in perm.iter().enumerate() {
        if rel(a.delivered[old], b.delivered[new]) > TOL_META {
            return Err(format!(
                "delivered units diverge under relabelling: r{} {} vs r{} {}",
                old, a.delivered[old], new, b.delivered[new]
            ));
        }
    }
    Ok(true)
}

fn contention_monotonicity(seed: u64) -> Verdict {
    // Static single-link setting: max-min on one resource is monotone in
    // the flow set (on general networks it is not — see DESIGN.md §11).
    let mut rng = Pcg32::new(seed, 0xc047);
    let capacity = 5.0 + 95.0 * rng.next_f64();
    let n = 2 + rng.below(6) as usize;
    let flows: Vec<(f64, Option<f64>)> = (0..n)
        .map(|_| {
            (
                0.25 + 3.75 * rng.next_f64(),
                (rng.next_f64() < 0.4).then(|| capacity * (0.05 + 0.5 * rng.next_f64())),
            )
        })
        .collect();
    let rates_with = |extra: Option<(f64, Option<f64>)>| {
        let mut net = simcore::FluidNet::new();
        let link = net.add_resource("link", capacity);
        let ids: Vec<_> = flows
            .iter()
            .map(|&(w, cap)| {
                net.start_flow(FlowSpec {
                    path: vec![link],
                    volume: 1e15,
                    weight: w,
                    cap,
                    tag: 0,
                })
            })
            .collect();
        if let Some((w, cap)) = extra {
            net.start_flow(FlowSpec {
                path: vec![link],
                volume: 1e15,
                weight: w,
                cap,
                tag: 1,
            });
        }
        net.reallocate();
        ids.iter()
            .map(|&id| net.flow_rate(id).expect("live"))
            .collect::<Vec<f64>>()
    };
    let before = rates_with(None);
    let after = rates_with(Some((0.25 + 3.75 * rng.next_f64(), None)));
    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        if *a > b * (1.0 + TOL_META) + 1e-12 {
            return Err(format!(
                "flow {} rate rose under added contention: {} -> {}",
                i, b, a
            ));
        }
    }
    Ok(true)
}

fn size_monotonicity(seed: u64) -> Verdict {
    let sc = Scenario::generate(seed, &cfg());
    let Some(target) = sc.events.iter().position(|e| matches!(
        e.op,
        crate::scenario::Op::Start { .. }
    )) else {
        return Ok(false);
    };
    let mut bigger = sc.clone();
    if let crate::scenario::Op::Start { volume, .. } = &mut bigger.events[target].op {
        *volume *= 2.0;
    }
    let a = replay(&sc, Solver::Incremental);
    let b = replay(&bigger, Solver::Incremental);
    if a.stalled || b.stalled {
        return Err("replay stalled".into());
    }
    let t_a = a.completions.iter().find(|&&(ev, _)| ev == target);
    let t_b = b.completions.iter().find(|&&(ev, _)| ev == target);
    match (t_a, t_b) {
        (Some(&(_, ta)), Some(&(_, tb))) => {
            if tb < ta * (1.0 - TOL_META) - 1e-15 {
                return Err(format!(
                    "doubling volume of [{}] finished earlier: {} -> {}",
                    target, ta, tb
                ));
            }
            Ok(true)
        }
        // Cancelled (possibly only in one replay, since it runs longer):
        // no completion-time claim applies.
        _ => Ok(false),
    }
}

fn conservation(seed: u64) -> Verdict {
    let sc = Scenario::generate(seed, &cfg());
    let r = replay(&sc, Solver::Incremental);
    if r.stalled {
        return Err("replay stalled".into());
    }
    let starts = sc
        .events
        .iter()
        .filter(|e| matches!(e.op, crate::scenario::Op::Start { .. }))
        .count();
    // Every completion may forgive up to the solver's 1e-6-unit completion
    // tolerance; everything else is float noise.
    let slack = 1.5e-6 * starts as f64 + 1e-9 * r.injected[0];
    let balance = r.delivered[0] + r.leftover[0];
    if (balance - r.injected[0]).abs() > slack {
        return Err(format!(
            "link imbalance: injected {} vs delivered {} + leftover {} (slack {})",
            r.injected[0], r.delivered[0], r.leftover[0], slack
        ));
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_invariants_hold_on_a_seed_batch() {
        for o in check_all(0xbeef, 12) {
            assert!(o.pass, "{}: {}", o.name, o.detail);
        }
    }
}
