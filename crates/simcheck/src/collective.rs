//! Collective-layer validation: closed-form oracles on the fabric presets,
//! metamorphic invariants over random collective schedules, and differential
//! fuzzing of the concurrent round executor against a naive sequential
//! reference.
//!
//! The key structural fact (DESIGN.md §14): on all three fabric presets the
//! logical-ring neighbour traffic of the ring allreduce is **link-disjoint**
//! — every message of a round crosses its own links, NICs and memory
//! controllers — so each round completes in exactly the solo point-to-point
//! time of its chunk and the whole collective has a closed form built from
//! the §11 eager/rendezvous formulas:
//!
//! ```text
//! T_ring(n, s) = 2(n−1) · t(⌈s/n⌉)        (round 0 pays registration when
//!                                          the chunk is rendezvous-sized)
//! T_bcast(n, s) = ⌈log₂ n⌉ · t_eager(s)   (exact on the non-blocking
//!                                          switch; a lower bound on torus /
//!                                          dragonfly where rounds share
//!                                          links)
//! T_a2a(n, s)  = (n−1) · t_eager(s)       (exact on the switch; on routed
//!                                          fabrics the busiest-link byte
//!                                          count divided by link capacity
//!                                          is a bisection-style lower
//!                                          bound)
//! ```
//!
//! The invariants and the fuzzer run on the cheap `tiny2x2` machine; the
//! oracles run on `henri`, the paper's reference cluster.

use freq::{Governor, UncorePolicy};
use mpisim::collective::{self, Schedule};
use mpisim::Cluster;
use simcore::{Pcg32, SimTime, SplitMix64};
use topology::fabric::FabricPreset;
use topology::{henri, tiny2x2, BindingPolicy, MachineSpec, Placement};

use crate::oracles::{expected_eager_s, expected_rendezvous_s, TOL_TIME};
use crate::Outcome;

/// Rank count the collective oracles run at (large enough for non-trivial
/// trees and rings, small enough to stay fast on the henri machine model).
pub const ORACLE_NODES: usize = 8;

/// Absolute slack (seconds) absorbing the engine's picosecond quantisation
/// across a collective's event edges.
const SLACK_S: f64 = 1e-9;

/// The three collective oracle families, run per fabric preset.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollectiveOracle {
    /// Ring allreduce matches `2(n−1)·t(⌈s/n⌉)` exactly (link-disjoint
    /// rounds on every preset), eager and rendezvous chunk sizes both.
    RingAllreduce,
    /// Binomial bcast matches `⌈log₂n⌉·t_eager(s)` exactly on the switch
    /// and is confined between that and the sequential sum elsewhere.
    TreeBcast,
    /// Pairwise alltoall matches `(n−1)·t_eager(s)` exactly on the switch
    /// and respects the busiest-link (bisection-style) lower bound
    /// elsewhere.
    AlltoallBound,
}

impl CollectiveOracle {
    /// Every collective oracle family, in display order.
    pub const ALL: [CollectiveOracle; 3] = [
        CollectiveOracle::RingAllreduce,
        CollectiveOracle::TreeBcast,
        CollectiveOracle::AlltoallBound,
    ];

    /// Stable name used in check labels.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveOracle::RingAllreduce => "ring_allreduce",
            CollectiveOracle::TreeBcast => "tree_bcast",
            CollectiveOracle::AlltoallBound => "alltoall_bound",
        }
    }

    /// Run this family on `fabric` at [`ORACLE_NODES`] henri ranks.
    pub fn run(self, fabric: FabricPreset) -> Vec<Outcome> {
        let spec = henri();
        match self {
            CollectiveOracle::RingAllreduce => ring_allreduce_oracle(&spec, fabric),
            CollectiveOracle::TreeBcast => tree_bcast_oracle(&spec, fabric),
            CollectiveOracle::AlltoallBound => alltoall_oracle(&spec, fabric),
        }
    }
}

/// Run every collective oracle family on every fabric preset.
pub fn run_all_fabrics() -> Vec<Outcome> {
    let mut out = Vec::new();
    for preset in FabricPreset::ALL {
        for k in CollectiveOracle::ALL {
            out.extend(k.run(preset));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Closed forms and measurement.

/// Solo point-to-point time for one `size`-byte message under the pinned
/// oracle policies (§11 closed forms; protocol chosen by the threshold).
fn solo_msg_s(spec: &MachineSpec, size: usize, cold: bool) -> f64 {
    if size <= spec.network.eager_threshold {
        expected_eager_s(spec, size)
    } else {
        expected_rendezvous_s(spec, size, cold)
    }
}

/// Closed-form ring allreduce: `2(n−1)` link-disjoint rounds of
/// `⌈payload/n⌉`-byte chunks; the first round pays registration when the
/// chunk goes rendezvous.
pub fn expected_ring_allreduce_s(spec: &MachineSpec, nodes: usize, payload: usize) -> f64 {
    let chunk = payload.div_ceil(nodes);
    let rounds = 2 * (nodes - 1);
    solo_msg_s(spec, chunk, true) + (rounds - 1) as f64 * solo_msg_s(spec, chunk, false)
}

/// Build the measurement cluster: `nodes` ranks of `spec` over the preset
/// fabric, pinned exactly like the point-to-point oracle world
/// (communication thread and payload buffers on the NIC NUMA node, base
/// core frequency, uncore at its maximum, no jitter, no faults).
fn oracle_cluster(spec: &MachineSpec, fabric: FabricPreset, nodes: usize) -> Cluster {
    Cluster::with_fabric(
        spec,
        fabric.spec(nodes).build_for(nodes),
        Governor::Userspace(spec.base_freq),
        UncorePolicy::Fixed(spec.uncore_range.1),
        Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::NearNic,
        },
    )
}

/// Run `schedule` on a fresh oracle cluster; seconds of simulated time.
fn measured_collective_s(spec: &MachineSpec, fabric: FabricPreset, schedule: &Schedule) -> f64 {
    let mut c = oracle_cluster(spec, fabric, schedule.nodes);
    collective::run(&mut c, schedule, 1000, 0x5000)
        .expect("oracle collective completes")
        .as_secs_f64()
}

fn ring_allreduce_oracle(spec: &MachineSpec, fabric: FabricPreset) -> Vec<Outcome> {
    let n = ORACLE_NODES;
    // Chunk 8 KiB (eager) and chunk 512 KiB (rendezvous) on henri.
    let mut out = Vec::new();
    for payload in [64 * 1024usize, 4 * 1024 * 1024] {
        let s = Schedule::ring_allreduce(n, payload);
        let measured = measured_collective_s(spec, fabric, &s);
        out.push(Outcome::compare(
            format!(
                "{}: ring allreduce n={} payload={} B",
                fabric.name(),
                n,
                payload
            ),
            expected_ring_allreduce_s(spec, n, payload),
            measured,
            TOL_TIME,
        ));
    }
    out
}

fn tree_bcast_oracle(spec: &MachineSpec, fabric: FabricPreset) -> Vec<Outcome> {
    let n = ORACLE_NODES;
    let payload = 16 * 1024usize; // eager on henri
    let s = Schedule::binomial_bcast(n, payload);
    let per_round = expected_eager_s(spec, payload);
    let expected = s.rounds.len() as f64 * per_round;
    let measured = measured_collective_s(spec, fabric, &s);
    let name = format!("{}: tree bcast n={} payload={} B", fabric.name(), n, payload);
    match fabric {
        // The switch crossbar is non-blocking: every round is link-disjoint
        // and the ⌈log₂n⌉·(α+β·size) form is exact.
        FabricPreset::Switch => vec![Outcome::compare(name, expected, measured, TOL_TIME)],
        // Routed fabrics share links within a round (e.g. four cross-group
        // messages over one dragonfly global link): the closed form is a
        // lower bound, the sequential per-message sum an upper bound.
        _ => {
            let upper = s.total_messages() as f64 * per_round;
            let pass = measured >= expected - SLACK_S && measured <= upper + SLACK_S;
            vec![Outcome::bool(
                name,
                pass,
                format!(
                    "lower {:.9e} <= measured {:.9e} <= upper {:.9e}",
                    expected, measured, upper
                ),
            )]
        }
    }
}

fn alltoall_oracle(spec: &MachineSpec, fabric: FabricPreset) -> Vec<Outcome> {
    let n = ORACLE_NODES;
    let block = 16 * 1024usize; // eager on henri
    let s = Schedule::pairwise_alltoall(n, block);
    let per_msg = expected_eager_s(spec, block);
    let rounds = (n - 1) as f64;
    let name = format!("{}: alltoall n={} block={} B", fabric.name(), n, block);
    let measured = measured_collective_s(spec, fabric, &s);
    match fabric {
        FabricPreset::Switch => {
            // Round r pairs distinct up/down ports: link-disjoint, exact.
            vec![Outcome::compare(name, rounds * per_msg, measured, TOL_TIME)]
        }
        _ => {
            // Bisection-style bound: the busiest link must carry all its
            // routed bytes within the total time; rounds of equal-size
            // messages also cannot beat one solo message each.
            let f = fabric.spec(n).build_for(n);
            let bytes = s.link_bytes(&f);
            let link_bound = f
                .links()
                .iter()
                .zip(&bytes)
                .map(|(l, b)| b / (spec.network.link_bw * l.bw_scale))
                .fold(0.0f64, f64::max);
            let lower = (rounds * per_msg).max(link_bound);
            let upper = s.total_messages() as f64 * per_msg;
            let pass = measured >= lower - SLACK_S && measured <= upper + SLACK_S;
            vec![Outcome::bool(
                name,
                pass,
                format!(
                    "lower {:.9e} (link bound {:.9e}) <= measured {:.9e} <= upper {:.9e}",
                    lower, link_bound, measured, upper
                ),
            )]
        }
    }
}

// ---------------------------------------------------------------------------
// Metamorphic invariants over random collective schedules.

/// The three collective metamorphic invariants.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollectiveInvariant {
    /// Relabelling ranks through a random permutation leaves the total time
    /// bit-identical on the fully symmetric switch fabric.
    RankPermutation,
    /// Shuffling the posting order of each round's messages leaves the
    /// total time bit-identical (concurrent rounds have no order).
    InterleaveIndependence,
    /// Every fabric link delivers exactly the bytes of the messages routed
    /// over it (up to rate × 1 ps completion quantisation per message).
    LinkConservation,
}

impl CollectiveInvariant {
    /// Every collective invariant, in display order.
    pub const ALL: [CollectiveInvariant; 3] = [
        CollectiveInvariant::RankPermutation,
        CollectiveInvariant::InterleaveIndependence,
        CollectiveInvariant::LinkConservation,
    ];

    /// Stable name used in check labels.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveInvariant::RankPermutation => "rank_permutation",
            CollectiveInvariant::InterleaveIndependence => "interleave_independence",
            CollectiveInvariant::LinkConservation => "link_conservation",
        }
    }

    /// Check the invariant over `count` random collectives derived from
    /// `base_seed`; returns one aggregated outcome.
    pub fn check(self, base_seed: u64, count: usize) -> Outcome {
        let mut seeds = SplitMix64::new(base_seed ^ 0x434f_4c4c);
        let mut first_failure: Option<String> = None;
        for _ in 0..count {
            let seed = seeds.next_u64();
            let verdict = match self {
                CollectiveInvariant::RankPermutation => rank_permutation(seed),
                CollectiveInvariant::InterleaveIndependence => interleave_independence(seed),
                CollectiveInvariant::LinkConservation => link_conservation(seed),
            };
            if let Err(why) = verdict {
                first_failure.get_or_insert(format!("seed {:#x}: {}", seed, why));
            }
        }
        match first_failure {
            None => Outcome::bool(
                format!("collective.{} [{} schedule(s)]", self.name(), count),
                true,
                format!("{} random collective(s), all hold", count),
            ),
            Some(why) => Outcome::bool(
                format!("collective.{} [{} schedule(s)]", self.name(), count),
                false,
                why,
            ),
        }
    }
}

/// Run every collective invariant; `count` schedules each.
pub fn check_all_invariants(base_seed: u64, count: usize) -> Vec<Outcome> {
    CollectiveInvariant::ALL
        .iter()
        .map(|inv| inv.check(base_seed, count))
        .collect()
}

/// Draw one of the four schedule builders.
fn random_schedule(rng: &mut Pcg32, nodes: usize, payload: usize) -> (&'static str, Schedule) {
    match rng.next_u64() % 4 {
        0 => ("ring_allreduce", Schedule::ring_allreduce(nodes, payload)),
        1 => ("tree_allreduce", Schedule::tree_allreduce(nodes, payload)),
        2 => ("binomial_bcast", Schedule::binomial_bcast(nodes, payload)),
        _ => ("pairwise_alltoall", Schedule::pairwise_alltoall(nodes, payload)),
    }
}

/// Payload sizes straddling tiny2x2's 16 KiB eager threshold.
const FUZZ_PAYLOADS: [usize; 4] = [64, 4096, 16 * 1024, 64 * 1024];

fn fuzz_cluster(fabric: FabricPreset, nodes: usize) -> Cluster {
    let spec = tiny2x2();
    Cluster::with_fabric(
        &spec,
        fabric.spec(nodes).build_for(nodes),
        Governor::Userspace(spec.base_freq),
        UncorePolicy::Fixed(spec.uncore_range.1),
        Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::NearNic,
        },
    )
}

fn run_total(fabric: FabricPreset, s: &Schedule, shuffle: Option<u64>) -> Result<SimTime, String> {
    let mut c = fuzz_cluster(fabric, s.nodes);
    collective::run_ordered(&mut c, s, 1000, 0x6000, shuffle).map_err(|e| e.to_string())
}

fn rank_permutation(seed: u64) -> Result<(), String> {
    let mut rng = Pcg32::new(seed, 11);
    let nodes = 8;
    let payload = FUZZ_PAYLOADS[(rng.next_u64() % 4) as usize];
    let (alg, s) = random_schedule(&mut rng, nodes, payload);
    let mut perm: Vec<usize> = (0..nodes).collect();
    for i in (1..nodes).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    let base = run_total(FabricPreset::Switch, &s, None)?;
    let permuted = run_total(FabricPreset::Switch, &s.permute_ranks(&perm), None)?;
    if base != permuted {
        return Err(format!(
            "{} n={} payload={}: base {:?} != permuted {:?} (perm {:?})",
            alg, nodes, payload, base, permuted, perm
        ));
    }
    Ok(())
}

fn interleave_independence(seed: u64) -> Result<(), String> {
    let mut rng = Pcg32::new(seed, 13);
    let nodes = 2 + (rng.next_u64() % 7) as usize;
    let payload = FUZZ_PAYLOADS[(rng.next_u64() % 4) as usize];
    let fabric = FabricPreset::ALL[(rng.next_u64() % 3) as usize];
    let (alg, s) = random_schedule(&mut rng, nodes, payload);
    let base = run_total(fabric, &s, None)?;
    let shuffled = run_total(fabric, &s, Some(rng.next_u64()))?;
    if base != shuffled {
        return Err(format!(
            "{} n={} payload={} on {}: in-order {:?} != shuffled {:?}",
            alg, nodes, payload, fabric, base, shuffled
        ));
    }
    Ok(())
}

fn link_conservation(seed: u64) -> Result<(), String> {
    let mut rng = Pcg32::new(seed, 17);
    let nodes = 2 + (rng.next_u64() % 7) as usize;
    let payload = FUZZ_PAYLOADS[(rng.next_u64() % 4) as usize];
    let fabric = FabricPreset::ALL[(rng.next_u64() % 3) as usize];
    let (alg, s) = random_schedule(&mut rng, nodes, payload);
    let mut c = fuzz_cluster(fabric, nodes);
    collective::run(&mut c, &s, 1000, 0x6000).map_err(|e| e.to_string())?;
    let expected = s.link_bytes(c.net.fabric());
    let spec = tiny2x2();
    for (l, want) in expected.iter().enumerate() {
        let got = c.net.link_delivered(&c.engine, l);
        let link = &c.net.fabric().links()[l];
        // One picosecond of completion overshoot per message on the link.
        let crossings = s
            .rounds
            .iter()
            .flat_map(|r| r.msgs.iter())
            .filter(|m| c.net.fabric().route(m.src, m.dst).contains(&(l as u32)))
            .count();
        let slack = crossings as f64 * spec.network.link_bw * link.bw_scale * 1e-12 + 1e-9;
        if (got - want).abs() > slack {
            return Err(format!(
                "{} n={} payload={} on {}: link {} delivered {} expected {}",
                alg, nodes, payload, fabric, link.name, got, want
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Differential fuzzing: concurrent rounds vs a naive sequential reference.

/// Fuzz `count` random collective schedules derived from `seed`: each must
/// pass the dataflow semantics checker, fail it after a random message is
/// dropped (mutation sanity), and — per round — complete concurrently no
/// faster than its slowest solo message and no slower than the sum of its
/// solo messages, both measured on a naive sequential reference cluster.
/// Returns one aggregated outcome.
pub fn fuzz_collectives(seed: u64, count: usize) -> Outcome {
    let mut seeds = SplitMix64::new(seed ^ 0x4655_5a43);
    let mut first_failure: Option<String> = None;
    let mut rounds_checked = 0usize;
    for case in 0..count {
        let case_seed = seeds.next_u64();
        match fuzz_one(case_seed) {
            Ok(rounds) => rounds_checked += rounds,
            Err(why) => {
                first_failure.get_or_insert(format!("case {} seed {:#x}: {}", case, case_seed, why));
            }
        }
    }
    match first_failure {
        None => Outcome::bool(
            format!("collective.fuzz [{} schedule(s)]", count),
            true,
            format!(
                "{} random collective(s), {} concurrent round(s) confined by their sequential reference",
                count, rounds_checked
            ),
        ),
        Some(why) => Outcome::bool(format!("collective.fuzz [{} schedule(s)]", count), false, why),
    }
}

fn fuzz_one(seed: u64) -> Result<usize, String> {
    let mut rng = Pcg32::new(seed, 23);
    let nodes = 2 + (rng.next_u64() % 5) as usize;
    let payload = FUZZ_PAYLOADS[(rng.next_u64() % 4) as usize];
    let fabric = FabricPreset::ALL[(rng.next_u64() % 3) as usize];
    let (alg, s) = random_schedule(&mut rng, nodes, payload);
    let label = format!("{} n={} payload={} on {}", alg, nodes, payload, fabric);

    // 1. The schedule must compute its collective.
    s.verify_semantics().map_err(|e| format!("{}: {}", label, e))?;

    // 2. Mutation sanity: dropping any message must break the dataflow
    //    proof (otherwise the checker is vacuous).
    let victim_round = (rng.next_u64() % s.rounds.len() as u64) as usize;
    let mut mutated = s.clone();
    if !mutated.rounds[victim_round].msgs.is_empty() {
        let victim = (rng.next_u64() % mutated.rounds[victim_round].msgs.len() as u64) as usize;
        mutated.rounds[victim_round].msgs.remove(victim);
        if mutated.verify_semantics().is_ok() {
            return Err(format!(
                "{}: semantics still hold after dropping a message from round {}",
                label, victim_round
            ));
        }
    }

    // 3. Differential timing: drive the real schedule round by round on one
    //    cluster, and every message alone, in order, on a reference cluster.
    //    Registration state evolves identically (same buffer keys in the
    //    same first-use order), so per round:
    //      max(solo) − ε  ≤  t_concurrent  ≤  Σ solo + ε.
    let mut concurrent = fuzz_cluster(fabric, nodes);
    let mut sequential = fuzz_cluster(fabric, nodes);
    for (ri, round) in s.rounds.iter().enumerate() {
        let sub = Schedule {
            op: s.op,
            nodes: s.nodes,
            payload: s.payload,
            rounds: vec![round.clone()],
        };
        let t_conc = collective::run(&mut concurrent, &sub, 1000 + ri as u32 * 8, 0x6000)
            .map_err(|e| format!("{}: {}", label, e))?
            .as_secs_f64();
        let mut solo_sum = 0.0f64;
        let mut solo_max = 0.0f64;
        for (mi, m) in round.msgs.iter().enumerate() {
            let one = Schedule {
                op: s.op,
                nodes: s.nodes,
                payload: s.payload,
                rounds: vec![mpisim::collective::Round { msgs: vec![*m] }],
            };
            let t = collective::run(
                &mut sequential,
                &one,
                5000 + (ri * 64 + mi) as u32,
                0x6000,
            )
            .map_err(|e| format!("{}: {}", label, e))?
            .as_secs_f64();
            solo_sum += t;
            solo_max = solo_max.max(t);
        }
        if round.msgs.is_empty() {
            continue;
        }
        if t_conc < solo_max - SLACK_S || t_conc > solo_sum + SLACK_S {
            return Err(format!(
                "{} round {}: concurrent {:.9e} outside [max solo {:.9e}, sum solo {:.9e}]",
                label, ri, t_conc, solo_max, solo_sum
            ));
        }
    }
    Ok(s.rounds.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_allreduce_oracle_holds_on_every_preset() {
        for preset in FabricPreset::ALL {
            for o in CollectiveOracle::RingAllreduce.run(preset) {
                assert!(o.pass, "{}: {}", o.name, o.detail);
            }
        }
    }

    #[test]
    fn tree_and_alltoall_oracles_hold_on_every_preset() {
        for preset in FabricPreset::ALL {
            for k in [CollectiveOracle::TreeBcast, CollectiveOracle::AlltoallBound] {
                for o in k.run(preset) {
                    assert!(o.pass, "{}: {}", o.name, o.detail);
                }
            }
        }
    }

    #[test]
    fn one_percent_link_drift_trips_the_ring_oracle() {
        // Pin the link as the path bottleneck (below henri's 10.8 GB/s DMA
        // and the 9.2 GB/s eager PIO rate), then drift it by ±1%: the
        // measured collective moves by ~1% of its bandwidth term while the
        // expectation stands still, far outside TOL_TIME.
        let mut base = henri();
        base.network.link_bw = 8.0e9;
        let n = ORACLE_NODES;
        let payload = 4 * 1024 * 1024usize;
        let s = Schedule::ring_allreduce(n, payload);
        let expected = expected_ring_allreduce_s(&base, n, payload);

        let healthy = measured_collective_s(&base, FabricPreset::Switch, &s);
        let ok = Outcome::compare("trip: healthy", expected, healthy, TOL_TIME);
        assert!(ok.pass, "healthy measurement must match: {}", ok.detail);

        for drift in [1.01f64, 0.99] {
            let mut drifted = base.clone();
            drifted.network.link_bw *= drift;
            let measured = measured_collective_s(&drifted, FabricPreset::Switch, &s);
            let o = Outcome::compare(format!("trip: drift {}", drift), expected, measured, TOL_TIME);
            assert!(
                !o.pass,
                "a {}x link-bandwidth drift must trip the oracle: {}",
                drift, o.detail
            );
        }
    }

    #[test]
    fn collective_invariants_hold_on_a_small_sample() {
        for inv in CollectiveInvariant::ALL {
            let o = inv.check(42, 4);
            assert!(o.pass, "{}: {}", o.name, o.detail);
        }
    }

    #[test]
    fn collective_fuzz_small_sample_passes() {
        let o = fuzz_collectives(7, 6);
        assert!(o.pass, "{}", o.detail);
    }
}
