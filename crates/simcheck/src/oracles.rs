//! Analytical oracles: closed-form expected values derived from the machine
//! parameters, compared against full simulator runs.
//!
//! Every formula here is derived *independently* from the model definitions
//! in `DESIGN.md` §11 / `PAPER.md` — none of it calls back into the netsim
//! step machine — so a silent change to a hot path (a dropped step, a wrong
//! capacity, a misapplied multiplier) shows up as a relative error against
//! the closed form instead of only shifting golden traces.
//!
//! The measurement worlds pin every stochastic and policy-dependent input:
//! `Userspace(base_freq)` governor, uncore fixed at the top of its range,
//! the communication core on the NIC's NUMA node running `Light`, payload
//! and destination buffers on the NIC NUMA node, no jitter, no faults. Under
//! those conditions the simulator is exactly the piecewise-linear model the
//! formulas describe, up to the engine's picosecond time quantisation —
//! hence [`TOL_TIME`].

use freq::{Activity, FreqModel, Governor, License, UncorePolicy};
use memsim::MemSystem;
use netsim::{NetEvent, NetSim, NodeRef};
use simcore::{Engine, FlowSpec, Pcg32};
use topology::{CoreId, MachineSpec, NumaId, Preset};

/// Relative tolerance for end-to-end simulated *times*: the engine rounds
/// every event edge to integer picoseconds, so an eager ping over ~8 event
/// edges carries a handful of picoseconds of quantisation against a ~2 µs
/// expectation (≲ 1e-5 relative); 2e-4 leaves an order of magnitude of
/// head-room while still catching any real modelling change (the smallest
/// modelled term, one control access, is ≥ 1e-2 of the total).
pub const TOL_TIME: f64 = 2e-4;

/// Relative tolerance for fluid *rates*: pure f64 arithmetic with no time
/// quantisation; only summation-order effects remain.
pub const TOL_RATE: f64 = 1e-9;

/// Bytes the communication core pushes into the NIC per cycle in the eager
/// PIO copy path (documented model constant; netsim keeps its own copy).
pub const PIO_BYTES_PER_CYCLE: f64 = 4.0;

/// The five oracle families run per cluster preset.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleKind {
    /// Eager half-RTT is `α + β·size` with α, β from the machine spec.
    EagerAlphaBeta,
    /// Rendezvous large-message bandwidth hits `min(dma, link, mem)`.
    RendezvousBandwidth,
    /// Latency at the eager threshold follows the eager formula; one byte
    /// above follows the rendezvous formula (crossover jump included).
    ThresholdCrossover,
    /// `Performance` governor reproduces the turbo tables exactly.
    TurboLadder,
    /// k streaming cores saturate a memory channel at the modelled point.
    MemSaturation,
    /// n weighted/capped flows on one link get water-filling shares.
    MaxMinShares,
}

impl OracleKind {
    /// Every oracle family, in display order.
    pub const ALL: [OracleKind; 6] = [
        OracleKind::EagerAlphaBeta,
        OracleKind::RendezvousBandwidth,
        OracleKind::ThresholdCrossover,
        OracleKind::TurboLadder,
        OracleKind::MemSaturation,
        OracleKind::MaxMinShares,
    ];

    /// Stable name used in check labels and reports.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::EagerAlphaBeta => "eager_alpha_beta",
            OracleKind::RendezvousBandwidth => "rendezvous_bw",
            OracleKind::ThresholdCrossover => "threshold_crossover",
            OracleKind::TurboLadder => "turbo_ladder",
            OracleKind::MemSaturation => "mem_saturation",
            OracleKind::MaxMinShares => "maxmin_shares",
        }
    }

    /// Run this family against a machine spec.
    pub fn run(self, spec: &MachineSpec) -> Vec<crate::Outcome> {
        match self {
            OracleKind::EagerAlphaBeta => eager_alpha_beta(spec),
            OracleKind::RendezvousBandwidth => rendezvous_bandwidth(spec),
            OracleKind::ThresholdCrossover => threshold_crossover(spec),
            OracleKind::TurboLadder => turbo_ladder(spec),
            OracleKind::MemSaturation => mem_saturation(spec),
            OracleKind::MaxMinShares => maxmin_shares(spec),
        }
    }
}

/// Run every oracle family on every cluster preset.
pub fn run_all_presets() -> Vec<crate::Outcome> {
    let mut out = Vec::new();
    for p in Preset::clusters() {
        let spec = p.spec();
        for k in OracleKind::ALL {
            out.extend(k.run(&spec));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Closed forms.

/// Rate of the eager PIO payload: paced by the copy loop at
/// `4 B/cycle × f`, further bounded by every capacity on the path
/// (sender memory controller, NIC engines, wire, receiver controller).
fn eager_rate(spec: &MachineSpec) -> f64 {
    let pio = PIO_BYTES_PER_CYCLE * spec.base_freq * 1e9;
    pio.min(path_bottleneck(spec))
}

/// Rendezvous DMA rate: the NIC pulls at full tilt, bounded by the path.
fn dma_rate(spec: &MachineSpec) -> f64 {
    path_bottleneck(spec)
}

/// Minimum capacity along the sender-memory → NIC → wire → NIC →
/// receiver-memory path with the uncore pinned at its maximum (memory
/// controllers at nominal `mem_bw_per_numa`).
fn path_bottleneck(spec: &MachineSpec) -> f64 {
    spec.mem_bw_per_numa
        .min(spec.network.dma_bw)
        .min(spec.network.link_bw)
}

/// Per-side fixed costs shared by both protocols: software overhead cycles
/// on the communication core plus NIC doorbell / completion-queue control
/// accesses at local latency (the comm core sits on the NIC NUMA node).
fn per_side_overhead_s(spec: &MachineSpec) -> f64 {
    let overhead = spec.network.sw_overhead_cycles * 0.5 / (spec.base_freq * 1e9);
    let ctrl = spec.local_access_lat_s * spec.network.ctrl_accesses * 0.5;
    overhead + ctrl
}

/// Eager α: everything except the payload term — send+recv overhead and
/// control accesses, the package-idle penalty (no heavy core anywhere) and
/// one wire crossing.
pub fn expected_eager_alpha_s(spec: &MachineSpec) -> f64 {
    2.0 * per_side_overhead_s(spec) + spec.idle_uncore_penalty_s + spec.network.wire_latency_s
}

/// Eager β: seconds per payload byte.
pub fn expected_eager_beta_s(spec: &MachineSpec) -> f64 {
    1.0 / eager_rate(spec)
}

/// Closed-form eager one-way time.
pub fn expected_eager_s(spec: &MachineSpec, size: usize) -> f64 {
    expected_eager_alpha_s(spec) + (size as f64).max(1.0) * expected_eager_beta_s(spec)
}

/// Closed-form rendezvous one-way time. `cold` pays buffer registration;
/// a warm registration cache skips it. The handshake crosses the wire
/// twice (RTS out, CTS back) before the DMA stream starts.
pub fn expected_rendezvous_s(spec: &MachineSpec, size: usize, cold: bool) -> f64 {
    let reg = if cold {
        spec.network.reg_base_s + spec.network.reg_per_byte_s * size as f64
    } else {
        0.0
    };
    2.0 * per_side_overhead_s(spec)
        + spec.idle_uncore_penalty_s
        + reg
        + 2.0 * spec.network.wire_latency_s
        + size as f64 / dma_rate(spec)
}

// ---------------------------------------------------------------------------
// Measurement world: the netsim two-node loopback under pinned policies.

struct World {
    engine: Engine,
    mem: [MemSystem; 2],
    freqs: [FreqModel; 2],
    net: NetSim,
    comm_core: CoreId,
}

fn world(spec: &MachineSpec) -> World {
    // Communication thread on the last core of the NIC's NUMA node: control
    // accesses run at local latency, matching the α formula.
    let comm_core = *spec
        .cores_of_numa(spec.nic_numa)
        .last()
        .expect("NIC NUMA node has cores");
    let mut engine = Engine::new();
    let mem = [
        MemSystem::build(&mut engine, spec, "n0."),
        MemSystem::build(&mut engine, spec, "n1."),
    ];
    let mut freqs = [
        FreqModel::new(
            spec,
            Governor::Userspace(spec.base_freq),
            UncorePolicy::Fixed(spec.uncore_range.1),
        ),
        FreqModel::new(
            spec,
            Governor::Userspace(spec.base_freq),
            UncorePolicy::Fixed(spec.uncore_range.1),
        ),
    ];
    for (f, m) in freqs.iter_mut().zip(&mem) {
        f.set_activity(comm_core, Activity::Light);
        m.apply_freqs(&mut engine, f);
    }
    let net = NetSim::build(&mut engine, spec);
    World {
        engine,
        mem,
        freqs,
        net,
        comm_core,
    }
}

/// Drive one message node0 → node1 to delivery; returns the half-RTT in
/// seconds.
fn one_way(w: &mut World, size: usize, buffer: u64) -> f64 {
    let start = w.engine.now();
    let id = {
        let n0 = NodeRef {
            mem: &w.mem[0],
            freqs: &w.freqs[0],
            comm_core: w.comm_core,
        };
        let nic = w.mem[0].spec().nic_numa;
        w.net
            .start_send(&mut w.engine, 0, 1, &n0, size, nic, nic, buffer)
    };
    w.net.recv_ready(&mut w.engine, id);
    loop {
        let ev = w.engine.next().expect("transfer makes progress");
        if !w.net.owns(ev.tag()) {
            continue;
        }
        let (mem, freqs, cc) = (&w.mem, &w.freqs, w.comm_core);
        let nodes = |i: usize| NodeRef {
            mem: &mem[i],
            freqs: &freqs[i],
            comm_core: cc,
        };
        for out in w.net.on_event(&mut w.engine, nodes, &ev) {
            if let NetEvent::Delivered { .. } = out {
                return (w.engine.now() - start).as_secs_f64();
            }
        }
    }
}

/// Measure one half-RTT on a fresh world. `warm` first sends the same
/// buffer once so a rendezvous measurement hits the registration cache.
pub fn measured_one_way_s(spec: &MachineSpec, size: usize, warm: bool) -> f64 {
    let mut w = world(spec);
    if warm {
        one_way(&mut w, size, 0xB0F);
    }
    one_way(&mut w, size, 0xB0F)
}

// ---------------------------------------------------------------------------
// Oracle families.

/// Eager pingpong: t(size) must match `α + β·size` at several sizes, and
/// the (α, β) recovered from two measurements must match the closed forms.
pub fn eager_alpha_beta(spec: &MachineSpec) -> Vec<crate::Outcome> {
    let mut out = Vec::new();
    let thr = spec.network.eager_threshold;
    for size in [4usize, 1024, 16 * 1024, thr] {
        let t = measured_one_way_s(spec, size, false);
        out.push(crate::Outcome::compare(
            format!("{}: eager t({} B)", spec.name, size),
            expected_eager_s(spec, size),
            t,
            TOL_TIME,
        ));
    }
    // Recover the affine coefficients from two measurements.
    let (s1, s2) = (256usize, 16 * 1024);
    let t1 = measured_one_way_s(spec, s1, false);
    let t2 = measured_one_way_s(spec, s2, false);
    let beta = (t2 - t1) / (s2 - s1) as f64;
    let alpha = t1 - beta * s1 as f64;
    out.push(crate::Outcome::compare(
        format!("{}: eager β (s/B)", spec.name),
        expected_eager_beta_s(spec),
        beta,
        1e-3,
    ));
    out.push(crate::Outcome::compare(
        format!("{}: eager α (s)", spec.name),
        expected_eager_alpha_s(spec),
        alpha,
        1e-3,
    ));
    out
}

/// Rendezvous bandwidth: a warm large message must stream at the path
/// bottleneck rate, and its total time must match the closed form.
pub fn rendezvous_bandwidth(spec: &MachineSpec) -> Vec<crate::Outcome> {
    let size = 8 * 1024 * 1024;
    let t = measured_one_way_s(spec, size, true);
    let fixed = expected_rendezvous_s(spec, size, false) - size as f64 / dma_rate(spec);
    vec![
        crate::Outcome::compare(
            format!("{}: rendezvous t({} B, warm)", spec.name, size),
            expected_rendezvous_s(spec, size, false),
            t,
            TOL_TIME,
        ),
        crate::Outcome::compare(
            format!("{}: rendezvous stream bandwidth (B/s)", spec.name),
            dma_rate(spec),
            size as f64 / (t - fixed),
            TOL_TIME,
        ),
    ]
}

/// Protocol threshold: at `eager_threshold` bytes the eager formula holds;
/// one byte above, the (cold) rendezvous formula holds; and the measured
/// discontinuity equals the predicted jump.
pub fn threshold_crossover(spec: &MachineSpec) -> Vec<crate::Outcome> {
    let thr = spec.network.eager_threshold;
    let at = measured_one_way_s(spec, thr, false);
    let above = measured_one_way_s(spec, thr + 1, false);
    let exp_at = expected_eager_s(spec, thr);
    let exp_above = expected_rendezvous_s(spec, thr + 1, true);
    vec![
        crate::Outcome::compare(
            format!("{}: t(threshold) is eager", spec.name),
            exp_at,
            at,
            TOL_TIME,
        ),
        crate::Outcome::compare(
            format!("{}: t(threshold+1) is rendezvous (cold)", spec.name),
            exp_above,
            above,
            TOL_TIME,
        ),
        crate::Outcome::compare(
            format!("{}: crossover jump", spec.name),
            exp_above - exp_at,
            above - at,
            1e-3,
        ),
    ]
}

/// Turbo tables: under `Performance{turbo}` with k heavy cores of a given
/// license on one socket, the core frequency must equal the spec's table
/// entry bit for bit; `Auto` uncore must snap to the range edges.
pub fn turbo_ladder(spec: &MachineSpec) -> Vec<crate::Outcome> {
    let mut out = Vec::new();
    let cores_per_socket = spec.numa_per_socket * spec.cores_per_numa;
    for lic in [License::Normal, License::Avx2, License::Avx512] {
        let table = &spec.turbo_table[lic.index()];
        let mut worst = 0.0f64;
        let mut detail = String::new();
        for k in 1..=cores_per_socket {
            let mut f = FreqModel::new(
                spec,
                Governor::Performance { turbo: true },
                UncorePolicy::Auto,
            );
            for c in 0..k {
                f.set_activity(CoreId(c), Activity::Heavy(lic));
            }
            let expected = table[(k as usize - 1).min(table.len() - 1)];
            let got = f.core_freq(CoreId(0));
            let diff = (got - expected).abs();
            if diff > worst {
                worst = diff;
                detail = format!(
                    "k={}: table says {} GHz, model says {} GHz",
                    k, expected, got
                );
            }
        }
        if worst == 0.0 {
            detail = format!("all {} active-core counts match the table", cores_per_socket);
        }
        out.push(crate::Outcome::exact(
            format!("{}: turbo ladder ({:?})", spec.name, lic),
            worst,
            detail,
        ));
    }
    // Without turbo, heavy work runs at base unless the license floor is
    // lower (AVX512 can force the clock below base).
    let mut f = FreqModel::new(
        spec,
        Governor::Performance { turbo: false },
        UncorePolicy::Auto,
    );
    for c in 0..cores_per_socket {
        f.set_activity(CoreId(c), Activity::Heavy(License::Avx512));
    }
    let floor = *spec.turbo_table[License::Avx512.index()]
        .last()
        .expect("non-empty table");
    out.push(crate::Outcome::exact(
        format!("{}: no-turbo license floor", spec.name),
        (f.core_freq(CoreId(0)) - spec.base_freq.min(floor)).abs(),
        format!(
            "all-cores AVX512 without turbo: expected {} GHz",
            spec.base_freq.min(floor)
        ),
    ));
    // Auto uncore: minimum when the package idles, maximum when any core
    // is active.
    let mut f = FreqModel::new(
        spec,
        Governor::Performance { turbo: true },
        UncorePolicy::Auto,
    );
    let idle = f.uncore_freq();
    f.set_activity(CoreId(0), Activity::Light);
    let busy = f.uncore_freq();
    out.push(crate::Outcome::exact(
        format!("{}: auto uncore snaps to range edges", spec.name),
        (idle - spec.uncore_range.0).abs() + (busy - spec.uncore_range.1).abs(),
        format!(
            "idle {} / busy {} GHz vs range {:?}",
            idle, busy, spec.uncore_range
        ),
    ));
    out
}

/// Memory-channel saturation: k cores streaming from their local controller
/// aggregate to `min(k·per_core_bw, mem_bw_at_uncore)`, each getting an
/// equal share; and driven through the event loop, k equal transfers all
/// complete at `k·V / aggregate` once the channel saturates.
pub fn mem_saturation(spec: &MachineSpec) -> Vec<crate::Outcome> {
    let mut out = Vec::new();
    let numa = NumaId(0);
    let cores = spec.cores_of_numa(numa);
    for k in [1usize, 2, cores.len()] {
        let mut engine = Engine::new();
        let mem = MemSystem::build(&mut engine, spec, "n0.");
        let freqs = FreqModel::new(
            spec,
            Governor::Userspace(spec.base_freq),
            UncorePolicy::Fixed(spec.uncore_range.1),
        );
        mem.apply_freqs(&mut engine, &freqs);
        let channel = spec.mem_bw_at_uncore(spec.uncore_range.1);
        let aggregate = (k as f64 * spec.per_core_bw).min(channel);
        // Volume sized for ~1 ms of streaming: picosecond quantisation is
        // then ≲ 1e-9 relative on the completion time.
        let volume = aggregate * 1e-3 / k as f64;
        let ids: Vec<_> = (0..k)
            .map(|i| {
                engine.start_flow(FlowSpec {
                    path: mem.path(memsim::Requester::Core(cores[i]), numa),
                    volume,
                    weight: 1.0,
                    cap: mem.requester_cap(memsim::Requester::Core(cores[i])),
                    tag: i as u64,
                })
            })
            .collect();
        let per_flow: f64 = ids
            .iter()
            .map(|&id| engine.flow_rate(id).expect("live flow"))
            .sum::<f64>()
            / k as f64;
        out.push(crate::Outcome::compare(
            format!("{}: {} streaming core(s) per-flow rate", spec.name, k),
            aggregate / k as f64,
            per_flow,
            TOL_RATE,
        ));
        while engine.next().is_some() {}
        out.push(crate::Outcome::compare(
            format!("{}: {} streaming core(s) drain time", spec.name, k),
            k as f64 * volume / aggregate,
            engine.now().as_secs_f64(),
            1e-6,
        ));
    }
    out
}

/// Independent water-filling: max-min shares of one capacity among
/// weighted, optionally capped flows. Deliberately a different algorithm
/// (sorted cap-levels sweep) than the solver's progressive filling.
pub fn waterfill(capacity: f64, flows: &[(f64, Option<f64>)]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..flows.len()).collect();
    let level_of = |i: usize| match flows[i].1 {
        Some(c) => c / flows[i].0,
        None => f64::INFINITY,
    };
    order.sort_by(|&a, &b| level_of(a).partial_cmp(&level_of(b)).expect("finite"));
    let mut rates = vec![0.0; flows.len()];
    let mut remaining = capacity;
    let mut wsum: f64 = flows.iter().map(|f| f.0).sum();
    for &i in &order {
        let (w, _) = flows[i];
        let line = remaining / wsum;
        if level_of(i) <= line {
            // This flow saturates below the waterline: it takes its cap and
            // leaves the rest to share.
            rates[i] = flows[i].1.expect("finite level implies cap");
            remaining -= rates[i];
            wsum -= w;
        } else {
            // The waterline is final for this and every later (higher-cap)
            // flow.
            rates[i] = w * line;
        }
    }
    rates
}

/// Max-min link shares: n weighted/capped flows on the preset's wire must
/// match the independent water-filling calculation, and the uncapped
/// special case must match the exact weighted shares.
pub fn maxmin_shares(spec: &MachineSpec) -> Vec<crate::Outcome> {
    let mut out = Vec::new();
    let c = spec.network.link_bw;
    // Exact weighted shares, no caps.
    let weights = [1.0, 2.0, spec.network.nic_dma_weight, 4.0];
    let wsum: f64 = weights.iter().sum();
    let mut net = simcore::FluidNet::new();
    let link = net.add_resource("link", c);
    let ids: Vec<_> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            net.start_flow(FlowSpec {
                path: vec![link],
                volume: 1e15,
                weight: w,
                cap: None,
                tag: i as u64,
            })
        })
        .collect();
    net.reallocate();
    let mut worst = 0.0f64;
    for (i, &id) in ids.iter().enumerate() {
        let expect = weights[i] * c / wsum;
        let got = net.flow_rate(id).expect("live flow");
        worst = worst.max((got - expect).abs() / expect);
    }
    out.push(crate::Outcome::bound(
        format!("{}: weighted shares of the wire (worst rel err)", spec.name),
        worst,
        TOL_RATE,
    ));
    // Randomised weights and caps vs the independent water-fill sweep.
    let mut rng = Pcg32::new(0x5ec0_11ecu64.wrapping_add(spec.network.link_bw.to_bits()), 7);
    for trial in 0..4u32 {
        let n = 3 + rng.below(6) as usize;
        let flows: Vec<(f64, Option<f64>)> = (0..n)
            .map(|_| {
                let w = 0.25 + 3.75 * rng.next_f64();
                let cap = if rng.next_f64() < 0.5 {
                    // Between 5 % and 60 % of the link: some flows cap out
                    // below the waterline, some above.
                    Some(c * (0.05 + 0.55 * rng.next_f64()))
                } else {
                    None
                };
                (w, cap)
            })
            .collect();
        let expect = waterfill(c, &flows);
        let mut net = simcore::FluidNet::new();
        let link = net.add_resource("link", c);
        let ids: Vec<_> = flows
            .iter()
            .enumerate()
            .map(|(i, &(w, cap))| {
                net.start_flow(FlowSpec {
                    path: vec![link],
                    volume: 1e15,
                    weight: w,
                    cap,
                    tag: i as u64,
                })
            })
            .collect();
        net.reallocate();
        let mut worst = 0.0f64;
        for (i, &id) in ids.iter().enumerate() {
            let got = net.flow_rate(id).expect("live flow");
            worst = worst.max((got - expect[i]).abs() / expect[i].abs().max(1e-30));
        }
        out.push(crate::Outcome::bound(
            format!(
                "{}: water-fill trial {} ({} flows, worst rel err)",
                spec.name, trial, n
            ),
            worst,
            TOL_RATE,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{henri, tiny2x2};

    #[test]
    fn eager_oracle_holds_on_henri() {
        for o in eager_alpha_beta(&henri()) {
            assert!(o.pass, "{}: {}", o.name, o.detail);
        }
    }

    #[test]
    fn rendezvous_and_threshold_oracles_hold_on_henri() {
        for o in rendezvous_bandwidth(&henri())
            .into_iter()
            .chain(threshold_crossover(&henri()))
        {
            assert!(o.pass, "{}: {}", o.name, o.detail);
        }
    }

    #[test]
    fn turbo_and_fluid_oracles_hold_on_tiny() {
        let spec = tiny2x2();
        for o in turbo_ladder(&spec)
            .into_iter()
            .chain(mem_saturation(&spec))
            .chain(maxmin_shares(&spec))
        {
            assert!(o.pass, "{}: {}", o.name, o.detail);
        }
    }

    #[test]
    fn waterfill_matches_hand_computed_shares() {
        // C=10, weights 1/1/2, middle flow capped at 1: capped flow takes 1,
        // the rest split 9 at 1:2 → 3 and 6.
        let r = waterfill(10.0, &[(1.0, None), (1.0, Some(1.0)), (2.0, None)]);
        assert!((r[0] - 3.0).abs() < 1e-12);
        assert!((r[1] - 1.0).abs() < 1e-12);
        assert!((r[2] - 6.0).abs() < 1e-12);
    }
}
