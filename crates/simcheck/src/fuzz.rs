//! Differential scenario fuzzer.
//!
//! Each budgeted seed generates a random scenario (random small resource
//! topology + traffic script) and replays it four ways:
//!
//! 1. under the **incremental** solver (production path),
//! 2. under the **from-scratch reference** solver — results must be
//!    bit-identical, because both call the same `solve_region` kernel on
//!    the same flow sets (the incremental solver's whole contract);
//! 3. through a real **engine** on both timer queues — the hierarchical
//!    timing wheel and the retained binary-heap reference must deliver a
//!    bit-identical event stream (times, kinds, tags, delivered floats),
//!    with echo-timer churn generating cancellations at every depth;
//! 4. under a **permuted insertion order** of same-instant flow starts —
//!    results must agree within [`crate::metamorphic::TOL_META`] (flow
//!    slab order changes float summation order, nothing else).
//!
//! Any violation (or a stalled replay) is shrunk to a minimal script by
//! greedy event deletion and reported with the full reproduction recipe.

use simcore::Pcg32;

use crate::metamorphic::TOL_META;
use crate::scenario::{
    replay, replay_engine, EngineReplay, Ev, GenConfig, Op, QueueKind, Replay, Scenario, Solver,
};

/// A failing scenario reduced to a minimal script.
#[derive(Clone, Debug)]
pub struct ShrunkFailure {
    /// Seed the scenario was generated from.
    pub seed: u64,
    /// What went wrong (first divergence).
    pub reason: String,
    /// Events in the scenario as generated.
    pub events_before: usize,
    /// Events after shrinking.
    pub events_after: usize,
    /// Rendered minimal script (replayable recipe).
    pub script: String,
}

/// Aggregate fuzzing result.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Scenarios executed.
    pub scenarios: usize,
    /// Shrunk failures (empty on a healthy solver).
    pub failures: Vec<ShrunkFailure>,
}

/// Permute the *order* of same-instant `Start` events (other ops keep
/// their positions; `Start`s are redistributed among the `Start` slots of
/// their timestamp group). `Cancel`/`SetFlowCap` references follow their
/// targets. The generator guarantees references only point at strictly
/// earlier timestamps, so this reordering is semantics-preserving.
fn permute_insertion_order(sc: &Scenario, seed: u64) -> Scenario {
    let mut rng = Pcg32::new(seed, 0x0bde);
    let mut events = sc.events.clone();
    let mut remap: Vec<usize> = (0..events.len()).collect();
    let mut i = 0usize;
    while i < events.len() {
        let mut j = i;
        while j < events.len() && events[j].t_ps == events[i].t_ps {
            j += 1;
        }
        let slots: Vec<usize> = (i..j)
            .filter(|&k| matches!(events[k].op, Op::Start { .. }))
            .collect();
        if slots.len() > 1 {
            let mut order = slots.clone();
            for k in (1..order.len()).rev() {
                order.swap(k, rng.below(k as u32 + 1) as usize);
            }
            let originals: Vec<Ev> = order.iter().map(|&k| events[k].clone()).collect();
            for (slot, (src, ev)) in slots.iter().zip(order.iter().zip(originals)) {
                events[*slot] = ev;
                remap[*src] = *slot;
            }
        }
        i = j;
    }
    let mut permuted = Scenario {
        capacities: sc.capacities.clone(),
        events,
    };
    for ev in &mut permuted.events {
        match &mut ev.op {
            Op::Cancel { start_ev } | Op::SetFlowCap { start_ev, .. } => {
                *start_ev = remap[*start_ev];
            }
            _ => {}
        }
    }
    permuted
}

/// Exact differential comparison (incremental vs reference).
fn differ_exact(a: &Replay, b: &Replay) -> Option<String> {
    if a.completions.len() != b.completions.len() {
        return Some(format!(
            "solver divergence: {} vs {} completions",
            a.completions.len(),
            b.completions.len()
        ));
    }
    for (x, y) in a.completions.iter().zip(&b.completions) {
        if x.0 != y.0 || x.1.to_bits() != y.1.to_bits() {
            return Some(format!(
                "solver divergence at completion of [{}]: {:e} vs {:e}",
                x.0, x.1, y.1
            ));
        }
    }
    for (sa, sb) in a.snapshots.iter().zip(&b.snapshots) {
        for (fa, fb) in sa.1.iter().zip(&sb.1) {
            if fa.0 != fb.0 || fa.1.to_bits() != fb.1.to_bits() {
                return Some(format!(
                    "solver rate divergence at t={} ps, flow [{}]",
                    sa.0, fa.0
                ));
            }
        }
    }
    None
}

/// Exact differential comparison of engine-level replays (timing wheel vs
/// heap reference queue): the delivered event stream *is* the simulation,
/// so every `(time, kind, tag)` triple and every delivered float must
/// match bitwise.
fn differ_engine(a: &EngineReplay, b: &EngineReplay) -> Option<String> {
    if a.events.len() != b.events.len() {
        return Some(format!(
            "queue divergence: {} vs {} engine events",
            a.events.len(),
            b.events.len()
        ));
    }
    for (i, (x, y)) in a.events.iter().zip(&b.events).enumerate() {
        if x != y {
            return Some(format!(
                "queue divergence at engine event {}: {:?} (wheel) vs {:?} (heap)",
                i, x, y
            ));
        }
    }
    for (i, (da, db)) in a.delivered.iter().zip(&b.delivered).enumerate() {
        if da.to_bits() != db.to_bits() {
            return Some(format!(
                "queue divergence: delivered on r{}: {:e} vs {:e}",
                i, da, db
            ));
        }
    }
    None
}

/// Tolerant comparison (baseline vs permuted insertion order): completion
/// *sets* must match with times within tolerance.
fn differ_tolerant(a: &Replay, b: &Replay) -> Option<String> {
    // The permutation relabels same-instant starts; match by completion
    // count and per-resource delivered totals (which are label-free).
    if a.completions.len() != b.completions.len() {
        return Some(format!(
            "insertion-order divergence: {} vs {} completions",
            a.completions.len(),
            b.completions.len()
        ));
    }
    for (i, (da, db)) in a.delivered.iter().zip(&b.delivered).enumerate() {
        let rel = (da - db).abs() / da.abs().max(db.abs()).max(1e-30);
        if rel > TOL_META {
            return Some(format!(
                "insertion-order divergence: delivered on r{}: {} vs {} (rel {:.3e})",
                i, da, db, rel
            ));
        }
    }
    let mut ta: Vec<f64> = a.completions.iter().map(|&(_, t)| t).collect();
    let mut tb: Vec<f64> = b.completions.iter().map(|&(_, t)| t).collect();
    ta.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    tb.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
    for (x, y) in ta.iter().zip(&tb) {
        let rel = (x - y).abs() / x.abs().max(y.abs()).max(1e-30);
        if rel > TOL_META {
            return Some(format!(
                "insertion-order divergence: completion time {} vs {} (rel {:.3e})",
                x, y, rel
            ));
        }
    }
    None
}

/// Run the full differential check on one scenario.
fn check(sc: &Scenario, seed: u64) -> Option<String> {
    let inc = replay(sc, Solver::Incremental);
    if inc.stalled {
        return Some("incremental replay stalled".into());
    }
    let reference = replay(sc, Solver::Reference);
    if reference.stalled {
        return Some("reference replay stalled".into());
    }
    if let Some(why) = differ_exact(&inc, &reference) {
        return Some(why);
    }
    let wheel = replay_engine(sc, QueueKind::Wheel);
    if wheel.stalled {
        return Some("engine replay (wheel) stalled".into());
    }
    let heap = replay_engine(sc, QueueKind::HeapReference);
    if heap.stalled {
        return Some("engine replay (heap) stalled".into());
    }
    if let Some(why) = differ_engine(&wheel, &heap) {
        return Some(why);
    }
    let permuted = permute_insertion_order(sc, seed);
    let per = replay(&permuted, Solver::Incremental);
    if per.stalled {
        return Some("permuted replay stalled".into());
    }
    differ_tolerant(&inc, &per)
}

/// Greedy delta-debugging: drop one event at a time while the failure
/// persists, to a fixed point. Dangling `Cancel`/`SetFlowCap` references
/// become no-ops, so every subset script stays well-formed.
fn shrink(sc: &Scenario, seed: u64) -> Scenario {
    let mut best = sc.clone();
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < best.events.len() {
            let mut candidate = best.clone();
            candidate.events.remove(i);
            if check(&candidate, seed).is_some() {
                best = candidate;
                improved = true;
            } else {
                i += 1;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Fuzz `budget` scenarios starting from `base_seed`. Failures are shrunk
/// and returned; callers decide how to surface them (check details, files
/// under `SIMCHECK_FAILURE_DIR`, …).
pub fn run(base_seed: u64, budget: usize, cfg: &GenConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    let mut seeds = simcore::SplitMix64::new(base_seed ^ 0xf022);
    for _ in 0..budget {
        let seed = seeds.next_u64();
        let sc = Scenario::generate(seed, cfg);
        report.scenarios += 1;
        if let Some(reason) = check(&sc, seed) {
            let minimal = shrink(&sc, seed);
            report.failures.push(ShrunkFailure {
                seed,
                reason: check(&minimal, seed).unwrap_or(reason),
                events_before: sc.events.len(),
                events_after: minimal.events.len(),
                script: minimal.render(),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_solver_survives_a_fuzz_batch() {
        let report = run(0xd1ff, 60, &GenConfig::default());
        assert_eq!(report.scenarios, 60);
        assert!(
            report.failures.is_empty(),
            "unexpected failure: {} (script:\n{})",
            report.failures[0].reason,
            report.failures[0].script
        );
    }

    #[test]
    fn shrinker_reduces_an_injected_divergence() {
        // Break the comparison itself (a predicate that "fails" whenever two
        // or more Starts exist) to prove shrinking converges to a minimal
        // script. We emulate by shrinking against a synthetic predicate.
        let sc = Scenario::generate(42, &GenConfig::default());
        let fails = |s: &Scenario| {
            s.events
                .iter()
                .filter(|e| matches!(e.op, Op::Start { .. }))
                .count()
                >= 2
        };
        assert!(fails(&sc), "seed 42 should generate ≥ 2 starts");
        // Inline greedy shrink against the synthetic predicate.
        let mut best = sc.clone();
        loop {
            let mut improved = false;
            let mut i = 0;
            while i < best.events.len() {
                let mut cand = best.clone();
                cand.events.remove(i);
                if fails(&cand) {
                    best = cand;
                    improved = true;
                } else {
                    i += 1;
                }
            }
            if !improved {
                break;
            }
        }
        let starts = best
            .events
            .iter()
            .filter(|e| matches!(e.op, Op::Start { .. }))
            .count();
        assert_eq!(best.events.len(), 2, "minimal script is exactly 2 events");
        assert_eq!(starts, 2);
    }

    #[test]
    fn insertion_order_permutation_preserves_semantics() {
        for seed in 0..30u64 {
            let sc = Scenario::generate(seed, &GenConfig::default());
            let p = permute_insertion_order(&sc, seed);
            assert_eq!(p.events.len(), sc.events.len());
            let a = replay(&sc, Solver::Incremental);
            let b = replay(&p, Solver::Incremental);
            assert!(
                differ_tolerant(&a, &b).is_none(),
                "seed {} diverged under reordering",
                seed
            );
        }
    }
}
