//! Acceptance test for oracle sensitivity: a deliberately perturbed machine
//! constant must trip the corresponding oracle.
//!
//! On stock `henri` the eager path is PIO-bound (4 B/cycle · 2.3 GHz =
//! 9.2 GB/s < 10.8 GB/s DMA < 12.08 GB/s link) and the rendezvous path is
//! DMA-bound, so perturbing `link_bw` there would change nothing. We
//! therefore lower `link_bw` below the DMA bandwidth first — making the
//! link the honest bottleneck — compute the oracle expectations from that
//! spec, then simulate with the link quietly made 1% faster. The
//! rendezvous-bandwidth oracle must notice.

use simcheck::oracles;
use topology::presets;

/// Clone henri with a link slow enough to be the rendezvous bottleneck.
fn link_bound_henri() -> topology::MachineSpec {
    let mut spec = presets::henri();
    spec.network.link_bw = 9.0e9;
    spec
}

#[test]
fn unperturbed_link_bound_machine_passes_all_oracles() {
    let spec = link_bound_henri();
    for kind in oracles::OracleKind::ALL {
        for o in kind.run(&spec) {
            assert!(o.pass, "{} failed on honest machine: {}", o.name, o.detail);
        }
    }
}

#[test]
fn one_percent_link_bandwidth_perturbation_trips_rendezvous_oracle() {
    let honest = link_bound_henri();
    // Expectations from the honest spec; measurements from a machine whose
    // link is 1% faster than the spec admits.
    let mut perturbed = honest.clone();
    perturbed.network.link_bw *= 1.01;

    let size = 8 * 1024 * 1024;
    let expected = oracles::expected_rendezvous_s(&honest, size, false);
    let actual = oracles::measured_one_way_s(&perturbed, size, true);
    let outcome = simcheck::Outcome::compare(
        "perturbed: rdv t(8 MiB)",
        expected,
        actual,
        oracles::TOL_TIME,
    );
    assert!(
        !outcome.pass,
        "a +1% link-bandwidth drift went unnoticed: {}",
        outcome.detail
    );
    // The observed error should be roughly the injected 1%, not noise.
    assert!(
        outcome.rel_err > 5e-3,
        "trip margin suspiciously small: {}",
        outcome.detail
    );
}

#[test]
fn one_percent_dma_bandwidth_perturbation_trips_rendezvous_oracle_on_stock_henri() {
    let honest = presets::henri();
    let mut perturbed = honest.clone();
    perturbed.network.dma_bw *= 1.01;

    let size = 8 * 1024 * 1024;
    let expected = oracles::expected_rendezvous_s(&honest, size, false);
    let actual = oracles::measured_one_way_s(&perturbed, size, true);
    let outcome = simcheck::Outcome::compare(
        "perturbed: rdv t(8 MiB) dma",
        expected,
        actual,
        oracles::TOL_TIME,
    );
    assert!(
        !outcome.pass,
        "a +1% DMA-bandwidth drift went unnoticed: {}",
        outcome.detail
    );
}

#[test]
fn all_presets_pass_all_oracles() {
    let outcomes = oracles::run_all_presets();
    assert!(!outcomes.is_empty());
    let failures: Vec<&simcheck::Outcome> = outcomes.iter().filter(|o| !o.pass).collect();
    assert!(
        failures.is_empty(),
        "oracle failures: {:?}",
        failures
            .iter()
            .map(|o| format!("{}: {}", o.name, o.detail))
            .collect::<Vec<_>>()
    );
}
