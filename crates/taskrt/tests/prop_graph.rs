//! Property tests for the task runtime: topological execution order, no
//! lost tasks, and worker accounting under random DAGs.

use freq::{Governor, License, UncorePolicy};
use memsim::exec::Phase;
use mpisim::Cluster;
use proptest::prelude::*;
use taskrt::{RtRouted, Runtime, RuntimeConfig, TaskId, TaskSpec};
use topology::{henri, BindingPolicy, CoreId, NumaId, Placement};

fn cluster() -> Cluster {
    Cluster::new(
        &henri(),
        Governor::Userspace(2.3),
        UncorePolicy::Fixed(2.4),
        Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::NearNic,
        },
    )
}

fn phase(flops: f64) -> Phase {
    Phase {
        flops,
        bytes: 0.0,
        data: NumaId(0),
        license: License::Normal,
    }
}

/// A random DAG: each task may depend on a subset of earlier tasks.
#[derive(Debug, Clone)]
struct Dag {
    /// deps[i] ⊆ {0..i}
    deps: Vec<Vec<usize>>,
    work: Vec<f64>,
}

fn dag_strategy() -> impl Strategy<Value = Dag> {
    prop::collection::vec((any::<u64>(), 1.0f64..20.0), 1..20).prop_map(|seeds| {
        let n = seeds.len();
        let mut deps = Vec::with_capacity(n);
        for (i, (seed, _)) in seeds.iter().enumerate() {
            let mut d = Vec::new();
            let mut bits = *seed;
            for j in 0..i.min(8) {
                if bits & 1 == 1 {
                    d.push(i - 1 - j);
                }
                bits >>= 1;
            }
            deps.push(d);
        }
        Dag {
            deps,
            work: seeds.iter().map(|(_, w)| w * 1e5).collect(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every task of a random DAG executes exactly once, in an order
    /// consistent with the dependencies.
    #[test]
    fn dag_executes_topologically(dag in dag_strategy(), workers in 1usize..6) {
        let mut c = cluster();
        let mut rt = Runtime::new(RuntimeConfig::for_machine(&c.spec));
        let cores: Vec<CoreId> = c.compute_cores()[..workers].to_vec();
        rt.attach_workers(&mut c, 0, &cores);
        let mut ids: Vec<TaskId> = Vec::new();
        for (i, d) in dag.deps.iter().enumerate() {
            let deps: Vec<TaskId> = d.iter().map(|&j| ids[j]).collect();
            ids.push(rt.submit(&mut c, 0, TaskSpec {
                phases: vec![phase(dag.work[i])],
                deps,
            }));
        }
        let mut finish_order = Vec::new();
        while rt.pending_tasks(0) > 0 {
            let ev = c.step().expect("tasks pending but engine dry");
            if let RtRouted::TaskDone(t) = rt.handle(&mut c, ev) {
                finish_order.push(t.task);
            }
        }
        prop_assert_eq!(finish_order.len(), dag.deps.len());
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for t in &finish_order {
            prop_assert!(seen.insert(t.0), "task {} finished twice", t.0);
        }
        // Dependencies finish before dependents.
        let position: std::collections::HashMap<u32, usize> = finish_order
            .iter()
            .enumerate()
            .map(|(pos, t)| (t.0, pos))
            .collect();
        for (i, d) in dag.deps.iter().enumerate() {
            for &j in d {
                prop_assert!(
                    position[&ids[j].0] < position[&ids[i].0],
                    "dep {} must finish before {}", j, i
                );
            }
        }
    }

    /// Independent equal tasks on w workers exhibit near-ideal speedup in
    /// the pure-compute regime.
    #[test]
    fn independent_tasks_scale(workers in 1usize..8) {
        let tasks = 16usize;
        let flops = 2.3e7; // 10 ms at 2.3 GHz × 4 flops/cycle… ≈2.5 ms
        let elapsed_with = |w: usize| {
            let mut c = cluster();
            let mut rt = Runtime::new(RuntimeConfig::for_machine(&c.spec));
            let cores: Vec<CoreId> = c.compute_cores()[..w].to_vec();
            rt.attach_workers(&mut c, 0, &cores);
            for _ in 0..tasks {
                rt.submit(&mut c, 0, TaskSpec { phases: vec![phase(flops)], deps: vec![] });
            }
            while rt.pending_tasks(0) > 0 {
                let ev = c.step().expect("progress");
                rt.handle(&mut c, ev);
            }
            c.engine.now().as_secs_f64()
        };
        let t1 = elapsed_with(1);
        let tw = elapsed_with(workers);
        let speedup = t1 / tw;
        let ideal = workers.min(tasks) as f64;
        prop_assert!(speedup > 0.7 * ideal, "speedup {} ideal {}", speedup, ideal);
        prop_assert!(speedup < 1.1 * ideal);
    }

    /// Tasks submitted while paused run only after resume.
    #[test]
    fn paused_runtime_defers_tasks(n in 1usize..6) {
        let mut c = cluster();
        let mut rt = Runtime::new(RuntimeConfig::for_machine(&c.spec));
        let cores: Vec<CoreId> = c.compute_cores()[..2].to_vec();
        rt.attach_workers(&mut c, 0, &cores);
        rt.pause_workers(&mut c, 0);
        for _ in 0..n {
            rt.submit(&mut c, 0, TaskSpec { phases: vec![phase(1e5)], deps: vec![] });
        }
        // Drain: nothing can complete while paused.
        let mut done = 0;
        while let Some(ev) = c.step() {
            if let RtRouted::TaskDone(_) = rt.handle(&mut c, ev) {
                done += 1;
            }
        }
        prop_assert_eq!(done, 0, "tasks ran while paused");
        rt.resume_workers(&mut c, 0);
        while rt.pending_tasks(0) > 0 {
            let ev = c.step().expect("progress after resume");
            if let RtRouted::TaskDone(_) = rt.handle(&mut c, ev) {
                done += 1;
            }
        }
        prop_assert_eq!(done, n);
    }
}
