//! Distributed use-cases: dense CG and GEMM over two ranks (§6).
//!
//! Both programs mirror the paper's setup: the matrix is row-partitioned
//! across the two MPI processes, each iteration runs one panel of compute
//! tasks per worker and exchanges one message per direction (the updated
//! vector half for CG, a tile panel for GEMM). The execution parameters are
//! *independent of the worker count* — "regardless of the number of
//! computing cores, the execution parameters are the same: matrix sizes
//! and/or number of iterations, hence the amount of network communications
//! is also the same".
//!
//! The measured outputs reproduce Figure 10:
//!
//! * **sending bandwidth** from the communication library's profiler
//!   (bytes / time-to-drain-the-send, at the sender);
//! * **memory-stall fraction** of the compute tasks (the pmu-tools
//!   equivalent).

use freq::License;
use kernels::{cg, gemm};
use memsim::exec::Phase;
use mpisim::{Cluster, SendRecord};
use simcore::SimTime;
use topology::CoreId;

use crate::{RtRouted, Runtime, TaskSpec};

/// Which §6 kernel to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UseCase {
    /// Dense conjugate gradient (memory-bound, AI ≈ 0.25 flop/B).
    Cg,
    /// Dense matrix multiplication (compute-bound, AI ≈ 28 flop/B).
    Gemm,
}

/// Parameters of a distributed run.
#[derive(Clone, Copy, Debug)]
pub struct UseCaseConfig {
    /// Which kernel.
    pub kind: UseCase,
    /// Workers per node.
    pub workers: usize,
    /// Iterations (CG iterations / GEMM panel rounds).
    pub iterations: u32,
    /// Problem scale: CG system size `n`, or GEMM tile size.
    pub scale: usize,
}

impl UseCaseConfig {
    /// Paper-scale CG: n = 16384 → 64 KiB vector-half exchanges.
    pub fn cg(workers: usize, iterations: u32) -> UseCaseConfig {
        UseCaseConfig {
            kind: UseCase::Cg,
            workers,
            iterations,
            scale: 16_384,
        }
    }

    /// Paper-scale GEMM: 512-tiles, 8 MiB panel exchanges.
    pub fn gemm(workers: usize, iterations: u32) -> UseCaseConfig {
        UseCaseConfig {
            kind: UseCase::Gemm,
            workers,
            iterations,
            scale: 512,
        }
    }

    /// Bytes exchanged per direction per iteration.
    pub fn message_size(&self) -> usize {
        match self.kind {
            // Updated half-vector broadcast.
            UseCase::Cg => 8 * self.scale / 2,
            // A panel of 4 B-tiles.
            UseCase::Gemm => 4 * 8 * self.scale * self.scale,
        }
    }

    /// The compute phases of one node's iteration, split across `workers`
    /// tasks. Work per iteration is fixed; more workers → smaller tasks.
    fn tasks_per_iteration(&self, cluster: &Cluster, node: usize) -> Vec<Vec<Phase>> {
        let data = cluster.data_numa[node];
        match self.kind {
            UseCase::Cg => {
                let n = self.scale as f64;
                // This node owns n/2 rows: GEMV slice + vector ops, split
                // evenly across workers.
                let total_flops = n * n + 10.0 * n;
                let total_bytes = 4.0 * n * n + 56.0 * n;
                let w = self.workers as f64;
                (0..self.workers)
                    .map(|_| {
                        vec![Phase {
                            flops: total_flops / w,
                            bytes: total_bytes / w,
                            data,
                            license: License::Avx512,
                        }]
                    })
                    .collect()
            }
            UseCase::Gemm => {
                // A fixed panel of tile products per iteration, round-
                // robined across workers. More workers → more parallelism,
                // same total work. Unlike the CG matrix (allocated once at
                // init, hence homed on a single NUMA node), GEMM tiles are
                // first-touched by the workers and spread across NUMA
                // nodes — which is exactly why the paper sees GEMM's
                // communications suffer far less than CG's.
                // Tiles spread across the NUMA nodes of the first socket
                // (the panels are first-touched early, before workers fan
                // out across the second socket).
                let numa_count = cluster.spec.numa_per_socket.max(1);
                let tiles = 8.max(self.workers);
                let mut tasks: Vec<Vec<Phase>> = vec![Vec::new(); self.workers];
                for t in 0..tiles {
                    tasks[t % self.workers].extend(gemm::tile_phases_bursty(
                        self.scale,
                        topology::NumaId(t as u32 % numa_count),
                    ));
                }
                tasks.retain(|t| !t.is_empty());
                tasks
            }
        }
    }
}

/// Measured outputs of a distributed run (one Figure 10 x-position).
#[derive(Clone, Debug)]
pub struct UseCaseResult {
    /// All profiler records (one per message sent).
    pub sends: Vec<SendRecord>,
    /// Mean sending bandwidth, bytes/s.
    pub mean_send_bw: f64,
    /// Mean memory-stall fraction of compute tasks, in [0, 1].
    pub stall_fraction: f64,
    /// Total runtime.
    pub elapsed: SimTime,
    /// Tasks executed.
    pub tasks_done: usize,
}

/// Run a distributed use-case. Workers must already be attached to the
/// runtime on both nodes (exactly `cfg.workers` of them each).
pub fn run(cluster: &mut Cluster, rt: &mut Runtime, cfg: UseCaseConfig) -> UseCaseResult {
    assert!(cfg.workers >= 1);
    assert!(cfg.iterations >= 1);
    cluster.enable_profiling();
    let t0 = cluster.engine.now();
    let profile_start = cluster.send_profile().len();
    let mut stall_sum = 0.0;
    let mut tasks_done = 0usize;

    for iter in 0..cfg.iterations {
        // Submit this iteration's tasks on both nodes.
        let mut expected = 0usize;
        for node in 0..2 {
            for phases in cfg.tasks_per_iteration(cluster, node) {
                rt.submit(cluster, node, TaskSpec { phases, deps: vec![] });
                expected += 1;
            }
        }
        // Exchange one message per direction (recycled buffers).
        let mtag = 0x500 + iter;
        let r0 = cluster.irecv(0, mtag);
        let r1 = cluster.irecv(1, mtag);
        cluster.isend(0, cfg.message_size(), mtag, 0x7000);
        cluster.isend(1, cfg.message_size(), mtag, 0x7001);

        // Iteration barrier: all tasks done, both messages delivered.
        let mut done = 0usize;
        while done < expected || !cluster.test_recv(r0) || !cluster.test_recv(r1) {
            let ev = cluster.step().expect("use-case stalled");
            if let RtRouted::TaskDone(t) = rt.handle(cluster, ev) {
                stall_sum += t.stats.stall_fraction();
                tasks_done += 1;
                done += 1;
            }
        }
    }

    let sends: Vec<SendRecord> = cluster.send_profile()[profile_start..].to_vec();
    let mean_send_bw = if sends.is_empty() {
        0.0
    } else {
        sends.iter().map(|s| s.bandwidth()).sum::<f64>() / sends.len() as f64
    };
    UseCaseResult {
        mean_send_bw,
        stall_fraction: if tasks_done > 0 {
            stall_sum / tasks_done as f64
        } else {
            0.0
        },
        elapsed: cluster.engine.now() - t0,
        tasks_done,
        sends,
    }
}

/// Convenience: build a cluster-wide worker set of the first `n` compute
/// cores on both nodes.
pub fn attach_n_workers(cluster: &mut Cluster, rt: &mut Runtime, n: usize) {
    let cores: Vec<CoreId> = cluster.compute_cores()[..n].to_vec();
    rt.attach_workers(cluster, 0, &cores);
    rt.attach_workers(cluster, 1, &cores);
}

/// The paper's future-work idea, implemented as an extension: pick the
/// worker count that maximizes a combined throughput score (task throughput
/// × send bandwidth, both normalized) by sweeping candidate counts.
pub fn autotune_workers(
    make_cluster: impl Fn() -> Cluster,
    cfg_for: impl Fn(usize) -> UseCaseConfig,
    candidates: &[usize],
) -> (usize, Vec<(usize, f64)>) {
    assert!(!candidates.is_empty());
    let mut scores = Vec::new();
    let mut results = Vec::new();
    for &w in candidates {
        let mut cluster = make_cluster();
        let mut rt = Runtime::new(crate::RuntimeConfig::for_machine(&cluster.spec));
        attach_n_workers(&mut cluster, &mut rt, w);
        let res = run(&mut cluster, &mut rt, cfg_for(w));
        results.push((w, res.clone()));
        let _ = &res;
    }
    // Normalize: task throughput (tasks/s) and send bandwidth.
    let max_tp = results
        .iter()
        .map(|(_, r)| r.tasks_done as f64 / r.elapsed.as_secs_f64())
        .fold(0.0f64, f64::max);
    let max_bw = results.iter().map(|(_, r)| r.mean_send_bw).fold(0.0f64, f64::max);
    for (w, r) in &results {
        let tp = r.tasks_done as f64 / r.elapsed.as_secs_f64();
        let score = (tp / max_tp.max(1e-30)) * (r.mean_send_bw / max_bw.max(1e-30));
        scores.push((*w, score));
    }
    let best = scores
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty")
        .0;
    (best, scores)
}

/// Sanity hook: CG's modelled intensity must match the kernels crate.
pub fn cg_intensity(scale: usize) -> f64 {
    cg::iteration_intensity(scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuntimeConfig;
    use freq::{Governor, UncorePolicy};
    use topology::{henri, BindingPolicy, Placement};

    fn cluster() -> Cluster {
        Cluster::new(
            &henri(),
            Governor::Performance { turbo: true },
            UncorePolicy::Auto,
            Placement {
                comm_thread: BindingPolicy::FarFromNic,
                data: BindingPolicy::NearNic,
            },
        )
    }

    fn run_case(cfg: UseCaseConfig) -> UseCaseResult {
        let mut c = cluster();
        let mut rt = Runtime::new(RuntimeConfig::for_machine(&c.spec));
        attach_n_workers(&mut c, &mut rt, cfg.workers);
        run(&mut c, &mut rt, cfg)
    }

    #[test]
    fn cg_runs_and_reports() {
        let r = run_case(UseCaseConfig::cg(4, 2));
        assert_eq!(r.tasks_done, 2 * 2 * 4);
        assert_eq!(r.sends.len(), 2 * 2);
        assert!(r.mean_send_bw > 0.0);
        assert!(r.elapsed > SimTime::ZERO);
    }

    #[test]
    fn cg_more_workers_more_interference() {
        // Figure 10 top: send bandwidth decreases with worker count.
        let few = run_case(UseCaseConfig::cg(2, 2));
        let many = run_case(UseCaseConfig::cg(30, 2));
        assert!(
            many.mean_send_bw < few.mean_send_bw * 0.6,
            "few {} many {}",
            few.mean_send_bw,
            many.mean_send_bw
        );
        // Figure 10 bottom: stall fraction rises with worker count.
        assert!(many.stall_fraction > few.stall_fraction);
        assert!(many.stall_fraction > 0.5, "stall {}", many.stall_fraction);
    }

    #[test]
    fn gemm_less_affected_than_cg() {
        // §6: CG loses up to 90 %, GEMM at most ~20 %; CG stalls ~70 %,
        // GEMM ~20 %.
        let cg_few = run_case(UseCaseConfig::cg(2, 2));
        let cg_many = run_case(UseCaseConfig::cg(30, 2));
        let gm_few = run_case(UseCaseConfig::gemm(2, 2));
        let gm_many = run_case(UseCaseConfig::gemm(30, 2));
        let cg_loss = 1.0 - cg_many.mean_send_bw / cg_few.mean_send_bw;
        let gm_loss = 1.0 - gm_many.mean_send_bw / gm_few.mean_send_bw;
        assert!(cg_loss > gm_loss + 0.2, "cg {} gemm {}", cg_loss, gm_loss);
        assert!(cg_many.stall_fraction > gm_many.stall_fraction);
    }

    #[test]
    fn message_sizes() {
        assert_eq!(UseCaseConfig::cg(1, 1).message_size(), 64 * 1024);
        assert_eq!(UseCaseConfig::gemm(1, 1).message_size(), 8 << 20);
    }

    #[test]
    fn autotune_picks_a_candidate() {
        let (best, scores) = autotune_workers(
            cluster,
            |w| UseCaseConfig::cg(w, 1),
            &[2, 8, 20],
        );
        assert!(scores.iter().any(|(w, _)| *w == best));
        assert_eq!(scores.len(), 3);
        // Scores are normalized products: all within [0, 1].
        assert!(scores.iter().all(|(_, s)| (0.0..=1.0).contains(s)));
    }
}
