//! Ping-pong written against the task-runtime API (§5.2–§5.4).
//!
//! Messages routed through the runtime traverse extra software layers:
//! request lists, a worker handoff, the runtime's communication thread.
//! Per half ping-pong this adds (a) the configured per-message overhead
//! cycles, (b) two shared-list lock acquisitions whose delay grows with
//! worker polling pressure (Figure 9), and (c) a data-handle fetch whose
//! latency depends on the placement of the data relative to the
//! communication thread (Figure 8).

use memsim::Requester;
use mpisim::pingpong::{PingPongConfig, PingPongResult};
use mpisim::{Cluster, ClusterEvent};
use simcore::{kind_index, tags, SimTime};

use crate::{RtRouted, Runtime, KIND_DRIVER};

/// Run a StarPU-style ping-pong through the runtime.
pub fn run(cluster: &mut Cluster, rt: &mut Runtime, cfg: PingPongConfig) -> PingPongResult {
    run_with_background(cluster, rt, cfg, |_, _| {})
}

/// Like [`run`] but forwarding unrelated events (task completions, plain
/// job completions) to `background`.
pub fn run_with_background(
    cluster: &mut Cluster,
    rt: &mut Runtime,
    cfg: PingPongConfig,
    mut background: impl FnMut(&mut Cluster, RtRouted),
) -> PingPongResult {
    let mut half_rtts = Vec::with_capacity(cfg.reps as usize);
    let mut seq = 0u32;
    for rep in 0..(cfg.warmup + cfg.reps) {
        let t0 = cluster.engine.now();
        half(cluster, rt, &cfg, 0, 0x3000, &mut seq, &mut background);
        half(cluster, rt, &cfg, 1, 0x4000, &mut seq, &mut background);
        if rep >= cfg.warmup {
            half_rtts.push((cluster.engine.now() - t0) / 2);
        }
    }
    PingPongResult {
        size: cfg.size,
        half_rtts,
    }
}

/// One direction: runtime pre-processing, MPI transfer, runtime
/// post-processing on the receiver.
fn half(
    cluster: &mut Cluster,
    rt: &mut Runtime,
    cfg: &PingPongConfig,
    from: usize,
    buffer: u64,
    seq: &mut u32,
    background: &mut impl FnMut(&mut Cluster, RtRouted),
) {
    let to = 1 - from;
    let f = cluster.spec.light_freq_cap * 1e9;
    let half_overhead = SimTime::from_secs_f64(0.5 * rt.config().overhead_cycles / f);

    // Sender-side runtime stack: overhead + list lock + the data-handle /
    // request metadata walk. StarPU touches a dozen-plus cache lines of
    // handle state per message (data handle, request, tag table); when the
    // payload's NUMA node differs from the communication thread's, each is
    // a remote access — this is why Figure 8's dominant factor is the
    // co-location of data and communication thread.
    const HANDLE_LINES: f64 = 12.0;
    let handle_fetch = cluster.mem[from].access_latency(
        &mut cluster.engine,
        Requester::Core(cluster.comm_core[from]),
        cluster.data_numa[from],
    );
    let pre = half_overhead + rt.lock_delay(cluster, from) + handle_fetch * HANDLE_LINES;
    wait_driver(cluster, rt, pre, seq, background);

    let r = cluster.irecv(to, cfg.mtag);
    cluster.isend(from, cfg.size, cfg.mtag, buffer);
    loop {
        let ev = cluster.step().expect("ping-pong stalled");
        if let ClusterEvent::RecvComplete(rr) = ev {
            if rr == r {
                break;
            }
        }
        match rt.handle(cluster, ev) {
            RtRouted::Unhandled(ClusterEvent::RecvComplete(rr)) if rr == r => break,
            RtRouted::Unhandled(_) | RtRouted::Consumed => {}
            other => background(cluster, other),
        }
    }

    // Receiver-side runtime stack.
    let post = half_overhead + rt.lock_delay(cluster, to);
    wait_driver(cluster, rt, post, seq, background);
}

fn wait_driver(
    cluster: &mut Cluster,
    rt: &mut Runtime,
    delay: SimTime,
    seq: &mut u32,
    background: &mut impl FnMut(&mut Cluster, RtRouted),
) {
    *seq += 1;
    let want = *seq;
    cluster
        .engine
        .after(delay, simcore::tag(tags::ns::RUNTIME, kind_index(KIND_DRIVER, want)));
    loop {
        let ev = cluster.step().expect("driver timer lost");
        match rt.handle(cluster, ev) {
            RtRouted::Driver { index } if index == want => return,
            RtRouted::Consumed | RtRouted::Unhandled(_) => {}
            other => background(cluster, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuntimeConfig;
    use freq::{Governor, UncorePolicy};
    use topology::{henri, BindingPolicy, CoreId, Placement};

    fn cluster(data: BindingPolicy, thread: BindingPolicy) -> Cluster {
        Cluster::new(
            &henri(),
            Governor::Userspace(2.3),
            UncorePolicy::Fixed(2.4),
            Placement {
                comm_thread: thread,
                data,
            },
        )
    }

    fn plain_latency(c: &mut Cluster) -> f64 {
        mpisim::pingpong::run(c, PingPongConfig::latency(3)).median_latency_us()
    }

    #[test]
    fn runtime_adds_paper_scale_overhead() {
        // §5.2: +38 µs on henri.
        let mut c = cluster(BindingPolicy::NearNic, BindingPolicy::NearNic);
        let plain = plain_latency(&mut c);
        let mut rt = Runtime::new(RuntimeConfig::for_machine(&c.spec));
        let through_rt = run(&mut c, &mut rt, PingPongConfig::latency(3)).median_latency_us();
        let overhead = through_rt - plain;
        assert!((25.0..55.0).contains(&overhead), "overhead {} µs", overhead);
    }

    #[test]
    fn polling_backoff_orders_latency() {
        // Figure 9: latency(backoff 2) > latency(32) > latency(10000) ≈
        // latency(paused).
        let lat_with = |backoff: Option<u32>| {
            let mut c = cluster(BindingPolicy::NearNic, BindingPolicy::NearNic);
            let mut cfg = RuntimeConfig::for_machine(&c.spec);
            if let Some(b) = backoff {
                cfg.backoff_max_nops = b;
            }
            let mut rt = Runtime::new(cfg);
            let cores: Vec<CoreId> = c.compute_cores();
            rt.attach_workers(&mut c, 0, &cores.clone());
            rt.attach_workers(&mut c, 1, &cores);
            if backoff.is_none() {
                rt.pause_workers(&mut c, 0);
                rt.pause_workers(&mut c, 1);
            }
            run(&mut c, &mut rt, PingPongConfig::latency(3)).median_latency_us()
        };
        let aggressive = lat_with(Some(2));
        let default = lat_with(Some(32));
        let lazy = lat_with(Some(10_000));
        let paused = lat_with(None);
        assert!(aggressive > default, "{} vs {}", aggressive, default);
        assert!(default > lazy, "{} vs {}", default, lazy);
        assert!((lazy - paused).abs() / paused < 0.05, "{} vs {}", lazy, paused);
    }

    #[test]
    fn data_thread_colocation_matters_most() {
        // Figure 8: co-locating the data and the communication thread on
        // the same NUMA node gives the best latency.
        let lat = |data, thread| {
            let mut c = cluster(data, thread);
            let mut rt = Runtime::new(RuntimeConfig::for_machine(&c.spec));
            run(&mut c, &mut rt, PingPongConfig::latency(3)).median_latency_us()
        };
        let both_near = lat(BindingPolicy::NearNic, BindingPolicy::NearNic);
        let both_far = lat(BindingPolicy::FarFromNic, BindingPolicy::FarFromNic);
        let split = lat(BindingPolicy::FarFromNic, BindingPolicy::NearNic);
        // Same-NUMA (near/near) beats split placements.
        assert!(both_near < split, "{} vs {}", both_near, split);
        // Co-located far/far also beats the split (data fetch is local).
        assert!(both_far < split, "{} vs {}", both_far, split);
    }
}
