//! # taskrt — a StarPU-like task-based runtime over the simulated cluster
//!
//! Reproduces the runtime-system mechanisms the paper studies in §5:
//!
//! * **workers**: one thread per core executing tasks from a central ready
//!   list; idle workers **busy-wait** (poll) on the shared list with an
//!   exponential nop backoff (§5.4);
//! * the shared list is protected by a lock: aggressive polling raises the
//!   expected acquisition delay of every runtime operation — including the
//!   per-message bookkeeping of the communication thread, which is how
//!   polling inflates network latency on henri (Figure 9). On billy and
//!   pyxis the paper observes *no* impact ("different mechanisms to handle
//!   locking") — modelled by a zero lock-hold cost in their configs;
//! * idle polling also produces a small stream of coherence/memory traffic
//!   against the NUMA node holding the list;
//! * a per-message **software-stack overhead** (message lists, worker and
//!   communication-thread handoffs): +38 µs on henri, +23 µs on billy,
//!   +45 µs on pyxis (§5.2);
//! * **data-locality sensitivity** of the runtime messaging path (§5.3):
//!   fetching a small message's payload from a remote NUMA node adds delay.
//!
//! Tasks are dependency graphs ([`TaskSpec::deps`]); execution delegates to
//! the cluster's compute [`memsim::exec::Executor`], so all memory/frequency
//! interference applies to tasks exactly as to plain jobs.

#![warn(missing_docs)]

pub mod pingpong;
pub mod programs;

use std::collections::VecDeque;

use freq::Activity;
use memsim::exec::{JobId, JobSpec, JobStats, Phase};
use memsim::Requester;
use mpisim::{Cluster, ClusterEvent};
use simcore::telemetry::{self, Lane};
use simcore::{kind_index, split_kind_index, tags, FlowId, FlowSpec, SimTime};
use topology::{CoreId, MachineSpec, NumaId};

/// Effective bytes of memory/coherence traffic per poll of the task list
/// (most polls hit cache; this is the amortized miss traffic).
const POLL_BYTES: f64 = 8.0;

/// Runtime-event kinds (24-bit tag namespace): `node*16 + kind`.
const KIND_DISPATCH: u32 = 0;
/// Reserved for driver-level timers (StarPU ping-pong pre/post overheads).
pub const KIND_DRIVER: u32 = 15;

/// Per-node runtime configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Per-message software-stack overhead in cycles on the communication
    /// core (split half before send, half after delivery).
    pub overhead_cycles: f64,
    /// Maximum nops of the exponential backoff between unsuccessful polls
    /// (StarPU default 32; the paper sweeps 2 / 32 / 10000 / paused).
    pub backoff_max_nops: u32,
    /// Cycles per nop instruction.
    pub nop_cycles: f64,
    /// Cycles the list lock is held per acquisition (0 = contention-free
    /// locking, as observed on billy/pyxis).
    pub lock_hold_cycles: f64,
    /// Cycles to dispatch one task (queue pop + state updates).
    pub dispatch_cycles: f64,
    /// NUMA node holding the scheduler's shared task list.
    pub list_numa: NumaId,
}

impl RuntimeConfig {
    /// Calibrated configuration for a machine preset: the overhead matches
    /// the latency penalty the paper reports in §5.2 at the machine's
    /// communication-core frequency.
    pub fn for_machine(spec: &MachineSpec) -> RuntimeConfig {
        let (overhead_us, lock_hold) = match spec.name.as_str() {
            "henri" => (38.0, 100.0),
            "billy" => (23.0, 0.0),
            "pyxis" => (45.0, 0.0),
            "bora" => (38.0, 100.0),
            _ => (20.0, 100.0),
        };
        RuntimeConfig {
            overhead_cycles: overhead_us * 1e-6 * spec.light_freq_cap * 1e9,
            backoff_max_nops: 32,
            nop_cycles: 1.0,
            lock_hold_cycles: lock_hold,
            dispatch_cycles: 2_000.0,
            list_numa: NumaId(0),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TaskState {
    WaitingDeps,
    Ready,
    Running,
    Done,
}

/// Task handle within one node's runtime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TaskId(pub u32);

/// Specification of one task.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Compute phases of the task.
    pub phases: Vec<Phase>,
    /// Tasks (same node) that must complete first.
    pub deps: Vec<TaskId>,
}

struct Task {
    phases: Vec<Phase>,
    state: TaskState,
    remaining_deps: usize,
    dependents: Vec<TaskId>,
    stats: Option<JobStats>,
}

struct Worker {
    core: CoreId,
    busy: Option<TaskId>,
    poll_flow: Option<FlowId>,
    paused: bool,
}

struct NodeRt {
    workers: Vec<Worker>,
    tasks: Vec<Task>,
    ready: VecDeque<TaskId>,
    /// Executor job → task mapping.
    job_map: Vec<(JobId, TaskId)>,
    /// Tasks dispatched (timer in flight) but not yet running.
    dispatching: usize,
}

/// Completed-task notification.
#[derive(Clone, Debug)]
pub struct TaskDone {
    /// Node the task ran on.
    pub node: usize,
    /// Task handle.
    pub task: TaskId,
    /// Execution stats (stalls, bytes, duration).
    pub stats: JobStats,
}

/// The two-node runtime.
pub struct Runtime {
    cfg: RuntimeConfig,
    nodes: [NodeRt; 2],
}

impl Runtime {
    /// Create a runtime (no workers yet) with the given configuration.
    pub fn new(cfg: RuntimeConfig) -> Runtime {
        let mk = || NodeRt {
            workers: Vec::new(),
            tasks: Vec::new(),
            ready: VecDeque::new(),
            job_map: Vec::new(),
            dispatching: 0,
        };
        Runtime {
            cfg,
            nodes: [mk(), mk()],
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Attach polling workers on `cores` of `node`. Workers immediately
    /// start busy-waiting for tasks.
    pub fn attach_workers(&mut self, cluster: &mut Cluster, node: usize, cores: &[CoreId]) {
        for &core in cores {
            let mut w = Worker {
                core,
                busy: None,
                poll_flow: None,
                paused: false,
            };
            if cluster.freqs[node].set_activity(core, Activity::Light) {
                let (mem, freqs) = (&cluster.mem[node], &cluster.freqs[node]);
                mem.apply_freqs(&mut cluster.engine, freqs);
            }
            self.start_polling(cluster, node, &mut w);
            self.nodes[node].workers.push(w);
        }
    }

    /// Number of idle (actively polling) workers on a node.
    pub fn pollers(&self, node: usize) -> usize {
        self.nodes[node]
            .workers
            .iter()
            .filter(|w| w.busy.is_none() && !w.paused)
            .count()
    }

    /// Pause all workers (idle ones stop polling entirely — the paper's
    /// "paused workers" configuration).
    pub fn pause_workers(&mut self, cluster: &mut Cluster, node: usize) {
        let mut workers = std::mem::take(&mut self.nodes[node].workers);
        for w in &mut workers {
            w.paused = true;
            if let Some(flow) = w.poll_flow.take() {
                cluster.engine.cancel_flow(flow);
            }
            if w.busy.is_none() && cluster.freqs[node].set_activity(w.core, Activity::Idle) {
                let (mem, freqs) = (&cluster.mem[node], &cluster.freqs[node]);
                mem.apply_freqs(&mut cluster.engine, freqs);
            }
        }
        self.nodes[node].workers = workers;
    }

    /// Resume paused workers.
    pub fn resume_workers(&mut self, cluster: &mut Cluster, node: usize) {
        let mut workers = std::mem::take(&mut self.nodes[node].workers);
        for w in &mut workers {
            if w.paused {
                w.paused = false;
                if w.busy.is_none() {
                    if cluster.freqs[node].set_activity(w.core, Activity::Light) {
                        let (mem, freqs) = (&cluster.mem[node], &cluster.freqs[node]);
                        mem.apply_freqs(&mut cluster.engine, freqs);
                    }
                    self.start_polling(cluster, node, w);
                }
            }
        }
        self.nodes[node].workers = workers;
        self.dispatch_all(cluster, node);
    }

    /// Steady-state poll period of an idle worker, in cycles.
    fn poll_period_cycles(&self) -> f64 {
        self.cfg.backoff_max_nops as f64 * self.cfg.nop_cycles + self.cfg.lock_hold_cycles.max(1.0)
    }

    fn start_polling(&self, cluster: &mut Cluster, node: usize, w: &mut Worker) {
        if w.paused || w.busy.is_some() || w.poll_flow.is_some() {
            return;
        }
        let freq = cluster.freqs[node].core_freq(w.core) * 1e9;
        let rate = freq / self.poll_period_cycles() * POLL_BYTES;
        let path = cluster.mem[node].path(Requester::Core(w.core), self.cfg.list_numa);
        let flow = cluster.engine.start_flow(FlowSpec {
            path,
            volume: 1e18, // effectively endless; cancelled on state change
            weight: 0.05, // polling yields to real traffic in arbitration
            cap: Some(rate.max(1.0)),
            tag: simcore::tag(tags::ns::RUNTIME, kind_index(14, 0)), // never completes
        });
        w.poll_flow = Some(flow);
    }

    /// Expected delay to acquire the shared-list lock given current polling
    /// pressure: each acquisition waits behind the pollers that are
    /// mid-critical-section, `pollers × hold/period` on average.
    pub fn lock_delay(&self, cluster: &Cluster, node: usize) -> SimTime {
        if self.cfg.lock_hold_cycles <= 0.0 {
            return SimTime::ZERO;
        }
        let pollers = self.pollers(node) as f64;
        let period = self.poll_period_cycles();
        let waiters = (pollers * self.cfg.lock_hold_cycles / period).min(pollers);
        let f = cluster.spec.light_freq_cap * 1e9;
        SimTime::from_secs_f64(waiters * self.cfg.lock_hold_cycles / f)
    }

    /// Submit a task on a node. Dependencies must already be submitted.
    pub fn submit(&mut self, cluster: &mut Cluster, node: usize, spec: TaskSpec) -> TaskId {
        let id = TaskId(self.nodes[node].tasks.len() as u32);
        let mut remaining = 0;
        for &d in &spec.deps {
            let dep = &mut self.nodes[node].tasks[d.0 as usize];
            if dep.state != TaskState::Done {
                dep.dependents.push(id);
                remaining += 1;
            }
        }
        let state = if remaining == 0 {
            TaskState::Ready
        } else {
            TaskState::WaitingDeps
        };
        self.nodes[node].tasks.push(Task {
            phases: spec.phases,
            state,
            remaining_deps: remaining,
            dependents: Vec::new(),
            stats: None,
        });
        if state == TaskState::Ready {
            self.nodes[node].ready.push_back(id);
            self.dispatch_all(cluster, node);
        }
        id
    }

    /// True once the task completed.
    pub fn is_done(&self, node: usize, task: TaskId) -> bool {
        self.nodes[node].tasks[task.0 as usize].state == TaskState::Done
    }

    /// Stats of a completed task.
    pub fn task_stats(&self, node: usize, task: TaskId) -> Option<&JobStats> {
        self.nodes[node].tasks[task.0 as usize].stats.as_ref()
    }

    /// Count of tasks not yet done on a node.
    pub fn pending_tasks(&self, node: usize) -> usize {
        self.nodes[node]
            .tasks
            .iter()
            .filter(|t| t.state != TaskState::Done)
            .count()
    }

    /// Try to hand every ready task to a free worker. Dispatch is not
    /// instantaneous: the worker notices the task after half its poll
    /// period on average, plus the lock and dispatch costs.
    fn dispatch_all(&mut self, cluster: &mut Cluster, node: usize) {
        loop {
            if self.nodes[node].ready.is_empty() {
                return;
            }
            // Count workers not yet claimed by an in-flight dispatch.
            let free = self.nodes[node]
                .workers
                .iter()
                .filter(|w| w.busy.is_none() && !w.paused)
                .count();
            if free <= self.nodes[node].dispatching {
                return;
            }
            let task = self.nodes[node].ready.pop_front().expect("non-empty");
            let f = cluster.spec.light_freq_cap * 1e9;
            let half_poll = SimTime::from_secs_f64(0.5 * self.poll_period_cycles() / f);
            let lock = self.lock_delay(cluster, node);
            let dispatch = SimTime::from_secs_f64(self.cfg.dispatch_cycles / f);
            let delay = half_poll + lock + dispatch;
            telemetry::counter_add("rt.dispatches", 1);
            self.nodes[node].dispatching += 1;
            cluster.engine.after(
                delay,
                simcore::tag(
                    tags::ns::RUNTIME,
                    kind_index(node as u32 * 16 + KIND_DISPATCH, task.0),
                ),
            );
        }
    }

    /// Route a cluster event; see [`RtRouted`] for the possible outcomes.
    pub fn handle(&mut self, cluster: &mut Cluster, ev: ClusterEvent) -> RtRouted {
        match ev {
            ClusterEvent::JobDone { node, job, stats } => {
                let Some(pos) = self.nodes[node].job_map.iter().position(|(j, _)| *j == job)
                else {
                    return RtRouted::ForeignJob { node, job, stats };
                };
                let (_, task) = self.nodes[node].job_map.swap_remove(pos);
                // Free the worker and restart its polling.
                let core = stats.core;
                telemetry::end(
                    cluster.engine.now(),
                    "task",
                    Lane::Core {
                        node: node as u8,
                        core: core.0 as u16,
                    },
                );
                let mut workers = std::mem::take(&mut self.nodes[node].workers);
                for w in &mut workers {
                    if w.core == core {
                        w.busy = None;
                        if !w.paused {
                            if cluster.freqs[node].set_activity(core, Activity::Light) {
                                let (mem, freqs) = (&cluster.mem[node], &cluster.freqs[node]);
                                mem.apply_freqs(&mut cluster.engine, freqs);
                            }
                            self.start_polling(cluster, node, w);
                        }
                    }
                }
                self.nodes[node].workers = workers;
                // Mark done, release dependents.
                {
                    let t = &mut self.nodes[node].tasks[task.0 as usize];
                    t.state = TaskState::Done;
                    t.stats = Some(stats.clone());
                }
                let dependents =
                    std::mem::take(&mut self.nodes[node].tasks[task.0 as usize].dependents);
                for d in dependents {
                    let dep = &mut self.nodes[node].tasks[d.0 as usize];
                    dep.remaining_deps -= 1;
                    if dep.remaining_deps == 0 && dep.state == TaskState::WaitingDeps {
                        dep.state = TaskState::Ready;
                        self.nodes[node].ready.push_back(d);
                    }
                }
                self.dispatch_all(cluster, node);
                RtRouted::TaskDone(TaskDone { node, task, stats })
            }
            ClusterEvent::Other(ev) if simcore::namespace(ev.tag()) == tags::ns::RUNTIME => {
                let (kind, idx) = split_kind_index(simcore::payload(ev.tag()));
                let node = (kind / 16) as usize;
                let k = kind % 16;
                if k == KIND_DISPATCH {
                    self.on_dispatch(cluster, node, TaskId(idx));
                    RtRouted::Consumed
                } else if k == KIND_DRIVER {
                    RtRouted::Driver { index: idx }
                } else {
                    RtRouted::Consumed
                }
            }
            other => RtRouted::Unhandled(other),
        }
    }

    fn on_dispatch(&mut self, cluster: &mut Cluster, node: usize, task: TaskId) {
        self.nodes[node].dispatching -= 1;
        let Some(wi) = self.nodes[node]
            .workers
            .iter()
            .position(|w| w.busy.is_none() && !w.paused)
        else {
            // Workers were paused since scheduling: requeue.
            self.nodes[node].ready.push_front(task);
            return;
        };
        let core = self.nodes[node].workers[wi].core;
        if let Some(flow) = self.nodes[node].workers[wi].poll_flow.take() {
            cluster.engine.cancel_flow(flow);
        }
        self.nodes[node].workers[wi].busy = Some(task);
        self.nodes[node].tasks[task.0 as usize].state = TaskState::Running;
        if telemetry::is_active() {
            telemetry::begin(
                cluster.engine.now(),
                "task",
                &format!("task{}", task.0),
                Lane::Core {
                    node: node as u8,
                    core: core.0 as u16,
                },
            );
        }
        let phases = self.nodes[node].tasks[task.0 as usize].phases.clone();
        let job = cluster.start_job(
            node,
            JobSpec {
                core,
                phases,
                iterations: 1,
            },
        );
        self.nodes[node].job_map.push((job, task));
    }
}

/// Outcome of [`Runtime::handle`].
#[derive(Debug)]
pub enum RtRouted {
    /// A runtime task finished.
    TaskDone(TaskDone),
    /// The event was a runtime-internal timer; nothing for the caller.
    Consumed,
    /// A driver-reserved timer (StarPU ping-pong pre/post overheads).
    Driver {
        /// Driver-defined index.
        index: u32,
    },
    /// A job completion not owned by the runtime (plain cluster job).
    ForeignJob {
        /// Node index.
        node: usize,
        /// Job handle.
        job: JobId,
        /// Stats.
        stats: JobStats,
    },
    /// Any other event (message completions…).
    Unhandled(ClusterEvent),
}

#[cfg(test)]
mod tests {
    use super::*;
    use freq::{Governor, License, UncorePolicy};
    use topology::{henri, BindingPolicy, Placement};

    fn cluster() -> Cluster {
        Cluster::new(
            &henri(),
            Governor::Userspace(2.3),
            UncorePolicy::Fixed(2.4),
            Placement {
                comm_thread: BindingPolicy::NearNic,
                data: BindingPolicy::NearNic,
            },
        )
    }

    fn rt(cluster: &mut Cluster, workers: usize) -> Runtime {
        let mut r = Runtime::new(RuntimeConfig::for_machine(&cluster.spec));
        let cores: Vec<CoreId> = cluster.compute_cores()[..workers].to_vec();
        r.attach_workers(cluster, 0, &cores);
        r
    }

    fn phase(flops: f64, bytes: f64) -> Phase {
        Phase {
            flops,
            bytes,
            data: NumaId(0),
            license: License::Normal,
        }
    }

    fn drain(cluster: &mut Cluster, r: &mut Runtime) -> Vec<TaskDone> {
        let mut done = Vec::new();
        while r.pending_tasks(0) + r.pending_tasks(1) > 0 {
            let ev = cluster.step().expect("tasks pending but simulation dry");
            if let RtRouted::TaskDone(t) = r.handle(cluster, ev) {
                done.push(t);
            }
        }
        done
    }

    #[test]
    fn single_task_runs() {
        let mut c = cluster();
        let mut r = rt(&mut c, 2);
        let t = r.submit(
            &mut c,
            0,
            TaskSpec {
                phases: vec![phase(1e6, 0.0)],
                deps: vec![],
            },
        );
        let done = drain(&mut c, &mut r);
        assert_eq!(done.len(), 1);
        assert!(r.is_done(0, t));
        assert!(r.task_stats(0, t).is_some());
    }

    #[test]
    fn dependencies_respected() {
        let mut c = cluster();
        let mut r = rt(&mut c, 4);
        let a = r.submit(
            &mut c,
            0,
            TaskSpec {
                phases: vec![phase(1e7, 0.0)],
                deps: vec![],
            },
        );
        let b = r.submit(
            &mut c,
            0,
            TaskSpec {
                phases: vec![phase(1e6, 0.0)],
                deps: vec![a],
            },
        );
        let done = drain(&mut c, &mut r);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].task, a);
        assert_eq!(done[1].task, b);
    }

    #[test]
    fn diamond_graph() {
        let mut c = cluster();
        let mut r = rt(&mut c, 4);
        let a = r.submit(&mut c, 0, TaskSpec { phases: vec![phase(1e6, 0.0)], deps: vec![] });
        let b = r.submit(&mut c, 0, TaskSpec { phases: vec![phase(2e6, 0.0)], deps: vec![a] });
        let d = r.submit(&mut c, 0, TaskSpec { phases: vec![phase(1e6, 0.0)], deps: vec![a] });
        let e = r.submit(
            &mut c,
            0,
            TaskSpec {
                phases: vec![phase(1e6, 0.0)],
                deps: vec![b, d],
            },
        );
        let done = drain(&mut c, &mut r);
        assert_eq!(done.len(), 4);
        assert_eq!(done[0].task, a);
        assert_eq!(done.last().unwrap().task, e);
    }

    #[test]
    fn parallel_tasks_use_multiple_workers() {
        // 4 independent equal tasks on 4 workers finish in ~1 task time.
        let mut c = cluster();
        let mut r = rt(&mut c, 4);
        for _ in 0..4 {
            r.submit(
                &mut c,
                0,
                TaskSpec {
                    phases: vec![phase(9.2e7, 0.0)],
                    deps: vec![],
                },
            );
        }
        let _ = drain(&mut c, &mut r);
        let elapsed = c.engine.now().as_millis_f64();
        assert!(
            elapsed < 25.0,
            "elapsed {} ms — tasks did not run in parallel",
            elapsed
        );
    }

    #[test]
    fn more_tasks_than_workers_queue() {
        let mut c = cluster();
        let mut r = rt(&mut c, 2);
        for _ in 0..6 {
            r.submit(
                &mut c,
                0,
                TaskSpec {
                    phases: vec![phase(2.3e7, 0.0)],
                    deps: vec![],
                },
            );
        }
        let done = drain(&mut c, &mut r);
        assert_eq!(done.len(), 6);
        // 6 tasks over 2 workers ≈ 3 serial rounds.
        let elapsed = c.engine.now().as_millis_f64();
        assert!(elapsed > 6.0, "elapsed {} ms — queueing not respected", elapsed);
    }

    #[test]
    fn pollers_counted_and_paused() {
        let mut c = cluster();
        let mut r = rt(&mut c, 8);
        assert_eq!(r.pollers(0), 8);
        r.pause_workers(&mut c, 0);
        assert_eq!(r.pollers(0), 0);
        r.resume_workers(&mut c, 0);
        assert_eq!(r.pollers(0), 8);
    }

    #[test]
    fn lock_delay_orders_with_backoff() {
        let mk = |backoff: u32| {
            let mut c = cluster();
            let mut cfg = RuntimeConfig::for_machine(&c.spec);
            cfg.backoff_max_nops = backoff;
            let mut r = Runtime::new(cfg);
            let cores: Vec<CoreId> = c.compute_cores()[..16].to_vec();
            r.attach_workers(&mut c, 0, &cores);
            r.lock_delay(&c, 0)
        };
        let aggressive = mk(2);
        let default = mk(32);
        let lazy = mk(10_000);
        assert!(aggressive > default, "{:?} vs {:?}", aggressive, default);
        assert!(default > lazy);
        assert!(lazy < SimTime::from_nanos(100));
    }

    #[test]
    fn paused_workers_no_lock_delay() {
        let mut c = cluster();
        let mut r = rt(&mut c, 16);
        let before = r.lock_delay(&c, 0);
        r.pause_workers(&mut c, 0);
        let after = r.lock_delay(&c, 0);
        assert!(before > SimTime::ZERO);
        assert_eq!(after, SimTime::ZERO);
    }

    #[test]
    fn billy_style_locking_has_no_delay() {
        let mut c = Cluster::new(
            &topology::billy(),
            Governor::Userspace(2.5),
            UncorePolicy::Fixed(2.0),
            Placement {
                comm_thread: BindingPolicy::NearNic,
                data: BindingPolicy::NearNic,
            },
        );
        let mut r = Runtime::new(RuntimeConfig::for_machine(&c.spec));
        let cores: Vec<CoreId> = c.compute_cores()[..16].to_vec();
        r.attach_workers(&mut c, 0, &cores);
        assert_eq!(r.lock_delay(&c, 0), SimTime::ZERO);
    }

    #[test]
    fn memory_bound_task_records_stalls() {
        let mut c = cluster();
        let mut r = rt(&mut c, 9);
        for _ in 0..9 {
            r.submit(
                &mut c,
                0,
                TaskSpec {
                    phases: vec![phase(0.0, 1e9)],
                    deps: vec![],
                },
            );
        }
        let done = drain(&mut c, &mut r);
        assert_eq!(done.len(), 9);
        let mean_stall: f64 =
            done.iter().map(|d| d.stats.stall_fraction()).sum::<f64>() / done.len() as f64;
        assert!(mean_stall > 0.3, "stall {}", mean_stall);
    }

    #[test]
    fn submit_after_dep_done() {
        // Depending on an already-finished task must not deadlock.
        let mut c = cluster();
        let mut r = rt(&mut c, 2);
        let a = r.submit(&mut c, 0, TaskSpec { phases: vec![phase(1e5, 0.0)], deps: vec![] });
        let _ = drain(&mut c, &mut r);
        assert!(r.is_done(0, a));
        let b = r.submit(&mut c, 0, TaskSpec { phases: vec![phase(1e5, 0.0)], deps: vec![a] });
        let done = drain(&mut c, &mut r);
        assert_eq!(done.len(), 1);
        assert!(r.is_done(0, b));
    }
}
