//! Property-based tests for the max-min fluid allocator and the engine.

use proptest::prelude::*;
use simcore::{Engine, FlowSpec, FluidNet, ResourceId, SimTime};

/// A random allocation problem: resources with capacities, flows with paths,
/// weights and optional caps.
#[derive(Debug, Clone)]
struct Problem {
    capacities: Vec<f64>,
    flows: Vec<(Vec<usize>, f64, Option<f64>)>, // (path, weight, cap)
}

fn problem() -> impl Strategy<Value = Problem> {
    let caps = prop::collection::vec(1.0f64..1000.0, 1..6);
    caps.prop_flat_map(|capacities| {
        let nres = capacities.len();
        let flow = (
            prop::collection::btree_set(0..nres, 1..=nres.min(3)),
            0.1f64..8.0,
            prop::option::of(0.5f64..500.0),
        )
            .prop_map(|(path, w, cap)| (path.into_iter().collect::<Vec<_>>(), w, cap));
        prop::collection::vec(flow, 1..12).prop_map(move |flows| Problem {
            capacities: capacities.clone(),
            flows,
        })
    })
}

/// A started flow: id, path, weight, cap.
type Started = (simcore::FlowId, Vec<ResourceId>, f64, Option<f64>);

fn build(p: &Problem) -> (FluidNet, Vec<Started>) {
    let mut net = FluidNet::new();
    let rids: Vec<ResourceId> = p
        .capacities
        .iter()
        .enumerate()
        .map(|(i, &c)| net.add_resource(format!("r{}", i), c))
        .collect();
    let mut flows = Vec::new();
    for (i, (path, w, cap)) in p.flows.iter().enumerate() {
        let rpath: Vec<ResourceId> = path.iter().map(|&j| rids[j]).collect();
        let id = net.start_flow(FlowSpec {
            path: rpath.clone(),
            volume: 1e9,
            weight: *w,
            cap: *cap,
            tag: i as u64,
        });
        flows.push((id, rpath, *w, *cap));
    }
    net.reallocate();
    (net, flows)
}

proptest! {
    /// Feasibility: no resource is over-allocated, no cap is exceeded, and
    /// every rate is non-negative.
    #[test]
    fn allocation_is_feasible(p in problem()) {
        let (net, flows) = build(&p);
        for (ri, &cap) in p.capacities.iter().enumerate() {
            let total: f64 = flows
                .iter()
                .filter(|(_, path, _, _)| path.iter().any(|r| r.index() == ri))
                .map(|(id, _, _, _)| net.flow_rate(*id).unwrap())
                .sum();
            prop_assert!(total <= cap * (1.0 + 1e-9), "resource {} over-allocated: {} > {}", ri, total, cap);
        }
        for (id, _, _, cap) in &flows {
            let r = net.flow_rate(*id).unwrap();
            prop_assert!(r >= 0.0);
            if let Some(c) = cap {
                prop_assert!(r <= c * (1.0 + 1e-9), "cap violated: {} > {}", r, c);
            }
        }
    }

    /// Pareto efficiency / max-min optimality witness: every flow is
    /// *blocked* — either at its cap, or it crosses at least one saturated
    /// resource. (If neither held, its rate could be raised, contradicting
    /// max-min optimality.)
    #[test]
    fn every_flow_is_blocked(p in problem()) {
        let (net, flows) = build(&p);
        for (id, path, _, cap) in &flows {
            let r = net.flow_rate(*id).unwrap();
            let at_cap = cap.map(|c| r >= c * (1.0 - 1e-9)).unwrap_or(false);
            let saturated = path.iter().any(|&res| {
                net.allocated(res) >= net.capacity(res) * (1.0 - 1e-9)
            });
            prop_assert!(at_cap || saturated, "flow rate {} not blocked (cap {:?})", r, cap);
        }
    }

    /// Weighted fairness on a single shared resource: uncapped flows crossing
    /// only one resource get rates proportional to their weights.
    #[test]
    fn single_resource_weighted_fairness(
        weights in prop::collection::vec(0.1f64..10.0, 2..8),
        capacity in 10.0f64..1000.0,
    ) {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", capacity);
        let ids: Vec<_> = weights
            .iter()
            .map(|&w| {
                net.start_flow(FlowSpec {
                    path: vec![r],
                    volume: 1e9,
                    weight: w,
                    cap: None,
                    tag: 0,
                })
            })
            .collect();
        net.reallocate();
        let wsum: f64 = weights.iter().sum();
        for (id, w) in ids.iter().zip(&weights) {
            let expect = capacity * w / wsum;
            let got = net.flow_rate(*id).unwrap();
            prop_assert!((got - expect).abs() < 1e-6 * capacity, "got {} expect {}", got, expect);
        }
    }

    /// Scale invariance: multiplying all capacities and caps by `k` scales
    /// all rates by `k`.
    #[test]
    fn scale_invariance(p in problem(), k in 0.5f64..20.0) {
        let (net_a, flows_a) = build(&p);
        let scaled = Problem {
            capacities: p.capacities.iter().map(|c| c * k).collect(),
            flows: p
                .flows
                .iter()
                .map(|(path, w, cap)| (path.clone(), *w, cap.map(|c| c * k)))
                .collect(),
        };
        let (net_b, flows_b) = build(&scaled);
        for ((ida, _, _, _), (idb, _, _, _)) in flows_a.iter().zip(&flows_b) {
            let ra = net_a.flow_rate(*ida).unwrap();
            let rb = net_b.flow_rate(*idb).unwrap();
            prop_assert!((rb - ra * k).abs() < 1e-6 * (1.0 + ra * k), "ra={} rb={} k={}", ra, rb, k);
        }
    }

    /// Volume conservation through the engine: a flow of volume V through a
    /// resource of capacity C alone completes at exactly V/C.
    #[test]
    fn engine_completion_time_exact(volume in 1.0f64..1e9, capacity in 1.0f64..1e9) {
        let mut e = Engine::new();
        let r = e.add_resource("bus", capacity);
        e.start_flow(FlowSpec { path: vec![r], volume, weight: 1.0, cap: None, tag: 1 });
        let ev = e.next().unwrap();
        prop_assert_eq!(ev.tag(), 1);
        let expect = volume / capacity;
        let got = e.now().as_secs_f64();
        prop_assert!((got - expect).abs() < 1e-6 * expect + 1e-9, "got {} expect {}", got, expect);
    }

    /// Determinism: running the same randomized problem twice through the
    /// engine produces identical event sequences and timestamps.
    #[test]
    fn engine_is_deterministic(p in problem(), delays in prop::collection::vec(1u64..1000, 0..5)) {
        let run = || {
            let mut e = Engine::new();
            let rids: Vec<ResourceId> = p
                .capacities
                .iter()
                .enumerate()
                .map(|(i, &c)| e.add_resource(format!("r{}", i), c))
                .collect();
            for (i, (path, w, cap)) in p.flows.iter().enumerate() {
                e.start_flow(FlowSpec {
                    path: path.iter().map(|&j| rids[j]).collect(),
                    volume: 1e6,
                    weight: *w,
                    cap: *cap,
                    tag: i as u64,
                });
            }
            for (i, &d) in delays.iter().enumerate() {
                e.after(SimTime::from_micros(d), 1000 + i as u64);
            }
            let mut log = Vec::new();
            e.run(|eng, ev| log.push((eng.now(), ev.tag())));
            log
        };
        prop_assert_eq!(run(), run());
    }
}
