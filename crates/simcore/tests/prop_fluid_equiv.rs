//! Fast-vs-reference allocator equivalence suite.
//!
//! The incremental solver (`FluidNet::reallocate`: slab + inverse index +
//! per-component dirty tracking) must produce **bit-identical** results to
//! the from-scratch `fluid::reference::reallocate` after *any* sequence of
//! mutations — flow starts/cancels/completions, cap changes, capacity
//! changes (including to zero) — because simulated completion times derive
//! from the rates, and a single-ulp drift would change event timestamps and
//! break golden-trace / `--json` byte-stability.
//!
//! Each property drives one net through a randomized mutation sequence and,
//! at every checkpoint, snapshots rates and per-resource allocations from
//! the incremental solve, re-solves the same net from scratch with the
//! reference solver, and compares the f64 **bit patterns** (`to_bits`, not
//! approximate equality). The reference solver rebuilds the adjacency and
//! component decomposition from the flow paths alone, so stale inverse-index
//! entries, missed dirty bits, or components split/merged incorrectly all
//! surface as mismatches.
//!
//! Case count honours `PROPTEST_CASES` (CI runs 512).

use proptest::prelude::*;
use simcore::fluid::reference;
use simcore::{FlowId, FluidNet, FlowSpec, ResourceId};

/// One step of a mutation script. Indices are resolved modulo the live
/// flow / resource count at application time, so scripts stay valid as
/// flows come and go.
#[derive(Debug, Clone)]
enum Op {
    /// Start a flow with the given path (resource indices), weight, cap.
    Start(Vec<usize>, f64, Option<f64>),
    /// Cancel the n-th live flow.
    Cancel(usize),
    /// Change the n-th live flow's cap.
    SetCap(usize, Option<f64>),
    /// Change a resource's capacity (0.0 exercises the stalled path).
    SetCapacity(usize, f64),
    /// Solve, then advance time toward the next completion (factor > 1
    /// completes at least one flow; churn for the dirty tracking).
    Elapse(f64),
    /// Solve incrementally and compare against the reference solver.
    Check,
}

fn op(nres: usize) -> impl Strategy<Value = Op> {
    let start = (
        prop::collection::btree_set(0..nres, 1..=nres.min(4)),
        0.1f64..8.0,
        prop::option::of(0.5f64..300.0),
    )
        .prop_map(|(path, w, cap)| Op::Start(path.into_iter().collect(), w, cap));
    let capacity = prop_oneof![Just(0.0f64), 1.0f64..1000.0];
    prop_oneof![
        start.boxed(),
        (0..64usize).prop_map(Op::Cancel).boxed(),
        (0..64usize, prop::option::of(0.5f64..300.0))
            .prop_map(|(i, c)| Op::SetCap(i, c))
            .boxed(),
        ((0..nres), capacity)
            .prop_map(|(r, c)| Op::SetCapacity(r, c))
            .boxed(),
        (0.25f64..1.5).prop_map(Op::Elapse).boxed(),
        Just(Op::Check).boxed(),
    ]
}

fn script() -> impl Strategy<Value = (Vec<f64>, Vec<Op>)> {
    let caps = prop::collection::vec(prop_oneof![Just(0.0f64), 1.0f64..1000.0], 2..8);
    caps.prop_flat_map(|capacities| {
        let nres = capacities.len();
        prop::collection::vec(op(nres), 8..60)
            .prop_map(move |ops| (capacities.clone(), ops))
    })
}

/// Bitwise snapshot of everything the solver outputs.
fn snapshot(net: &FluidNet, flows: &[FlowId], rids: &[ResourceId]) -> (Vec<Option<u64>>, Vec<u64>) {
    let rates = flows.iter().map(|&f| net.flow_rate(f).map(f64::to_bits)).collect();
    let allocs = rids.iter().map(|&r| net.allocated(r).to_bits()).collect();
    (rates, allocs)
}

/// Run one script, checking fast == reference at every checkpoint and at
/// the end. Returns the number of checkpoints compared.
fn run_script(capacities: &[f64], ops: &[Op]) -> Result<u32, TestCaseError> {
    let mut net = FluidNet::new();
    let rids: Vec<ResourceId> = capacities
        .iter()
        .enumerate()
        .map(|(i, &c)| net.add_resource(format!("r{}", i), c))
        .collect();
    let mut live: Vec<FlowId> = Vec::new();
    let mut tag = 0u64;
    let mut checks = 0u32;

    let check = |net: &mut FluidNet, live: &[FlowId]| -> Result<(), TestCaseError> {
        net.reallocate();
        let fast = snapshot(net, live, &rids);
        reference::reallocate(net);
        let refr = snapshot(net, live, &rids);
        prop_assert_eq!(
            &fast,
            &refr,
            "fast/reference diverged over {} flows: fast={:?} ref={:?}",
            live.len(),
            fast,
            refr
        );
        Ok(())
    };

    for o in ops {
        match o {
            Op::Start(path, w, cap) => {
                let rpath: Vec<ResourceId> = path.iter().map(|&i| rids[i]).collect();
                tag += 1;
                let id = net.start_flow(FlowSpec {
                    path: rpath,
                    volume: 10.0 + (tag as f64) * 3.5,
                    weight: *w,
                    cap: *cap,
                    tag,
                });
                live.push(id);
            }
            Op::Cancel(i) => {
                if !live.is_empty() {
                    let id = live.remove(i % live.len());
                    net.cancel_flow(id).expect("live flow cancels");
                }
            }
            Op::SetCap(i, c) => {
                if !live.is_empty() {
                    net.set_flow_cap(live[i % live.len()], *c);
                }
            }
            Op::SetCapacity(r, c) => net.set_capacity(rids[*r], *c),
            Op::Elapse(factor) => {
                net.reallocate();
                if let Some(dt) = net.time_to_next_completion() {
                    net.elapse(dt * factor);
                    live.retain(|&f| net.flow_rate(f).is_some());
                }
            }
            Op::Check => {
                check(&mut net, &live)?;
                checks += 1;
            }
        }
    }
    check(&mut net, &live)?;
    Ok(checks + 1)
}

proptest! {
    /// Randomized topologies, weights, caps and mutation sequences: the
    /// incremental solve equals the from-scratch solve, bit for bit.
    #[test]
    fn incremental_matches_reference_bitwise(case in script()) {
        let (capacities, ops) = case;
        run_script(&capacities, &ops)?;
    }
}

#[test]
fn cap_freeze_and_zero_capacity_edge_cases() {
    // Deterministic corner mix: zero-capacity resource in the middle of a
    // path, cap exactly at the fair share, cap far below and far above,
    // plus churn that repeatedly crosses component boundaries.
    let caps = [100.0, 0.0, 50.0, 300.0];
    let ops = vec![
        Op::Start(vec![0], 1.0, Some(50.0)), // cap == fair share of r0 under 2 flows
        Op::Start(vec![0], 1.0, None),
        Op::Check,
        Op::Start(vec![1], 2.0, None), // rides the dead resource: rate 0
        Op::Start(vec![1, 2], 1.0, Some(10.0)),
        Op::Check,
        Op::Start(vec![0, 2, 3], 0.5, Some(0.75)), // tiny cap freezes first
        Op::Start(vec![3], 4.0, Some(10_000.0)),   // cap never binds
        Op::Check,
        Op::SetCapacity(1, 80.0), // resurrect the dead resource
        Op::Check,
        Op::Elapse(1.0),
        Op::SetCapacity(3, 0.0), // kill a loaded resource
        Op::Check,
        Op::Cancel(0),
        Op::SetCap(0, None),
        Op::Check,
    ];
    let checks = run_script(&caps, &ops).expect("bitwise equivalence");
    assert_eq!(checks, 7); // the six scripted checkpoints plus the final one
}
