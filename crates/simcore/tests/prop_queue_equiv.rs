//! Timing-wheel vs binary-heap queue equivalence suite.
//!
//! The engine's timer queue was rewritten from a `BinaryHeap` + tombstone
//! set to a hierarchical timing wheel; the heap implementation is retained
//! (`queue::HeapQueue`, the `fluid::reference` pattern) as the differential
//! oracle. Both must produce **identical** `(time, seq)` pop sequences —
//! entry for entry, including ids and tags — across any interleaving of
//! inserts, O(1) cancellations and pops, because event order is what makes
//! simulation output byte-stable.
//!
//! Scripts drive both queues in lockstep: deadlines are scattered from the
//! current watermark across all wheel levels (same tick, next tick, slot
//! boundaries, far future), cancels target live entries by index, and pops
//! advance the watermark. Case count honours `PROPTEST_CASES` (CI runs 512;
//! the nightly long-fuzz raises it further).

use proptest::prelude::*;
use simcore::queue::{EventQueue, HeapQueue, QueueEntry, TimingWheel};
use simcore::{SimTime, TimerId};

/// One step of a queue script.
#[derive(Debug, Clone)]
enum Op {
    /// Insert at `watermark + delta` picoseconds.
    Insert(u64),
    /// Cancel the n-th not-yet-cancelled, not-yet-popped entry (modulo the
    /// live count at application time).
    Cancel(usize),
    /// Pop once from both queues and compare; advances the watermark.
    Pop,
}

/// Deadline deltas biased to exercise every wheel level: same tick (0), the
/// staged/level-0 region, slot and level boundaries, and the far future.
fn delta() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        0u64..4,
        0u64..64,
        60u64..70,     // level-0/level-1 boundary
        0u64..4096,    // level-1 span
        4090u64..4200, // level-1/level-2 boundary
        0u64..(1 << 24),
        (1u64 << 30)..(1 << 34), // deep levels
    ]
}

fn op() -> impl Strategy<Value = Op> {
    // Repetition stands in for arm weights (~4 insert : 1 cancel : 3 pop).
    prop_oneof![
        delta().prop_map(Op::Insert).boxed(),
        delta().prop_map(Op::Insert).boxed(),
        delta().prop_map(Op::Insert).boxed(),
        delta().prop_map(Op::Insert).boxed(),
        (0..64usize).prop_map(Op::Cancel).boxed(),
        Just(Op::Pop).boxed(),
        Just(Op::Pop).boxed(),
        Just(Op::Pop).boxed(),
    ]
}

/// Drive both queues through one script in lockstep, comparing every pop
/// (and the live/stored accounting) along the way, then drain both to the
/// end and require full agreement plus zero leftover tombstones.
fn run_script(ops: &[Op]) {
    let mut wheel = TimingWheel::new();
    let mut heap = HeapQueue::new();
    let mut live: Vec<TimerId> = Vec::new();
    let mut watermark = 0u64;
    let mut seq = 0u64;

    let pop_both = |wheel: &mut TimingWheel,
                    heap: &mut HeapQueue,
                    live: &mut Vec<TimerId>,
                    watermark: &mut u64| {
        let (a, b) = (wheel.pop(), heap.pop());
        assert_eq!(
            a, b,
            "wheel and heap popped different entries (watermark {watermark})"
        );
        if let Some(e) = a {
            assert!(e.deadline.0 >= *watermark, "pop went backwards");
            *watermark = e.deadline.0;
            live.retain(|&id| id != e.id);
            if e.seq % 3 == 0 {
                // Stale cancel (already fired): must be a no-op on both.
                wheel.cancel(e.id);
                heap.cancel(e.id);
            }
        }
        assert_eq!(wheel.live_len(), heap.live_len());
    };

    for o in ops {
        match o {
            Op::Insert(delta) => {
                seq += 1;
                let e = QueueEntry {
                    deadline: SimTime(watermark.saturating_add(*delta)),
                    seq,
                    id: TimerId::from_raw(seq),
                    tag: seq ^ 0xA5A5,
                };
                wheel.insert(e);
                heap.insert(e);
                live.push(e.id);
            }
            Op::Cancel(i) => {
                if !live.is_empty() {
                    let id = live.remove(i % live.len());
                    wheel.cancel(id);
                    heap.cancel(id);
                }
            }
            Op::Pop => pop_both(&mut wheel, &mut heap, &mut live, &mut watermark),
        }
        assert_eq!(wheel.live_len(), heap.live_len(), "live accounting diverged");
    }
    // Drain: identical tails, fully consumed tombstones on both sides.
    loop {
        let before = wheel.live_len();
        pop_both(&mut wheel, &mut heap, &mut live, &mut watermark);
        if before == 0 {
            break;
        }
    }
    assert_eq!(wheel.stored_len(), 0);
    assert_eq!(heap.stored_len(), 0);
    assert_eq!(wheel.outstanding_tombstones(), 0, "wheel leaked tombstones");
    assert_eq!(heap.outstanding_tombstones(), 0, "heap leaked tombstones");
}

proptest! {
    /// Randomized insert/cancel/advance scripts: the timing wheel and the
    /// retained heap reference pop the same (time, seq) sequence, entry for
    /// entry.
    #[test]
    fn wheel_matches_heap_pop_sequence(ops in prop::collection::vec(op(), 1..120)) {
        run_script(&ops);
    }
}

#[test]
fn deterministic_boundary_script() {
    // Hand-picked corner mix: same-instant bursts, cancels at every depth,
    // pops interleaved with re-inserts below the staged watermark.
    let ops = vec![
        Op::Insert(0),
        Op::Insert(0),
        Op::Insert(63),
        Op::Insert(64),
        Op::Insert(4095),
        Op::Insert(4096),
        Op::Cancel(2),
        Op::Pop,
        Op::Insert(1 << 33),
        Op::Insert(0),
        Op::Pop,
        Op::Pop,
        Op::Cancel(0),
        Op::Insert(1),
        Op::Pop,
        Op::Pop,
    ];
    run_script(&ops);
}

/// The diagnostic view must agree between implementations too: stall
/// reports name pending timers in (deadline, seq) order on both queues.
#[test]
fn live_entries_agree_between_queues() {
    let mut wheel = TimingWheel::new();
    let mut heap = HeapQueue::new();
    for (i, t) in [500u64, 3, 70, 3, 1 << 20, 4096].iter().enumerate() {
        let e = QueueEntry {
            deadline: SimTime(*t),
            seq: i as u64 + 1,
            id: TimerId::from_raw(i as u64 + 1),
            tag: i as u64,
        };
        wheel.insert(e);
        heap.insert(e);
    }
    wheel.cancel(TimerId::from_raw(4));
    heap.cancel(TimerId::from_raw(4));
    // Stage part of the wheel so live entries span staging + slots.
    assert_eq!(wheel.peek_deadline(), heap.peek_deadline());
    assert_eq!(wheel.live_entries(), heap.live_entries());
}
