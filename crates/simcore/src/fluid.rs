//! Weighted max-min fair fluid bandwidth allocation.
//!
//! The memory system, NUMA interconnect, NIC and network wire are modelled as
//! *resources* with finite capacities (units/s). Ongoing transfers are
//! *flows*: each flow crosses a path of resources, carries a fairness weight
//! and an optional rate cap (e.g. the roofline compute bound of the thread
//! issuing the accesses). At any instant the rates are the **weighted
//! max-min fair** allocation, computed by progressive filling:
//!
//! 1. All unfrozen flows grow their rate proportionally to their weight
//!    (rate = weight × fill level `λ`).
//! 2. The first event is either a resource saturating (freeze every unfrozen
//!    flow crossing it) or a flow hitting its cap (freeze that flow).
//! 3. Repeat until every flow is frozen.
//!
//! This is the standard analytical model of bandwidth sharing (used e.g. by
//! flow-level network simulators and by Langguth et al.'s memory-contention
//! model cited in the paper) and reproduces the saturation and fair-share
//! curves measured by the paper's STREAM/ping-pong experiments.

use std::fmt;

/// Identifies a resource inside a [`FluidNet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// Dense index of the resource (stable for the net's lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a flow inside a [`FluidNet`]. Ids are never reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FlowId(pub(crate) u64);

#[derive(Clone, Debug)]
pub(crate) struct Resource {
    pub name: String,
    /// Capacity in units/s (typically bytes/s or cycles/s).
    pub capacity: f64,
    /// Cumulative units delivered through this resource.
    pub delivered: f64,
    /// Integral of utilization over time (seconds of 100 % use); divide by
    /// elapsed time for mean utilization.
    pub busy_integral: f64,
    /// Current total allocated rate (refreshed on every reallocation).
    pub allocated: f64,
}

/// Parameters for starting a flow.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Resources crossed, in order. May be empty only for pure-delay flows,
    /// which is disallowed — use timers for pure delays.
    pub path: Vec<ResourceId>,
    /// Total units to transfer.
    pub volume: f64,
    /// Fairness weight (1.0 = one CPU core's worth of demand).
    pub weight: f64,
    /// Optional rate cap in units/s (roofline compute bound, PIO copy rate…).
    pub cap: Option<f64>,
    /// Opaque tag returned on completion.
    pub tag: u64,
}

#[derive(Clone, Debug)]
pub(crate) struct Flow {
    pub id: FlowId,
    pub path: Vec<ResourceId>,
    pub remaining: f64,
    pub weight: f64,
    pub cap: Option<f64>,
    pub rate: f64,
    pub tag: u64,
    /// Seconds spent rate-limited below the cap (memory-stall accounting).
    pub stalled: f64,
    /// Seconds since the flow started.
    pub elapsed: f64,
}

/// The set of resources and active flows, with max-min allocation.
#[derive(Default)]
pub struct FluidNet {
    resources: Vec<Resource>,
    flows: Vec<Flow>,
    next_flow: u64,
    dirty: bool,
}

/// Snapshot of a finished or cancelled flow.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// The tag the flow was started with.
    pub tag: u64,
    /// Wall-clock seconds the flow was active.
    pub elapsed: f64,
    /// Seconds the flow spent below its cap (0 if it had no cap).
    pub stalled: f64,
    /// Units left (0 for completed flows).
    pub remaining: f64,
}

impl FluidNet {
    /// Create an empty network.
    pub fn new() -> Self {
        FluidNet::default()
    }

    /// Add a resource with the given capacity (units/s).
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        assert!(capacity >= 0.0 && capacity.is_finite(), "bad capacity");
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource {
            name: name.into(),
            capacity,
            delivered: 0.0,
            busy_integral: 0.0,
            allocated: 0.0,
        });
        id
    }

    /// Name a resource was registered with.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.resources[r.index()].name
    }

    /// Current capacity of a resource.
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.resources[r.index()].capacity
    }

    /// Change a resource's capacity (frequency scaling). Marks allocation dirty.
    pub fn set_capacity(&mut self, r: ResourceId, capacity: f64) {
        assert!(capacity >= 0.0 && capacity.is_finite(), "bad capacity");
        let res = &mut self.resources[r.index()];
        if res.capacity != capacity {
            res.capacity = capacity;
            self.dirty = true;
        }
    }

    /// Current total allocated rate on a resource (after the last realloc).
    pub fn allocated(&self, r: ResourceId) -> f64 {
        self.resources[r.index()].allocated
    }

    /// Utilization in [0,1] given current allocation.
    pub fn utilization(&self, r: ResourceId) -> f64 {
        let res = &self.resources[r.index()];
        if res.capacity <= 0.0 {
            if res.allocated > 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            (res.allocated / res.capacity).min(1.0)
        }
    }

    /// *Demand-side* pressure on a resource: sum of what flows crossing it
    /// would consume if unconstrained (their cap, or weight-proportional
    /// elastic demand approximated by capacity). Used by the congestion
    /// latency model, where queueing grows with offered load, not with
    /// (saturated) throughput.
    pub fn demand(&self, r: ResourceId) -> f64 {
        self.flows
            .iter()
            .filter(|f| f.path.contains(&r))
            .map(|f| f.cap.unwrap_or(self.resources[r.index()].capacity))
            .sum()
    }

    /// Cumulative units delivered through a resource.
    pub fn delivered(&self, r: ResourceId) -> f64 {
        self.resources[r.index()].delivered
    }

    /// Integral of utilization (seconds at 100 %).
    pub fn busy_integral(&self, r: ResourceId) -> f64 {
        self.resources[r.index()].busy_integral
    }

    /// Start a flow; the allocation is recomputed lazily.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!(!spec.path.is_empty(), "flow must cross at least one resource");
        assert!(spec.volume > 0.0 && spec.volume.is_finite(), "bad volume");
        assert!(spec.weight > 0.0 && spec.weight.is_finite(), "bad weight");
        if let Some(c) = spec.cap {
            assert!(c > 0.0 && c.is_finite(), "bad cap");
        }
        for &r in &spec.path {
            assert!(r.index() < self.resources.len(), "unknown resource");
        }
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        self.flows.push(Flow {
            id,
            path: spec.path,
            remaining: spec.volume,
            weight: spec.weight,
            cap: spec.cap,
            rate: 0.0,
            tag: spec.tag,
            stalled: 0.0,
            elapsed: 0.0,
        });
        self.dirty = true;
        id
    }

    /// Change a flow's rate cap (frequency changed mid-phase).
    pub fn set_flow_cap(&mut self, id: FlowId, cap: Option<f64>) {
        if let Some(f) = self.flows.iter_mut().find(|f| f.id == id) {
            if f.cap != cap {
                f.cap = cap;
                self.dirty = true;
            }
        }
    }

    /// Remove a flow before completion; returns its report if it existed.
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<FlowReport> {
        let idx = self.flows.iter().position(|f| f.id == id)?;
        let f = self.flows.swap_remove(idx);
        self.dirty = true;
        Some(FlowReport {
            tag: f.tag,
            elapsed: f.elapsed,
            stalled: f.stalled,
            remaining: f.remaining,
        })
    }

    /// Rate of a flow under the current allocation.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.iter().find(|f| f.id == id).map(|f| f.rate)
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// True if the allocation must be recomputed before use.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Recompute the weighted max-min fair allocation (progressive filling).
    pub fn reallocate(&mut self) {
        self.dirty = false;
        let nf = self.flows.len();
        for r in &mut self.resources {
            r.allocated = 0.0;
        }
        if nf == 0 {
            return;
        }

        // frozen[i]: flow i's rate is final.
        let mut frozen = vec![false; nf];
        let mut rate = vec![0.0f64; nf];
        // Remaining headroom per resource.
        let mut headroom: Vec<f64> = self.resources.iter().map(|r| r.capacity).collect();
        let mut unfrozen = nf;
        // Fill level reached so far (units/s per unit weight).
        let mut level = 0.0f64;

        while unfrozen > 0 {
            // For each resource, the level increment at which it saturates.
            let mut best_dlevel = f64::INFINITY;
            let mut bottleneck: Option<ResourceId> = None;
            for (ri, res) in self.resources.iter().enumerate() {
                let w: f64 = self
                    .flows
                    .iter()
                    .enumerate()
                    .filter(|(i, f)| !frozen[*i] && f.path.contains(&ResourceId(ri as u32)))
                    .map(|(_, f)| f.weight)
                    .sum();
                if w <= 0.0 {
                    continue;
                }
                let dlevel = (headroom[ri].max(0.0)) / w;
                if dlevel < best_dlevel {
                    best_dlevel = dlevel;
                    bottleneck = Some(ResourceId(ri as u32));
                }
                let _ = res;
            }
            // Flow caps: flow i freezes when level reaches cap/weight.
            let mut cap_dlevel = f64::INFINITY;
            let mut cap_flow: Option<usize> = None;
            for (i, f) in self.flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                if let Some(c) = f.cap {
                    let dl = (c / f.weight - level).max(0.0);
                    if dl < cap_dlevel {
                        cap_dlevel = dl;
                        cap_flow = Some(i);
                    }
                }
            }

            if best_dlevel == f64::INFINITY && cap_dlevel == f64::INFINITY {
                // No constraint at all (can't happen: every flow crosses a
                // finite-capacity resource) — freeze everything at current level.
                for i in 0..nf {
                    if !frozen[i] {
                        frozen[i] = true;
                        rate[i] = self.flows[i].weight * level;
                    }
                }
                break;
            }

            if cap_dlevel < best_dlevel {
                // A flow reaches its cap first.
                let dl = cap_dlevel;
                level += dl;
                // Consume headroom for the level increase by all unfrozen flows.
                for (ri, h) in headroom.iter_mut().enumerate() {
                    let w: f64 = self
                        .flows
                        .iter()
                        .enumerate()
                        .filter(|(i, f)| !frozen[*i] && f.path.contains(&ResourceId(ri as u32)))
                        .map(|(_, f)| f.weight)
                        .sum();
                    *h -= w * dl;
                }
                let i = cap_flow.expect("cap flow set");
                frozen[i] = true;
                rate[i] = self.flows[i].cap.expect("capped");
                unfrozen -= 1;
            } else {
                // A resource saturates.
                let dl = best_dlevel;
                level += dl;
                for (ri, h) in headroom.iter_mut().enumerate() {
                    let w: f64 = self
                        .flows
                        .iter()
                        .enumerate()
                        .filter(|(i, f)| !frozen[*i] && f.path.contains(&ResourceId(ri as u32)))
                        .map(|(_, f)| f.weight)
                        .sum();
                    *h -= w * dl;
                }
                let rb = bottleneck.expect("bottleneck set");
                for i in 0..nf {
                    if !frozen[i] && self.flows[i].path.contains(&rb) {
                        frozen[i] = true;
                        rate[i] = self.flows[i].weight * level;
                        unfrozen -= 1;
                    }
                }
            }
        }

        for (i, f) in self.flows.iter_mut().enumerate() {
            f.rate = rate[i];
            for &r in &f.path {
                self.resources[r.index()].allocated += rate[i];
            }
        }
    }

    /// Advance all flows by `dt` seconds at their current rates, returning
    /// reports for completed flows (in deterministic id order).
    ///
    /// The caller must ensure `dt` does not overshoot any completion (the
    /// engine picks `dt` = time to the earliest event).
    pub fn elapse(&mut self, dt: f64) -> Vec<FlowReport> {
        debug_assert!(dt >= 0.0);
        if dt > 0.0 {
            for res in &mut self.resources {
                res.delivered += res.allocated * dt;
                if res.capacity > 0.0 {
                    res.busy_integral += (res.allocated / res.capacity).min(1.0) * dt;
                } else if res.allocated > 0.0 {
                    res.busy_integral += dt;
                }
            }
        }
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.flows.len() {
            let f = &mut self.flows[i];
            f.elapsed += dt;
            if let Some(c) = f.cap {
                if f.rate < c * (1.0 - 1e-9) {
                    f.stalled += dt * (1.0 - f.rate / c).clamp(0.0, 1.0);
                }
            }
            f.remaining -= f.rate * dt;
            // Tolerate float fuzz: treat within 1e-6 units as done.
            if f.remaining <= 1e-6 {
                let f = self.flows.remove(i);
                done.push(FlowReport {
                    tag: f.tag,
                    elapsed: f.elapsed,
                    stalled: f.stalled,
                    remaining: 0.0,
                });
                self.dirty = true;
            } else {
                i += 1;
            }
        }
        done
    }

    /// Snapshot of every active flow as `(tag, remaining, rate)`, in id
    /// order. Used by the engine's stall diagnostics.
    pub fn flow_snapshots(&self) -> Vec<(u64, f64, f64)> {
        self.flows
            .iter()
            .map(|f| (f.tag, f.remaining, f.rate))
            .collect()
    }

    /// Seconds until the earliest flow completion at current rates.
    pub fn time_to_next_completion(&self) -> Option<f64> {
        self.flows
            .iter()
            .filter(|f| f.rate > 0.0)
            .map(|f| f.remaining / f.rate)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
    }
}

impl fmt::Debug for FluidNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FluidNet ({} resources, {} flows)", self.resources.len(), self.flows.len())?;
        for (i, r) in self.resources.iter().enumerate() {
            writeln!(
                f,
                "  R{} {}: cap {:.3e} alloc {:.3e}",
                i, r.name, r.capacity, r.allocated
            )?;
        }
        for fl in &self.flows {
            writeln!(
                f,
                "  F{} tag {}: remaining {:.3e} rate {:.3e} cap {:?}",
                fl.id.0, fl.tag, fl.remaining, fl.rate, fl.cap
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(path: Vec<ResourceId>, volume: f64) -> FlowSpec {
        FlowSpec {
            path,
            volume,
            weight: 1.0,
            cap: None,
            tag: 0,
        }
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 100.0);
        let f = net.start_flow(spec(vec![r], 1000.0));
        net.reallocate();
        assert_eq!(net.flow_rate(f), Some(100.0));
        assert_eq!(net.allocated(r), 100.0);
    }

    #[test]
    fn equal_flows_share_equally() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 90.0);
        let f1 = net.start_flow(spec(vec![r], 1000.0));
        let f2 = net.start_flow(spec(vec![r], 1000.0));
        let f3 = net.start_flow(spec(vec![r], 1000.0));
        net.reallocate();
        for f in [f1, f2, f3] {
            assert!((net.flow_rate(f).unwrap() - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn weights_respected() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 100.0);
        let heavy = net.start_flow(FlowSpec {
            weight: 3.0,
            ..spec(vec![r], 1000.0)
        });
        let light = net.start_flow(spec(vec![r], 1000.0));
        net.reallocate();
        assert!((net.flow_rate(heavy).unwrap() - 75.0).abs() < 1e-9);
        assert!((net.flow_rate(light).unwrap() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn cap_frees_bandwidth_for_others() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 100.0);
        let capped = net.start_flow(FlowSpec {
            cap: Some(10.0),
            ..spec(vec![r], 1000.0)
        });
        let elastic = net.start_flow(spec(vec![r], 1000.0));
        net.reallocate();
        assert!((net.flow_rate(capped).unwrap() - 10.0).abs() < 1e-9);
        assert!((net.flow_rate(elastic).unwrap() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn multi_resource_path_bottleneck() {
        let mut net = FluidNet::new();
        let wide = net.add_resource("wide", 100.0);
        let narrow = net.add_resource("narrow", 20.0);
        let through = net.start_flow(spec(vec![wide, narrow], 1000.0));
        let local = net.start_flow(spec(vec![wide], 1000.0));
        net.reallocate();
        // `through` is limited to 20 by the narrow hop; `local` takes the rest.
        assert!((net.flow_rate(through).unwrap() - 20.0).abs() < 1e-9);
        assert!((net.flow_rate(local).unwrap() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn elapse_completes_flows_in_order() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 10.0);
        let _short = net.start_flow(FlowSpec {
            tag: 1,
            ..spec(vec![r], 10.0)
        });
        let _long = net.start_flow(FlowSpec {
            tag: 2,
            ..spec(vec![r], 100.0)
        });
        net.reallocate();
        // Each gets 5 units/s; short completes at t=2.
        let t = net.time_to_next_completion().unwrap();
        assert!((t - 2.0).abs() < 1e-9);
        let done = net.elapse(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 1);
        // Long flow now gets full bandwidth.
        net.reallocate();
        let t2 = net.time_to_next_completion().unwrap();
        // Long flow transferred 10 of 100 units in the shared phase.
        assert!((t2 - 9.0).abs() < 1e-9, "t2={}", t2);
    }

    #[test]
    fn stall_accounting() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 10.0);
        // Two capped flows want 10 each but must share 10.
        let f1 = net.start_flow(FlowSpec {
            cap: Some(10.0),
            tag: 1,
            ..spec(vec![r], 10.0)
        });
        let _f2 = net.start_flow(FlowSpec {
            cap: Some(10.0),
            tag: 2,
            ..spec(vec![r], 10.0)
        });
        net.reallocate();
        assert!((net.flow_rate(f1).unwrap() - 5.0).abs() < 1e-9);
        let done = net.elapse(2.0);
        assert_eq!(done.len(), 2);
        for d in done {
            // Ran at half the cap for 2 s → 1 s equivalent stalled.
            assert!((d.stalled - 1.0).abs() < 1e-9);
            assert!((d.elapsed - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn capacity_change_marks_dirty() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 10.0);
        let _f = net.start_flow(spec(vec![r], 100.0));
        net.reallocate();
        assert!(!net.is_dirty());
        net.set_capacity(r, 20.0);
        assert!(net.is_dirty());
        net.reallocate();
        assert!((net.allocated(r) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cancel_flow_reports_progress() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 10.0);
        let f = net.start_flow(spec(vec![r], 100.0));
        net.reallocate();
        net.elapse(1.0);
        let rep = net.cancel_flow(f).unwrap();
        assert!((rep.remaining - 90.0).abs() < 1e-9);
        assert!((rep.elapsed - 1.0).abs() < 1e-9);
        assert!(net.cancel_flow(f).is_none());
    }

    #[test]
    fn delivered_and_busy_counters() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 10.0);
        let _f = net.start_flow(FlowSpec {
            cap: Some(5.0),
            ..spec(vec![r], 10.0)
        });
        net.reallocate();
        net.elapse(2.0);
        assert!((net.delivered(r) - 10.0).abs() < 1e-9);
        // Ran at 50 % utilization for 2 s.
        assert!((net.busy_integral(r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_resource_stalls_flow() {
        let mut net = FluidNet::new();
        let r = net.add_resource("off", 0.0);
        let f = net.start_flow(spec(vec![r], 10.0));
        net.reallocate();
        assert_eq!(net.flow_rate(f), Some(0.0));
        assert!(net.time_to_next_completion().is_none());
    }

    #[test]
    fn demand_sums_caps() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 100.0);
        net.start_flow(FlowSpec {
            cap: Some(30.0),
            ..spec(vec![r], 10.0)
        });
        net.start_flow(spec(vec![r], 10.0)); // elastic counts as capacity
        assert!((net.demand(r) - 130.0).abs() < 1e-9);
    }
}
