//! Weighted max-min fair fluid bandwidth allocation.
//!
//! The memory system, NUMA interconnect, NIC and network wire are modelled as
//! *resources* with finite capacities (units/s). Ongoing transfers are
//! *flows*: each flow crosses a path of resources, carries a fairness weight
//! and an optional rate cap (e.g. the roofline compute bound of the thread
//! issuing the accesses). At any instant the rates are the **weighted
//! max-min fair** allocation, computed by progressive filling:
//!
//! 1. All unfrozen flows grow their rate proportionally to their weight
//!    (rate = weight × fill level `λ`).
//! 2. The first event is either a resource saturating (freeze every unfrozen
//!    flow crossing it) or a flow hitting its cap (freeze that flow).
//! 3. Repeat until every flow is frozen.
//!
//! This is the standard analytical model of bandwidth sharing (used e.g. by
//! flow-level network simulators and by Langguth et al.'s memory-contention
//! model cited in the paper) and reproduces the saturation and fair-share
//! curves measured by the paper's STREAM/ping-pong experiments.
//!
//! # Incremental re-solving
//!
//! Max-min allocation decomposes over the connected components of the
//! flow↔resource bipartite graph: a flow's rate depends only on flows it
//! (transitively) shares a resource with. The net therefore keeps
//!
//! * a slab of flows addressed by [`FlowId`] (O(1) lookup/cancel),
//! * a persistent inverse index (`members[r]` = flows crossing `r`, in id
//!   order), and
//! * per-resource dirty bits set by every mutation (flow started, cancelled
//!   or completed, cap changed, capacity changed).
//!
//! [`FluidNet::reallocate`] walks each dirty component once (BFS over the
//! inverse index) and re-solves *only those components*; clean components
//! keep their cached rates. A ping-pong on the NIC no longer re-solves the
//! memory-controller component of an idle node, and vice versa.
//!
//! The per-component solve ([`solve_region`]) is the single canonical
//! implementation of progressive filling: the from-scratch
//! [`reference::reallocate`] rebuilds the adjacency and the component
//! decomposition independently and calls the *same* routine, so fast and
//! reference results are bit-identical by construction (verified over
//! randomized mutation sequences by the `prop_fluid_equiv` suite). Exact
//! f64 equality matters: completion times derive from rates, so even a
//! 1-ulp drift would eventually flip picosecond event ordering and break
//! golden-trace and `--json` byte-stability.

use std::collections::HashMap;
use std::fmt;

/// Identifies a resource inside a [`FluidNet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// Dense index of the resource (stable for the net's lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a flow inside a [`FluidNet`]. Ids are never reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FlowId(pub(crate) u64);

#[derive(Clone, Debug)]
pub(crate) struct Resource {
    pub name: String,
    /// Capacity in units/s (typically bytes/s or cycles/s).
    pub capacity: f64,
    /// Cumulative units delivered through this resource.
    pub delivered: f64,
    /// Integral of utilization over time (seconds of 100 % use); divide by
    /// elapsed time for mean utilization.
    pub busy_integral: f64,
    /// Current total allocated rate (refreshed on every reallocation).
    pub allocated: f64,
}

/// Parameters for starting a flow.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Resources crossed, in order. May be empty only for pure-delay flows,
    /// which is disallowed — use timers for pure delays.
    pub path: Vec<ResourceId>,
    /// Total units to transfer.
    pub volume: f64,
    /// Fairness weight (1.0 = one CPU core's worth of demand).
    pub weight: f64,
    /// Optional rate cap in units/s (roofline compute bound, PIO copy rate…).
    pub cap: Option<f64>,
    /// Opaque tag returned on completion.
    pub tag: u64,
}

/// Structure-of-arrays flow slab: every per-flow field lives in its own
/// contiguous vector, all indexed by slot number. The solver's inner loops
/// (weight re-sums, cap scans, rate write-back) and `elapse`'s per-flow
/// update walk flat `f64` arrays instead of chasing per-flow allocations.
/// Freed slots are reused via `FluidNet::free`; `id[slot] == FREE_SLOT`
/// marks a free slot (ids themselves are never reused).
#[derive(Default)]
pub(crate) struct FlowArena {
    /// FlowId.0 of the slot's occupant, or [`FREE_SLOT`].
    pub id: Vec<u64>,
    /// Resources crossed, in path order (may contain duplicates).
    pub path: Vec<Vec<ResourceId>>,
    pub remaining: Vec<f64>,
    pub weight: Vec<f64>,
    pub cap: Vec<Option<f64>>,
    pub rate: Vec<f64>,
    pub tag: Vec<u64>,
    /// Seconds spent rate-limited below the cap (memory-stall accounting).
    pub stalled: Vec<f64>,
    /// Seconds since the flow started.
    pub elapsed: Vec<f64>,
}

/// `FlowArena::id` value marking a free slot.
pub(crate) const FREE_SLOT: u64 = u64::MAX;

impl FlowArena {
    /// Number of slots (live + free). Only the scratch-rebuild reference
    /// solver needs this; the incremental path tracks live slots via `order`.
    #[cfg(any(test, feature = "reference-solver"))]
    fn len(&self) -> usize {
        self.id.len()
    }

    /// Append one free slot, returning its number.
    fn push_free(&mut self) -> u32 {
        self.id.push(FREE_SLOT);
        self.path.push(Vec::new());
        self.remaining.push(0.0);
        self.weight.push(0.0);
        self.cap.push(None);
        self.rate.push(0.0);
        self.tag.push(0);
        self.stalled.push(0.0);
        self.elapsed.push(0.0);
        (self.id.len() - 1) as u32
    }
}

/// Work done by one [`FluidNet::reallocate`] call: how many dirty connected
/// components were re-solved and how many flows they contained. Feeds the
/// `fluid.components` / `fluid.realloc_flows_visited` telemetry counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReallocStats {
    /// Connected components re-solved.
    pub components: u64,
    /// Total flows across the re-solved components.
    pub flows_visited: u64,
    /// Components that were solved on the scoped thread pool (0 when the
    /// pass ran serially). Feeds the `fluid.parallel_components` counter.
    pub parallel_components: u64,
    /// Components solved by the single-flow waterfill fast path (exact-bits
    /// shortcut of the progressive fill). Feeds the `fluid.waterfill`
    /// counter.
    pub waterfill: u64,
}

/// When set, [`FluidNet::reallocate`] delegates to [`reference::reallocate`]
/// (the from-scratch solver) for every call. Used by the whole-campaign
/// replay test to prove the incremental solver does not change a single
/// output byte.
#[cfg(any(test, feature = "reference-solver"))]
pub static FORCE_REFERENCE: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// How [`FluidNet::reallocate`] schedules independent dirty components:
/// `0` (auto) solves them on a scoped thread pool once a pass is large
/// enough ([`PARALLEL_FLOW_THRESHOLD`]), `1` forces serial, `2` forces
/// parallel whenever there are at least two components. The allocation is
/// byte-identical either way — components are disjoint and solutions are
/// applied in component order — which the whole-campaign replay test
/// asserts by running under both forced modes.
pub static PARALLEL_MODE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// In auto mode, the minimum total flows across a pass's dirty components
/// before the scoped thread pool is worth its spawn cost. Deliberately a
/// function of workload shape only (never of the host's core count), so the
/// `fluid.parallel_components` counter — and with it the telemetry journal —
/// stays machine-independent.
pub const PARALLEL_FLOW_THRESHOLD: u64 = 4096;

/// Worker-thread ceiling for one parallel reallocation pass.
const PARALLEL_MAX_WORKERS: usize = 8;

/// In auto mode, the minimum *average* flows per dirty component before the
/// pool engages. Fabric collectives dirty thousands of one-flow components
/// (per-message receive-overhead flows) whose total crosses
/// [`PARALLEL_FLOW_THRESHOLD`] while each solve is microseconds — spawning
/// workers for those is pure overhead. Like the flow threshold, this is a
/// function of workload shape only, never of the host's core count.
pub const PARALLEL_MIN_COMPONENT_FLOWS: u64 = 64;

/// The set of resources and active flows, with max-min allocation.
#[derive(Default)]
pub struct FluidNet {
    resources: Vec<Resource>,
    /// Flow slab in structure-of-arrays layout; freed slots are reused via
    /// `free`. Slot numbers are meaningless outside this struct — flows are
    /// addressed by [`FlowId`].
    arena: FlowArena,
    free: Vec<u32>,
    /// FlowId.0 → slot.
    index: HashMap<u64, u32>,
    /// Live slots in ascending [`FlowId`] order (deterministic iteration).
    order: Vec<u32>,
    /// Inverse index: `members[r]` = slots of flows whose path crosses `r`,
    /// each listed once, in ascending [`FlowId`] order.
    members: Vec<Vec<u32>>,
    /// Per-resource dirty bit + list of dirty resources (realloc seeds).
    res_dirty: Vec<bool>,
    dirty_list: Vec<u32>,
    /// Epoch-stamped visit marks for the component BFS (no per-call zeroing).
    res_mark: Vec<u64>,
    slot_mark: Vec<u64>,
    epoch: u64,
    next_flow: u64,
    dirty: bool,
}

/// Snapshot of a finished or cancelled flow.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// The tag the flow was started with.
    pub tag: u64,
    /// Wall-clock seconds the flow was active.
    pub elapsed: f64,
    /// Seconds the flow spent below its cap (0 if it had no cap).
    pub stalled: f64,
    /// Units left (0 for completed flows).
    pub remaining: f64,
}

/// Set `r`'s dirty bit and queue it as a realloc seed (free function so it
/// can run under field-level borrows of the flow slab).
fn mark_res(res_dirty: &mut [bool], dirty_list: &mut Vec<u32>, r: ResourceId) {
    let ri = r.index();
    if !res_dirty[ri] {
        res_dirty[ri] = true;
        dirty_list.push(r.0);
    }
}

impl FluidNet {
    /// Create an empty network.
    pub fn new() -> Self {
        FluidNet::default()
    }

    /// Add a resource with the given capacity (units/s).
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        assert!(capacity >= 0.0 && capacity.is_finite(), "bad capacity");
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(Resource {
            name: name.into(),
            capacity,
            delivered: 0.0,
            busy_integral: 0.0,
            allocated: 0.0,
        });
        self.members.push(Vec::new());
        self.res_dirty.push(false);
        self.res_mark.push(0);
        id
    }

    /// Name a resource was registered with.
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.resources[r.index()].name
    }

    /// Current capacity of a resource.
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.resources[r.index()].capacity
    }

    /// Change a resource's capacity (frequency scaling). Marks allocation dirty.
    pub fn set_capacity(&mut self, r: ResourceId, capacity: f64) {
        assert!(capacity >= 0.0 && capacity.is_finite(), "bad capacity");
        let res = &mut self.resources[r.index()];
        if res.capacity != capacity {
            res.capacity = capacity;
            mark_res(&mut self.res_dirty, &mut self.dirty_list, r);
            self.dirty = true;
        }
    }

    /// Current total allocated rate on a resource (after the last realloc).
    pub fn allocated(&self, r: ResourceId) -> f64 {
        self.resources[r.index()].allocated
    }

    /// Utilization in [0,1] given current allocation.
    pub fn utilization(&self, r: ResourceId) -> f64 {
        let res = &self.resources[r.index()];
        if res.capacity <= 0.0 {
            if res.allocated > 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            (res.allocated / res.capacity).min(1.0)
        }
    }

    /// *Demand-side* pressure on a resource: sum of what flows crossing it
    /// would consume if unconstrained (their cap, or weight-proportional
    /// elastic demand approximated by capacity). Used by the congestion
    /// latency model, where queueing grows with offered load, not with
    /// (saturated) throughput.
    pub fn demand(&self, r: ResourceId) -> f64 {
        let cap_r = self.resources[r.index()].capacity;
        self.members[r.index()]
            .iter()
            .map(|&s| self.arena.cap[s as usize].unwrap_or(cap_r))
            .sum()
    }

    /// Cumulative units delivered through a resource.
    pub fn delivered(&self, r: ResourceId) -> f64 {
        self.resources[r.index()].delivered
    }

    /// Integral of utilization (seconds at 100 %).
    pub fn busy_integral(&self, r: ResourceId) -> f64 {
        self.resources[r.index()].busy_integral
    }

    /// Start a flow; the allocation is recomputed lazily.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!(!spec.path.is_empty(), "flow must cross at least one resource");
        assert!(spec.volume > 0.0 && spec.volume.is_finite(), "bad volume");
        assert!(spec.weight > 0.0 && spec.weight.is_finite(), "bad weight");
        if let Some(c) = spec.cap {
            assert!(c > 0.0 && c.is_finite(), "bad cap");
        }
        for &r in &spec.path {
            assert!(r.index() < self.resources.len(), "unknown resource");
        }
        let id = FlowId(self.next_flow);
        self.next_flow += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slot_mark.push(0);
                self.arena.push_free()
            }
        };
        for &r in &spec.path {
            mark_res(&mut self.res_dirty, &mut self.dirty_list, r);
            let m = &mut self.members[r.index()];
            // A path may cross a resource twice; index it once. The flow
            // being added always sits at the tail (ids are monotone).
            if m.last() != Some(&slot) {
                m.push(slot);
            }
        }
        let si = slot as usize;
        self.arena.id[si] = id.0;
        // Reuse the slot's previous path buffer instead of replacing it.
        let dst = &mut self.arena.path[si];
        dst.clear();
        dst.extend_from_slice(&spec.path);
        self.arena.remaining[si] = spec.volume;
        self.arena.weight[si] = spec.weight;
        self.arena.cap[si] = spec.cap;
        self.arena.rate[si] = 0.0;
        self.arena.tag[si] = spec.tag;
        self.arena.stalled[si] = 0.0;
        self.arena.elapsed[si] = 0.0;
        self.order.push(slot);
        self.index.insert(id.0, slot);
        self.dirty = true;
        id
    }

    /// Change a flow's rate cap (frequency changed mid-phase).
    pub fn set_flow_cap(&mut self, id: FlowId, cap: Option<f64>) {
        let Some(&slot) = self.index.get(&id.0) else {
            return;
        };
        let si = slot as usize;
        if self.arena.cap[si] != cap {
            self.arena.cap[si] = cap;
            for &r in &self.arena.path[si] {
                mark_res(&mut self.res_dirty, &mut self.dirty_list, r);
            }
            self.dirty = true;
        }
    }

    /// Unlink `slot` from the index, inverse index and iteration order,
    /// marking its path dirty. The slot must be live. Returns the flow's
    /// report with its actual remaining volume (completions overwrite it
    /// with 0). The slot's path buffer is kept for reuse.
    fn detach_slot(&mut self, slot: u32) -> FlowReport {
        let si = slot as usize;
        let path = std::mem::take(&mut self.arena.path[si]);
        let id = self.arena.id[si];
        for &r in &path {
            mark_res(&mut self.res_dirty, &mut self.dirty_list, r);
            let ids = &self.arena.id;
            let m = &mut self.members[r.index()];
            // Duplicate path entries: only the first occurrence still finds it.
            if let Ok(p) = m.binary_search_by_key(&id, |&s| ids[s as usize]) {
                m.remove(p);
            }
        }
        let ids = &self.arena.id;
        let p = self
            .order
            .binary_search_by_key(&id, |&s| ids[s as usize])
            .expect("live flow in order");
        self.order.remove(p);
        self.arena.path[si] = path;
        self.arena.id[si] = FREE_SLOT;
        self.index.remove(&id);
        self.free.push(slot);
        self.dirty = true;
        FlowReport {
            tag: self.arena.tag[si],
            elapsed: self.arena.elapsed[si],
            stalled: self.arena.stalled[si],
            remaining: self.arena.remaining[si],
        }
    }

    /// Remove a flow before completion; returns its report if it existed.
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<FlowReport> {
        let slot = *self.index.get(&id.0)?;
        Some(self.detach_slot(slot))
    }

    /// Rate of a flow under the current allocation.
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        let slot = *self.index.get(&id.0)?;
        Some(self.arena.rate[slot as usize])
    }

    /// Number of active flows.
    pub fn active_flows(&self) -> usize {
        self.order.len()
    }

    /// True if the allocation must be recomputed before use.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Recompute the weighted max-min fair allocation (progressive filling).
    ///
    /// Incremental: only connected components containing a dirty resource
    /// are re-solved; everything else keeps its cached rates. The result is
    /// bit-identical to the from-scratch [`reference::reallocate`].
    pub fn reallocate(&mut self) -> ReallocStats {
        #[cfg(any(test, feature = "reference-solver"))]
        if FORCE_REFERENCE.load(std::sync::atomic::Ordering::Relaxed) {
            return reference::reallocate(self);
        }
        self.dirty = false;
        let mut stats = ReallocStats::default();
        if self.dirty_list.is_empty() {
            return stats;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        let seeds = std::mem::take(&mut self.dirty_list);
        // Phase 1: discover every dirty component up front. Components land
        // in two flat buffers (`all_res` / `all_slots`) addressed by ranges,
        // so discovery allocates O(1) vectors regardless of component count.
        let mut all_res: Vec<u32> = Vec::new();
        let mut all_slots: Vec<u32> = Vec::new();
        // (res_start, res_end, slot_start, slot_end) per component.
        let mut comps: Vec<(usize, usize, usize, usize)> = Vec::new();
        let mut queue: Vec<u32> = Vec::new();
        for &seed in &seeds {
            self.res_dirty[seed as usize] = false;
            if self.res_mark[seed as usize] == epoch {
                continue; // already gathered as part of an earlier seed's component
            }
            let res_start = all_res.len();
            let slot_start = all_slots.len();
            queue.clear();
            self.res_mark[seed as usize] = epoch;
            queue.push(seed);
            while let Some(r) = queue.pop() {
                all_res.push(r);
                for &s in &self.members[r as usize] {
                    if self.slot_mark[s as usize] == epoch {
                        continue;
                    }
                    self.slot_mark[s as usize] = epoch;
                    all_slots.push(s);
                    for &pr in &self.arena.path[s as usize] {
                        if self.res_mark[pr.index()] != epoch {
                            self.res_mark[pr.index()] = epoch;
                            queue.push(pr.0);
                        }
                    }
                }
            }
            if all_slots.len() == slot_start {
                // Dirty resource with no flows left: just clear its allocation.
                all_res.truncate(res_start);
                self.resources[seed as usize].allocated = 0.0;
                continue;
            }
            // Canonical order (BFS discovery order is traversal-dependent).
            all_res[res_start..].sort_unstable();
            let ids = &self.arena.id;
            all_slots[slot_start..].sort_unstable_by_key(|&s| ids[s as usize]);
            comps.push((res_start, all_res.len(), slot_start, all_slots.len()));
            stats.components += 1;
            stats.flows_visited += (all_slots.len() - slot_start) as u64;
        }

        // Phase 2: solve. Components are disjoint, each solve is a pure
        // function of the (now immutable) arena, and solutions are applied
        // serially in component order — so the scoped thread pool produces
        // byte-identical state to the serial loop (DESIGN.md §13).
        let parallel = match PARALLEL_MODE.load(std::sync::atomic::Ordering::Relaxed) {
            1 => false,
            2 => comps.len() >= 2,
            // Auto: a function of workload shape only, never of the host's
            // core count — keeps telemetry counters machine-independent.
            // Fabric-shaped passes (many tiny components) stay serial even
            // at high flow totals: the per-component solves are too small
            // to amortize a worker spawn.
            _ => {
                comps.len() >= 2
                    && stats.flows_visited >= PARALLEL_FLOW_THRESHOLD
                    && stats.flows_visited / comps.len() as u64 >= PARALLEL_MIN_COMPONENT_FLOWS
            }
        };
        if !parallel {
            for &(rs, re, ss, se) in &comps {
                let sol = solve_region(
                    &self.resources,
                    &self.arena,
                    &all_res[rs..re],
                    &all_slots[ss..se],
                );
                stats.waterfill += u64::from(sol.waterfill);
                apply_region(
                    &mut self.resources,
                    &mut self.arena,
                    &all_res[rs..re],
                    &all_slots[ss..se],
                    &sol,
                );
            }
            return stats;
        }

        stats.parallel_components = stats.components;
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(comps.len())
            .min(PARALLEL_MAX_WORKERS);
        let mut solutions: Vec<Option<RegionSolution>> = Vec::new();
        solutions.resize_with(comps.len(), || None);
        {
            let resources = &self.resources;
            let arena = &self.arena;
            let all_res = &all_res;
            let all_slots = &all_slots;
            let comps = &comps;
            std::thread::scope(|scope| {
                // Deterministic round-robin assignment: worker `w` takes
                // components w, w+W, w+2W… (scheduling cannot change which
                // worker solves which component, only when).
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            let mut ci = w;
                            while ci < comps.len() {
                                let (rs, re, ss, se) = comps[ci];
                                out.push((
                                    ci,
                                    solve_region(
                                        resources,
                                        arena,
                                        &all_res[rs..re],
                                        &all_slots[ss..se],
                                    ),
                                ));
                                ci += workers;
                            }
                            out
                        })
                    })
                    .collect();
                for h in handles {
                    for (ci, sol) in h.join().expect("component solver panicked") {
                        solutions[ci] = Some(sol);
                    }
                }
            });
        }
        // Merge in component order (= ascending first-dirty-seed order),
        // identical to the serial loop's write sequence.
        for (ci, &(rs, re, ss, se)) in comps.iter().enumerate() {
            let sol = solutions[ci].take().expect("every component solved");
            stats.waterfill += u64::from(sol.waterfill);
            apply_region(
                &mut self.resources,
                &mut self.arena,
                &all_res[rs..re],
                &all_slots[ss..se],
                &sol,
            );
        }
        stats
    }

    /// Advance all flows by `dt` seconds at their current rates, returning
    /// reports for completed flows (in deterministic id order).
    ///
    /// The caller must ensure `dt` does not overshoot any completion (the
    /// engine picks `dt` = time to the earliest event).
    pub fn elapse(&mut self, dt: f64) -> Vec<FlowReport> {
        debug_assert!(dt >= 0.0);
        if dt > 0.0 {
            for res in &mut self.resources {
                res.delivered += res.allocated * dt;
                if res.capacity > 0.0 {
                    res.busy_integral += (res.allocated / res.capacity).min(1.0) * dt;
                } else if res.allocated > 0.0 {
                    res.busy_integral += dt;
                }
            }
        }
        let mut finished: Vec<u32> = Vec::new();
        let a = &mut self.arena;
        for &s in &self.order {
            let si = s as usize;
            a.elapsed[si] += dt;
            let rate = a.rate[si];
            if let Some(c) = a.cap[si] {
                if rate < c * (1.0 - 1e-9) {
                    a.stalled[si] += dt * (1.0 - rate / c).clamp(0.0, 1.0);
                }
            }
            a.remaining[si] -= rate * dt;
            // Tolerate float fuzz: treat within 1e-6 units as done.
            if a.remaining[si] <= 1e-6 {
                finished.push(s);
            }
        }
        let mut done = Vec::with_capacity(finished.len());
        for &s in &finished {
            let mut rep = self.detach_slot(s);
            rep.remaining = 0.0;
            done.push(rep);
        }
        done
    }

    /// Snapshot of every active flow as `(tag, remaining, rate)`, in id
    /// order. Used by the engine's stall diagnostics.
    pub fn flow_snapshots(&self) -> Vec<(u64, f64, f64)> {
        self.order
            .iter()
            .map(|&s| {
                let si = s as usize;
                (self.arena.tag[si], self.arena.remaining[si], self.arena.rate[si])
            })
            .collect()
    }

    /// Seconds until the earliest flow completion at current rates.
    pub fn time_to_next_completion(&self) -> Option<f64> {
        self.order
            .iter()
            .map(|&s| s as usize)
            .filter(|&si| self.arena.rate[si] > 0.0)
            .map(|si| self.arena.remaining[si] / self.arena.rate[si])
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
    }
}

/// A solved component, local to its `comp_res`/`comp_slots` ordering:
/// `rate[i]` for the i-th component slot, `alloc[lr]` for the lr-th
/// component resource. Produced by [`solve_region`] (pure) and written back
/// by [`apply_region`] — the split is what lets independent components be
/// solved on worker threads while every state mutation stays on the caller.
struct RegionSolution {
    rate: Vec<f64>,
    alloc: Vec<f64>,
    /// Solved by the single-flow waterfill fast path.
    waterfill: bool,
}

/// Waterfill fast path for a one-flow component: the progressive fill
/// collapses to its first round — the flow runs at `weight × min over its
/// resources of capacity / weight`, or at its cap if that binds first.
///
/// Every expression below is copied verbatim from the corresponding
/// general-loop round (same `max(0.0)` clamps, same `- level` with `level
/// = 0.0`, same strict-`<` first-min scan in ascending resource order), so
/// the returned rate is exact-bits identical to what [`solve_region`]'s
/// loop would produce — the property tests compare the two bitwise.
fn solve_singleton(
    resources: &[Resource],
    arena: &FlowArena,
    comp_res: &[u32],
    comp_slots: &[u32],
) -> RegionSolution {
    let si = comp_slots[0] as usize;
    let w0 = arena.weight[si];
    // A closed one-flow component lists exactly the flow's resources, each
    // with unfrozen weight w0 (> 0: `start_flow` asserts it).
    let mut best_dlevel = f64::INFINITY;
    for &r in comp_res {
        let dlevel = resources[r as usize].capacity.max(0.0) / w0;
        if dlevel < best_dlevel {
            best_dlevel = dlevel;
        }
    }
    let cap_dlevel = match arena.cap[si] {
        Some(c) => (c / w0 - 0.0).max(0.0),
        None => f64::INFINITY,
    };
    let rate0 = if best_dlevel == f64::INFINITY && cap_dlevel == f64::INFINITY {
        w0 * 0.0
    } else if cap_dlevel < best_dlevel {
        arena.cap[si].expect("capped")
    } else {
        w0 * (0.0 + best_dlevel)
    };
    let mut alloc = vec![0.0f64; comp_res.len()];
    for &r in &arena.path[si] {
        let lr = comp_res.binary_search(&r.0).expect("closed component");
        alloc[lr] += rate0;
    }
    RegionSolution {
        rate: vec![rate0],
        alloc,
        waterfill: true,
    }
}

/// Solve one connected component by progressive filling, returning its
/// rates and per-resource allocations without touching shared state.
///
/// `comp_res` must be sorted ascending, `comp_slots` sorted by ascending
/// [`FlowId`], and together they must form a closed component: every
/// resource crossed by a listed flow is listed, and every flow crossing a
/// listed resource is listed. This routine is the *only* implementation of
/// the fill algorithm — the incremental and reference solvers both call it,
/// which is what makes their results bit-identical by construction.
fn solve_region(
    resources: &[Resource],
    arena: &FlowArena,
    comp_res: &[u32],
    comp_slots: &[u32],
) -> RegionSolution {
    if comp_slots.len() == 1 {
        return solve_singleton(resources, arena, comp_res, comp_slots);
    }
    solve_general(resources, arena, comp_res, comp_slots)
}

/// The full progressive-filling loop. Callers go through [`solve_region`];
/// only the waterfill parity test calls this directly on one-flow
/// components to prove the fast path bit-identical.
fn solve_general(
    resources: &[Resource],
    arena: &FlowArena,
    comp_res: &[u32],
    comp_slots: &[u32],
) -> RegionSolution {
    let nf = comp_slots.len();
    let nr = comp_res.len();
    debug_assert!(nf > 0 && nr > 0);

    // Component-local copies of the per-flow parameters, plus the local
    // adjacency in both directions. `lmembers[lr]` lists local flow indices
    // crossing local resource `lr` (ascending id, once per flow);
    // `fpath[i]` lists local resources flow `i` crosses (once each).
    let mut weight = vec![0.0f64; nf];
    let mut cap: Vec<Option<f64>> = vec![None; nf];
    let mut lmembers: Vec<Vec<u32>> = vec![Vec::new(); nr];
    let mut fpath: Vec<Vec<u32>> = vec![Vec::new(); nf];
    for (i, &s) in comp_slots.iter().enumerate() {
        let si = s as usize;
        weight[i] = arena.weight[si];
        cap[i] = arena.cap[si];
        for &r in &arena.path[si] {
            let lr = comp_res.binary_search(&r.0).expect("closed component") as u32;
            let lm = &mut lmembers[lr as usize];
            if lm.last() != Some(&(i as u32)) {
                lm.push(i as u32);
            } else {
                continue; // duplicate path entry, already indexed
            }
            fpath[i].push(lr);
        }
    }

    // Unfrozen weight sum per resource. Kept current across rounds by
    // *re-summing in id order* the resources touched by each freeze — not by
    // subtracting the frozen weight — so every round sees exactly the bits a
    // from-scratch summation would produce (f64 addition is not associative;
    // `(a+b+c)-a != b+c`). See DESIGN.md §10.
    let resum = |lm: &[u32], frozen: &[bool]| -> f64 {
        lm.iter().filter(|&&i| !frozen[i as usize]).map(|&i| weight[i as usize]).sum()
    };

    let mut frozen = vec![false; nf];
    let mut rate = vec![0.0f64; nf];
    let mut headroom: Vec<f64> =
        comp_res.iter().map(|&r| resources[r as usize].capacity).collect();
    let mut w: Vec<f64> = lmembers.iter().map(|lm| resum(lm, &frozen)).collect();
    let mut unfrozen = nf;
    let mut level = 0.0f64;
    let mut newly_frozen: Vec<usize> = Vec::new();

    // Active scan lists, compacted as the fill proceeds: a resource whose
    // unfrozen weight reached 0.0 can never become a candidate again
    // (weights are strictly positive and only leave `w` by freezing), nor
    // can a frozen flow. Retention is stable, so the surviving candidates
    // are visited in the same ascending order as the full `0..nr` / `0..nf`
    // scans — same first-strict-min tie-breaks, same arithmetic, skipping
    // only iterations the full scans would `continue` past. Dropping a
    // zero-weight resource from the headroom update is equally exact:
    // `headroom -= 0.0 * dl` is a no-op for every finite `dl`.
    let mut active_res: Vec<u32> = (0..nr as u32).collect();
    let mut active_cap_flows: Vec<u32> =
        (0..nf as u32).filter(|&i| cap[i as usize].is_some()).collect();

    while unfrozen > 0 {
        active_res.retain(|&lr| w[lr as usize] > 0.0);
        active_cap_flows.retain(|&i| !frozen[i as usize]);
        // For each resource, the level increment at which it saturates.
        let mut best_dlevel = f64::INFINITY;
        let mut bottleneck: Option<usize> = None;
        for &lr in &active_res {
            let lr = lr as usize;
            let dlevel = (headroom[lr].max(0.0)) / w[lr];
            if dlevel < best_dlevel {
                best_dlevel = dlevel;
                bottleneck = Some(lr);
            }
        }
        // Flow caps: flow i freezes when level reaches cap/weight.
        let mut cap_dlevel = f64::INFINITY;
        let mut cap_flow: Option<usize> = None;
        for &i in &active_cap_flows {
            let i = i as usize;
            if let Some(c) = cap[i] {
                let dl = (c / weight[i] - level).max(0.0);
                if dl < cap_dlevel {
                    cap_dlevel = dl;
                    cap_flow = Some(i);
                }
            }
        }

        if best_dlevel == f64::INFINITY && cap_dlevel == f64::INFINITY {
            // No constraint at all (can't happen: every flow crosses a
            // finite-capacity resource) — freeze everything at current level.
            for i in 0..nf {
                if !frozen[i] {
                    frozen[i] = true;
                    rate[i] = weight[i] * level;
                }
            }
            break;
        }

        if cap_dlevel < best_dlevel {
            // A flow reaches its cap first.
            let dl = cap_dlevel;
            level += dl;
            for &lr in &active_res {
                let lr = lr as usize;
                headroom[lr] -= w[lr] * dl;
            }
            let i = cap_flow.expect("cap flow set");
            frozen[i] = true;
            rate[i] = cap[i].expect("capped");
            unfrozen -= 1;
            for &lr in &fpath[i] {
                w[lr as usize] = resum(&lmembers[lr as usize], &frozen);
            }
        } else {
            // A resource saturates.
            let dl = best_dlevel;
            level += dl;
            for &lr in &active_res {
                let lr = lr as usize;
                headroom[lr] -= w[lr] * dl;
            }
            let rb = bottleneck.expect("bottleneck set");
            newly_frozen.clear();
            for &li in &lmembers[rb] {
                let i = li as usize;
                if !frozen[i] {
                    frozen[i] = true;
                    rate[i] = weight[i] * level;
                    unfrozen -= 1;
                    newly_frozen.push(i);
                }
            }
            // Refresh the weight sums of every resource a newly frozen flow
            // crosses (re-sums are idempotent, duplicates are harmless).
            for &i in &newly_frozen {
                for &lr in &fpath[i] {
                    w[lr as usize] = resum(&lmembers[lr as usize], &frozen);
                }
            }
        }
    }

    // Per-occurrence allocation sums on the component's resources (a path
    // crossing a resource twice counts twice), accumulated from 0.0 in the
    // exact (flow, path-occurrence) order the serial write-back always used
    // — f64 addition is order-sensitive, so this order is the contract.
    let mut alloc = vec![0.0f64; nr];
    for (i, &s) in comp_slots.iter().enumerate() {
        for &r in &arena.path[s as usize] {
            let lr = comp_res.binary_search(&r.0).expect("closed component");
            alloc[lr] += rate[i];
        }
    }
    RegionSolution {
        rate,
        alloc,
        waterfill: false,
    }
}

/// Write a solved component back: rates on the flows, allocation totals on
/// the component's resources. Always runs on the caller's thread; parallel
/// passes apply solutions in component order so the final state is
/// byte-identical to the serial loop.
fn apply_region(
    resources: &mut [Resource],
    arena: &mut FlowArena,
    comp_res: &[u32],
    comp_slots: &[u32],
    sol: &RegionSolution,
) {
    for (lr, &r) in comp_res.iter().enumerate() {
        resources[r as usize].allocated = sol.alloc[lr];
    }
    for (i, &s) in comp_slots.iter().enumerate() {
        arena.rate[s as usize] = sol.rate[i];
    }
}

/// From-scratch solver retained as the equivalence oracle for the
/// incremental [`FluidNet::reallocate`].
///
/// It ignores all of the net's cached bookkeeping — inverse index, dirty
/// bits, component marks — and rebuilds the flow↔resource adjacency and the
/// component decomposition from the flow paths alone, then runs the same
/// [`solve_region`] per component. Any bug in the incremental maintenance
/// (a stale member list, a missed dirty bit, a component split too early)
/// shows up as a bitwise rate mismatch in the `prop_fluid_equiv` suite.
#[cfg(any(test, feature = "reference-solver"))]
pub mod reference {
    use super::*;

    /// Re-solve the whole net from scratch. Clears all dirty state.
    pub fn reallocate(net: &mut FluidNet) -> ReallocStats {
        net.dirty = false;
        for d in &mut net.res_dirty {
            *d = false;
        }
        net.dirty_list.clear();
        for r in &mut net.resources {
            r.allocated = 0.0;
        }
        let n = net.resources.len();
        // Live slots in ascending id order, independent of `net.order`.
        // (Hash-iteration order is immediately canonicalized by the sort —
        // determinism policy, DESIGN.md §13.)
        let mut live: Vec<u32> = net.index.values().copied().collect();
        live.sort_unstable_by_key(|&s| net.arena.id[s as usize]);
        // Adjacency rebuilt from paths alone.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &s in &live {
            for &r in &net.arena.path[s as usize] {
                let m = &mut members[r.index()];
                if m.last() != Some(&s) {
                    m.push(s);
                }
            }
        }
        let mut res_seen = vec![false; n];
        let mut slot_seen = vec![false; net.arena.len()];
        let mut stats = ReallocStats::default();
        let mut comp_res: Vec<u32> = Vec::new();
        let mut comp_slots: Vec<u32> = Vec::new();
        let mut queue: Vec<u32> = Vec::new();
        for seed in 0..n {
            if res_seen[seed] || members[seed].is_empty() {
                continue;
            }
            comp_res.clear();
            comp_slots.clear();
            queue.clear();
            res_seen[seed] = true;
            queue.push(seed as u32);
            while let Some(r) = queue.pop() {
                comp_res.push(r);
                for &s in &members[r as usize] {
                    if slot_seen[s as usize] {
                        continue;
                    }
                    slot_seen[s as usize] = true;
                    comp_slots.push(s);
                    for &pr in &net.arena.path[s as usize] {
                        if !res_seen[pr.index()] {
                            res_seen[pr.index()] = true;
                            queue.push(pr.0);
                        }
                    }
                }
            }
            comp_res.sort_unstable();
            let ids = &net.arena.id;
            comp_slots.sort_unstable_by_key(|&s| ids[s as usize]);
            stats.components += 1;
            stats.flows_visited += comp_slots.len() as u64;
            let sol = solve_region(&net.resources, &net.arena, &comp_res, &comp_slots);
            stats.waterfill += u64::from(sol.waterfill);
            apply_region(&mut net.resources, &mut net.arena, &comp_res, &comp_slots, &sol);
        }
        stats
    }
}

impl fmt::Debug for FluidNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FluidNet ({} resources, {} flows)", self.resources.len(), self.order.len())?;
        for (i, r) in self.resources.iter().enumerate() {
            writeln!(
                f,
                "  R{} {}: cap {:.3e} alloc {:.3e}",
                i, r.name, r.capacity, r.allocated
            )?;
        }
        for &s in &self.order {
            let si = s as usize;
            writeln!(
                f,
                "  F{} tag {}: remaining {:.3e} rate {:.3e} cap {:?}",
                self.arena.id[si],
                self.arena.tag[si],
                self.arena.remaining[si],
                self.arena.rate[si],
                self.arena.cap[si]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(path: Vec<ResourceId>, volume: f64) -> FlowSpec {
        FlowSpec {
            path,
            volume,
            weight: 1.0,
            cap: None,
            tag: 0,
        }
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 100.0);
        let f = net.start_flow(spec(vec![r], 1000.0));
        net.reallocate();
        assert_eq!(net.flow_rate(f), Some(100.0));
        assert_eq!(net.allocated(r), 100.0);
    }

    #[test]
    fn equal_flows_share_equally() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 90.0);
        let f1 = net.start_flow(spec(vec![r], 1000.0));
        let f2 = net.start_flow(spec(vec![r], 1000.0));
        let f3 = net.start_flow(spec(vec![r], 1000.0));
        net.reallocate();
        for f in [f1, f2, f3] {
            assert!((net.flow_rate(f).unwrap() - 30.0).abs() < 1e-9);
        }
    }

    #[test]
    fn weights_respected() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 100.0);
        let heavy = net.start_flow(FlowSpec {
            weight: 3.0,
            ..spec(vec![r], 1000.0)
        });
        let light = net.start_flow(spec(vec![r], 1000.0));
        net.reallocate();
        assert!((net.flow_rate(heavy).unwrap() - 75.0).abs() < 1e-9);
        assert!((net.flow_rate(light).unwrap() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn cap_frees_bandwidth_for_others() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 100.0);
        let capped = net.start_flow(FlowSpec {
            cap: Some(10.0),
            ..spec(vec![r], 1000.0)
        });
        let elastic = net.start_flow(spec(vec![r], 1000.0));
        net.reallocate();
        assert!((net.flow_rate(capped).unwrap() - 10.0).abs() < 1e-9);
        assert!((net.flow_rate(elastic).unwrap() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn multi_resource_path_bottleneck() {
        let mut net = FluidNet::new();
        let wide = net.add_resource("wide", 100.0);
        let narrow = net.add_resource("narrow", 20.0);
        let through = net.start_flow(spec(vec![wide, narrow], 1000.0));
        let local = net.start_flow(spec(vec![wide], 1000.0));
        net.reallocate();
        // `through` is limited to 20 by the narrow hop; `local` takes the rest.
        assert!((net.flow_rate(through).unwrap() - 20.0).abs() < 1e-9);
        assert!((net.flow_rate(local).unwrap() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn elapse_completes_flows_in_order() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 10.0);
        let _short = net.start_flow(FlowSpec {
            tag: 1,
            ..spec(vec![r], 10.0)
        });
        let _long = net.start_flow(FlowSpec {
            tag: 2,
            ..spec(vec![r], 100.0)
        });
        net.reallocate();
        // Each gets 5 units/s; short completes at t=2.
        let t = net.time_to_next_completion().unwrap();
        assert!((t - 2.0).abs() < 1e-9);
        let done = net.elapse(t);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 1);
        // Long flow now gets full bandwidth.
        net.reallocate();
        let t2 = net.time_to_next_completion().unwrap();
        // Long flow transferred 10 of 100 units in the shared phase.
        assert!((t2 - 9.0).abs() < 1e-9, "t2={}", t2);
    }

    #[test]
    fn stall_accounting() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 10.0);
        // Two capped flows want 10 each but must share 10.
        let f1 = net.start_flow(FlowSpec {
            cap: Some(10.0),
            tag: 1,
            ..spec(vec![r], 10.0)
        });
        let _f2 = net.start_flow(FlowSpec {
            cap: Some(10.0),
            tag: 2,
            ..spec(vec![r], 10.0)
        });
        net.reallocate();
        assert!((net.flow_rate(f1).unwrap() - 5.0).abs() < 1e-9);
        let done = net.elapse(2.0);
        assert_eq!(done.len(), 2);
        for d in done {
            // Ran at half the cap for 2 s → 1 s equivalent stalled.
            assert!((d.stalled - 1.0).abs() < 1e-9);
            assert!((d.elapsed - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn capacity_change_marks_dirty() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 10.0);
        let _f = net.start_flow(spec(vec![r], 100.0));
        net.reallocate();
        assert!(!net.is_dirty());
        net.set_capacity(r, 20.0);
        assert!(net.is_dirty());
        net.reallocate();
        assert!((net.allocated(r) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cancel_flow_reports_progress() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 10.0);
        let f = net.start_flow(spec(vec![r], 100.0));
        net.reallocate();
        net.elapse(1.0);
        let rep = net.cancel_flow(f).unwrap();
        assert!((rep.remaining - 90.0).abs() < 1e-9);
        assert!((rep.elapsed - 1.0).abs() < 1e-9);
        assert!(net.cancel_flow(f).is_none());
    }

    #[test]
    fn delivered_and_busy_counters() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 10.0);
        let _f = net.start_flow(FlowSpec {
            cap: Some(5.0),
            ..spec(vec![r], 10.0)
        });
        net.reallocate();
        net.elapse(2.0);
        assert!((net.delivered(r) - 10.0).abs() < 1e-9);
        // Ran at 50 % utilization for 2 s.
        assert!((net.busy_integral(r) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_resource_stalls_flow() {
        let mut net = FluidNet::new();
        let r = net.add_resource("off", 0.0);
        let f = net.start_flow(spec(vec![r], 10.0));
        net.reallocate();
        assert_eq!(net.flow_rate(f), Some(0.0));
        assert!(net.time_to_next_completion().is_none());
    }

    #[test]
    fn demand_sums_caps() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 100.0);
        net.start_flow(FlowSpec {
            cap: Some(30.0),
            ..spec(vec![r], 10.0)
        });
        net.start_flow(spec(vec![r], 10.0)); // elastic counts as capacity
        assert!((net.demand(r) - 130.0).abs() < 1e-9);
    }

    #[test]
    fn independent_components_are_not_revisited() {
        let mut net = FluidNet::new();
        let left = net.add_resource("left", 100.0);
        let right = net.add_resource("right", 50.0);
        let fl = net.start_flow(spec(vec![left], 1e6));
        let _fr = net.start_flow(spec(vec![right], 1e6));
        let stats = net.reallocate();
        assert_eq!(stats.components, 2);
        assert_eq!(stats.flows_visited, 2);
        // A mutation on the right component must not re-solve the left one.
        let fr2 = net.start_flow(spec(vec![right], 1e6));
        let stats = net.reallocate();
        assert_eq!(stats.components, 1);
        assert_eq!(stats.flows_visited, 2);
        assert_eq!(net.flow_rate(fl), Some(100.0));
        assert!((net.flow_rate(fr2).unwrap() - 25.0).abs() < 1e-9);
        // No pending change: reallocation is a no-op.
        let stats = net.reallocate();
        assert_eq!(stats, ReallocStats::default());
    }

    #[test]
    fn slab_reuses_slots_but_never_ids() {
        let mut net = FluidNet::new();
        let r = net.add_resource("bus", 10.0);
        let a = net.start_flow(spec(vec![r], 10.0));
        let b = net.start_flow(spec(vec![r], 10.0));
        net.reallocate();
        net.cancel_flow(a).unwrap();
        let c = net.start_flow(spec(vec![r], 10.0));
        assert_ne!(a, c);
        assert!(net.flow_rate(a).is_none());
        net.reallocate();
        assert!((net.flow_rate(b).unwrap() - 5.0).abs() < 1e-9);
        assert!((net.flow_rate(c).unwrap() - 5.0).abs() < 1e-9);
        assert_eq!(net.active_flows(), 2);
    }

    #[test]
    fn duplicate_path_entries_count_twice_in_allocated() {
        let mut net = FluidNet::new();
        let bus = net.add_resource("bus", 100.0);
        let f = net.start_flow(spec(vec![bus, bus], 10.0));
        net.reallocate();
        // The flow is indexed once (weight counted once) but its allocation
        // is charged per path occurrence, as the original solver did.
        assert_eq!(net.flow_rate(f), Some(100.0));
        assert_eq!(net.allocated(bus), 200.0);
        net.cancel_flow(f).unwrap();
        net.reallocate();
        assert_eq!(net.allocated(bus), 0.0);
        assert_eq!(net.demand(bus), 0.0);
    }

    /// Mixed multi-component net exercising shared resources, caps, weights
    /// and multi-hop paths. Returns (net, flows, resources).
    fn multi_component_net(groups: u32) -> (FluidNet, Vec<FlowId>, Vec<ResourceId>) {
        let mut net = FluidNet::new();
        let mut flows = Vec::new();
        let mut rs = Vec::new();
        for g in 0..groups {
            let shared = net.add_resource(format!("rack{g}"), 50.0 + g as f64);
            let wide = net.add_resource(format!("fab{g}"), 100.0);
            rs.push(shared);
            rs.push(wide);
            for i in 0..5 {
                flows.push(net.start_flow(FlowSpec {
                    path: if i % 2 == 0 { vec![shared, wide] } else { vec![shared] },
                    volume: 1e6,
                    weight: 1.0 + f64::from(i) * 0.25,
                    cap: if i == 3 { Some(7.5) } else { None },
                    tag: u64::from(g * 8 + i),
                }));
            }
        }
        (net, flows, rs)
    }

    #[test]
    fn parallel_components_match_serial_bitwise() {
        use std::sync::atomic::Ordering;
        let (mut serial, flows, rs) = multi_component_net(6);
        let (mut par, _, _) = multi_component_net(6);
        PARALLEL_MODE.store(1, Ordering::Relaxed);
        let ss = serial.reallocate();
        PARALLEL_MODE.store(2, Ordering::Relaxed);
        let sp = par.reallocate();
        PARALLEL_MODE.store(0, Ordering::Relaxed);
        assert_eq!(ss.components, 6);
        assert_eq!(ss.components, sp.components);
        assert_eq!(ss.flows_visited, sp.flows_visited);
        assert_eq!(ss.parallel_components, 0);
        assert_eq!(sp.parallel_components, 6, "forced parallel must engage");
        for &f in &flows {
            assert_eq!(
                serial.flow_rate(f).map(f64::to_bits),
                par.flow_rate(f).map(f64::to_bits),
                "flow {f:?}"
            );
        }
        for &r in &rs {
            assert_eq!(serial.allocated(r).to_bits(), par.allocated(r).to_bits(), "{r:?}");
        }
    }

    #[test]
    fn parallel_auto_mode_engages_on_workload_shape_only() {
        // Below threshold: two components, few flows — stays serial.
        let (mut small, _, _) = multi_component_net(2);
        assert_eq!(small.reallocate().parallel_components, 0);
        // At threshold: flows_visited >= PARALLEL_FLOW_THRESHOLD across >= 2
        // components engages the pool regardless of host core count.
        let mut big = FluidNet::new();
        let a = big.add_resource("a", 100.0);
        let b = big.add_resource("b", 100.0);
        let per = PARALLEL_FLOW_THRESHOLD / 2;
        for i in 0..2 * per {
            big.start_flow(FlowSpec {
                path: vec![if i % 2 == 0 { a } else { b }],
                volume: 1e9,
                weight: 1.0,
                cap: None,
                tag: i,
            });
        }
        let stats = big.reallocate();
        assert_eq!(stats.components, 2);
        assert_eq!(stats.flows_visited, 2 * per);
        assert_eq!(stats.parallel_components, 2);
    }

    #[test]
    fn fast_matches_reference_after_mutations() {
        let mut net = FluidNet::new();
        let a = net.add_resource("a", 100.0);
        let b = net.add_resource("b", 60.0);
        let c = net.add_resource("c", 30.0);
        let f1 = net.start_flow(spec(vec![a, b], 1e6));
        let f2 = net.start_flow(FlowSpec {
            cap: Some(12.0),
            ..spec(vec![b, c], 1e6)
        });
        let f3 = net.start_flow(spec(vec![c], 1e6));
        net.reallocate();
        net.set_flow_cap(f2, Some(7.0));
        net.set_capacity(a, 80.0);
        net.cancel_flow(f3).unwrap();
        net.reallocate();
        let fast: Vec<_> = [f1, f2].iter().map(|&f| net.flow_rate(f).map(f64::to_bits)).collect();
        let fast_alloc: Vec<_> = [a, b, c].iter().map(|&r| net.allocated(r).to_bits()).collect();
        reference::reallocate(&mut net);
        let refr: Vec<_> = [f1, f2].iter().map(|&f| net.flow_rate(f).map(f64::to_bits)).collect();
        let ref_alloc: Vec<_> = [a, b, c].iter().map(|&r| net.allocated(r).to_bits()).collect();
        assert_eq!(fast, refr);
        assert_eq!(fast_alloc, ref_alloc);
    }

    /// The waterfill fast path is an exact-bits shortcut of the general
    /// progressive fill: sweep randomized one-flow components (duplicate
    /// path entries, zero-capacity resources, caps on/off) and compare the
    /// two solvers' rates and allocations bitwise.
    #[test]
    fn waterfill_matches_general_loop_bitwise() {
        let mut rng = crate::Pcg32::new(42, 0x0dec0de);
        for case in 0..1000u32 {
            let mut net = FluidNet::new();
            let nres = 1 + rng.below(5) as usize;
            let rs: Vec<ResourceId> = (0..nres)
                .map(|i| {
                    let cap = match rng.below(8) {
                        0 => 0.0,
                        v => v as f64 * 13.75 + rng.next_f64(),
                    };
                    net.add_resource(format!("r{}", i), cap)
                })
                .collect();
            // Random path over the resources, duplicates allowed.
            let plen = 1 + rng.below(6) as usize;
            let path: Vec<ResourceId> =
                (0..plen).map(|_| rs[rng.below(nres as u32) as usize]).collect();
            let weight = 0.1 + rng.next_f64() * 9.9;
            let cap = (rng.below(2) == 1).then(|| 0.5 + rng.next_f64() * 200.0);
            net.start_flow(FlowSpec {
                path: path.clone(),
                volume: 1e6,
                weight,
                cap,
                tag: 0,
            });
            let slot = *net.index.values().next().expect("one flow");
            let mut comp_res: Vec<u32> = path.iter().map(|r| r.0).collect();
            comp_res.sort_unstable();
            comp_res.dedup();
            let comp_slots = [slot];
            let fast = solve_singleton(&net.resources, &net.arena, &comp_res, &comp_slots);
            let slow = solve_general(&net.resources, &net.arena, &comp_res, &comp_slots);
            assert!(fast.waterfill && !slow.waterfill);
            assert_eq!(
                fast.rate[0].to_bits(),
                slow.rate[0].to_bits(),
                "case {}: rate diverged ({} vs {})",
                case,
                fast.rate[0],
                slow.rate[0]
            );
            assert_eq!(fast.alloc.len(), slow.alloc.len());
            for (lr, (a, b)) in fast.alloc.iter().zip(&slow.alloc).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "case {}: alloc[{}]", case, lr);
            }
        }
    }
}
