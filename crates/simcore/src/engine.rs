//! The discrete-event engine: time, timers and fluid flows.
//!
//! Domain layers (memory system, NIC, runtime…) schedule **timers** (fixed
//! latencies: wire time, handshakes, governor ticks, polling backoff) and
//! start **flows** (bandwidth-shared transfers). The engine interleaves both
//! kinds of events in global time order and hands back completion events
//! tagged with opaque `u64` tags. Tags are namespaced per subsystem (high
//! bits identify the owner) so a single driver loop can dispatch them.

use std::collections::VecDeque;
use std::fmt;

use crate::cancel::{self, CancelToken};
use crate::fluid::{FlowId, FlowReport, FlowSpec, FluidNet, ResourceId};
#[cfg(any(test, feature = "reference-queue"))]
use crate::queue::{HeapQueue, FORCE_HEAP};
use crate::queue::{EventQueue, QueueEntry, TimingWheel};
use crate::telemetry::{self, Lane};
use crate::time::SimTime;

pub use crate::queue::TimerId;

/// A completion event returned by [`Engine::next`].
#[derive(Clone, Debug)]
pub enum Event {
    /// A timer fired.
    Timer {
        /// The tag it was scheduled with.
        tag: u64,
    },
    /// A flow transferred its whole volume.
    Flow {
        /// The tag it was started with.
        tag: u64,
        /// Timing/stall report.
        report: FlowReport,
    },
}

impl Event {
    /// The tag regardless of event kind.
    pub fn tag(&self) -> u64 {
        match self {
            Event::Timer { tag } => *tag,
            Event::Flow { tag, .. } => *tag,
        }
    }
}

/// The engine's timer queue: the production timing wheel, or (under tests /
/// the `reference-queue` feature) the retained binary-heap reference so the
/// two can be compared differentially on whole campaigns.
enum TimerQueue {
    Wheel(TimingWheel),
    #[cfg(any(test, feature = "reference-queue"))]
    Heap(HeapQueue),
}

impl TimerQueue {
    #[inline]
    fn get(&self) -> &dyn EventQueue {
        match self {
            TimerQueue::Wheel(w) => w,
            #[cfg(any(test, feature = "reference-queue"))]
            TimerQueue::Heap(h) => h,
        }
    }

    #[inline]
    fn get_mut(&mut self) -> &mut dyn EventQueue {
        match self {
            TimerQueue::Wheel(w) => w,
            #[cfg(any(test, feature = "reference-queue"))]
            TimerQueue::Heap(h) => h,
        }
    }
}

/// What the event loop was still holding when it wedged. Attached to every
/// [`EngineError`] so a hung experiment reports *which* timers and flows were
/// outstanding instead of spinning or dying with a bare assert.
#[derive(Clone, Debug)]
pub struct StallDiagnostic {
    /// Simulated time at which the stall was detected.
    pub now: SimTime,
    /// Tags of timers still scheduled (cancelled ones excluded).
    pub pending_timer_tags: Vec<u64>,
    /// Active flows as `(tag, remaining_units, rate_units_per_s)`.
    pub pending_flows: Vec<(u64, f64, f64)>,
}

impl StallDiagnostic {
    /// True when nothing at all was outstanding.
    pub fn is_empty(&self) -> bool {
        self.pending_timer_tags.is_empty() && self.pending_flows.is_empty()
    }
}

impl fmt::Display for StallDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "at t={:.6}s: {} pending timer(s), {} active flow(s)",
            self.now.as_secs_f64(),
            self.pending_timer_tags.len(),
            self.pending_flows.len()
        )?;
        for &tag in self.pending_timer_tags.iter().take(8) {
            write!(f, "; timer tag {:#x}", tag)?;
        }
        for &(tag, remaining, rate) in self.pending_flows.iter().take(8) {
            write!(
                f,
                "; flow tag {:#x} remaining {:.3e} rate {:.3e}",
                tag, remaining, rate
            )?;
        }
        Ok(())
    }
}

/// Why [`Engine::try_next`] could not produce an event.
#[derive(Clone, Debug)]
pub enum EngineError {
    /// Flows are active but none can progress (e.g. all their resources have
    /// zero capacity) and no timer will ever unblock them: the model is
    /// deadlocked.
    Stalled(StallDiagnostic),
    /// The next event lies beyond the configured simulated-time budget
    /// ([`Engine::set_time_budget`]): the run is taking implausibly long,
    /// usually a sign of a lost completion or an unbounded retry loop.
    BudgetExceeded {
        /// The configured budget that was exceeded.
        budget: SimTime,
        /// What was still outstanding when the budget tripped.
        diagnostic: StallDiagnostic,
    },
    /// The run's [`CancelToken`] tripped (explicit cancellation or an
    /// expired wall-clock deadline): a supervisor asked the simulation to
    /// stop. Unlike the other variants this is not a model defect — the
    /// engine state is intact, merely abandoned.
    Cancelled {
        /// True when the tripped token carried a wall-clock deadline —
        /// i.e. this is (or at least could be) a timeout rather than a
        /// plain [`CancelToken::cancel`].
        deadline: bool,
        /// What was still outstanding when cancellation was observed.
        diagnostic: StallDiagnostic,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Stalled(d) => {
                write!(f, "simulation deadlock: no event can make progress ({})", d)
            }
            EngineError::BudgetExceeded { budget, diagnostic } => write!(
                f,
                "simulated-time budget of {:.6}s exceeded ({})",
                budget.as_secs_f64(),
                diagnostic
            ),
            EngineError::Cancelled { deadline, diagnostic } => write!(
                f,
                "run cancelled ({}; {})",
                if *deadline {
                    "wall-clock deadline exceeded"
                } else {
                    "token cancelled"
                },
                diagnostic
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// The simulation engine. See module docs.
pub struct Engine {
    now: SimTime,
    net: FluidNet,
    /// Timer queue. Cancellation is O(1): the entry stays queued with a
    /// tombstone and is discarded when it surfaces, consuming the tombstone.
    /// Every cancel site targets a still-pending timer, so tombstones cannot
    /// leak — asserted (debug builds) at quiescence and on drop via
    /// [`EventQueue::outstanding_tombstones`].
    timers: TimerQueue,
    next_timer: u64,
    seq: u64,
    /// Same-instant event batch not yet handed out: all flow completions and
    /// due timers at one `SimTime` are drained here in one pass (flows first,
    /// then timers in schedule order) and popped from the front. The buffer's
    /// allocation is reused across instants.
    pending: VecDeque<Event>,
    /// Optional watchdog: `try_next` refuses to advance past this instant.
    budget: Option<SimTime>,
    /// Cooperative cancellation token, adopted from the ambient
    /// [`cancel`] installation at construction (or set explicitly).
    cancel: Option<CancelToken>,
    /// Events delivered since the last wall-clock deadline check; the
    /// token flag itself is checked on every event.
    cancel_stride: u64,
}

impl Engine {
    /// Create an empty engine at time zero.
    pub fn new() -> Self {
        #[cfg(any(test, feature = "reference-queue"))]
        let timers = if FORCE_HEAP.load(std::sync::atomic::Ordering::Relaxed) {
            TimerQueue::Heap(HeapQueue::new())
        } else {
            TimerQueue::Wheel(TimingWheel::new())
        };
        #[cfg(not(any(test, feature = "reference-queue")))]
        let timers = TimerQueue::Wheel(TimingWheel::new());
        Engine {
            now: SimTime::ZERO,
            net: FluidNet::new(),
            timers,
            next_timer: 0,
            seq: 0,
            pending: VecDeque::new(),
            budget: None,
            cancel: cancel::current(),
            cancel_stride: 0,
        }
    }

    /// Create an empty engine running on the retained binary-heap reference
    /// queue instead of the timing wheel, for differential comparison
    /// (the queue analogue of `fluid::reference`).
    #[cfg(any(test, feature = "reference-queue"))]
    pub fn with_heap_queue() -> Self {
        let mut e = Engine::new();
        e.timers = TimerQueue::Heap(HeapQueue::new());
        e
    }

    /// Which queue backs this engine — lets replay tests assert the
    /// `FORCE_HEAP` switch actually engaged before trusting a comparison.
    #[cfg(any(test, feature = "reference-queue"))]
    pub fn uses_heap_queue(&self) -> bool {
        matches!(self.timers, TimerQueue::Heap(_))
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    // ---- resources ----

    /// Add a resource with the given capacity (units/s).
    pub fn add_resource(&mut self, name: impl Into<String>, capacity: f64) -> ResourceId {
        self.net.add_resource(name, capacity)
    }

    /// Change a resource's capacity (frequency scaling).
    pub fn set_capacity(&mut self, r: ResourceId, capacity: f64) {
        self.net.set_capacity(r, capacity);
    }

    /// Current capacity of a resource.
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.net.capacity(r)
    }

    /// Utilization of `r` under the current allocation, in [0,1].
    pub fn utilization(&mut self, r: ResourceId) -> f64 {
        self.refresh();
        self.net.utilization(r)
    }

    /// Offered demand on `r` (can exceed capacity under contention).
    pub fn demand(&mut self, r: ResourceId) -> f64 {
        self.refresh();
        self.net.demand(r)
    }

    /// Cumulative units delivered through `r` since the start of the run.
    pub fn delivered(&self, r: ResourceId) -> f64 {
        self.net.delivered(r)
    }

    /// Integral of utilization of `r` (seconds at 100 %).
    pub fn busy_integral(&self, r: ResourceId) -> f64 {
        self.net.busy_integral(r)
    }

    // ---- flows ----

    /// Start a bandwidth-shared flow.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        self.net.start_flow(spec)
    }

    /// Change a flow's rate cap (roofline bound moved with frequency).
    pub fn set_flow_cap(&mut self, id: FlowId, cap: Option<f64>) {
        self.net.set_flow_cap(id, cap);
    }

    /// Cancel a flow before completion, returning its progress report.
    pub fn cancel_flow(&mut self, id: FlowId) -> Option<FlowReport> {
        self.net.cancel_flow(id)
    }

    /// Current rate of a flow (refreshing the allocation if needed).
    pub fn flow_rate(&mut self, id: FlowId) -> Option<f64> {
        self.refresh();
        self.net.flow_rate(id)
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.net.active_flows()
    }

    // ---- timers ----

    /// Schedule `tag` to fire after `delay`.
    pub fn after(&mut self, delay: SimTime, tag: u64) -> TimerId {
        self.at(self.now + delay, tag)
    }

    /// Schedule `tag` to fire at absolute time `deadline` (>= now).
    pub fn at(&mut self, deadline: SimTime, tag: u64) -> TimerId {
        debug_assert!(deadline >= self.now, "timer in the past");
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.seq += 1;
        self.timers.get_mut().insert(QueueEntry {
            deadline,
            seq: self.seq,
            id,
            tag,
        });
        telemetry::counter_add("engine.queue.inserts", 1);
        id
    }

    /// Cancel a timer. Every caller must target a still-pending timer
    /// (cancelling an already-fired id would leave a tombstone that can
    /// never be consumed — debug builds assert against it at quiescence).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.timers.get_mut().cancel(id);
        telemetry::counter_add("engine.queue.cancels", 1);
    }

    /// Re-solve the allocation if any flow/capacity mutation is pending.
    /// All same-instant mutations batch into this single reallocation, and
    /// the incremental solver only revisits the dirty components.
    fn refresh(&mut self) {
        if self.net.is_dirty() {
            let stats = self.net.reallocate();
            telemetry::counter_add("fluid.reallocs", 1);
            if stats.components > 0 {
                telemetry::counter_add("fluid.components", stats.components);
                telemetry::counter_add("fluid.realloc_flows_visited", stats.flows_visited);
            }
            if stats.parallel_components > 0 {
                telemetry::counter_add("fluid.parallel_components", stats.parallel_components);
            }
            if stats.waterfill > 0 {
                telemetry::counter_add("fluid.waterfill", stats.waterfill);
            }
        }
    }

    /// Arm (or with `None` disarm) the simulated-time watchdog: once set,
    /// [`Engine::try_next`] returns [`EngineError::BudgetExceeded`] instead of
    /// advancing past `budget`. A run that legitimately needs more simulated
    /// time can raise the budget and continue.
    pub fn set_time_budget(&mut self, budget: Option<SimTime>) {
        self.budget = budget;
    }

    /// The currently armed simulated-time budget, if any.
    pub fn time_budget(&self) -> Option<SimTime> {
        self.budget
    }

    /// Attach (or with `None` detach) a cooperative cancellation token.
    /// Engines adopt the ambient [`cancel::current`] token at construction;
    /// this overrides it for hand-built engines and tests.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
        self.cancel_stride = 0;
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Poll the cancellation token: the tripped flag on every call, the
    /// wall clock only every [`cancel::DEADLINE_CHECK_STRIDE`] calls (the
    /// flag is an atomic load; the clock is a syscall).
    fn cancelled(&mut self) -> Option<bool> {
        let tok = self.cancel.as_ref()?;
        if tok.is_cancelled() {
            return Some(tok.has_deadline());
        }
        self.cancel_stride += 1;
        if self.cancel_stride >= cancel::DEADLINE_CHECK_STRIDE {
            self.cancel_stride = 0;
            if tok.check() {
                return Some(tok.has_deadline());
            }
        }
        None
    }

    /// Snapshot of everything still outstanding (for error reporting).
    /// Timer tags are listed in `(deadline, seq)` order — deterministic and
    /// identical across queue implementations (determinism policy,
    /// DESIGN.md §13).
    pub fn stall_diagnostic(&self) -> StallDiagnostic {
        let pending_timer_tags = self
            .timers
            .get()
            .live_entries()
            .iter()
            .map(|e| e.tag)
            .collect();
        StallDiagnostic {
            now: self.now,
            pending_timer_tags,
            pending_flows: self.net.flow_snapshots(),
        }
    }

    /// Advance to and return the next completion event, or `None` when the
    /// simulation has run dry (no timers, no active flows).
    ///
    /// Panics on a model deadlock; use [`Engine::try_next`] to get a typed
    /// [`EngineError`] with diagnostics instead.
    // Long-standing public API; the engine is deliberately not an Iterator
    // (stepping mutates shared resource state between calls).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Event> {
        match self.try_next() {
            Ok(ev) => ev,
            Err(e) => panic!("{}", e),
        }
    }

    /// Like [`Engine::next`], but surfaces wedged states as typed errors:
    /// a deadlock (active flows that can never progress) or a blown
    /// simulated-time budget both return `Err` with a [`StallDiagnostic`]
    /// naming the outstanding timers and flows. The engine state is left
    /// untouched on error, so callers can raise the budget and retry.
    pub fn try_next(&mut self) -> Result<Option<Event>, EngineError> {
        loop {
            // Cooperative cancellation: checked once per loop iteration so
            // both event delivery and the no-completion `continue` path
            // (capacity-change storms) observe a tripped token promptly.
            if let Some(deadline) = self.cancelled() {
                telemetry::instant(self.now, "engine", "cancelled", Lane::Engine);
                return Err(EngineError::Cancelled {
                    deadline,
                    diagnostic: self.stall_diagnostic(),
                });
            }
            // Drain the same-instant batch before touching the allocator:
            // all mutations made by handlers at this instant coalesce into
            // the single `refresh` below, one allocator pass per instant.
            if let Some(ev) = self.pending.pop_front() {
                telemetry::counter_add("engine.events", 1);
                return Ok(Some(ev));
            }
            self.refresh();

            // Earliest live timer; the queue lazily consumes tombstones of
            // cancelled entries as they surface.
            let timer_deadline = self.timers.get_mut().peek_deadline();

            let flow_dt = self.net.time_to_next_completion();
            let flow_deadline = flow_dt.map(|dt| {
                // Guarantee progress: float residue can make `dt` round to
                // zero picoseconds, which would spin the loop forever.
                let step = SimTime::from_secs_f64(dt).max(SimTime::PS);
                self.now.checked_add(step).unwrap_or(SimTime::MAX)
            });

            let target = match (timer_deadline, flow_deadline) {
                // Only "endless" flows remain (background polling traffic
                // whose completion horizon saturates SimTime): the
                // simulation is effectively dry.
                (None, Some(f)) if f == SimTime::MAX => {
                    self.assert_no_tombstones();
                    telemetry::instant(self.now, "engine", "quiesce", Lane::Engine);
                    return Ok(None);
                }
                (None, None) => {
                    // Dry: if flows exist but are all stalled (rate 0), this
                    // is a deadlock in the model — surface it loudly.
                    if self.net.active_flows() > 0 {
                        return Err(EngineError::Stalled(self.stall_diagnostic()));
                    }
                    self.assert_no_tombstones();
                    telemetry::instant(self.now, "engine", "quiesce", Lane::Engine);
                    return Ok(None);
                }
                (Some(t), None) => t,
                (None, Some(f)) => f,
                (Some(t), Some(f)) => t.min(f),
            };

            if let Some(budget) = self.budget {
                if target > budget {
                    return Err(EngineError::BudgetExceeded {
                        budget,
                        diagnostic: self.stall_diagnostic(),
                    });
                }
            }

            let dt = (target - self.now).as_secs_f64();
            let done = self.net.elapse(dt);
            self.now = target;
            // Batch every event due at this instant into the reusable
            // buffer: flow completions first (in flow-id order, as `elapse`
            // reports them), then all timers sharing the instant in
            // `(deadline, seq)` schedule order.
            for rep in done {
                self.pending.push_back(Event::Flow {
                    tag: rep.tag,
                    report: rep,
                });
            }
            while let Some(d) = self.timers.get_mut().peek_deadline() {
                if d > self.now {
                    break;
                }
                let e = self.timers.get_mut().pop().expect("peeked a live entry");
                self.pending.push_back(Event::Timer { tag: e.tag });
            }
            if self.pending.is_empty() {
                // Nothing completed (capacity change rescheduling, or all
                // events cancelled) — loop again.
                continue;
            }
            telemetry::counter_add("engine.queue.batch_instants", 1);
        }
    }

    /// Quiescence invariant (debug builds): a fully-drained queue must hold
    /// no tombstones — otherwise some cancel site targeted an already-fired
    /// timer and the "tombstones cannot leak" claim is broken.
    fn assert_no_tombstones(&self) {
        let q = self.timers.get();
        debug_assert!(
            q.stored_len() > 0 || q.outstanding_tombstones() == 0,
            "timer tombstone leaked: {} cancel(s) targeted already-fired timers",
            q.outstanding_tombstones()
        );
    }

    /// Run until dry, invoking `handler` for each event. The handler gets
    /// `&mut Engine` to schedule follow-up work.
    pub fn run<F: FnMut(&mut Engine, Event)>(&mut self, mut handler: F) {
        while let Some(ev) = self.next() {
            handler(self, ev);
        }
    }

    /// Fallible [`Engine::run`]: stops with the [`EngineError`] if the loop
    /// wedges instead of panicking.
    pub fn try_run<F: FnMut(&mut Engine, Event)>(
        &mut self,
        mut handler: F,
    ) -> Result<(), EngineError> {
        while let Some(ev) = self.try_next()? {
            handler(self, ev);
        }
        Ok(())
    }

    /// Run until the given deadline (events at exactly `deadline` included).
    pub fn run_until<F: FnMut(&mut Engine, Event)>(&mut self, deadline: SimTime, mut handler: F) {
        while let Some(ev) = self.peek_deadline(deadline) {
            handler(self, ev);
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Internal: like `next` but never advances past `deadline`.
    fn peek_deadline(&mut self, deadline: SimTime) -> Option<Event> {
        // Cheap approach: schedule a sentinel timer at the deadline.
        const SENTINEL: u64 = u64::MAX;
        let id = self.at(deadline, SENTINEL);
        let ev = self.next();
        match ev {
            Some(Event::Timer { tag: SENTINEL }) => None,
            Some(other) => {
                self.cancel_timer(id);
                Some(other)
            }
            None => {
                self.cancel_timer(id);
                None
            }
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Drop for Engine {
    /// When a recorder is installed, dropping an engine that advanced past
    /// t=0 records the whole run as one "engine.run" span — every simulation
    /// (protocol step, pingpong rep…) shows up on the engine lane without any
    /// driver cooperation.
    fn drop(&mut self) {
        // A drained queue must hold no tombstones (see assert_no_tombstones);
        // engines dropped mid-run (budget trip, cancellation) still hold
        // entries and are exempt. Skipped while unwinding to not mask the
        // original panic with a double panic.
        if !std::thread::panicking() {
            self.assert_no_tombstones();
        }
        if self.now > SimTime::ZERO {
            telemetry::complete(SimTime::ZERO, self.now, "engine", "run", Lane::Engine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_fire_in_order() {
        let mut e = Engine::new();
        e.after(SimTime::from_micros(5), 5);
        e.after(SimTime::from_micros(1), 1);
        e.after(SimTime::from_micros(3), 3);
        let mut seen = Vec::new();
        e.run(|eng, ev| {
            seen.push((eng.now().as_micros_f64().round() as u64, ev.tag()));
        });
        assert_eq!(seen, vec![(1, 1), (3, 3), (5, 5)]);
    }

    #[test]
    fn same_instant_timers_fifo() {
        let mut e = Engine::new();
        e.after(SimTime::from_micros(1), 10);
        e.after(SimTime::from_micros(1), 20);
        let mut seen = Vec::new();
        e.run(|_, ev| seen.push(ev.tag()));
        assert_eq!(seen, vec![10, 20]);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let mut e = Engine::new();
        let id = e.after(SimTime::from_micros(1), 1);
        e.after(SimTime::from_micros(2), 2);
        e.cancel_timer(id);
        let mut seen = Vec::new();
        e.run(|_, ev| seen.push(ev.tag()));
        assert_eq!(seen, vec![2]);
    }

    #[test]
    fn flow_completion_time() {
        let mut e = Engine::new();
        let r = e.add_resource("bus", 100.0);
        e.start_flow(FlowSpec {
            path: vec![r],
            volume: 250.0,
            weight: 1.0,
            cap: None,
            tag: 7,
        });
        let ev = e.next().expect("one event");
        assert_eq!(ev.tag(), 7);
        assert!((e.now().as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn flow_and_timer_interleave() {
        let mut e = Engine::new();
        let r = e.add_resource("bus", 1.0);
        e.start_flow(FlowSpec {
            path: vec![r],
            volume: 2.0,
            weight: 1.0,
            cap: None,
            tag: 100,
        });
        e.after(SimTime::SEC, 1);
        e.after(SimTime::SEC * 3, 3);
        let mut seen = Vec::new();
        e.run(|eng, ev| seen.push((eng.now().as_secs_f64().round() as u64, ev.tag())));
        assert_eq!(seen, vec![(1, 1), (2, 100), (3, 3)]);
    }

    #[test]
    fn capacity_change_mid_flow() {
        let mut e = Engine::new();
        let r = e.add_resource("bus", 10.0);
        e.start_flow(FlowSpec {
            path: vec![r],
            volume: 100.0,
            weight: 1.0,
            cap: None,
            tag: 1,
        });
        // At t=1s halve the capacity.
        e.after(SimTime::SEC, 99);
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), 99);
        e.set_capacity(r, 5.0);
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), 1);
        // 10 units in first second, remaining 90 at 5/s = 18 s. Total 19 s.
        assert!((e.now().as_secs_f64() - 19.0).abs() < 1e-6);
    }

    #[test]
    fn flows_before_timers_at_same_instant() {
        let mut e = Engine::new();
        let r = e.add_resource("bus", 1.0);
        e.start_flow(FlowSpec {
            path: vec![r],
            volume: 1.0,
            weight: 1.0,
            cap: None,
            tag: 100,
        });
        e.after(SimTime::SEC, 1);
        let mut seen = Vec::new();
        e.run(|_, ev| seen.push(ev.tag()));
        assert_eq!(seen, vec![100, 1]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = Engine::new();
        e.after(SimTime::SEC, 1);
        e.after(SimTime::SEC * 5, 5);
        let mut seen = Vec::new();
        e.run_until(SimTime::SEC * 2, |_, ev| seen.push(ev.tag()));
        assert_eq!(seen, vec![1]);
        assert_eq!(e.now(), SimTime::SEC * 2);
        // The later timer still fires afterwards.
        let ev = e.next().unwrap();
        assert_eq!(ev.tag(), 5);
    }

    #[test]
    fn dry_run_returns_none() {
        let mut e = Engine::new();
        assert!(e.next().is_none());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn stalled_flow_is_a_deadlock() {
        let mut e = Engine::new();
        let r = e.add_resource("off", 0.0);
        e.start_flow(FlowSpec {
            path: vec![r],
            volume: 1.0,
            weight: 1.0,
            cap: None,
            tag: 1,
        });
        let _ = e.next();
    }

    #[test]
    fn stalled_flow_yields_typed_error_with_diagnostic() {
        // A transfer that can never complete: its only resource has zero
        // capacity and no timer will ever change that.
        let mut e = Engine::new();
        let r = e.add_resource("off", 0.0);
        e.start_flow(FlowSpec {
            path: vec![r],
            volume: 42.0,
            weight: 1.0,
            cap: None,
            tag: 0xBEEF,
        });
        let err = e.try_next().expect_err("must not hang or succeed");
        match &err {
            EngineError::Stalled(d) => {
                assert!(!d.is_empty(), "diagnostic must name pending work");
                assert_eq!(d.pending_flows.len(), 1);
                let (tag, remaining, rate) = d.pending_flows[0];
                assert_eq!(tag, 0xBEEF);
                assert_eq!(remaining, 42.0);
                assert_eq!(rate, 0.0);
            }
            other => panic!("expected Stalled, got {:?}", other),
        }
        let msg = err.to_string();
        assert!(msg.contains("deadlock"), "{}", msg);
        assert!(msg.contains("0xbeef"), "{}", msg);
        // The error is stable: asking again reports the same stall rather
        // than looping forever.
        assert!(matches!(e.try_next(), Err(EngineError::Stalled(_))));
    }

    #[test]
    fn time_budget_trips_with_diagnostic() {
        let mut e = Engine::new();
        e.set_time_budget(Some(SimTime::SEC));
        e.after(SimTime::from_micros(10), 1);
        e.after(SimTime::SEC * 10, 0xDEAD);
        // The early timer is within budget.
        assert_eq!(e.try_next().unwrap().unwrap().tag(), 1);
        // The late one trips the watchdog without advancing time.
        let err = e.try_next().expect_err("beyond budget");
        match &err {
            EngineError::BudgetExceeded { budget, diagnostic } => {
                assert_eq!(*budget, SimTime::SEC);
                assert_eq!(diagnostic.pending_timer_tags, vec![0xDEAD]);
            }
            other => panic!("expected BudgetExceeded, got {:?}", other),
        }
        assert_eq!(e.now(), SimTime::from_micros(10));
        // Raising the budget lets the run continue.
        e.set_time_budget(Some(SimTime::SEC * 20));
        assert_eq!(e.try_next().unwrap().unwrap().tag(), 0xDEAD);
        assert!(e.try_next().unwrap().is_none());
    }

    #[test]
    fn try_run_reports_wedge() {
        let mut e = Engine::new();
        let r = e.add_resource("off", 0.0);
        // A timer fires first, then the stalled flow wedges the loop.
        e.after(SimTime::from_micros(1), 7);
        e.start_flow(FlowSpec {
            path: vec![r],
            volume: 1.0,
            weight: 1.0,
            cap: None,
            tag: 8,
        });
        let mut seen = Vec::new();
        let err = e.try_run(|_, ev| seen.push(ev.tag())).unwrap_err();
        assert_eq!(seen, vec![7]);
        assert!(matches!(err, EngineError::Stalled(_)));
    }

    /// A simulation that never quiesces: every fired timer schedules the
    /// next one. Without cancellation this loops until process death.
    fn wedge_forever(e: &mut Engine) -> Result<(), EngineError> {
        e.after(SimTime::PS, 1);
        loop {
            match e.try_next()? {
                Some(_) => {
                    e.after(SimTime::PS, 1);
                }
                None => unreachable!("the timer storm never runs dry"),
            }
        }
    }

    #[test]
    fn cancelled_token_stops_a_timer_storm() {
        let tok = CancelToken::new();
        let mut e = Engine::new();
        e.set_cancel_token(Some(tok.clone()));
        tok.cancel();
        let err = wedge_forever(&mut e).expect_err("must stop");
        match err {
            EngineError::Cancelled { deadline, diagnostic } => {
                assert!(!deadline, "explicit cancel, no deadline armed");
                // The storm's next timer is still outstanding.
                assert_eq!(diagnostic.pending_timer_tags, vec![1]);
            }
            other => panic!("expected Cancelled, got {:?}", other),
        }
        // The error is stable on re-poll, like a stall.
        assert!(matches!(e.try_next(), Err(EngineError::Cancelled { .. })));
    }

    #[test]
    fn deadline_token_times_out_a_timer_storm() {
        let mut e = Engine::new();
        e.set_cancel_token(Some(CancelToken::with_deadline(
            std::time::Duration::from_millis(20),
        )));
        let err = wedge_forever(&mut e).expect_err("deadline must trip");
        match err {
            EngineError::Cancelled { deadline, .. } => assert!(deadline),
            other => panic!("expected Cancelled, got {:?}", other),
        }
        let msg = e.try_next().unwrap_err().to_string();
        assert!(msg.contains("deadline"), "{}", msg);
    }

    #[test]
    fn ambient_token_is_adopted_at_construction() {
        let tok = CancelToken::new();
        let e = crate::cancel::scoped(tok.clone(), Engine::new);
        assert!(e.cancel_token().is_some(), "engine adopted ambient token");
        // Outside the scope, fresh engines carry no token.
        let plain = Engine::new();
        assert!(plain.cancel_token().is_none());
        // The adopted token is the same shared state.
        tok.cancel();
        assert!(e.cancel_token().unwrap().is_cancelled());
    }

    #[test]
    fn healthy_run_ignores_an_armed_token() {
        let tok = CancelToken::with_deadline(std::time::Duration::from_secs(3600));
        let mut e = Engine::new();
        e.set_cancel_token(Some(tok));
        e.after(SimTime::SEC, 1);
        e.after(SimTime::SEC * 2, 2);
        let mut seen = Vec::new();
        e.run(|_, ev| seen.push(ev.tag()));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn simultaneous_flow_completions_all_delivered() {
        let mut e = Engine::new();
        let r = e.add_resource("bus", 10.0);
        for tag in 0..3 {
            e.start_flow(FlowSpec {
                path: vec![r],
                volume: 30.0,
                weight: 1.0,
                cap: None,
                tag,
            });
        }
        let mut seen = Vec::new();
        e.run(|_, ev| seen.push(ev.tag()));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        // 3 flows × 30 units over 10 units/s aggregate = 9 s.
        assert!((e.now().as_secs_f64() - 9.0).abs() < 1e-9);
    }
}
