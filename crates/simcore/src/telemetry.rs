//! Deterministic telemetry: sim-time-stamped spans, counters and sample
//! histograms recorded into a per-run [`Journal`].
//!
//! Every record is keyed to **simulated** time (never wall clocks) and all
//! randomness in the simulator is seeded, so a journal is a pure function of
//! the configuration: the same experiment produces a byte-identical journal
//! at any `--jobs` level. That makes the journal a first-class *test
//! oracle* — `tests/golden_traces.rs` diffs canonical journal text against
//! committed fixtures — as well as a debugging aid: [`Journal::to_chrome_json`]
//! exports the Chrome trace-event format loadable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev).
//!
//! # Recording model
//!
//! Recording is **thread-local** and off by default. The campaign engine
//! calls [`install`] before a sweep point runs and [`take`] afterwards; the
//! instrumented layers (`engine`, `netsim`, `mpisim`, `taskrt`, the
//! protocol driver) call the free functions below, which are near-free
//! no-ops while no recorder is installed (a single thread-local flag test).
//!
//! Three span flavours cover the simulator's concurrency patterns:
//!
//! * **sync spans** ([`begin`]/[`end`]) where stack discipline holds per
//!   [`Lane`] (a worker core runs one task at a time);
//! * **async spans** ([`async_begin`]/[`async_end`]) for overlapping work
//!   keyed by `(category, id)` (in-flight transfers, MPI requests);
//! * **complete spans** ([`complete`]) when both endpoints are known at
//!   record time (a registration of known cost, a whole engine run).
//!
//! # Run re-basing
//!
//! One sweep point runs several independent simulations (three protocol
//! steps × repetitions), each starting at simulated time zero. A recorder
//! keeps a monotone watermark; [`mark_run`] re-bases subsequent records
//! past everything already recorded, producing a single monotone timeline
//! per point. Counters are snapshotted into the record stream at every
//! mark (and at [`take`]), so counter monotonicity is checkable from the
//! journal alone.
//!
//! Memoized baselines shared across sweep points execute under
//! [`suspend`], so *which* point happens to compute a cached baseline
//! (a scheduling race under `--jobs N`) never leaks into any journal.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;

use crate::stats::quantile;
use crate::time::SimTime;

/// Where a record happened: the timeline ("thread") it renders on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Lane {
    /// Campaign engine (per-point spans).
    Campaign,
    /// The discrete-event engine itself.
    Engine,
    /// A node's communication side.
    Node(u8),
    /// A specific core of a node (runtime workers, compute tasks).
    Core {
        /// Node index.
        node: u8,
        /// Logical core index.
        core: u16,
    },
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lane::Campaign => write!(f, "campaign"),
            Lane::Engine => write!(f, "engine"),
            Lane::Node(n) => write!(f, "n{}", n),
            Lane::Core { node, core } => write!(f, "n{}.c{}", node, core),
        }
    }
}

/// Payload of one journal record.
#[derive(Clone, Debug, PartialEq)]
pub enum RecordKind {
    /// Open a sync span (stack discipline per lane).
    Begin {
        /// Span category ("task", "campaign"…).
        cat: &'static str,
        /// Span name.
        name: String,
        /// Timeline.
        lane: Lane,
    },
    /// Close the innermost sync span of `lane`.
    End {
        /// Category of the span being closed.
        cat: &'static str,
        /// Timeline.
        lane: Lane,
    },
    /// A span with both endpoints known at record time.
    Complete {
        /// Span category.
        cat: &'static str,
        /// Span name.
        name: String,
        /// Timeline.
        lane: Lane,
        /// Span duration (record time is the start).
        dur: SimTime,
    },
    /// Open an async span keyed by `(cat, id)` (overlap allowed).
    AsyncBegin {
        /// Span category ("net.xfer", "mpi.send"…).
        cat: &'static str,
        /// Span name.
        name: String,
        /// Pairing id within the category.
        id: u64,
        /// Timeline.
        lane: Lane,
    },
    /// Close the async span `(cat, id)`.
    AsyncEnd {
        /// Category of the span being closed.
        cat: &'static str,
        /// Pairing id within the category.
        id: u64,
        /// Timeline.
        lane: Lane,
    },
    /// A point event (RTS/CTS on the wire, drops, timeouts…).
    Instant {
        /// Event category.
        cat: &'static str,
        /// Event name.
        name: String,
        /// Timeline.
        lane: Lane,
    },
    /// A run boundary written by [`mark_run`]: records after it were
    /// re-based past everything before it.
    Mark {
        /// Run label ("rep0/together"…).
        name: String,
    },
    /// Counter snapshot (cumulative value at record time).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Cumulative value.
        value: u64,
    },
}

/// One timestamped journal entry.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Simulated time of the record (re-based; see [`mark_run`]).
    pub t: SimTime,
    /// What happened.
    pub kind: RecordKind,
}

/// A completed recording: the record stream plus aggregated counters and
/// sample histograms. Journals of several runs/points merge with
/// [`Journal::append`] after [`Journal::shift`]-ing onto a shared timeline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Journal {
    /// Timestamped records in recording order.
    pub records: Vec<Record>,
    /// Final cumulative counter values.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histogram samples in recording order.
    pub samples: BTreeMap<&'static str, Vec<f64>>,
}

impl Journal {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.counters.is_empty() && self.samples.is_empty()
    }

    /// Latest time covered by any record (span ends included).
    pub fn end_time(&self) -> SimTime {
        self.records
            .iter()
            .map(|r| match r.kind {
                RecordKind::Complete { dur, .. } => {
                    SimTime(r.t.0.saturating_add(dur.0))
                }
                _ => r.t,
            })
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Shift every record by `offset` (saturating) — used when merging
    /// per-point journals onto one campaign timeline.
    pub fn shift(&mut self, offset: SimTime) {
        for r in &mut self.records {
            r.t = SimTime(r.t.0.saturating_add(offset.0));
        }
    }

    /// Append `other`'s records and merge its counters (summed) and
    /// samples (concatenated). Call [`Journal::shift`] on `other` first to
    /// keep the merged timeline monotone.
    pub fn append(&mut self, other: Journal) {
        self.records.extend(other.records);
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in other.samples {
            self.samples.entry(k).or_default().extend(v);
        }
    }

    /// Number of distinct span/instant categories present in the stream.
    pub fn categories(&self) -> Vec<&'static str> {
        let mut cats: Vec<&'static str> = self
            .records
            .iter()
            .filter_map(|r| match &r.kind {
                RecordKind::Begin { cat, .. }
                | RecordKind::End { cat, .. }
                | RecordKind::Complete { cat, .. }
                | RecordKind::AsyncBegin { cat, .. }
                | RecordKind::AsyncEnd { cat, .. }
                | RecordKind::Instant { cat, .. } => Some(*cat),
                _ => None,
            })
            .collect();
        cats.sort_unstable();
        cats.dedup();
        cats
    }

    /// Canonical text form: one line per record, then counters, then
    /// histogram rollups. This is the byte-stable oracle the golden-trace
    /// tests diff; floats print in shortest-roundtrip form.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(64 * self.records.len() + 256);
        for r in &self.records {
            let t = r.t.0;
            match &r.kind {
                RecordKind::Begin { cat, name, lane } => {
                    out.push_str(&format!("{} B {} {} @{}\n", t, cat, name, lane));
                }
                RecordKind::End { cat, lane } => {
                    out.push_str(&format!("{} E {} @{}\n", t, cat, lane));
                }
                RecordKind::Complete {
                    cat,
                    name,
                    lane,
                    dur,
                } => {
                    out.push_str(&format!("{} X {} {} @{} dur={}\n", t, cat, name, lane, dur.0));
                }
                RecordKind::AsyncBegin {
                    cat,
                    name,
                    id,
                    lane,
                } => {
                    out.push_str(&format!("{} b {} {} #{} @{}\n", t, cat, name, id, lane));
                }
                RecordKind::AsyncEnd { cat, id, lane } => {
                    out.push_str(&format!("{} e {} #{} @{}\n", t, cat, id, lane));
                }
                RecordKind::Instant { cat, name, lane } => {
                    out.push_str(&format!("{} i {} {} @{}\n", t, cat, name, lane));
                }
                RecordKind::Mark { name } => {
                    out.push_str(&format!("{} M {}\n", t, name));
                }
                RecordKind::Counter { name, value } => {
                    out.push_str(&format!("{} C {} = {}\n", t, name, value));
                }
            }
        }
        for (name, value) in &self.counters {
            out.push_str(&format!("counter {} = {}\n", name, value));
        }
        for (name, samples) in &self.samples {
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            out.push_str(&format!(
                "hist {} n={} p0={:?} p10={:?} p50={:?} p90={:?} p100={:?}\n",
                name,
                sorted.len(),
                quantile(&sorted, 0.0),
                quantile(&sorted, 0.10),
                quantile(&sorted, 0.50),
                quantile(&sorted, 0.90),
                quantile(&sorted, 1.0),
            ));
        }
        out
    }

    /// Export as Chrome trace-event JSON (the `chrome://tracing` /
    /// [Perfetto](https://ui.perfetto.dev) format): lanes map to thread
    /// ids, sync spans to `B`/`E`, async spans to `b`/`e` with ids,
    /// completes to `X`, instants and marks to `i`, counter snapshots to
    /// `C`. Timestamps convert from picoseconds to the format's
    /// microseconds.
    pub fn to_chrome_json(&self) -> String {
        let mut lanes: Vec<Lane> = self
            .records
            .iter()
            .filter_map(|r| match &r.kind {
                RecordKind::Begin { lane, .. }
                | RecordKind::End { lane, .. }
                | RecordKind::Complete { lane, .. }
                | RecordKind::AsyncBegin { lane, .. }
                | RecordKind::AsyncEnd { lane, .. }
                | RecordKind::Instant { lane, .. } => Some(*lane),
                _ => None,
            })
            .collect();
        lanes.sort_unstable();
        lanes.dedup();
        let tid = |lane: &Lane| lanes.binary_search(lane).expect("lane listed") + 1;

        let mut out = String::with_capacity(128 * self.records.len() + 1024);
        out.push_str("{\"traceEvents\":[");
        out.push_str(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"args\":{\"name\":\"sim\"}}",
        );
        for lane in &lanes {
            out.push_str(&format!(
                ",{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                tid(lane),
                esc(&lane.to_string())
            ));
        }
        let ts = |t: SimTime| t.0 as f64 / 1e6; // ps → µs
        for r in &self.records {
            out.push(',');
            match &r.kind {
                RecordKind::Begin { cat, name, lane } => out.push_str(&format!(
                    "{{\"ph\":\"B\",\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{:?},\"pid\":0,\"tid\":{}}}",
                    esc(name), cat, ts(r.t), tid(lane)
                )),
                RecordKind::End { cat, lane } => out.push_str(&format!(
                    "{{\"ph\":\"E\",\"cat\":\"{}\",\"ts\":{:?},\"pid\":0,\"tid\":{}}}",
                    cat, ts(r.t), tid(lane)
                )),
                RecordKind::Complete { cat, name, lane, dur } => out.push_str(&format!(
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{:?},\"dur\":{:?},\"pid\":0,\"tid\":{}}}",
                    esc(name), cat, ts(r.t), ts(*dur), tid(lane)
                )),
                RecordKind::AsyncBegin { cat, name, id, lane } => out.push_str(&format!(
                    "{{\"ph\":\"b\",\"name\":\"{}\",\"cat\":\"{}\",\"id\":\"{:#x}\",\"ts\":{:?},\"pid\":0,\"tid\":{}}}",
                    esc(name), cat, id, ts(r.t), tid(lane)
                )),
                RecordKind::AsyncEnd { cat, id, lane } => out.push_str(&format!(
                    "{{\"ph\":\"e\",\"cat\":\"{}\",\"id\":\"{:#x}\",\"ts\":{:?},\"pid\":0,\"tid\":{}}}",
                    cat, id, ts(r.t), tid(lane)
                )),
                RecordKind::Instant { cat, name, lane } => out.push_str(&format!(
                    "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{:?},\"pid\":0,\"tid\":{},\"s\":\"t\"}}",
                    esc(name), cat, ts(r.t), tid(lane)
                )),
                RecordKind::Mark { name } => out.push_str(&format!(
                    "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"run\",\"ts\":{:?},\"pid\":0,\"tid\":0,\"s\":\"p\"}}",
                    esc(name), ts(r.t)
                )),
                RecordKind::Counter { name, value } => out.push_str(&format!(
                    "{{\"ph\":\"C\",\"name\":\"{}\",\"ts\":{:?},\"pid\":0,\"args\":{{\"value\":{}}}}}",
                    name, ts(r.t), value
                )),
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

/// Escape a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The thread-local recording state behind the free functions.
struct Recorder {
    journal: Journal,
    /// Offset added to every local timestamp (see [`mark_run`]).
    base: SimTime,
    /// Monotone high-water mark of re-based time.
    watermark: SimTime,
    /// Counter values at the last snapshot (to skip unchanged ones).
    snapshotted: BTreeMap<&'static str, u64>,
}

impl Recorder {
    fn new() -> Recorder {
        Recorder {
            journal: Journal::default(),
            base: SimTime::ZERO,
            watermark: SimTime::ZERO,
            snapshotted: BTreeMap::new(),
        }
    }

    fn push(&mut self, t_local: SimTime, kind: RecordKind) {
        let t = SimTime(self.base.0.saturating_add(t_local.0));
        let end = match &kind {
            RecordKind::Complete { dur, .. } => SimTime(t.0.saturating_add(dur.0)),
            _ => t,
        };
        self.watermark = self.watermark.max(end);
        self.journal.records.push(Record { t, kind });
    }

    /// Snapshot every counter whose value changed since the last snapshot.
    fn snapshot_counters(&mut self, t: SimTime) {
        let changed: Vec<(&'static str, u64)> = self
            .journal
            .counters
            .iter()
            .filter(|(k, v)| self.snapshotted.get(*k) != Some(v))
            .map(|(k, v)| (*k, *v))
            .collect();
        for (name, value) in changed {
            self.snapshotted.insert(name, value);
            self.journal
                .records
                .push(Record {
                    t,
                    kind: RecordKind::Counter { name, value },
                });
        }
    }

    fn mark_run(&mut self, name: &str) {
        let t = self.watermark;
        self.snapshot_counters(t);
        self.base = t;
        self.journal.records.push(Record {
            t,
            kind: RecordKind::Mark { name: name.into() },
        });
    }

    fn finish(mut self) -> Journal {
        let t = self.watermark;
        self.snapshot_counters(t);
        self.journal
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Install a fresh recorder on this thread (replacing any previous one)
/// and enable recording.
pub fn install() {
    RECORDER.with(|r| *r.borrow_mut() = Some(Recorder::new()));
    ACTIVE.with(|a| a.set(true));
}

/// Stop recording and return the journal, if a recorder was installed.
pub fn take() -> Option<Journal> {
    ACTIVE.with(|a| a.set(false));
    RECORDER
        .with(|r| r.borrow_mut().take())
        .map(Recorder::finish)
}

/// True while a recorder is installed and not suspended. Call sites that
/// must allocate to build a record (e.g. `format!` a label) should guard on
/// this so disabled runs stay allocation-free.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Run `f` with recording suspended (restored even on unwind). The
/// campaign's baseline cache wraps memoized computations in this so the
/// scheduling race of *which* sweep point computes a shared baseline never
/// leaks into any journal.
pub fn suspend<T>(f: impl FnOnce() -> T) -> T {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.with(|a| a.set(self.0));
        }
    }
    let _restore = Restore(ACTIVE.with(|a| a.replace(false)));
    f()
}

/// Run `f` under its own fresh recorder, returning its journal separately;
/// the caller's recorder is restored afterwards (even on unwind) with
/// nothing from `f` in it. No-op wrapper returning `None` while recording
/// is inactive.
///
/// This is how shared computations (memoized baselines) stay observable
/// without breaking parallel determinism: their journal is keyed by *what*
/// was computed, not by which caller got there first.
pub fn isolate<T>(f: impl FnOnce() -> T) -> (T, Option<Journal>) {
    if !is_active() {
        return (f(), None);
    }
    struct Restore(Option<Recorder>);
    impl Drop for Restore {
        fn drop(&mut self) {
            RECORDER.with(|r| *r.borrow_mut() = self.0.take());
            ACTIVE.with(|a| a.set(true));
        }
    }
    let _restore = Restore(RECORDER.with(|r| r.borrow_mut().take()));
    install();
    let v = f();
    let j = take();
    (v, j)
}

fn with(f: impl FnOnce(&mut Recorder)) {
    if !is_active() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Mark a run boundary: re-base subsequent records past everything already
/// recorded and snapshot the counters. Call before each independent
/// simulation of a sweep point (each protocol step of each repetition).
pub fn mark_run(name: &str) {
    with(|r| r.mark_run(name));
}

/// Open a sync span on `lane` (stack discipline per lane).
pub fn begin(t: SimTime, cat: &'static str, name: &str, lane: Lane) {
    with(|r| {
        r.push(
            t,
            RecordKind::Begin {
                cat,
                name: name.into(),
                lane,
            },
        )
    });
}

/// Close the innermost sync span of `lane`.
pub fn end(t: SimTime, cat: &'static str, lane: Lane) {
    with(|r| r.push(t, RecordKind::End { cat, lane }));
}

/// Record a span with both endpoints known (`start <= stop`).
pub fn complete(start: SimTime, stop: SimTime, cat: &'static str, name: &str, lane: Lane) {
    with(|r| {
        r.push(
            start,
            RecordKind::Complete {
                cat,
                name: name.into(),
                lane,
                dur: stop.saturating_sub(start),
            },
        )
    });
}

/// Open an async span keyed by `(cat, id)`; overlap across ids is fine.
pub fn async_begin(t: SimTime, cat: &'static str, name: &str, id: u64, lane: Lane) {
    with(|r| {
        r.push(
            t,
            RecordKind::AsyncBegin {
                cat,
                name: name.into(),
                id,
                lane,
            },
        )
    });
}

/// Close the async span `(cat, id)`.
pub fn async_end(t: SimTime, cat: &'static str, id: u64, lane: Lane) {
    with(|r| r.push(t, RecordKind::AsyncEnd { cat, id, lane }));
}

/// Record a point event.
pub fn instant(t: SimTime, cat: &'static str, name: &str, lane: Lane) {
    with(|r| {
        r.push(
            t,
            RecordKind::Instant {
                cat,
                name: name.into(),
                lane,
            },
        )
    });
}

/// Add `delta` to a cumulative counter. Counters only ever increase;
/// snapshots enter the record stream at run marks and at [`take`].
pub fn counter_add(name: &'static str, delta: u64) {
    with(|r| *r.journal.counters.entry(name).or_insert(0) += delta);
}

/// Record one histogram sample (canonical text rolls these up into
/// quantiles via [`crate::stats::quantile`]).
pub fn sample(name: &'static str, value: f64) {
    with(|r| r.journal.samples.entry(name).or_default().push(value));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    /// Recorders are thread-local; run each test body on a fresh thread so
    /// parallel test execution never shares state.
    fn isolated<R: Send>(f: impl FnOnce() -> R + Send) -> R {
        std::thread::scope(|s| s.spawn(f).join().expect("test thread"))
    }

    #[test]
    fn disabled_recording_is_a_noop() {
        isolated(|| {
            assert!(!is_active());
            begin(us(1), "x", "a", Lane::Engine);
            counter_add("c", 1);
            assert!(take().is_none());
        });
    }

    #[test]
    fn records_and_counters_roundtrip() {
        isolated(|| {
            install();
            begin(us(1), "task", "t0", Lane::Core { node: 0, core: 3 });
            counter_add("rt.dispatches", 2);
            end(us(5), "task", Lane::Core { node: 0, core: 3 });
            instant(us(6), "net", "rts", Lane::Node(1));
            sample("lat_us", 1.5);
            sample("lat_us", 2.5);
            let j = take().expect("installed");
            assert!(take().is_none(), "take clears the recorder");
            assert_eq!(j.counters["rt.dispatches"], 2);
            assert_eq!(j.samples["lat_us"], vec![1.5, 2.5]);
            // Final counter snapshot lands in the stream at the watermark.
            assert!(j
                .records
                .iter()
                .any(|r| matches!(r.kind, RecordKind::Counter { value: 2, .. })));
            let text = j.to_text();
            assert!(text.contains("B task t0 @n0.c3"), "{}", text);
            assert!(text.contains("hist lat_us n=2"), "{}", text);
        });
    }

    #[test]
    fn mark_run_rebases_time_monotonically() {
        isolated(|| {
            install();
            instant(us(10), "a", "first", Lane::Engine);
            mark_run("run1");
            // A fresh simulation restarts at t=0; the journal stays monotone.
            instant(us(2), "a", "second", Lane::Engine);
            let j = take().unwrap();
            let times: Vec<u64> = j.records.iter().map(|r| r.t.0).collect();
            let mut sorted = times.clone();
            sorted.sort_unstable();
            assert_eq!(times, sorted, "re-based timeline must be monotone");
            assert_eq!(j.records.last().unwrap().t, us(12));
        });
    }

    #[test]
    fn suspend_masks_records_and_restores() {
        isolated(|| {
            install();
            instant(us(1), "a", "kept", Lane::Engine);
            let v = suspend(|| {
                assert!(!is_active());
                instant(us(2), "a", "dropped", Lane::Engine);
                42
            });
            assert_eq!(v, 42);
            assert!(is_active());
            instant(us(3), "a", "kept2", Lane::Engine);
            let j = take().unwrap();
            let names: Vec<&str> = j
                .records
                .iter()
                .filter_map(|r| match &r.kind {
                    RecordKind::Instant { name, .. } => Some(name.as_str()),
                    _ => None,
                })
                .collect();
            assert_eq!(names, vec!["kept", "kept2"]);
        });
    }

    #[test]
    fn isolate_splits_journals_and_restores() {
        isolated(|| {
            install();
            instant(us(1), "a", "outer1", Lane::Engine);
            let (v, inner) = isolate(|| {
                instant(us(2), "a", "inner", Lane::Engine);
                7
            });
            assert_eq!(v, 7);
            let inner = inner.expect("recording was active");
            instant(us(3), "a", "outer2", Lane::Engine);
            let outer = take().unwrap();
            let names = |j: &Journal| -> Vec<String> {
                j.records
                    .iter()
                    .filter_map(|r| match &r.kind {
                        RecordKind::Instant { name, .. } => Some(name.clone()),
                        _ => None,
                    })
                    .collect()
            };
            assert_eq!(names(&inner), vec!["inner"]);
            assert_eq!(names(&outer), vec!["outer1", "outer2"]);
        });
    }

    #[test]
    fn isolate_inactive_is_passthrough() {
        isolated(|| {
            let (v, j) = isolate(|| 3);
            assert_eq!(v, 3);
            assert!(j.is_none());
        });
    }

    #[test]
    fn suspend_restores_on_unwind() {
        isolated(|| {
            install();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                suspend(|| panic!("boom"))
            }));
            assert!(r.is_err());
            assert!(is_active(), "flag must be restored after a panic");
            take();
        });
    }

    #[test]
    fn shift_and_append_merge_timelines() {
        isolated(|| {
            install();
            complete(us(0), us(4), "engine", "run", Lane::Engine);
            counter_add("n", 1);
            let mut a = take().unwrap();

            install();
            complete(us(0), us(6), "engine", "run", Lane::Engine);
            counter_add("n", 2);
            let mut b = take().unwrap();

            assert_eq!(a.end_time(), us(4));
            b.shift(a.end_time());
            a.append(b);
            assert_eq!(a.end_time(), us(10));
            assert_eq!(a.counters["n"], 3);
        });
    }

    #[test]
    fn chrome_export_is_valid_shape() {
        isolated(|| {
            install();
            begin(us(1), "task", "t\"0", Lane::Core { node: 0, core: 1 });
            end(us(2), "task", Lane::Core { node: 0, core: 1 });
            async_begin(us(1), "net.xfer", "rdv", 7, Lane::Node(0));
            async_end(us(9), "net.xfer", 7, Lane::Node(0));
            mark_run("rep0");
            counter_add("net.retrans", 3);
            let j = take().unwrap();
            let json = j.to_chrome_json();
            assert!(json.starts_with("{\"traceEvents\":["));
            assert!(json.trim_end().ends_with('}'));
            assert!(json.contains("\"ph\":\"B\""));
            assert!(json.contains("\"ph\":\"b\""));
            assert!(json.contains("\"id\":\"0x7\""));
            assert!(json.contains("thread_name"));
            assert!(json.contains("t\\\"0"), "names are JSON-escaped");
            // ps → µs conversion: 1 µs is ts 1.0.
            assert!(json.contains("\"ts\":1.0"), "{}", json);
        });
    }

    #[test]
    fn counter_snapshots_only_on_change() {
        isolated(|| {
            install();
            counter_add("a", 1);
            mark_run("r1");
            mark_run("r2"); // unchanged: no second snapshot
            counter_add("a", 1);
            let j = take().unwrap();
            let snaps = j
                .records
                .iter()
                .filter(|r| matches!(r.kind, RecordKind::Counter { name: "a", .. }))
                .count();
            assert_eq!(snaps, 2, "one at r1, one final");
        });
    }

    #[test]
    fn categories_lists_distinct_cats() {
        isolated(|| {
            install();
            instant(us(1), "net", "rts", Lane::Node(0));
            instant(us(2), "net", "cts", Lane::Node(1));
            begin(us(3), "task", "t", Lane::Core { node: 0, core: 0 });
            let j = take().unwrap();
            assert_eq!(j.categories(), vec!["net", "task"]);
        });
    }
}
