//! Timer event queues: the hierarchical timing wheel and the retained
//! binary-heap reference.
//!
//! The engine schedules timers keyed by `(deadline, seq)` — `seq` is a
//! monotone per-engine counter, so the key is unique and pop order is total.
//! Both implementations behind [`EventQueue`] produce **exactly** the same
//! pop sequence; the wheel is the production queue, the heap is kept as the
//! differential reference (mirroring `fluid::reference`), compared by the
//! `prop_queue_equiv` suite and the whole-campaign replay test.
//!
//! # The timing wheel
//!
//! [`TimingWheel`] is a classic hashed hierarchical wheel over the engine's
//! integer picosecond clock: [`LEVELS`] levels of [`SLOTS`] slots each, the
//! level-`k` slot width being `SLOTS^k` ticks (64 slots × 11 levels cover
//! the full 64-bit tick range). An entry is placed at the lowest level whose
//! window around the wheel cursor contains its deadline — O(1), one shift
//! and one mask. As the cursor advances, higher-level slots *cascade* into
//! lower levels; the finest slot holds a single tick's entries, which are
//! staged into a small binary heap (`current`) so same-instant entries pop
//! in exact `seq` order no matter which level they travelled through.
//!
//! Levels partition the tick range in increasing order (a level-`k` entry is
//! strictly later than every entry below level `k`), so the earliest entry
//! is always found in the lowest non-empty level — one `trailing_zeros` per
//! level on the occupancy bitmaps.
//!
//! # Cancellation and tombstones
//!
//! [`EventQueue::cancel`] is O(1): the id goes into a tombstone set and the
//! entry is discarded — *consuming* the tombstone — when it next surfaces
//! (heap top, slot drain, or cascade). Every cancel site in the workspace
//! targets a still-pending timer, so every tombstone is eventually consumed;
//! this is asserted (debug builds) at engine quiescence and drop via
//! [`EventQueue::outstanding_tombstones`] rather than merely claimed.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Identifies a scheduled timer. Ids are never reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TimerId(pub(crate) u64);

#[cfg(any(test, feature = "reference-queue"))]
impl TimerId {
    /// Build a raw id — for queue tests and differential harnesses that
    /// drive queues directly (the engine allocates its own ids).
    pub fn from_raw(raw: u64) -> Self {
        TimerId(raw)
    }
}

/// One scheduled timer as stored in a queue. Ordered by `(deadline, seq)`;
/// `seq` is unique per engine, making the order total.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct QueueEntry {
    /// Absolute deadline.
    pub deadline: SimTime,
    /// Schedule-order tie-breaker (monotone, unique).
    pub seq: u64,
    /// The timer's id (cancellation key).
    pub id: TimerId,
    /// Opaque completion tag.
    pub tag: u64,
}

/// Minimal interface the engine needs from a timer queue.
///
/// Implementations must pop entries in strictly ascending `(deadline, seq)`
/// order and must support O(1) cancellation via lazily-consumed tombstones.
pub trait EventQueue {
    /// Add an entry. The engine only inserts deadlines `>= now`, but an
    /// implementation must stay correct for any deadline at or after the
    /// earliest not-yet-popped entry.
    fn insert(&mut self, entry: QueueEntry);
    /// Cancel by id, O(1). A no-op when the id is unknown or already popped
    /// (callers may race a cancellation against the timer firing), so
    /// tombstones are only ever created for entries actually stored.
    fn cancel(&mut self, id: TimerId);
    /// Earliest live deadline, or `None` when drained. May consume
    /// tombstones encountered on the way (hence `&mut`).
    fn peek_deadline(&mut self) -> Option<SimTime>;
    /// Pop the earliest live entry.
    fn pop(&mut self) -> Option<QueueEntry>;
    /// Number of live (non-cancelled) entries.
    fn live_len(&self) -> usize;
    /// Entries stored, including cancelled-but-not-yet-consumed ones.
    fn stored_len(&self) -> usize;
    /// Tombstones not yet consumed. When [`EventQueue::stored_len`] is 0
    /// this must be 0 too — every tombstone shadows a stored entry and is
    /// consumed when that entry surfaces (the invariant the engine asserts
    /// at quiescence and on drop).
    fn outstanding_tombstones(&self) -> usize;
    /// Live entries in ascending `(deadline, seq)` order, for stall
    /// diagnostics. Deterministic across implementations by construction.
    fn live_entries(&self) -> Vec<QueueEntry>;
}

/// Slots per wheel level (64 keeps one `u64` occupancy word per level).
const SLOTS: usize = 64;
/// Bits of the tick covered per level.
const SLOT_BITS: u32 = 6;
/// Levels needed to cover a full 64-bit tick (`ceil(64 / 6)`).
const LEVELS: usize = 11;

/// Hierarchical timing wheel over picosecond ticks. See module docs.
pub struct TimingWheel {
    /// `slots[level * SLOTS + slot]` holds unsorted entries; exact order is
    /// restored by the `current` staging heap at the single-tick level.
    slots: Vec<Vec<QueueEntry>>,
    /// Occupancy bitmap per level (bit = slot non-empty).
    occ: [u64; LEVELS],
    /// Staged entries (tick `< cursor`), popped in `(deadline, seq)` order.
    current: BinaryHeap<Reverse<QueueEntry>>,
    /// Every wheel entry has tick `>= cursor`; every staged entry is below.
    cursor: u64,
    /// Tombstones for cancelled-but-not-yet-consumed entries.
    cancelled: HashSet<TimerId>,
    /// Ids currently stored and not tombstoned — makes [`EventQueue::cancel`]
    /// a no-op for unknown or already-popped ids.
    live_ids: HashSet<TimerId>,
    /// Entries stored anywhere (wheel + staging), tombstoned included.
    stored: usize,
    /// Live entries (stored minus pending tombstones).
    live: usize,
}

impl Default for TimingWheel {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl TimingWheel {
    /// Empty wheel with the cursor at tick 0.
    pub fn new() -> Self {
        TimingWheel {
            slots: vec![Vec::new(); LEVELS * SLOTS],
            occ: [0; LEVELS],
            current: BinaryHeap::new(),
            cursor: 0,
            cancelled: HashSet::new(),
            live_ids: HashSet::new(),
            stored: 0,
            live: 0,
        }
    }

    /// Level an entry with `tick >= self.cursor` belongs at: the lowest
    /// level whose cursor-window contains the tick.
    fn level_for(&self, tick: u64) -> usize {
        let diff = tick ^ self.cursor;
        if diff == 0 {
            0
        } else {
            ((63 - diff.leading_zeros()) / SLOT_BITS) as usize
        }
    }

    /// Place an entry into its wheel slot (tick must be `>= self.cursor`).
    fn wheel_insert(&mut self, e: QueueEntry) {
        let tick = e.deadline.0;
        debug_assert!(tick >= self.cursor);
        let level = self.level_for(tick);
        let slot = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + slot].push(e);
        self.occ[level] |= 1 << slot;
    }

    /// Drain a slot, consuming tombstones and passing live entries to `f`.
    fn drain_slot(&mut self, level: usize, slot: usize, mut f: impl FnMut(&mut Self, QueueEntry)) {
        let drained = std::mem::take(&mut self.slots[level * SLOTS + slot]);
        self.occ[level] &= !(1u64 << slot);
        for e in drained {
            if self.cancelled.remove(&e.id) {
                self.stored -= 1;
            } else {
                f(self, e);
            }
        }
    }

    /// Restore the cursor-slot invariant: at every level ≥ 1, the slot whose
    /// window *contains* the cursor must be empty. Once the cursor has
    /// entered a window, that window's entries may precede entries at lower
    /// levels (a level-k slot window spans the whole level-(k-1) array), so
    /// they are pushed down — top-down, each re-insert landing strictly
    /// below its source level — until only level 0 can hold ticks in the
    /// cursor's immediate window. Without this, an entry inserted *after*
    /// the cursor entered its window (placed at a low level) would pop
    /// before an equal-or-earlier tick inserted earlier (still parked at a
    /// high level).
    fn normalize(&mut self) {
        for level in (1..LEVELS).rev() {
            let s = ((self.cursor >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            if self.occ[level] & (1u64 << s) != 0 {
                self.drain_slot(level, s, |w, e| {
                    debug_assert!(w.level_for(e.deadline.0) < level);
                    w.wheel_insert(e);
                });
            }
        }
    }

    /// Stage the earliest occupied tick into `current`, cascading
    /// higher-level slots down as needed. Returns false when the wheel is
    /// empty. May loop past slots whose entries were all tombstoned
    /// (consuming those tombstones).
    ///
    /// With the cursor-slot invariant restored at the top of each round,
    /// every occupied slot sits at an index ≥ the cursor's own index at its
    /// level, levels partition the remaining tick range in increasing
    /// order, and the minimum is therefore the first occupied slot of the
    /// lowest non-empty level.
    fn stage_next(&mut self) -> bool {
        loop {
            self.normalize();
            let Some(level) = (0..LEVELS).find(|&l| self.occ[l] != 0) else {
                return false;
            };
            let slot = self.occ[level].trailing_zeros() as usize;
            if level == 0 {
                // Finest granularity: this slot is a single tick.
                let tick = (self.cursor & !(SLOTS as u64 - 1)) | slot as u64;
                debug_assert!(tick >= self.cursor);
                self.cursor = tick.saturating_add(1);
                self.drain_slot(0, slot, |w, e| {
                    debug_assert!(e.deadline.0 == tick);
                    w.current.push(Reverse(e));
                });
                if !self.current.is_empty() {
                    return true;
                }
                // Entire tick was cancelled — keep searching.
            } else {
                // Jump the cursor to this slot's window start and push its
                // entries down; the next round re-normalizes and recurses
                // into the window.
                let shift = SLOT_BITS * (level as u32 + 1);
                let hi_mask = if shift >= 64 { 0 } else { !0u64 << shift };
                let wbase =
                    (self.cursor & hi_mask) | ((slot as u64) << (SLOT_BITS * level as u32));
                debug_assert!(wbase >= self.cursor);
                self.cursor = wbase;
                self.drain_slot(level, slot, |w, e| {
                    debug_assert!(w.level_for(e.deadline.0) < level);
                    w.wheel_insert(e);
                });
            }
        }
    }
}

impl EventQueue for TimingWheel {
    fn insert(&mut self, entry: QueueEntry) {
        self.stored += 1;
        self.live += 1;
        self.live_ids.insert(entry.id);
        if entry.deadline.0 < self.cursor {
            self.current.push(Reverse(entry));
        } else {
            self.wheel_insert(entry);
        }
    }

    fn cancel(&mut self, id: TimerId) {
        if self.live_ids.remove(&id) {
            self.cancelled.insert(id);
            self.live -= 1;
        }
    }

    fn peek_deadline(&mut self) -> Option<SimTime> {
        loop {
            while let Some(Reverse(e)) = self.current.peek() {
                if self.cancelled.contains(&e.id) {
                    let Reverse(e) = self.current.pop().expect("peeked");
                    self.cancelled.remove(&e.id);
                    self.stored -= 1;
                } else {
                    return Some(e.deadline);
                }
            }
            if !self.stage_next() {
                return None;
            }
        }
    }

    fn pop(&mut self) -> Option<QueueEntry> {
        self.peek_deadline()?;
        let Reverse(e) = self.current.pop().expect("peek staged an entry");
        self.live_ids.remove(&e.id);
        self.stored -= 1;
        self.live -= 1;
        Some(e)
    }

    fn live_len(&self) -> usize {
        self.live
    }

    fn stored_len(&self) -> usize {
        self.stored
    }

    fn outstanding_tombstones(&self) -> usize {
        self.cancelled.len()
    }

    fn live_entries(&self) -> Vec<QueueEntry> {
        let mut out: Vec<QueueEntry> = self
            .current
            .iter()
            .map(|Reverse(e)| *e)
            .chain(self.slots.iter().flatten().copied())
            .filter(|e| !self.cancelled.contains(&e.id))
            .collect();
        out.sort_unstable();
        out
    }
}

/// The pre-refactor `BinaryHeap` + tombstone queue, retained as the
/// differential reference for [`TimingWheel`] (the `fluid::reference`
/// pattern). Only compiled for tests and the `reference-queue` feature.
#[cfg(any(test, feature = "reference-queue"))]
#[derive(Default)]
pub struct HeapQueue {
    heap: BinaryHeap<Reverse<QueueEntry>>,
    cancelled: HashSet<TimerId>,
    live_ids: HashSet<TimerId>,
    live: usize,
}

#[cfg(any(test, feature = "reference-queue"))]
impl HeapQueue {
    /// Empty heap queue.
    pub fn new() -> Self {
        HeapQueue::default()
    }
}

#[cfg(any(test, feature = "reference-queue"))]
impl EventQueue for HeapQueue {
    fn insert(&mut self, entry: QueueEntry) {
        self.live += 1;
        self.live_ids.insert(entry.id);
        self.heap.push(Reverse(entry));
    }

    fn cancel(&mut self, id: TimerId) {
        if self.live_ids.remove(&id) {
            self.cancelled.insert(id);
            self.live -= 1;
        }
    }

    fn peek_deadline(&mut self) -> Option<SimTime> {
        loop {
            match self.heap.peek() {
                Some(Reverse(e)) if self.cancelled.contains(&e.id) => {
                    let Reverse(e) = self.heap.pop().expect("peeked");
                    self.cancelled.remove(&e.id);
                }
                Some(Reverse(e)) => return Some(e.deadline),
                None => return None,
            }
        }
    }

    fn pop(&mut self) -> Option<QueueEntry> {
        self.peek_deadline()?;
        let Reverse(e) = self.heap.pop().expect("peeked live entry");
        self.live_ids.remove(&e.id);
        self.live -= 1;
        Some(e)
    }

    fn live_len(&self) -> usize {
        self.live
    }

    fn stored_len(&self) -> usize {
        self.heap.len()
    }

    fn outstanding_tombstones(&self) -> usize {
        self.cancelled.len()
    }

    fn live_entries(&self) -> Vec<QueueEntry> {
        let mut out: Vec<QueueEntry> = self
            .heap
            .iter()
            .map(|Reverse(e)| *e)
            .filter(|e| !self.cancelled.contains(&e.id))
            .collect();
        out.sort_unstable();
        out
    }
}

/// When set, new engines use the retained [`HeapQueue`] instead of the
/// timing wheel. Used by the whole-campaign replay test to prove the wheel
/// does not change a single output byte (mirrors `fluid::FORCE_REFERENCE`).
#[cfg(any(test, feature = "reference-queue"))]
pub static FORCE_HEAP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

#[cfg(test)]
mod tests {
    use super::*;

    fn e(t: u64, seq: u64) -> QueueEntry {
        QueueEntry {
            deadline: SimTime(t),
            seq,
            id: TimerId(seq),
            tag: seq,
        }
    }

    fn drain<Q: EventQueue>(q: &mut Q) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(x) = q.pop() {
            out.push((x.deadline.0, x.seq));
        }
        out
    }

    #[test]
    fn wheel_pops_in_time_then_seq_order() {
        let mut w = TimingWheel::new();
        // Deliberately spread across levels: same tick, near ticks, far ticks.
        for (t, s) in [(5u64, 1u64), (5, 2), (70, 3), (4096, 4), (5, 5), (1 << 40, 6), (6, 7)] {
            w.insert(e(t, s));
        }
        assert_eq!(
            drain(&mut w),
            vec![(5, 1), (5, 2), (5, 5), (6, 7), (70, 3), (4096, 4), (1 << 40, 6)]
        );
        assert_eq!(w.stored_len(), 0);
        assert_eq!(w.outstanding_tombstones(), 0);
    }

    #[test]
    fn wheel_and_heap_agree_on_interleaved_inserts() {
        let mut w = TimingWheel::new();
        let mut h = HeapQueue::new();
        let mut seq = 0u64;
        let mut push = |w: &mut TimingWheel, h: &mut HeapQueue, t: u64| {
            seq += 1;
            w.insert(e(t, seq));
            h.insert(e(t, seq));
        };
        for t in [100u64, 3, 100, 65_537, 3] {
            push(&mut w, &mut h, t);
        }
        // Pop two, then insert more (past the staged region and at it).
        for _ in 0..2 {
            assert_eq!(w.pop(), h.pop());
        }
        for t in [4u64, 100, 1 << 30, 5] {
            push(&mut w, &mut h, t);
        }
        loop {
            let (a, b) = (w.pop(), h.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn cancellation_is_consumed_at_every_layer() {
        let mut w = TimingWheel::new();
        // One cancelled at the staged tick, one in a level-0 slot, one that
        // must cascade from a high level.
        w.insert(e(10, 1));
        w.insert(e(10, 2));
        w.insert(e(50, 3));
        w.insert(e(1 << 20, 4));
        assert_eq!(w.peek_deadline(), Some(SimTime(10))); // stages tick 10
        w.cancel(TimerId(2)); // staged entry
        w.cancel(TimerId(3)); // level-0 entry
        w.cancel(TimerId(4)); // high-level entry
        assert_eq!(w.live_len(), 1);
        assert_eq!(drain(&mut w), vec![(10, 1)]);
        assert_eq!(w.outstanding_tombstones(), 0, "all tombstones consumed");
        assert_eq!(w.stored_len(), 0);
    }

    #[test]
    fn live_entries_sorted_and_exclude_cancelled() {
        let mut w = TimingWheel::new();
        w.insert(e(300, 1));
        w.insert(e(7, 2));
        w.insert(e(7, 3));
        w.cancel(TimerId(3));
        let live = w.live_entries();
        let keys: Vec<_> = live.iter().map(|x| (x.deadline.0, x.seq)).collect();
        assert_eq!(keys, vec![(7, 2), (300, 1)]);
    }

    #[test]
    fn stale_cancel_is_a_noop_on_both_queues() {
        // Cancelling an already-popped or never-inserted id must not create
        // a tombstone, corrupt accounting, or affect later entries.
        let mut w = TimingWheel::new();
        let mut h = HeapQueue::new();
        for q in [&mut w as &mut dyn EventQueue, &mut h] {
            q.insert(e(1, 1));
            assert_eq!(q.pop().map(|x| x.seq), Some(1));
            q.cancel(TimerId(1)); // already fired
            q.cancel(TimerId(99)); // never existed
            assert_eq!(q.live_len(), 0);
            assert_eq!(q.stored_len(), 0);
            assert_eq!(q.outstanding_tombstones(), 0);
            q.insert(e(2, 2));
            assert_eq!(q.pop().map(|x| x.seq), Some(2));
        }
    }

    #[test]
    fn far_future_and_max_tick() {
        let mut w = TimingWheel::new();
        w.insert(e(u64::MAX, 1));
        w.insert(e(0, 2));
        assert_eq!(drain(&mut w), vec![(0, 2), (u64::MAX, 1)]);
    }
}
