//! Deterministic pseudo-random number generation for the simulator.
//!
//! The engine itself is fully deterministic; randomness is only used by
//! *jitter models* that reproduce run-to-run variance (the decile bands shown
//! in every figure of the paper). We implement SplitMix64 (for seeding) and
//! PCG32 (for streams) locally so the simulator has zero dependencies and
//! results are bit-reproducible across platforms and crate versions.

/// SplitMix64: used to expand a single `u64` seed into stream seeds.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG32 (XSH-RR 64/32): small, fast, statistically solid generator.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Create a generator from a seed and a stream id. Distinct stream ids
    /// yield independent sequences even with the same seed.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's method.
    pub fn below(&mut self, n: u32) -> u32 {
        debug_assert!(n > 0);
        let mut x = self.next_u32();
        let mut m = (x as u64).wrapping_mul(n as u64);
        let mut l = m as u32;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u32();
                m = (x as u64).wrapping_mul(n as u64);
                l = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Standard normal deviate via Box–Muller (fresh pair each call, the
    /// throwaway half keeps the generator branch-free and reproducible).
    pub fn normal(&mut self) -> f64 {
        // Avoid log(0).
        let u1 = (self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normal multiplicative jitter centered on 1.0 with relative spread
    /// `sigma` (e.g. 0.03 for ±3 % typical). Models run-to-run noise on
    /// latencies and bandwidths.
    pub fn jitter(&mut self, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return 1.0;
        }
        (self.normal() * sigma).exp()
    }
}

/// A family of independent jitter streams, one per (seed, stream) pair.
///
/// Experiments create one `JitterFamily` per repetition so that decile bands
/// are produced by genuinely independent "runs".
#[derive(Clone, Debug)]
pub struct JitterFamily {
    seed: u64,
}

impl JitterFamily {
    /// Create a family rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        JitterFamily { seed }
    }

    /// Get the stream for a named jitter source.
    pub fn stream(&self, id: u64) -> Pcg32 {
        let mut sm = SplitMix64::new(self.seed ^ 0xA076_1D64_78BD_642F);
        // Decorrelate stream selection from the seed.
        let mix = sm.next_u64() ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Pcg32::new(mix, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn pcg_streams_differ() {
        let mut a = Pcg32::new(1, 0);
        let mut b = Pcg32::new(1, 1);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be decorrelated, {} collisions", same);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Pcg32::new(7, 3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = Pcg32::new(9, 2);
        for _ in 0..10_000 {
            let x = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn below_is_uniform_enough() {
        let mut r = Pcg32::new(11, 4);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; allow 5 % deviation.
            assert!((9_500..10_500).contains(&c), "bucket count {}", c);
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = Pcg32::new(13, 5);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {}", mean);
        assert!((var - 1.0).abs() < 0.05, "var {}", var);
    }

    #[test]
    fn jitter_centered_on_one() {
        let mut r = Pcg32::new(17, 6);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.jitter(0.05)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {}", mean);
        assert_eq!(r.jitter(0.0), 1.0);
    }

    #[test]
    fn jitter_family_streams_reproducible() {
        let f1 = JitterFamily::new(123);
        let f2 = JitterFamily::new(123);
        let mut a = f1.stream(9);
        let mut b = f2.stream(9);
        for _ in 0..32 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        // Different streams differ.
        let mut c = f1.stream(10);
        let collisions = (0..32).filter(|_| b.next_u32() == c.next_u32()).count();
        assert!(collisions < 3);
    }
}
