//! Time-series tracing.
//!
//! Figure 2 and Figures 3b/3c of the paper plot *per-core frequency traces
//! over time*. [`Trace`] records piecewise-constant signals (frequency,
//! utilization, queue depth…) as `(time, value)` steps and can resample them
//! on a regular grid for plotting or averaging.

use crate::time::SimTime;

/// A piecewise-constant signal sampled at change points.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    name: String,
    steps: Vec<(SimTime, f64)>,
}

impl Trace {
    /// Create an empty trace.
    pub fn new(name: impl Into<String>) -> Trace {
        Trace {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Name the trace was created with.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record that the signal takes `value` from time `t` on. Out-of-order
    /// records are rejected; re-recording the same value is a no-op.
    pub fn record(&mut self, t: SimTime, value: f64) {
        if let Some(&(last_t, last_v)) = self.steps.last() {
            assert!(t >= last_t, "trace records must be time-ordered");
            if last_v == value {
                return;
            }
            if last_t == t {
                // Same-instant overwrite.
                self.steps.pop();
            }
        }
        self.steps.push((t, value));
    }

    /// True if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Value at time `t` (the last recorded step at or before `t`).
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.steps.binary_search_by(|&(st, _)| st.cmp(&t)) {
            Ok(i) => Some(self.steps[i].1),
            Err(0) => None,
            Err(i) => Some(self.steps[i - 1].1),
        }
    }

    /// Resample on a regular grid from `start` to `end` (inclusive) with the
    /// given step, yielding `(t, value)` pairs. Times before the first record
    /// yield the first recorded value. Degenerate inputs — an empty trace, a
    /// zero step, or `end < start` — yield an empty grid instead of panicking.
    pub fn resample(&self, start: SimTime, end: SimTime, step: SimTime) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        if self.steps.is_empty() || step.is_zero() || end < start {
            return out;
        }
        let first = self.steps[0].1;
        let mut t = start;
        loop {
            out.push((t, self.value_at(t).unwrap_or(first)));
            if t >= end {
                break;
            }
            t = (t + step).min(end);
        }
        out
    }

    /// Time-weighted mean over `[start, end]`.
    pub fn mean_over(&self, start: SimTime, end: SimTime) -> Option<f64> {
        if self.steps.is_empty() || end <= start {
            return None;
        }
        let mut acc = 0.0;
        let mut t = start;
        let mut v = self.value_at(start).unwrap_or(self.steps[0].1);
        for &(st, sv) in self.steps.iter().filter(|&&(st, _)| st > start && st < end) {
            acc += v * (st - t).as_secs_f64();
            t = st;
            v = sv;
        }
        acc += v * (end - t).as_secs_f64();
        Some(acc / (end - start).as_secs_f64())
    }

    /// Raw steps.
    pub fn steps(&self) -> &[(SimTime, f64)] {
        &self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn record_and_lookup() {
        let mut tr = Trace::new("freq");
        tr.record(us(0), 1.0);
        tr.record(us(10), 2.0);
        tr.record(us(20), 3.0);
        assert_eq!(tr.value_at(us(0)), Some(1.0));
        assert_eq!(tr.value_at(us(5)), Some(1.0));
        assert_eq!(tr.value_at(us(10)), Some(2.0));
        assert_eq!(tr.value_at(us(25)), Some(3.0));
    }

    #[test]
    fn before_first_record_is_none() {
        let mut tr = Trace::new("x");
        tr.record(us(10), 5.0);
        assert_eq!(tr.value_at(us(5)), None);
    }

    #[test]
    fn duplicate_value_collapsed() {
        let mut tr = Trace::new("x");
        tr.record(us(0), 1.0);
        tr.record(us(5), 1.0);
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn same_instant_overwrite() {
        let mut tr = Trace::new("x");
        tr.record(us(0), 1.0);
        tr.record(us(0), 2.0);
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.value_at(us(0)), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_panics() {
        let mut tr = Trace::new("x");
        tr.record(us(10), 1.0);
        tr.record(us(5), 2.0);
    }

    #[test]
    fn resample_grid() {
        let mut tr = Trace::new("x");
        tr.record(us(0), 1.0);
        tr.record(us(10), 2.0);
        let g = tr.resample(us(0), us(20), us(5));
        assert_eq!(
            g,
            vec![
                (us(0), 1.0),
                (us(5), 1.0),
                (us(10), 2.0),
                (us(15), 2.0),
                (us(20), 2.0)
            ]
        );
    }

    #[test]
    fn mean_over_window() {
        let mut tr = Trace::new("x");
        tr.record(us(0), 1.0);
        tr.record(us(10), 3.0);
        // [0,20]: 1.0 for 10us then 3.0 for 10us → mean 2.0
        let m = tr.mean_over(us(0), us(20)).unwrap();
        assert!((m - 2.0).abs() < 1e-12);
        // [5,15]: 1.0 for 5us, 3.0 for 5us → 2.0
        let m = tr.mean_over(us(5), us(15)).unwrap();
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_empty_or_degenerate() {
        let tr = Trace::new("x");
        assert_eq!(tr.mean_over(us(0), us(10)), None);
        let mut tr = Trace::new("y");
        tr.record(us(0), 1.0);
        assert_eq!(tr.mean_over(us(5), us(5)), None);
        assert_eq!(tr.mean_over(us(10), us(5)), None, "inverted window");
    }

    #[test]
    fn resample_degenerate_inputs_are_empty() {
        // Empty trace: nothing to sample from.
        let tr = Trace::new("x");
        assert!(tr.resample(us(0), us(10), us(1)).is_empty());
        let mut tr = Trace::new("y");
        tr.record(us(0), 1.0);
        // Zero step would loop forever; yield nothing instead.
        assert!(tr.resample(us(0), us(10), us(0)).is_empty());
        // Inverted window ("negative" span — SimTime is unsigned).
        assert!(tr.resample(us(10), us(0), us(1)).is_empty());
        // start == end is still a valid one-point grid.
        assert_eq!(tr.resample(us(5), us(5), us(1)), vec![(us(5), 1.0)]);
    }
}
