//! Summary statistics for repeated benchmark runs.
//!
//! The paper plots the **median** of several runs with a band delimited by
//! the **first and last decile**. [`Summary`] reproduces exactly that, plus
//! a few extras used in report tables.

/// Quantile of a sample set using linear interpolation between order
/// statistics (type-7 estimator, the numpy/R default). `q` in [0,1].
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median / decile / extrema summary of a sample of repeated measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Median.
    pub median: f64,
    /// First decile (10th percentile) — lower edge of the paper's bands.
    pub d1: f64,
    /// Last decile (90th percentile) — upper edge of the paper's bands.
    pub d9: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarize a sample set.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "summary of empty sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Summary {
            n: sorted.len(),
            median: quantile(&sorted, 0.5),
            d1: quantile(&sorted, 0.1),
            d9: quantile(&sorted, 0.9),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }

    /// Relative width of the decile band, `(d9 - d1) / median`. The paper
    /// calls Omni-Path's bandwidth "wide deviation" — this is the metric we
    /// check it with.
    pub fn band_rel(&self) -> f64 {
        if self.median == 0.0 {
            0.0
        } else {
            (self.d9 - self.d1) / self.median
        }
    }
}

/// One point of a figure: an x value plus summaries for each plotted series.
#[derive(Clone, Debug)]
pub struct SeriesPoint {
    /// The swept parameter (cores, bytes, flop/B…).
    pub x: f64,
    /// Summary of the repeated measurements at this x.
    pub y: Summary,
}

/// A named series of summarized points (one curve of a figure).
#[derive(Clone, Debug)]
pub struct Series {
    /// Curve label.
    pub name: String,
    /// Points in sweep order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Create an empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point from raw repeated samples.
    pub fn push(&mut self, x: f64, samples: &[f64]) {
        self.points.push(SeriesPoint {
            x,
            y: Summary::of(samples),
        });
    }

    /// Median y at the given x (exact match), if present.
    pub fn median_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-12 * x.abs().max(1.0))
            .map(|p| p.y.median)
    }

    /// Medians as (x, y) pairs.
    pub fn medians(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|p| (p.x, p.y.median)).collect()
    }

    /// First x (scanning left to right) at which the median deviates from
    /// the reference `baseline` by more than `rel` (e.g. 0.10 for 10 %).
    /// This is how "latency starts being impacted from N computing cores"
    /// onsets are extracted.
    pub fn onset_x(&self, baseline: f64, rel: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.y.median - baseline).abs() > rel * baseline.abs())
            .map(|p| p.x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_endpoints() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 1.0), 4.0);
    }

    #[test]
    fn quantile_interpolates() {
        let s = [10.0, 20.0];
        assert!((quantile(&s, 0.5) - 15.0).abs() < 1e-12);
        let s = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0];
        assert!((quantile(&s, 0.1) - 10.0).abs() < 1e-12);
        assert!((quantile(&s, 0.9) - 90.0).abs() < 1e-12);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!(s.d1 >= s.min && s.d9 <= s.max && s.d1 <= s.median && s.median <= s.d9);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.d1, 42.0);
        assert_eq!(s.d9, 42.0);
        assert_eq!(s.band_rel(), 0.0);
    }

    #[test]
    fn band_rel() {
        let s = Summary::of(&[90.0, 95.0, 100.0, 105.0, 110.0]);
        assert!(s.band_rel() > 0.0 && s.band_rel() < 0.5);
    }

    #[test]
    fn series_onset() {
        let mut series = Series::new("latency");
        for (x, y) in [(1.0, 10.0), (2.0, 10.2), (3.0, 13.0), (4.0, 20.0)] {
            series.push(x, &[y]);
        }
        // Baseline 10, 10 % threshold → first deviation at x=3 (13 > 11).
        assert_eq!(series.onset_x(10.0, 0.10), Some(3.0));
        // 50 % threshold → x=4 only (20 > 15).
        assert_eq!(series.onset_x(10.0, 0.50), Some(4.0));
        // Huge threshold → never.
        assert_eq!(series.onset_x(10.0, 5.0), None);
    }

    #[test]
    fn series_median_at() {
        let mut series = Series::new("bw");
        series.push(8.0, &[1.0, 2.0, 3.0]);
        assert_eq!(series.median_at(8.0), Some(2.0));
        assert_eq!(series.median_at(9.0), None);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_summary_panics() {
        let _ = Summary::of(&[]);
    }
}
