//! Tag namespacing.
//!
//! Completion events carry a single opaque `u64` tag. The top byte names the
//! subsystem that owns the event; the remaining 56 bits are subsystem-local.
//! The experiment driver dispatches on the namespace, each subsystem decodes
//! its own payload.

/// Subsystem namespaces (top byte of a tag).
pub mod ns {
    /// Compute-phase executor (memsim).
    pub const COMPUTE: u8 = 1;
    /// Network transfers and protocol steps (netsim).
    pub const NET: u8 = 2;
    /// Message-passing layer (mpisim).
    pub const MPI: u8 = 3;
    /// Task runtime (taskrt).
    pub const RUNTIME: u8 = 4;
    /// Frequency governor ticks (freq).
    pub const FREQ: u8 = 5;
    /// Experiment-level bookkeeping.
    pub const EXPERIMENT: u8 = 6;
}

/// Compose a tag from a namespace and a 56-bit payload.
#[inline]
pub fn tag(namespace: u8, payload: u64) -> u64 {
    debug_assert!(payload < (1 << 56), "payload exceeds 56 bits");
    ((namespace as u64) << 56) | payload
}

/// Extract the namespace of a tag.
#[inline]
pub fn namespace(tag: u64) -> u8 {
    (tag >> 56) as u8
}

/// Extract the payload of a tag.
#[inline]
pub fn payload(tag: u64) -> u64 {
    tag & ((1 << 56) - 1)
}

/// Compose a payload from a 24-bit kind and a 32-bit index — the common
/// sub-encoding used by several subsystems.
#[inline]
pub fn kind_index(kind: u32, index: u32) -> u64 {
    debug_assert!(kind < (1 << 24), "kind exceeds 24 bits");
    ((kind as u64) << 32) | index as u64
}

/// Split a payload composed with [`kind_index`].
#[inline]
pub fn split_kind_index(payload: u64) -> (u32, u32) {
    (((payload >> 32) & 0xFF_FFFF) as u32, payload as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = tag(ns::NET, 0x1234_5678_9ABC);
        assert_eq!(namespace(t), ns::NET);
        assert_eq!(payload(t), 0x1234_5678_9ABC);
    }

    #[test]
    fn kind_index_roundtrip() {
        let p = kind_index(7, 0xDEAD_BEEF);
        assert_eq!(split_kind_index(p), (7, 0xDEAD_BEEF));
        let t = tag(ns::RUNTIME, p);
        assert_eq!(namespace(t), ns::RUNTIME);
        assert_eq!(split_kind_index(payload(t)), (7, 0xDEAD_BEEF));
    }

    #[test]
    fn namespaces_distinct() {
        let all = [ns::COMPUTE, ns::NET, ns::MPI, ns::RUNTIME, ns::FREQ, ns::EXPERIMENT];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
