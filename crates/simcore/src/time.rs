//! Simulation time.
//!
//! Time is kept as an integer number of **picoseconds** so that event
//! ordering is exact and runs are bit-reproducible. `u64` picoseconds covers
//! about 213 days of simulated time, far beyond any experiment in this
//! workspace (the longest benchmarks simulate a few minutes).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a duration, in picoseconds.
///
/// A single type is used for both instants and durations; the engine never
/// needs to distinguish them and a single type keeps arithmetic simple.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// One picosecond.
    pub const PS: SimTime = SimTime(1);
    /// One nanosecond.
    pub const NS: SimTime = SimTime(1_000);
    /// One microsecond.
    pub const US: SimTime = SimTime(1_000_000);
    /// One millisecond.
    pub const MS: SimTime = SimTime(1_000_000_000);
    /// One second.
    pub const SEC: SimTime = SimTime(1_000_000_000_000);

    /// Build from a floating-point number of seconds (saturating, non-negative).
    pub fn from_secs_f64(secs: f64) -> SimTime {
        debug_assert!(secs.is_finite(), "non-finite duration");
        if secs <= 0.0 {
            return SimTime::ZERO;
        }
        let ps = secs * 1e12;
        if ps >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ps as u64)
        }
    }

    /// Build from nanoseconds.
    pub fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns.saturating_mul(1_000))
    }

    /// Build from microseconds.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us.saturating_mul(1_000_000))
    }

    /// Build from milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms.saturating_mul(1_000_000_000))
    }

    /// Convert to floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Convert to floating-point microseconds (the unit of most paper plots).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Convert to floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Convert to floating-point nanoseconds.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// True if this is `SimTime::ZERO`.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_mul(rhs).expect("SimTime overflow"))
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{}ps", ps)
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else {
            write!(f, "{:.3}s", ps as f64 / 1e12)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(SimTime::NS, SimTime::PS * 1_000);
        assert_eq!(SimTime::US, SimTime::NS * 1_000);
        assert_eq!(SimTime::MS, SimTime::US * 1_000);
        assert_eq!(SimTime::SEC, SimTime::MS * 1_000);
    }

    #[test]
    fn secs_roundtrip() {
        let t = SimTime::from_secs_f64(1.5e-6);
        assert_eq!(t, SimTime::from_micros(1) + SimTime::from_nanos(500));
        assert!((t.as_secs_f64() - 1.5e-6).abs() < 1e-18);
        assert!((t.as_micros_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn negative_and_huge_secs_saturate() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(3);
        let b = SimTime::from_micros(1);
        assert_eq!(a - b, SimTime::from_micros(2));
        assert_eq!(a + b, SimTime::from_micros(4));
        assert_eq!(a / 3, SimTime::from_micros(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a * 0.5, SimTime::from_nanos(1_500));
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", SimTime(500)), "500ps");
        assert_eq!(format!("{}", SimTime::from_nanos(42)), "42.000ns");
        assert_eq!(format!("{}", SimTime::from_micros(7)), "7.000us");
        assert_eq!(format!("{}", SimTime::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimTime::SEC * 2), "2.000s");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::NS < SimTime::US);
        assert!(SimTime::MAX > SimTime::SEC);
    }

    #[test]
    fn sum_iterator() {
        let total: SimTime = (1..=4u64).map(SimTime::from_nanos).sum();
        assert_eq!(total, SimTime::from_nanos(10));
    }
}
