//! # simcore — discrete-event fluid simulation engine
//!
//! The foundation of the interference study: a deterministic discrete-event
//! engine whose central abstraction is **fluid bandwidth sharing**. Shared
//! hardware (memory controllers, NUMA links, NIC, network wire, core cycle
//! budgets) are *resources*; ongoing transfers and compute phases are *flows*
//! allocated by weighted max-min fairness. Fixed latencies are *timers*.
//!
//! Everything is deterministic given a seed; run-to-run variance (the decile
//! bands in the paper's figures) comes from explicit jitter streams
//! ([`rng::JitterFamily`]).
//!
//! See `DESIGN.md` at the workspace root for how this engine substitutes for
//! the paper's physical clusters.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

pub mod cancel;
pub mod engine;
pub mod faults;
pub mod fluid;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod tags;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use cancel::CancelToken;
pub use engine::{Engine, EngineError, Event, StallDiagnostic, TimerId};
pub use faults::{FaultPlan, FaultPlanError, LinkDegradation, NicStall, StragglerCore};
pub use fluid::{FlowId, FlowReport, FlowSpec, FluidNet, ReallocStats, ResourceId};
pub use queue::{EventQueue, QueueEntry, TimingWheel};
pub use rng::{JitterFamily, Pcg32, SplitMix64};
pub use stats::{quantile, Series, SeriesPoint, Summary};
pub use tags::{kind_index, namespace, payload, split_kind_index, tag};
pub use telemetry::{Journal, Lane};
pub use time::SimTime;
pub use trace::Trace;
