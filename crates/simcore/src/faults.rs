//! Deterministic fault injection plans.
//!
//! The paper's measurements come from healthy clusters; this module describes
//! the *unhealthy* ones used by the robustness experiments: links that
//! degrade for a window, NICs that stall, rendezvous control messages that
//! get dropped, and straggler cores running below nominal frequency.
//!
//! A [`FaultPlan`] is pure data plus a seed. All randomness (the per-message
//! drop decisions) is drawn from [`crate::rng::JitterFamily`] streams rooted
//! at that seed, so two runs with identical seeds replay byte-identical
//! fault traces — the same property the jitter machinery already guarantees
//! for latency/bandwidth noise.

use std::fmt;

use crate::rng::{JitterFamily, Pcg32};
use crate::time::SimTime;

/// Jitter-stream id for RTS (ready-to-send) drop decisions.
pub const STREAM_DROP_RTS: u64 = 0xFA01;
/// Jitter-stream id for CTS (clear-to-send) drop decisions.
pub const STREAM_DROP_CTS: u64 = 0xFA02;

/// A window during which a link's bandwidth is multiplied by `factor`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkDegradation {
    /// Window start (simulated time).
    pub start: SimTime,
    /// Window end (simulated time, exclusive).
    pub end: SimTime,
    /// Bandwidth multiplier in `(0, 1]` applied while the window is open.
    pub factor: f64,
}

/// A window during which a NIC transmits nothing at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NicStall {
    /// Stall start (simulated time).
    pub start: SimTime,
    /// Stall end (simulated time, exclusive).
    pub end: SimTime,
}

/// A core pinned below its nominal frequency for the whole run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StragglerCore {
    /// Node index within the cluster.
    pub node: usize,
    /// Core index within the node.
    pub core: usize,
    /// Frequency multiplier in `(0, 1]`.
    pub factor: f64,
}

/// Why a [`FaultPlan`] failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultPlanError {
    /// A degradation or stall window has `end <= start`.
    EmptyWindow {
        /// Which kind of window ("link degradation" or "NIC stall").
        kind: &'static str,
        /// Window start.
        start: SimTime,
        /// Window end.
        end: SimTime,
    },
    /// A multiplicative factor is outside `(0, 1]`.
    BadFactor {
        /// What the factor applies to.
        kind: &'static str,
        /// The offending value.
        factor: f64,
    },
    /// A drop probability is outside `[0, 1]`.
    BadProbability {
        /// Which control message the probability applies to.
        kind: &'static str,
        /// The offending value.
        prob: f64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::EmptyWindow { kind, start, end } => write!(
                f,
                "{} window is empty: start {:.6}s >= end {:.6}s",
                kind,
                start.as_secs_f64(),
                end.as_secs_f64()
            ),
            FaultPlanError::BadFactor { kind, factor } => {
                write!(f, "{} factor {} outside (0, 1]", kind, factor)
            }
            FaultPlanError::BadProbability { kind, prob } => {
                write!(f, "{} drop probability {} outside [0, 1]", kind, prob)
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A complete description of the faults injected into one run.
///
/// Built with the fluent `with_*` methods; an empty plan (the default) is a
/// healthy cluster and injects nothing.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Root seed for all drop decisions.
    pub seed: u64,
    /// Bandwidth-degradation windows applied to the network wire.
    pub link_degradations: Vec<LinkDegradation>,
    /// Full-stop windows applied to every NIC.
    pub nic_stalls: Vec<NicStall>,
    /// Probability that any given RTS control message is lost.
    pub drop_rts: f64,
    /// Probability that any given CTS control message is lost.
    pub drop_cts: f64,
    /// Cores pinned below nominal frequency.
    pub stragglers: Vec<StragglerCore>,
}

impl FaultPlan {
    /// A healthy plan (nothing injected) rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            link_degradations: Vec::new(),
            nic_stalls: Vec::new(),
            drop_rts: 0.0,
            drop_cts: 0.0,
            stragglers: Vec::new(),
        }
    }

    /// Degrade the wire to `factor` of nominal bandwidth in `[start, end)`.
    pub fn with_link_degradation(mut self, start: SimTime, end: SimTime, factor: f64) -> Self {
        self.link_degradations.push(LinkDegradation { start, end, factor });
        self
    }

    /// Stall every NIC completely in `[start, end)`.
    pub fn with_nic_stall(mut self, start: SimTime, end: SimTime) -> Self {
        self.nic_stalls.push(NicStall { start, end });
        self
    }

    /// Drop each RTS control message with probability `p`.
    pub fn with_rts_drop(mut self, p: f64) -> Self {
        self.drop_rts = p;
        self
    }

    /// Drop each CTS control message with probability `p`.
    pub fn with_cts_drop(mut self, p: f64) -> Self {
        self.drop_cts = p;
        self
    }

    /// Pin `core` on `node` to `factor` of its nominal frequency.
    pub fn with_straggler(mut self, node: usize, core: usize, factor: f64) -> Self {
        self.stragglers.push(StragglerCore { node, core, factor });
        self
    }

    /// True when the plan injects nothing (a healthy cluster).
    pub fn is_empty(&self) -> bool {
        self.link_degradations.is_empty()
            && self.nic_stalls.is_empty()
            && self.drop_rts == 0.0
            && self.drop_cts == 0.0
            && self.stragglers.is_empty()
    }

    /// True when any control-message drops are configured.
    pub fn drops_control_messages(&self) -> bool {
        self.drop_rts > 0.0 || self.drop_cts > 0.0
    }

    /// The deterministic random stream for a named fault source (e.g.
    /// [`STREAM_DROP_RTS`]). Same seed + same id ⇒ same sequence.
    pub fn stream(&self, id: u64) -> Pcg32 {
        JitterFamily::new(self.seed).stream(id)
    }

    /// Check ranges: windows non-empty, factors in `(0, 1]`, probabilities
    /// in `[0, 1]`.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for d in &self.link_degradations {
            if d.end <= d.start {
                return Err(FaultPlanError::EmptyWindow {
                    kind: "link degradation",
                    start: d.start,
                    end: d.end,
                });
            }
            if !(d.factor > 0.0 && d.factor <= 1.0) {
                return Err(FaultPlanError::BadFactor {
                    kind: "link degradation",
                    factor: d.factor,
                });
            }
        }
        for s in &self.nic_stalls {
            if s.end <= s.start {
                return Err(FaultPlanError::EmptyWindow {
                    kind: "NIC stall",
                    start: s.start,
                    end: s.end,
                });
            }
        }
        for (kind, prob) in [("RTS", self.drop_rts), ("CTS", self.drop_cts)] {
            if !(0.0..=1.0).contains(&prob) {
                return Err(FaultPlanError::BadProbability { kind, prob });
            }
        }
        for s in &self.stragglers {
            if !(s.factor > 0.0 && s.factor <= 1.0) {
                return Err(FaultPlanError::BadFactor {
                    kind: "straggler core",
                    factor: s.factor,
                });
            }
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let p = FaultPlan::new(7);
        assert!(p.is_empty());
        assert!(!p.drops_control_messages());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn builder_populates_fields() {
        let p = FaultPlan::new(1)
            .with_link_degradation(SimTime::SEC, SimTime::SEC * 2, 0.25)
            .with_nic_stall(SimTime::from_millis(10), SimTime::from_millis(20))
            .with_rts_drop(0.1)
            .with_cts_drop(0.2)
            .with_straggler(0, 3, 0.5);
        assert!(!p.is_empty());
        assert!(p.drops_control_messages());
        assert!(p.validate().is_ok());
        assert_eq!(p.link_degradations.len(), 1);
        assert_eq!(p.nic_stalls.len(), 1);
        assert_eq!(p.stragglers.len(), 1);
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let empty_window = FaultPlan::new(0).with_link_degradation(SimTime::SEC, SimTime::SEC, 0.5);
        assert!(matches!(
            empty_window.validate(),
            Err(FaultPlanError::EmptyWindow { .. })
        ));
        let bad_factor =
            FaultPlan::new(0).with_link_degradation(SimTime::ZERO, SimTime::SEC, 0.0);
        assert!(matches!(
            bad_factor.validate(),
            Err(FaultPlanError::BadFactor { .. })
        ));
        let bad_prob = FaultPlan::new(0).with_cts_drop(1.5);
        assert!(matches!(
            bad_prob.validate(),
            Err(FaultPlanError::BadProbability { .. })
        ));
        let bad_straggler = FaultPlan::new(0).with_straggler(0, 0, 2.0);
        assert!(matches!(
            bad_straggler.validate(),
            Err(FaultPlanError::BadFactor { .. })
        ));
    }

    #[test]
    fn zero_length_and_inverted_stall_windows_are_rejected() {
        let t = SimTime::from_millis(3);
        for (start, end) in [(t, t), (t, t - SimTime::PS)] {
            let e = FaultPlan::new(0).with_nic_stall(start, end).validate();
            assert!(
                matches!(e, Err(FaultPlanError::EmptyWindow { kind: "NIC stall", .. })),
                "{:?}",
                e
            );
        }
    }

    #[test]
    fn one_picosecond_windows_are_the_smallest_valid_ones() {
        let t = SimTime::from_millis(3);
        let p = FaultPlan::new(0)
            .with_nic_stall(t, t + SimTime::PS)
            .with_link_degradation(t, t + SimTime::PS, 0.5);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn drop_streams_replay_identically() {
        let a = FaultPlan::new(99).with_rts_drop(0.5);
        let b = FaultPlan::new(99).with_rts_drop(0.5);
        let mut sa = a.stream(STREAM_DROP_RTS);
        let mut sb = b.stream(STREAM_DROP_RTS);
        for _ in 0..64 {
            assert_eq!(sa.next_u32(), sb.next_u32());
        }
        // A different seed gives a different trace.
        let mut sc = FaultPlan::new(100).stream(STREAM_DROP_RTS);
        let collisions = (0..64).filter(|_| sb.next_u32() == sc.next_u32()).count();
        assert!(collisions < 4);
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = FaultPlan::new(0).with_rts_drop(-0.5).validate().unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("RTS"), "{}", msg);
        assert!(msg.contains("-0.5"), "{}", msg);
    }
}
