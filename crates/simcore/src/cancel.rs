//! Cooperative cancellation for simulation runs.
//!
//! A [`CancelToken`] is a cheap, cloneable handle that a supervisor (the
//! campaign worker pool, a test harness) shares with the code it wants to
//! be able to stop. The engine checks the token inside its event loop, so
//! a wedged simulation — a timer storm that never quiesces, an unbounded
//! retry loop — is actually *stopped* at the next event boundary instead
//! of leaking its worker thread until process exit.
//!
//! Tokens trip in two ways:
//!
//! * **explicitly** — [`CancelToken::cancel`], from any thread;
//! * **by deadline** — [`CancelToken::with_deadline`] arms a wall-clock
//!   budget; the first [`CancelToken::check`] at or past the deadline
//!   latches the token.
//!
//! Like the telemetry recorder, the token travels **ambiently**: the
//! supervisor [`install`]s it on the worker thread, and every
//! [`crate::Engine`] constructed while it is installed adopts it without
//! any driver cooperation. This matters because experiment drivers build
//! their engines (and whole clusters of them) many layers below the
//! campaign loop. [`clear`] uninstalls; installation is per-thread.
//!
//! Cancellation is *cooperative*: only code that checks the token stops.
//! The engine checks once per delivered event (an atomic load) and
//! consults the wall clock every [`DEADLINE_CHECK_STRIDE`] events, so a
//! spin outside the engine (a driver busy-loop that never touches the
//! event loop) is out of scope.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many engine events may elapse between wall-clock deadline checks.
/// The flag itself is checked on every event; only the `Instant::now()`
/// syscall is rate-limited.
pub const DEADLINE_CHECK_STRIDE: u64 = 64;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// Shared cancellation handle. Clones observe the same state.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only trips on an explicit [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally trips once `budget` of wall-clock time
    /// has elapsed (measured from now).
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            }),
        }
    }

    /// Trip the token explicitly. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True when the token has tripped (explicitly or by a past deadline
    /// check). Never consults the clock — this is the cheap fast path.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Full check: tripped flag, or the armed deadline has passed (which
    /// latches the flag so later [`CancelToken::is_cancelled`] calls agree).
    pub fn check(&self) -> bool {
        if self.is_cancelled() {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.cancel();
                true
            }
            _ => false,
        }
    }

    /// True when a deadline was armed at construction.
    pub fn has_deadline(&self) -> bool {
        self.inner.deadline.is_some()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

thread_local! {
    /// The ambient token adopted by engines constructed on this thread.
    static TOKEN: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Install `token` as this thread's ambient cancellation token. Engines
/// constructed afterwards (until [`clear`]) adopt it.
pub fn install(token: CancelToken) {
    TOKEN.with(|t| *t.borrow_mut() = Some(token));
}

/// Remove the ambient token. Engines already constructed keep theirs.
pub fn clear() {
    TOKEN.with(|t| *t.borrow_mut() = None);
}

/// The currently installed ambient token, if any.
pub fn current() -> Option<CancelToken> {
    TOKEN.with(|t| t.borrow().clone())
}

/// Run `f` with `token` installed, restoring the previous ambient token
/// afterwards (even though panics unwind past the restore only on the
/// caller's thread, the campaign runner catches those before reuse).
pub fn scoped<R>(token: CancelToken, f: impl FnOnce() -> R) -> R {
    let prev = current();
    install(token);
    let out = f();
    match prev {
        Some(p) => install(p),
        None => clear(),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cancel_trips_all_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.check());
        b.cancel();
        assert!(a.is_cancelled());
        assert!(a.check());
    }

    #[test]
    fn zero_deadline_trips_on_first_check() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        // The flag is not set until a full check consults the clock.
        assert!(!t.is_cancelled());
        assert!(t.check(), "deadline already passed");
        // …and the check latches it for the fast path.
        assert!(t.is_cancelled());
        assert!(t.has_deadline());
    }

    #[test]
    fn far_deadline_does_not_trip() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.check());
        assert!(!t.is_cancelled());
    }

    #[test]
    fn ambient_install_clear_roundtrip() {
        assert!(current().is_none());
        let t = CancelToken::new();
        install(t.clone());
        let got = current().expect("installed");
        t.cancel();
        assert!(got.is_cancelled(), "clones share state");
        clear();
        assert!(current().is_none());
    }

    #[test]
    fn scoped_restores_previous_token() {
        let outer = CancelToken::new();
        install(outer.clone());
        let inner = CancelToken::new();
        scoped(inner.clone(), || {
            current().expect("inner installed").cancel();
        });
        assert!(inner.is_cancelled());
        assert!(!outer.is_cancelled());
        assert!(current().is_some(), "outer token restored");
        clear();
    }
}
