//! # bench — benchmark harness and figure reproduction
//!
//! * `src/bin/repro.rs` — the **reproduction binary**: regenerates the data
//!   series behind every table and figure of the paper, prints them next to
//!   the paper's reference values and evaluates the qualitative checks.
//!   Run `cargo run --release -p bench --bin repro -- --all` (or
//!   `--fig 4`, `--table 1`, `--quick`, `--csv DIR`).
//! * `benches/engine.rs` — criterion micro-benchmarks of the simulator hot
//!   paths (max-min reallocation, ping-pong event loop).
//! * `benches/figures.rs` — criterion wrappers timing reduced versions of
//!   each experiment driver end to end.
//! * `benches/kernels_host.rs` — criterion benchmarks of the *real* host
//!   kernels (STREAM TRIAD, tunable TRIAD, GEMM, CG).

/// Re-export the experiment entry points used by the benches.
pub use interference::experiments;
