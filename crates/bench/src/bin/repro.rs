//! Regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--csv DIR] [--all | --fig N | --table 1]
//! ```
//!
//! `--fig N` accepts 1–10 (all sub-figures of N are produced). Output is a
//! textual report: simulated medians with first/last-decile bands, the
//! paper's reference values as notes, and PASS/FAIL qualitative checks.

use std::io::Write;

use interference::experiments::{self, Fidelity};
use interference::report::FigureData;

fn usage() -> ! {
    eprintln!("usage: repro [--quick] [--csv DIR] [--json FILE] [--all | --fig N | --table 1 | --ext]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fidelity = Fidelity::Full;
    let mut csv_dir: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut select: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => fidelity = Fidelity::Quick,
            "--csv" => {
                i += 1;
                csv_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--all" => select = None,
            "--ext" => select = Some("ext".into()),
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--fig" => {
                i += 1;
                let n = args.get(i).cloned().unwrap_or_else(|| usage());
                select = Some(format!("fig{}", n));
            }
            "--table" => {
                i += 1;
                let n = args.get(i).cloned().unwrap_or_else(|| usage());
                select = Some(format!("table{}", n));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {}", other);
                usage();
            }
        }
        i += 1;
    }

    let figs: Vec<FigureData> = match select.as_deref() {
        None => experiments::run_all(fidelity),
        Some(sel) => run_selected(sel, fidelity),
    };

    let mut failed = 0;
    for f in &figs {
        print!("{}", f.render());
        println!();
        failed += f.checks.iter().filter(|c| !c.pass).count();
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{}/{}.csv", dir, f.id);
            let mut file = std::fs::File::create(&path).expect("create csv");
            file.write_all(f.to_csv().as_bytes()).expect("write csv");
            println!("   (csv written to {})", path);
        }
    }
    if let Some(path) = &json_path {
        std::fs::write(path, interference::results::figures_to_json(&figs))
            .expect("write json");
        println!("(json written to {})", path);
    }
    let total: usize = figs.iter().map(|f| f.checks.len()).sum();
    println!(
        "== summary: {}/{} qualitative checks passed across {} figures/tables ==",
        total - failed,
        total,
        figs.len()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}

fn run_selected(sel: &str, fidelity: Fidelity) -> Vec<FigureData> {
    use experiments::*;
    match sel {
        "fig1" => fig1_frequency::run(fidelity),
        "fig2" => vec![fig2_freq_dynamics::run(fidelity)],
        "fig3" => fig3_avx::run(fidelity),
        "fig4" => fig4_contention::run(fidelity),
        "fig5" => fig5_placement::run(fidelity),
        "fig6" => fig6_msgsize::run(fidelity),
        "fig7" => fig7_intensity::run(fidelity),
        "fig8" => vec![fig8_runtime_overhead::run(fidelity)],
        "fig9" => vec![fig9_polling::run(fidelity)],
        "fig10" => fig10_usecases::run(fidelity),
        "table1" => vec![table1::run(fidelity)],
        "ext" => run_extensions(fidelity),
        other => {
            eprintln!("unknown selection: {}", other);
            usage();
        }
    }
}
