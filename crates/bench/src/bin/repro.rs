//! Regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--jobs N] [--csv DIR] [--json FILE] [--timings FILE]
//!       [--trace FILE] [--fuzz-budget N]
//!       [--store DIR [--resume]] [--timeout SECS] [--allow-partial]
//!       [--list | --all | --fig N | --table 1 | --ext | --validate
//!        | --only NAME[,NAME]]
//! ```
//!
//! Selection goes through the experiment registry
//! ([`interference::experiments::all_experiments`]): `--list` prints every
//! registered experiment with its paper anchor and sweep size, `--only`
//! picks experiments by registry name, `--fig N` accepts 1–10 (all
//! sub-figures of N are produced). `--jobs N` runs the campaign's sweep
//! points on N worker threads — results are byte-identical to `--jobs 1`
//! because every point's seed derives from (experiment, point index), not
//! from execution order.
//!
//! Output is a textual report: simulated medians with first/last-decile
//! bands, the paper's reference values as notes, PASS/FAIL qualitative
//! checks, and a campaign timing summary.
//!
//! `--validate` runs the simcheck validation campaign instead of the paper
//! figures: closed-form oracles on every cluster preset, metamorphic
//! invariants over random fluid scenarios, and the differential scenario
//! fuzzer (`--fuzz-budget N` overrides the scenario count; failing scripts
//! are shrunk and printed, and also written to `$SIMCHECK_FAILURE_DIR` when
//! that variable is set). Like every other run, a failing check exits 1 —
//! `scripts/verify.sh` and CI gate on it.
//!
//! `--trace FILE` enables the deterministic telemetry layer and writes the
//! merged campaign journal as Chrome trace-event JSON — open it in
//! `chrome://tracing` or <https://ui.perfetto.dev>. The journal is keyed to
//! sim-time only, so the file is byte-identical at any `--jobs` level.
//!
//! `--store DIR` persists every completed sweep point to a crash-consistent
//! on-disk result store as it finishes; `--resume` restores previously
//! persisted points instead of recomputing them, so a campaign killed
//! mid-flight picks up where it left off — with exports byte-identical to
//! an uninterrupted run (point seeds derive from the plan, never from
//! execution order or wall time). Corrupt or torn entries are detected by
//! checksum, quarantined, and recomputed — never served.
//!
//! `--timeout SECS` arms a per-point wall-clock deadline: a wedged point is
//! cooperatively cancelled at the next simulation event and recorded as
//! `TimedOut` instead of hanging the campaign. A campaign that completes
//! partial (any failed or timed-out point, or a finalizer that could not
//! produce its figures) exits 3 unless `--allow-partial` is passed.
//!
//! `--validate` also runs the prediction-accuracy campaign (cross-validated
//! counter→slowdown error and held-out placement ranking gated against
//! `PREDICT_baseline.json`); `--predict-check` runs only that campaign —
//! the dedicated CI predict job's entry point.
//!
//! Two subcommands query the placement advisor directly (see
//! EXPERIMENTS.md):
//!
//! ```text
//! repro predict         --preset NAME --workload FAM --cores N --placement I
//!                       --metric bw|lat [--quick] [--jobs N]
//!                       [--store DIR [--resume]] [--ground-truth]
//! repro rank-placements --preset NAME --workload FAM --cores N
//!                       --metric bw|lat [--quick] [--jobs N]
//!                       [--store DIR [--resume]] [--ground-truth]
//! ```
//!
//! Both harvest the training grid (excluding every pair that co-ran the
//! queried workload family on the queried machine — the query is genuinely
//! unseen), train the advisor, and predict from the query's *alone* steps
//! only; the together step never executes unless `--ground-truth` asks for
//! the reference measurement.
//!
//! Exit codes: 0 success, 1 failed qualitative checks, 2 usage error,
//! 3 partial campaign without `--allow-partial`.

use std::path::Path;
use std::time::{Duration, Instant};

use interference::campaign::{
    CampaignOptions, CampaignReport, Experiment, ExperimentRun, StoreCtx,
};
use interference::experiments::{self, Fidelity};
use interference::store::{ResultStore, StoreStats};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--jobs N] [--csv DIR] [--json FILE] [--timings FILE]\n\
         \x20            [--trace FILE] [--fuzz-budget N]\n\
         \x20            [--store DIR [--resume]] [--timeout SECS] [--allow-partial]\n\
         \x20            [--list | --all | --fig N | --table 1 | --ext | --validate\n\
         \x20             | --predict-check | --only NAME[,NAME]]\n\
         \x20      repro predict         --preset NAME --workload FAM --cores N\n\
         \x20            --placement I --metric bw|lat [--quick] [--jobs N]\n\
         \x20            [--store DIR [--resume]] [--ground-truth]\n\
         \x20      repro rank-placements --preset NAME --workload FAM --cores N\n\
         \x20            --metric bw|lat [--quick] [--jobs N]\n\
         \x20            [--store DIR [--resume]] [--ground-truth]"
    );
    std::process::exit(2);
}

/// Write an export atomically (temp + rename): an interrupted run leaves
/// either the previous artifact or the new one, never a truncated file.
fn export(path: &str, bytes: &[u8], what: &str) {
    if let Err(e) = interference::atomic_write(Path::new(path), bytes) {
        eprintln!("error: failed to write {} {}: {}", what, path, e);
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("predict") => return predict_cli(&args[1..], true),
        Some("rank-placements") => return predict_cli(&args[1..], false),
        _ => {}
    }
    let mut fidelity = Fidelity::Full;
    let mut jobs = 1usize;
    let mut csv_dir: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut timings_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut resume = false;
    let mut timeout: Option<Duration> = None;
    let mut allow_partial = false;
    let mut list = false;
    let mut select: Option<String> = None;
    let mut only: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => fidelity = Fidelity::Quick,
            "--list" => list = true,
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--timings" => {
                i += 1;
                timings_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--store" => {
                i += 1;
                store_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--resume" => resume = true,
            "--timeout" => {
                i += 1;
                let secs: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| usage());
                timeout = Some(Duration::from_secs_f64(secs));
            }
            "--allow-partial" => allow_partial = true,
            "--all" => select = None,
            "--ext" => select = Some("ext".into()),
            "--validate" => select = Some("validate".into()),
            "--predict-check" => select = Some("predict-check".into()),
            "--fuzz-budget" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
                // The validation plan reads the budget from the environment
                // so plan() and run_point() agree on the chunking.
                std::env::set_var("SIMCHECK_FUZZ_BUDGET", n.to_string());
            }
            "--fig" => {
                i += 1;
                let n = args.get(i).cloned().unwrap_or_else(|| usage());
                select = Some(format!("fig{}", n));
            }
            "--table" => {
                i += 1;
                let n = args.get(i).cloned().unwrap_or_else(|| usage());
                select = Some(format!("table{}", n));
            }
            "--only" => {
                i += 1;
                let names = args.get(i).cloned().unwrap_or_else(|| usage());
                only.extend(names.split(',').map(|s| s.trim().to_string()));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {}", other);
                usage();
            }
        }
        i += 1;
    }

    if list {
        print_list();
        return;
    }
    if resume && store_dir.is_none() {
        eprintln!("--resume requires --store DIR");
        usage();
    }

    let store = store_dir.as_ref().map(|dir| {
        ResultStore::open(dir).unwrap_or_else(|e| {
            eprintln!("error: cannot open result store {}: {}", dir, e);
            std::process::exit(1);
        })
    });

    let exps = selected_experiments(select.as_deref(), &only);
    let opts = CampaignOptions::new(fidelity, jobs)
        .with_telemetry(trace_path.is_some())
        .with_timeout(timeout);
    let t0 = Instant::now();
    let ctx = store.as_ref().map(|s| StoreCtx { store: s, resume });
    let (runs, report) = interference::campaign::run_set_with_store(&exps, &opts, ctx);
    let wall = t0.elapsed();

    if let Some(path) = &trace_path {
        let journal = report.journal.as_ref().expect("telemetry was enabled");
        export(path, journal.to_chrome_json().as_bytes(), "trace");
        println!(
            "(chrome trace written to {}: {} records across {} categories)",
            path,
            journal.records.len(),
            journal.categories().len()
        );
    }

    let mut failed = 0;
    let mut figs = Vec::new();
    for run in runs.iter() {
        for f in &run.figures {
            print!("{}", f.render());
            println!();
            failed += f.checks.iter().filter(|c| !c.pass).count();
            if let Some(dir) = &csv_dir {
                std::fs::create_dir_all(dir).expect("create csv dir");
                let path = format!("{}/{}.csv", dir, f.id);
                export(&path, f.to_csv().as_bytes(), "csv");
                println!("   (csv written to {})", path);
            }
        }
        figs.extend(run.figures.iter());
    }
    if let Some(path) = &json_path {
        let owned: Vec<_> = runs.iter().flat_map(|r| r.figures.clone()).collect();
        export(
            path,
            interference::results::figures_to_json(&owned).as_bytes(),
            "json",
        );
        println!("(json written to {})", path);
    }

    let store_stats = store.as_ref().map(|s| s.stats());
    print_timings(&runs, &report, store_stats.as_ref(), jobs, wall.as_secs_f64());
    if let Some(path) = &timings_path {
        export(
            path,
            timings_json(
                &runs,
                &report,
                store_stats.as_ref(),
                fidelity,
                jobs,
                wall.as_secs_f64(),
            )
            .as_bytes(),
            "timings",
        );
        println!("(timings written to {})", path);
    }

    let partial = runs.iter().any(|r| r.is_partial());
    let total: usize = figs.iter().map(|f| f.checks.len()).sum();
    println!(
        "== summary: {}/{} qualitative checks passed across {} figures/tables{} ==",
        total - failed,
        total,
        figs.len(),
        if partial { " (PARTIAL)" } else { "" }
    );
    for r in runs.iter().filter(|r| r.is_partial()) {
        eprintln!(
            "partial: {} ({} failed, {} timed out{})",
            r.name,
            r.failed_points,
            r.timed_out_points,
            match &r.finalize_error {
                Some(e) => format!("; finalize: {}", e),
                None => String::new(),
            }
        );
    }
    if failed > 0 {
        std::process::exit(1);
    }
    if partial && !allow_partial {
        eprintln!("campaign completed partial; pass --allow-partial to exit 0");
        std::process::exit(3);
    }
}

/// Resolve the CLI selection to registry entries.
fn selected_experiments(select: Option<&str>, only: &[String]) -> Vec<&'static dyn Experiment> {
    if !only.is_empty() {
        return only
            .iter()
            .map(|name| {
                experiments::find(name).unwrap_or_else(|| {
                    eprintln!("unknown experiment: {} (try --list)", name);
                    usage();
                })
            })
            .collect();
    }
    match select {
        None => experiments::PAPER_EXPERIMENTS.to_vec(),
        Some("ext") => experiments::EXTENSION_EXPERIMENTS.to_vec(),
        Some("validate") => vec![
            experiments::VALIDATION_EXPERIMENT,
            predict::accuracy::ACCURACY_EXPERIMENT,
        ],
        Some("predict-check") => vec![predict::accuracy::ACCURACY_EXPERIMENT],
        Some(name) => match experiments::find(name) {
            Some(e) => vec![e],
            None => {
                eprintln!("unknown selection: {} (try --list)", name);
                usage();
            }
        },
    }
}

/// `repro predict` / `repro rank-placements`: train the placement advisor
/// on harvested pairs that exclude the queried (preset, workload family)
/// — the query is a pair the model has never seen co-run — then predict
/// from the query's alone steps only.
fn predict_cli(args: &[String], single_placement: bool) {
    use interference::experiments::harvest::{self, Family, PairSpec};
    use predict::advisor::{default_params, Advisor};
    use topology::presets::Preset;

    let mut fidelity = Fidelity::Full;
    let mut jobs = 1usize;
    let mut store_dir: Option<String> = None;
    let mut resume = false;
    let mut ground_truth = false;
    let mut preset: Option<Preset> = None;
    let mut family: Option<Family> = None;
    let mut cores: Option<u32> = None;
    let mut placement = 0usize;
    let mut placement_given = false;
    let mut metric: Option<interference::experiments::contention::Metric> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => fidelity = Fidelity::Quick,
            "--jobs" => {
                i += 1;
                jobs = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--store" => {
                i += 1;
                store_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--resume" => resume = true,
            "--ground-truth" => ground_truth = true,
            "--preset" => {
                i += 1;
                let name = args.get(i).cloned().unwrap_or_else(|| usage());
                preset = Preset::clusters()
                    .into_iter()
                    .find(|p| p.spec().name == name);
                if preset.is_none() {
                    eprintln!(
                        "unknown preset: {} (expected one of {})",
                        name,
                        Preset::clusters()
                            .map(|p| p.spec().name)
                            .join(", ")
                    );
                    usage();
                }
            }
            "--workload" => {
                i += 1;
                let tag = args.get(i).cloned().unwrap_or_else(|| usage());
                family = Family::from_tag(&tag);
                if family.is_none() {
                    eprintln!(
                        "unknown workload family: {} (expected one of {})",
                        tag,
                        Family::all().map(|f| f.tag()).join(", ")
                    );
                    usage();
                }
            }
            "--cores" => {
                i += 1;
                cores = args.get(i).and_then(|s| s.parse().ok());
                if cores.is_none() {
                    usage();
                }
            }
            "--placement" => {
                i += 1;
                placement = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&p| p < topology::Placement::all_combinations().len())
                    .unwrap_or_else(|| usage());
                placement_given = true;
            }
            "--metric" => {
                i += 1;
                metric = match args.get(i).map(String::as_str) {
                    Some("bw") => Some(interference::experiments::contention::Metric::Bandwidth),
                    Some("lat") => Some(interference::experiments::contention::Metric::Latency),
                    _ => usage(),
                };
            }
            other => {
                eprintln!("unknown argument: {}", other);
                usage();
            }
        }
        i += 1;
    }
    let (Some(preset), Some(family), Some(cores), Some(metric)) =
        (preset, family, cores, metric)
    else {
        eprintln!("--preset, --workload, --cores and --metric are required");
        usage();
    };
    if single_placement && !placement_given {
        eprintln!("repro predict requires --placement I (0..{})", topology::Placement::all_combinations().len());
        usage();
    }
    if resume && store_dir.is_none() {
        eprintln!("--resume requires --store DIR");
        usage();
    }
    let query = PairSpec {
        preset,
        placement,
        family,
        cores,
        metric,
    };

    // Harvest the training grid, minus every pair that co-ran the queried
    // family on the queried machine.
    let store = store_dir.as_ref().map(|dir| {
        ResultStore::open(dir).unwrap_or_else(|e| {
            eprintln!("error: cannot open result store {}: {}", dir, e);
            std::process::exit(1);
        })
    });
    let opts = CampaignOptions::new(fidelity, jobs);
    let ctx = store.as_ref().map(|s| StoreCtx { store: s, resume });
    let t0 = Instant::now();
    let outcomes = interference::campaign::run_outcomes_with_store(
        experiments::HARVEST_EXPERIMENT,
        &opts,
        ctx,
    );
    let all_pairs = harvest::collect_pairs(&outcomes);
    let harvest_wall = t0.elapsed();
    let params = default_params();
    let Some(advisor) = Advisor::train_excluding(&all_pairs, &params, |s| {
        !(s.preset == preset && s.family == family)
    }) else {
        eprintln!("error: harvest produced no training pairs");
        std::process::exit(1);
    };
    let trained = all_pairs
        .iter()
        .filter(|p| !(p.spec.preset == preset && p.spec.family == family))
        .count();
    println!(
        "advisor: trained on {} pair(s) in {:.2} s (held out {}:{}; harvest {:?} fidelity)",
        trained,
        t0.elapsed().as_secs_f64(),
        preset.spec().name,
        family.tag(),
        fidelity
    );
    println!(
        "   harvest {:.2} s, {} point(s){}",
        harvest_wall.as_secs_f64(),
        outcomes.len(),
        match outcomes.iter().filter(|o| o.restored).count() {
            0 => String::new(),
            n => format!(" ({} restored from store)", n),
        }
    );
    println!();

    if single_placement {
        let (comm, compute) = advisor.predict_spec(&query, fidelity).unwrap_or_else(|e| {
            eprintln!("error: prediction failed: {}", e);
            std::process::exit(1);
        });
        println!("query: {}", query.label());
        println!(
            "   predicted co-location penalty: comm {:.3}x, compute {:.3}x, combined {:.3}x",
            comm,
            compute,
            comm * compute
        );
        println!("   (predicted from the alone steps only; the together step never ran)");
        if ground_truth {
            let gt = harvest::measure_pair_direct(&query, fidelity).unwrap_or_else(|e| {
                eprintln!("error: ground-truth measurement failed: {}", e);
                std::process::exit(1);
            });
            let err = |p: f64, t: f64| (p - t).abs() / t * 100.0;
            println!(
                "   ground truth:                  comm {:.3}x, compute {:.3}x, combined {:.3}x",
                gt.comm_penalty,
                gt.compute_penalty,
                gt.comm_penalty * gt.compute_penalty
            );
            println!(
                "   absolute relative error:       comm {:.1}%, compute {:.1}%, combined {:.1}%",
                err(comm, gt.comm_penalty),
                err(compute, gt.compute_penalty),
                err(comm * compute, gt.comm_penalty * gt.compute_penalty)
            );
        }
        return;
    }

    let ranked = advisor.rank_placements(&query, fidelity).unwrap_or_else(|e| {
        eprintln!("error: ranking failed: {}", e);
        std::process::exit(1);
    });
    println!(
        "rank-placements: {}:{} c{} {} — {} candidates, best first",
        preset.spec().name,
        family.tag(),
        cores,
        metric.tag(),
        ranked.len()
    );
    let truths: Vec<Option<harvest::TrainingPair>> = if ground_truth {
        ranked
            .iter()
            .map(|r| {
                harvest::measure_pair_direct(
                    &PairSpec {
                        placement: r.placement,
                        ..query
                    },
                    fidelity,
                )
                .ok()
            })
            .collect()
    } else {
        vec![None; ranked.len()]
    };
    for (rank, (r, truth)) in ranked.iter().zip(&truths).enumerate() {
        print!(
            "   #{} placement {} ({:<22}) predicted comm {:.3}x compute {:.3}x combined {:.3}x",
            rank + 1,
            r.placement,
            r.label,
            r.comm,
            r.compute,
            r.combined
        );
        match truth {
            Some(t) => println!(
                "   truth {:.3}x",
                t.comm_penalty * t.compute_penalty
            ),
            None => println!(),
        }
    }
    if ground_truth {
        let pairs: Vec<(f64, f64)> = ranked
            .iter()
            .zip(&truths)
            .filter_map(|(r, t)| {
                t.as_ref()
                    .map(|t| (r.combined, t.comm_penalty * t.compute_penalty))
            })
            .collect();
        if pairs.len() == ranked.len() {
            let best_true = pairs
                .iter()
                .map(|(_, t)| *t)
                .fold(f64::MAX, f64::min);
            let picked_true = pairs[0].1;
            println!(
                "   predicted-best regret vs ground-truth best: {:.1}%",
                (picked_true / best_true - 1.0) * 100.0
            );
        }
    }
}

/// `--list`: every registered experiment with anchor and sweep sizes.
fn print_list() {
    let (name, full, quick, anchor) = ("name", "full", "quick", "paper anchor");
    println!("{:<18} {:>6} {:>6}  {}", name, full, quick, anchor);
    for e in experiments::all_experiments() {
        println!(
            "{:<18} {:>6} {:>6}  {}",
            e.name(),
            e.plan(Fidelity::Full).len(),
            e.plan(Fidelity::Quick).len(),
            e.anchor()
        );
    }
}

/// Campaign timing summary: per-experiment busy time and throughput, plus
/// a telemetry section (cache statistics; journal size when recording) and
/// a durability section when a result store is bound.
fn print_timings(
    runs: &[ExperimentRun],
    report: &CampaignReport,
    store: Option<&StoreStats>,
    jobs: usize,
    wall_s: f64,
) {
    println!("== campaign timings ({} job(s)) ==", jobs);
    for r in runs {
        let mut flags = String::new();
        if r.failed_points > 0 {
            flags.push_str(&format!(" ({} FAILED)", r.failed_points));
        }
        if r.timed_out_points > 0 {
            flags.push_str(&format!(" ({} TIMED OUT)", r.timed_out_points));
        }
        if r.restored_points > 0 {
            flags.push_str(&format!(" ({} restored)", r.restored_points));
        }
        println!(
            "   {:<18} {:>3} point(s){} {:>8.2} s busy  {:>6.2} points/s{}",
            r.name,
            r.points,
            flags,
            r.busy.as_secs_f64(),
            r.points_per_sec(),
            if report.journal.is_some() {
                format!("  {:.3} s sim", r.sim.as_secs_f64())
            } else {
                String::new()
            }
        );
    }
    let busy: f64 = runs.iter().map(|r| r.busy.as_secs_f64()).sum();
    println!(
        "   total: {:.2} s wall, {:.2} s busy (utilisation {:.2}x)",
        wall_s,
        busy,
        if wall_s > 0.0 { busy / wall_s } else { 0.0 }
    );
    println!("== telemetry ==");
    println!(
        "   baselines: {} lookup(s), {} computed, {} cache hit(s)",
        report.baseline_calls,
        report.baseline_computed,
        report.baseline_calls - report.baseline_computed
    );
    match &report.journal {
        Some(j) => {
            println!(
                "   journal: {} record(s), {} counter(s), {} histogram(s), {:.3} s simulated",
                j.records.len(),
                j.counters.len(),
                j.samples.len(),
                j.end_time().as_secs_f64()
            );
            for (name, value) in &j.counters {
                println!("   counter {:<18} {}", name, value);
            }
            print_engine_throughput(j, busy);
        }
        None => println!("   journal: disabled (enable with --trace FILE)"),
    }
    print_collective_path(report.journal.as_ref());
    if let Some(s) = store {
        println!("== result store ==");
        println!(
            "   {} persisted, {} restored (hit), {} miss(es), {} quarantined",
            s.persisted, s.hits, s.misses, s.quarantined
        );
        if s.quarantined > 0 {
            println!("   (quarantined entries were corrupt; recomputed, never served)");
        }
    }
    println!();
}

/// Engine-throughput digest derived from the merged telemetry journal:
/// events processed and events/sec over campaign busy time, same-instant
/// batching effectiveness (allocator passes saved vs one-pass-per-event),
/// timer-queue traffic, and parallel component-solve engagement.
fn print_engine_throughput(j: &simcore::Journal, busy_s: f64) {
    let c = |name: &str| j.counters.get(name).copied().unwrap_or(0);
    let events = c("engine.events");
    if events == 0 {
        return;
    }
    println!("== engine throughput ==");
    println!(
        "   {} event(s) processed, {:.0} events/s of busy time",
        events,
        if busy_s > 0.0 {
            events as f64 / busy_s
        } else {
            0.0
        }
    );
    let instants = c("engine.queue.batch_instants");
    if instants > 0 {
        println!(
            "   {} batched instant(s), {:.2} events/instant: {} allocator pass(es) saved vs per-event",
            instants,
            events as f64 / instants as f64,
            events.saturating_sub(instants)
        );
    }
    println!(
        "   timer queue: {} insert(s), {} cancel(s)",
        c("engine.queue.inserts"),
        c("engine.queue.cancels")
    );
    let par = c("fluid.parallel_components");
    if par > 0 {
        println!("   parallel solver: {} component(s) solved in parallel", par);
    } else {
        println!("   parallel solver: not engaged (workload below threshold)");
    }
}

/// Collective fast-path digest: message-matching bin hits vs probe scans,
/// route-interning hits, waterfill fast-path engagements (all from the
/// journal, so they need `--trace`), and the schedule-memoization cache
/// (process-global atomics, so always available).
fn print_collective_path(j: Option<&simcore::Journal>) {
    let cache = mpisim::collective::cache_stats();
    let c = |name: &str| {
        j.and_then(|j| j.counters.get(name).copied()).unwrap_or(0)
    };
    let probes = c("mpi.match.probes");
    let hits = c("mpi.match.bin_hit");
    let routes = c("net.route.intern_hit");
    let waterfill = c("fluid.waterfill");
    if cache.hits + cache.misses == 0 && probes + routes + waterfill == 0 {
        return;
    }
    println!("== collective path ==");
    if probes > 0 {
        println!(
            "   matching: {} bin hit(s) in {} probe(s) ({:.2} probes/match)",
            hits,
            probes,
            if hits > 0 { probes as f64 / hits as f64 } else { 0.0 }
        );
    }
    if routes > 0 {
        println!("   routes: {} interned-path hit(s)", routes);
    }
    if cache.hits + cache.misses > 0 {
        println!(
            "   schedule cache: {} hit(s), {} miss(es) (built + proved once each)",
            cache.hits, cache.misses
        );
    }
    if waterfill > 0 {
        println!("   waterfill: {} single-flow fast-path solve(s)", waterfill);
    }
}

/// Machine-readable timing record (`--timings FILE`).
fn timings_json(
    runs: &[ExperimentRun],
    report: &CampaignReport,
    store: Option<&StoreStats>,
    fidelity: Fidelity,
    jobs: usize,
    wall_s: f64,
) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"fidelity\":\"{:?}\",\"jobs\":{},\"wall_s\":{:.3},\"partial\":{},\"experiments\":[",
        fidelity,
        jobs,
        wall_s,
        runs.iter().any(|r| r.is_partial())
    ));
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"points\":{},\"failed_points\":{},\"timed_out_points\":{},\"restored_points\":{},\"busy_s\":{:.3},\"sim_s\":{:.6}}}",
            r.name,
            r.points,
            r.failed_points,
            r.timed_out_points,
            r.restored_points,
            r.busy.as_secs_f64(),
            r.sim.as_secs_f64()
        ));
    }
    out.push(']');
    if let Some(s) = store {
        out.push_str(&format!(
            ",\"store\":{{\"persisted\":{},\"hits\":{},\"misses\":{},\"quarantined\":{}}}",
            s.persisted, s.hits, s.misses, s.quarantined
        ));
    }
    out.push_str(",\"telemetry\":{");
    out.push_str(&format!(
        "\"enabled\":{},\"baseline_calls\":{},\"baseline_computed\":{}",
        report.journal.is_some(),
        report.baseline_calls,
        report.baseline_computed
    ));
    if let Some(j) = &report.journal {
        out.push_str(&format!(
            ",\"records\":{},\"sim_s\":{:.6},\"counters\":{{",
            j.records.len(),
            j.end_time().as_secs_f64()
        ));
        for (i, (name, value)) in j.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", name, value));
        }
        out.push('}');
        let c = |name: &str| j.counters.get(name).copied().unwrap_or(0);
        let events = c("engine.events");
        let instants = c("engine.queue.batch_instants");
        let busy: f64 = runs.iter().map(|r| r.busy.as_secs_f64()).sum();
        out.push_str(&format!(
            ",\"engine\":{{\"events\":{},\"events_per_busy_s\":{:.0},\"batch_instants\":{},\"allocator_passes_saved\":{},\"queue_inserts\":{},\"queue_cancels\":{},\"parallel_components\":{}}}",
            events,
            if busy > 0.0 { events as f64 / busy } else { 0.0 },
            instants,
            events.saturating_sub(instants),
            c("engine.queue.inserts"),
            c("engine.queue.cancels"),
            c("fluid.parallel_components"),
        ));
        out.push('}');
    } else {
        out.push('}');
    }
    let cache = mpisim::collective::cache_stats();
    let c = |name: &str| {
        report
            .journal
            .as_ref()
            .and_then(|j| j.counters.get(name).copied())
            .unwrap_or(0)
    };
    out.push_str(&format!(
        ",\"collective\":{{\"match_probes\":{},\"match_bin_hits\":{},\"route_intern_hits\":{},\"schedule_cache_hits\":{},\"schedule_cache_misses\":{},\"waterfill_solves\":{}}}",
        c("mpi.match.probes"),
        c("mpi.match.bin_hit"),
        c("net.route.intern_hit"),
        cache.hits,
        cache.misses,
        c("fluid.waterfill"),
    ));
    out.push_str("}\n");
    out
}
