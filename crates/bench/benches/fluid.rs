//! Micro-benchmarks of the incremental max-min allocator against the
//! retained from-scratch reference solver (`fluid::reference`).
//!
//! Three workload shapes bracket the design space:
//!
//! * **dense** — one fully connected component (every flow shares resources
//!   with every other). Dirtying anything forces a whole-component re-solve,
//!   so the incremental solver's only edge is the inverse index replacing
//!   the old per-round `path.contains` scans.
//! * **sparse** — many small independent components, one dirtied. The
//!   component tracker should re-solve exactly one island while the
//!   reference solver re-solves all of them; this is where the largest
//!   speedups live.
//! * **churn** — the fig9 pattern: flows cancelled and restarted in a
//!   rotating component, re-solving after every mutation. The PR's
//!   acceptance bar is >=5x over from-scratch here.
//!
//! Run with: `cargo bench -p bench --features bench-harness --bench fluid`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use simcore::fluid::reference;
use simcore::{FlowId, FlowSpec, FluidNet, ResourceId};

/// One component of `flows` flows over `res` shared resources.
fn dense_net(res: usize, flows: usize) -> (FluidNet, Vec<ResourceId>) {
    let mut net = FluidNet::new();
    let rids: Vec<_> = (0..res)
        .map(|i| net.add_resource(format!("r{}", i), 45e9))
        .collect();
    for i in 0..flows {
        net.start_flow(FlowSpec {
            path: vec![rids[i % res], rids[(i * 5 + 1) % res]],
            volume: 1e15,
            weight: 1.0 + (i % 4) as f64,
            cap: if i % 3 == 0 { Some(12e9) } else { None },
            tag: i as u64,
        });
    }
    net.reallocate();
    (net, rids)
}

/// `comps` disjoint islands, each `per_comp` flows over its own resource
/// pair — the shape a multi-node campaign run presents to the allocator.
fn sparse_net(comps: usize, per_comp: usize) -> (FluidNet, Vec<ResourceId>, Vec<FlowId>) {
    let mut net = FluidNet::new();
    let mut rids = Vec::new();
    let mut flows = Vec::new();
    for c in 0..comps {
        let a = net.add_resource(format!("c{}a", c), 45e9);
        let b = net.add_resource(format!("c{}b", c), 21e9);
        rids.push(a);
        for i in 0..per_comp {
            flows.push(net.start_flow(FlowSpec {
                path: if i % 2 == 0 { vec![a, b] } else { vec![b] },
                volume: 1e15,
                weight: 1.0,
                cap: None,
                tag: (c * per_comp + i) as u64,
            }));
        }
    }
    net.reallocate();
    (net, rids, flows)
}

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_dense");
    for &flows in &[128usize, 512] {
        group.bench_function(format!("incremental_{}_flows", flows), |b| {
            b.iter_batched(
                || {
                    let (mut net, rids) = dense_net(12, flows);
                    net.set_capacity(rids[0], 46e9); // dirty the component
                    net
                },
                |mut net| {
                    net.reallocate();
                    net
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("reference_{}_flows", flows), |b| {
            b.iter_batched(
                || dense_net(12, flows).0,
                |mut net| {
                    reference::reallocate(&mut net);
                    net
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_sparse_64comp");
    group.bench_function("incremental_one_dirty", |b| {
        b.iter_batched(
            || {
                let (mut net, rids, _) = sparse_net(64, 6);
                net.set_capacity(rids[17], 46e9); // dirty exactly one island
                net
            },
            |mut net| {
                net.reallocate();
                net
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("reference_full", |b| {
        b.iter_batched(
            || sparse_net(64, 6).0,
            |mut net| {
                reference::reallocate(&mut net);
                net
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Cancel + restart one flow per step, re-solving every step (what the
/// engine does when rendezvous transfers come and go mid-campaign).
fn churn(
    net: &mut FluidNet,
    rids: &[ResourceId],
    flows: &mut [FlowId],
    steps: usize,
    from_scratch: bool,
) {
    for s in 0..steps {
        let slot = s % flows.len();
        net.cancel_flow(flows[slot]).expect("victim is live");
        flows[slot] = net.start_flow(FlowSpec {
            path: vec![rids[s % rids.len()]],
            volume: 1e15,
            weight: 1.0,
            cap: None,
            tag: 1_000_000 + s as u64,
        });
        if from_scratch {
            reference::reallocate(net);
        } else {
            net.reallocate();
        }
    }
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_churn_64comp_256steps");
    group.bench_function("incremental", |b| {
        b.iter_batched(
            || sparse_net(64, 6),
            |(mut net, rids, mut flows)| {
                churn(&mut net, &rids, &mut flows, 256, false);
                net
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("from_scratch", |b| {
        b.iter_batched(
            || sparse_net(64, 6),
            |(mut net, rids, mut flows)| {
                churn(&mut net, &rids, &mut flows, 256, true);
                net
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(fluid, bench_dense, bench_sparse, bench_churn);
criterion_main!(fluid);
