//! Micro-benchmarks of the interference predictor: harvesting one
//! training pair end to end (three-step protocol + counter extraction),
//! training the two-model advisor on a preset's grid slice, and the
//! per-query prediction cost a placement advisor would pay online.

use criterion::{criterion_group, criterion_main, Criterion};
use interference::campaign::{run_outcomes_with_store, CampaignOptions};
use interference::experiments::harvest::{self, Family, Harvest, PairSpec};
use interference::experiments::Fidelity;
use predict::advisor::{default_params, Advisor};
use topology::presets::Preset;

fn henri_pairs() -> Vec<harvest::TrainingPair> {
    let exp = Harvest {
        filter: Some(|s: &PairSpec| s.preset == Preset::Henri),
    };
    let mut opts = CampaignOptions::serial(Fidelity::Quick);
    opts.jobs = 4;
    harvest::collect_pairs(&run_outcomes_with_store(&exp, &opts, None))
}

/// One grid point measured from scratch: comm-alone, compute-alone and
/// together simulations plus feature assembly. This is the unit cost a
/// Full-fidelity harvest pays per pair (modulo alone-step memoization).
fn bench_measure_pair(c: &mut Criterion) {
    let spec = PairSpec {
        preset: Preset::Henri,
        placement: 0,
        family: Family::Stream,
        cores: 6,
        metric: interference::experiments::contention::Metric::Bandwidth,
    };
    c.bench_function("predict_measure_pair_quick", |b| {
        b.iter(|| harvest::measure_pair_direct(&spec, Fidelity::Quick))
    });
}

/// Advisor training on one preset's 80 Quick pairs: ridge solve plus 200
/// boosting rounds for each of the two models.
fn bench_train(c: &mut Criterion) {
    let pairs = henri_pairs();
    let params = default_params();
    c.bench_function("predict_train_advisor_80_pairs", |b| {
        b.iter(|| Advisor::train(&pairs, &params))
    });
}

/// Online prediction: feature engineering plus two model evaluations. This
/// is what `repro rank-placements` pays per candidate placement.
fn bench_predict(c: &mut Criterion) {
    let pairs = henri_pairs();
    let advisor = Advisor::train(&pairs, &default_params());
    let features = pairs[0].features.clone();
    c.bench_function("predict_query", |b| {
        b.iter(|| advisor.predict_combined(&features))
    });
}

criterion_group!(benches, bench_measure_pair, bench_train, bench_predict);
criterion_main!(benches);
