//! Criterion benchmarks of the *real* host kernels backing the workload
//! descriptors: STREAM TRIAD, the tunable-intensity TRIAD, blocked GEMM and
//! the dense CG solver.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simcore::Pcg32;

fn bench_stream(c: &mut Criterion) {
    let n = 1 << 18;
    let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let b_arr: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
    let mut out = vec![0.0; n];
    let mut g = c.benchmark_group("host_stream");
    g.throughput(Throughput::Bytes((n * 24) as u64));
    g.bench_function("triad", |bch| {
        bch.iter(|| kernels::stream::triad(&a, &b_arr, 3.0, &mut out))
    });
    g.bench_function("copy", |bch| {
        bch.iter(|| kernels::stream::copy(&a, &mut out))
    });
    g.finish();
}

fn bench_tunable(c: &mut Criterion) {
    let n = 1 << 14;
    let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let b_arr: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
    let mut out = vec![0.0; n];
    let mut g = c.benchmark_group("host_tunable_triad");
    for cursor in [1u32, 12, 72] {
        g.bench_function(format!("cursor_{}", cursor), |bch| {
            bch.iter(|| kernels::tunable::triad_cursor(&a, &b_arr, 1.5, &mut out, cursor))
        });
    }
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let n = 96;
    let mut rng = Pcg32::new(3, 0);
    let a: Vec<f64> = (0..n * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let b_arr: Vec<f64> = (0..n * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let mut g = c.benchmark_group("host_gemm");
    g.throughput(Throughput::Elements((2 * n * n * n) as u64));
    g.bench_function("naive_96", |bch| {
        bch.iter(|| {
            let mut out = vec![0.0; n * n];
            kernels::gemm::gemm_naive(n, n, n, &a, &b_arr, &mut out);
            out
        })
    });
    g.bench_function("blocked_96", |bch| {
        bch.iter(|| {
            let mut out = vec![0.0; n * n];
            kernels::gemm::gemm_blocked(n, n, n, &a, &b_arr, &mut out, 32);
            out
        })
    });
    g.finish();
}

fn bench_cg(c: &mut Criterion) {
    let n = 64;
    let mut rng = Pcg32::new(5, 0);
    let a = kernels::cg::random_spd(n, &mut rng);
    let b_vec: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    c.bench_function("host_cg_solve_64", |bch| {
        bch.iter(|| kernels::cg::solve(&a, &b_vec, 1e-8, 200))
    });
}

fn bench_primes(c: &mut Criterion) {
    c.bench_function("host_primes_20k", |bch| {
        bch.iter(|| kernels::primes::count_primes(0, 20_000))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_stream, bench_tunable, bench_gemm, bench_cg, bench_primes
}
criterion_main!(benches);
