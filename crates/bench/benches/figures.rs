//! Criterion wrappers around the figure drivers (quick fidelity).
//!
//! One bench per table/figure of the paper: each regenerates the figure's
//! data series end to end on the simulator. These exist so `cargo bench`
//! exercises the full reproduction pipeline; the high-density series for
//! EXPERIMENTS.md come from the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use interference::experiments::{self, Fidelity};

macro_rules! fig_bench {
    ($fn_name:ident, $name:expr, $call:expr) => {
        fn $fn_name(c: &mut Criterion) {
            c.bench_function($name, |b| b.iter(|| $call));
        }
    };
}

fig_bench!(fig1, "fig1_frequency", experiments::fig1_frequency::run(Fidelity::Quick));
fig_bench!(fig2, "fig2_freq_dynamics", experiments::fig2_freq_dynamics::run(Fidelity::Quick));
fig_bench!(fig3, "fig3_avx", experiments::fig3_avx::run(Fidelity::Quick));
fig_bench!(fig4, "fig4_contention", experiments::fig4_contention::run(Fidelity::Quick));
fig_bench!(fig5, "fig5_placement", experiments::fig5_placement::run(Fidelity::Quick));
fig_bench!(tab1, "table1_placement_summary", experiments::table1::run(Fidelity::Quick));
fig_bench!(fig6, "fig6_msgsize", experiments::fig6_msgsize::run(Fidelity::Quick));
fig_bench!(fig7, "fig7_intensity", experiments::fig7_intensity::run(Fidelity::Quick));
fig_bench!(fig8, "fig8_runtime_overhead", experiments::fig8_runtime_overhead::run(Fidelity::Quick));
fig_bench!(fig9, "fig9_polling", experiments::fig9_polling::run(Fidelity::Quick));
fig_bench!(fig10, "fig10_usecases", experiments::fig10_usecases::run(Fidelity::Quick));
fig_bench!(ext_xm, "ext_cross_machine", experiments::cross_machine::run(Fidelity::Quick));
fig_bench!(ext_ab, "ext_ablations", experiments::ablations::run(Fidelity::Quick));
fig_bench!(ext_ov, "ext_overlap", experiments::overlap::run(Fidelity::Quick));

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig1, fig2, fig3, fig4, fig5, tab1, fig6, fig7, fig8, fig9, fig10, ext_xm, ext_ab, ext_ov
}
criterion_main!(benches);
