//! Criterion wrappers around the experiment registry (quick fidelity).
//!
//! One bench per registered experiment: each regenerates the figure's data
//! series end to end through the campaign engine. These exist so
//! `cargo bench` exercises the full reproduction pipeline; the high-density
//! series for EXPERIMENTS.md come from the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use interference::campaign::{run_experiment, CampaignOptions};
use interference::experiments::{self, Fidelity};

fn registry(c: &mut Criterion) {
    for exp in experiments::all_experiments() {
        c.bench_function(exp.name(), |b| {
            b.iter(|| run_experiment(exp, &CampaignOptions::serial(Fidelity::Quick)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = registry
}
criterion_main!(benches);
