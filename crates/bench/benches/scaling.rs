//! Engine scaling benchmark: events/sec and flows/sec vs synthetic node
//! count.
//!
//! Builds a contention scenario shaped like the paper's cluster runs: nodes
//! in racks of 8 behind a shared rack switch, all racks meeting at an
//! oversubscribed fabric resource, every node streaming rounds of transfers
//! to a far peer while per-node poll timers churn (schedule + cancel a
//! watchdog on every poll — the tombstone traffic the timing wheel absorbs).
//! The workload scales resources, flows and timers linearly with the node
//! count, so throughput here tracks the simulation core: timer queue,
//! same-instant batching and the component solver together.
//!
//! Per Hunold & Carpen-Amarie ("Reproducible MPI benchmarking"), every
//! configuration runs `SCALING_REPS` repetitions and the report keeps all
//! of them plus median and relative spread — a single hot number hides
//! exactly the variance that makes wall-clock claims irreproducible.
//!
//! A second section scales the *full stack* instead of the bare engine: a
//! ring allreduce on real N-rank clusters (tiny2x2 machines on the switch
//! fabric), rank counts 8→256, reporting simulated-events/sec through
//! mpisim + netsim + the fabric's per-hop flows. The synthetic scenario
//! isolates the event core; the allreduce column catches regressions in
//! the layers above it (matching, protocol timers, multi-hop max-min).
//!
//! Environment knobs (all optional):
//!   SCALING_NODES               comma list of node counts (default 64,256,1024)
//!   SCALING_REPS                repetitions per size (default 5)
//!   SCALING_ROUNDS              transfer rounds per node (default 4)
//!   SCALING_FLOOR_EVENTS_PER_SEC  exit 1 if any size's median falls below
//!   SCALING_ALLREDUCE_RANKS     comma list of rank counts (default 8,64,256,1024)
//!   SCALING_ALLREDUCE_FLOOR_EVENTS_PER_SEC  exit 1 if any rank count's
//!                               median falls below
//!   SCALING_ALLREDUCE_MAX_WALL_S  exit 1 if any rank count's median wall
//!                               time exceeds this (the 1k-rank gate)
//!   SCALING_COLLECTIVE_ROWS     comma list of alg:ranks rows for the other
//!                               collectives (default bcast:256,alltoall:64)
//!   SCALING_OUT                 write the JSON table to this path
//!
//! Run with: `cargo bench -p bench --features bench-harness --bench scaling`

use std::time::Instant;

use freq::{Governor, UncorePolicy};
use mpisim::collective::{self, Algorithm};
use mpisim::Cluster;
use simcore::{telemetry, Engine, Event, FlowSpec, Pcg32, SimTime, TimerId};
use topology::fabric::FabricPreset;
use topology::{tiny2x2, BindingPolicy, Placement};

/// Tag namespaces: flow tags are bare node indices.
const TAG_POLL: u64 = 1 << 32;
const TAG_WATCHDOG: u64 = 1 << 33;

/// Poll cadence per node (10 µs of simulated time).
const POLL_PS: u64 = 10_000_000;
/// Watchdog horizon per poll (1 ms; usually cancelled long before firing).
const WATCHDOG_PS: u64 = 1_000_000_000;

struct RunResult {
    wall_s: f64,
    events: u64,
    flow_events: u64,
    sim_end: SimTime,
}

/// One full scenario at `nodes` nodes: every node pushes `rounds` transfers
/// across nic → rack → fabric → rack → nic while polling; runs to
/// quiescence and reports wall time plus event counts.
fn run_scenario(nodes: usize, rounds: u64) -> RunResult {
    let mut eng = Engine::new();
    let fabric = eng.add_resource("fabric", (nodes as f64 / 16.0).max(1.0) * 12.5e9);
    let n_racks = nodes.div_ceil(8);
    let racks: Vec<_> = (0..n_racks)
        .map(|r| eng.add_resource(format!("rack{}", r), 100e9))
        .collect();
    let nics: Vec<_> = (0..nodes)
        .map(|i| eng.add_resource(format!("nic{}", i), 12.5e9))
        .collect();

    let mut rng = Pcg32::new(nodes as u64, 0x5ca1_ab1e);
    let start_transfer = |eng: &mut Engine, rng: &mut Pcg32, node: usize| {
        let dst = (node + nodes / 2 + 1) % nodes;
        eng.start_flow(FlowSpec {
            path: vec![
                nics[node],
                racks[node / 8],
                fabric,
                racks[dst / 8],
                nics[dst],
            ],
            volume: 4e5 * (1.0 + rng.next_f64()),
            weight: 1.0,
            cap: None,
            tag: node as u64,
        });
    };

    let mut remaining: Vec<u64> = vec![rounds; nodes];
    let mut watchdog: Vec<Option<TimerId>> = vec![None; nodes];
    for (node, slot) in watchdog.iter_mut().enumerate() {
        start_transfer(&mut eng, &mut rng, node);
        // Staggered first poll so instants mix bursts with lone timers.
        let jitter = rng.below(1 + (POLL_PS / 2) as u32) as u64;
        eng.after(SimTime(POLL_PS + jitter), TAG_POLL + node as u64);
        *slot = Some(eng.after(SimTime(WATCHDOG_PS), TAG_WATCHDOG + node as u64));
    }

    let mut events = 0u64;
    let mut flow_events = 0u64;
    let wall = Instant::now();
    eng.run(|eng, event| {
        events += 1;
        match event {
            Event::Flow { tag, .. } => {
                flow_events += 1;
                let node = tag as usize;
                remaining[node] -= 1;
                if remaining[node] > 0 {
                    start_transfer(eng, &mut rng, node);
                } else if let Some(id) = watchdog[node].take() {
                    eng.cancel_timer(id);
                }
            }
            Event::Timer { tag } if tag >= TAG_WATCHDOG => {
                // A watchdog survived a full horizon (heavy contention);
                // the poll path re-arms it.
                watchdog[(tag - TAG_WATCHDOG) as usize] = None;
            }
            Event::Timer { tag } => {
                let node = (tag - TAG_POLL) as usize;
                if remaining[node] > 0 {
                    // Re-arm: cancel the old watchdog (tombstone) and push
                    // both timers out — the wheel's churn hot path.
                    if let Some(id) = watchdog[node].take() {
                        eng.cancel_timer(id);
                    }
                    watchdog[node] =
                        Some(eng.after(SimTime(WATCHDOG_PS), TAG_WATCHDOG + node as u64));
                    eng.after(SimTime(POLL_PS), TAG_POLL + node as u64);
                }
            }
        }
    });
    RunResult {
        wall_s: wall.elapsed().as_secs_f64(),
        events,
        flow_events,
        sim_end: eng.now(),
    }
}

/// Ring-allreduce payload: 256 KiB, the collective-contention experiment's
/// eager-path size (per-chunk size shrinks with the rank count).
const ALLREDUCE_PAYLOAD: usize = 256 << 10;

/// One collective across `ranks` tiny2x2 nodes on the switch fabric — the
/// full mpisim/netsim/fabric stack, not the bare engine. Events come from
/// the engine's telemetry counter; `flow_events` reports the schedule's
/// point-to-point message count. Schedules come from the verified cache,
/// so repetitions measure the simulation, not schedule compilation.
fn run_collective(alg: Algorithm, ranks: usize, payload: usize) -> RunResult {
    let sched = collective::cached(alg, ranks, payload);
    let messages = sched.total_messages() as u64;
    telemetry::install();
    let spec = tiny2x2();
    let mut c = Cluster::with_fabric(
        &spec,
        FabricPreset::Switch.spec(ranks).build_for(ranks),
        Governor::Userspace(spec.base_freq),
        UncorePolicy::Fixed(spec.uncore_range.1),
        Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::NearNic,
        },
    );
    let wall = Instant::now();
    let elapsed = collective::run(&mut c, &sched, 100, 0x8000).expect("allreduce completes");
    let wall_s = wall.elapsed().as_secs_f64();
    drop(c);
    let j = telemetry::take().expect("recorder installed");
    RunResult {
        wall_s,
        events: j.counters["engine.events"],
        flow_events: messages,
        sim_end: elapsed,
    }
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let sizes: Vec<usize> = std::env::var("SCALING_NODES")
        .unwrap_or_else(|_| "64,256,1024".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let reps = env_u64("SCALING_REPS", 5) as usize;
    let rounds = env_u64("SCALING_ROUNDS", 4);
    let floor = std::env::var("SCALING_FLOOR_EVENTS_PER_SEC")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());

    println!(
        "engine scaling: {} reps x {} rounds, sizes {:?}",
        reps, rounds, sizes
    );
    println!(
        "{:>6} {:>10} {:>8} {:>12} {:>12} {:>8}",
        "nodes", "events", "wall_s", "events/s", "flows/s", "spread"
    );

    let mut out = String::from("{\n");
    out.push_str(
        "  \"benchmark\": \"engine scaling: events/sec and flows/sec vs synthetic node count\",\n",
    );
    out.push_str(&format!(
        "  \"config\": {{ \"reps\": {}, \"rounds\": {}, \"poll_ps\": {}, \"watchdog_ps\": {} }},\n",
        reps, rounds, POLL_PS, WATCHDOG_PS
    ));
    out.push_str("  \"sizes\": [\n");

    let mut failed = false;
    for (si, &nodes) in sizes.iter().enumerate() {
        let runs: Vec<RunResult> = (0..reps).map(|_| run_scenario(nodes, rounds)).collect();
        let mut ev_rates: Vec<f64> = runs
            .iter()
            .map(|r| r.events as f64 / r.wall_s.max(1e-9))
            .collect();
        ev_rates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut fl_rates: Vec<f64> = runs
            .iter()
            .map(|r| r.flow_events as f64 / r.wall_s.max(1e-9))
            .collect();
        fl_rates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let med_ev = median(&ev_rates);
        let med_fl = median(&fl_rates);
        let spread_pct =
            100.0 * (ev_rates[ev_rates.len() - 1] - ev_rates[0]) / med_ev.max(1e-9);

        println!(
            "{:>6} {:>10} {:>8.3} {:>12.0} {:>12.0} {:>7.1}%",
            nodes, runs[0].events, runs[0].wall_s, med_ev, med_fl, spread_pct
        );

        let rep_json: Vec<String> = runs
            .iter()
            .map(|r| {
                format!(
                    "{{ \"wall_s\": {:.6}, \"events\": {}, \"flow_events\": {}, \"sim_end_s\": {:.6} }}",
                    r.wall_s,
                    r.events,
                    r.flow_events,
                    r.sim_end.0 as f64 * 1e-12
                )
            })
            .collect();
        out.push_str(&format!(
            "    {{ \"nodes\": {}, \"median_events_per_s\": {:.0}, \"median_flows_per_s\": {:.0}, \"spread_pct\": {:.1}, \"reps\": [{}] }}{}\n",
            nodes,
            med_ev,
            med_fl,
            spread_pct,
            rep_json.join(", "),
            if si + 1 == sizes.len() { "" } else { "," }
        ));

        if let Some(f) = floor {
            if med_ev < f {
                eprintln!(
                    "FAIL: {} nodes: median {:.0} events/s below floor {:.0}",
                    nodes, med_ev, f
                );
                failed = true;
            }
        }
    }
    out.push_str("  ],\n");

    // Full-stack column: ring allreduce over the switch fabric.
    let ranks: Vec<usize> = std::env::var("SCALING_ALLREDUCE_RANKS")
        .unwrap_or_else(|_| "8,64,256,1024".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let ar_floor = std::env::var("SCALING_ALLREDUCE_FLOOR_EVENTS_PER_SEC")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    let ar_max_wall = std::env::var("SCALING_ALLREDUCE_MAX_WALL_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());

    println!(
        "ring allreduce scaling: {} reps x {} B payload, ranks {:?}",
        reps, ALLREDUCE_PAYLOAD, ranks
    );
    println!(
        "{:>6} {:>10} {:>8} {:>12} {:>10} {:>8}",
        "ranks", "events", "wall_s", "events/s", "messages", "spread"
    );
    out.push_str("  \"allreduce\": [\n");
    for (ri, &n) in ranks.iter().enumerate() {
        let runs: Vec<RunResult> = (0..reps)
            .map(|_| run_collective(Algorithm::RingAllreduce, n, ALLREDUCE_PAYLOAD))
            .collect();
        let mut ev_rates: Vec<f64> = runs
            .iter()
            .map(|r| r.events as f64 / r.wall_s.max(1e-9))
            .collect();
        ev_rates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let med_ev = median(&ev_rates);
        let spread_pct =
            100.0 * (ev_rates[ev_rates.len() - 1] - ev_rates[0]) / med_ev.max(1e-9);

        println!(
            "{:>6} {:>10} {:>8.3} {:>12.0} {:>10} {:>7.1}%",
            n, runs[0].events, runs[0].wall_s, med_ev, runs[0].flow_events, spread_pct
        );

        let rep_json: Vec<String> = runs
            .iter()
            .map(|r| {
                format!(
                    "{{ \"wall_s\": {:.6}, \"events\": {}, \"collective_us\": {:.3} }}",
                    r.wall_s,
                    r.events,
                    r.sim_end.0 as f64 * 1e-6
                )
            })
            .collect();
        out.push_str(&format!(
            "    {{ \"ranks\": {}, \"payload\": {}, \"messages\": {}, \"median_events_per_s\": {:.0}, \"spread_pct\": {:.1}, \"reps\": [{}] }}{}\n",
            n,
            ALLREDUCE_PAYLOAD,
            runs[0].flow_events,
            med_ev,
            spread_pct,
            rep_json.join(", "),
            if ri + 1 == ranks.len() { "" } else { "," }
        ));

        if let Some(f) = ar_floor {
            if med_ev < f {
                eprintln!(
                    "FAIL: {} ranks: median {:.0} allreduce events/s below floor {:.0}",
                    n, med_ev, f
                );
                failed = true;
            }
        }
        if let Some(limit) = ar_max_wall {
            let mut walls: Vec<f64> = runs.iter().map(|r| r.wall_s).collect();
            walls.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let med_wall = median(&walls);
            if med_wall > limit {
                eprintln!(
                    "FAIL: {} ranks: median allreduce wall {:.1} s over limit {:.1} s",
                    n, med_wall, limit
                );
                failed = true;
            }
        }
    }
    out.push_str("  ],\n");

    // Other collective shapes: binomial bcast and pairwise alltoall rows.
    // Payloads match the collective_contention experiment (32 KiB tree-ish
    // control payloads, 128 KiB per-pair alltoall).
    let rows: Vec<(Algorithm, &str, usize, usize)> = std::env::var("SCALING_COLLECTIVE_ROWS")
        .unwrap_or_else(|_| "bcast:256,alltoall:64".into())
        .split(',')
        .filter_map(|row| {
            let (alg, ranks) = row.trim().split_once(':')?;
            let ranks: usize = ranks.parse().ok()?;
            match alg {
                "bcast" => Some((Algorithm::BinomialBcast, "bcast", ranks, 32 << 10)),
                "alltoall" => Some((Algorithm::PairwiseAlltoall, "alltoall", ranks, 128 << 10)),
                _ => None,
            }
        })
        .collect();

    println!("collective scaling: {} reps, rows {:?}", reps, rows.iter().map(|r| (r.1, r.2)).collect::<Vec<_>>());
    println!(
        "{:>10} {:>6} {:>10} {:>8} {:>12} {:>10} {:>8}",
        "alg", "ranks", "events", "wall_s", "events/s", "messages", "spread"
    );
    out.push_str("  \"collectives\": [\n");
    for (ri, &(alg, name, n, payload)) in rows.iter().enumerate() {
        let runs: Vec<RunResult> = (0..reps).map(|_| run_collective(alg, n, payload)).collect();
        let mut ev_rates: Vec<f64> = runs
            .iter()
            .map(|r| r.events as f64 / r.wall_s.max(1e-9))
            .collect();
        ev_rates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let med_ev = median(&ev_rates);
        let spread_pct =
            100.0 * (ev_rates[ev_rates.len() - 1] - ev_rates[0]) / med_ev.max(1e-9);

        println!(
            "{:>10} {:>6} {:>10} {:>8.3} {:>12.0} {:>10} {:>7.1}%",
            name, n, runs[0].events, runs[0].wall_s, med_ev, runs[0].flow_events, spread_pct
        );

        let rep_json: Vec<String> = runs
            .iter()
            .map(|r| {
                format!(
                    "{{ \"wall_s\": {:.6}, \"events\": {}, \"collective_us\": {:.3} }}",
                    r.wall_s,
                    r.events,
                    r.sim_end.0 as f64 * 1e-6
                )
            })
            .collect();
        out.push_str(&format!(
            "    {{ \"alg\": \"{}\", \"ranks\": {}, \"payload\": {}, \"messages\": {}, \"median_events_per_s\": {:.0}, \"spread_pct\": {:.1}, \"reps\": [{}] }}{}\n",
            name,
            n,
            payload,
            runs[0].flow_events,
            med_ev,
            spread_pct,
            rep_json.join(", "),
            if ri + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    if let Ok(path) = std::env::var("SCALING_OUT") {
        std::fs::write(&path, &out).expect("write SCALING_OUT");
        println!("wrote {}", path);
    }
    if failed {
        std::process::exit(1);
    }
}
