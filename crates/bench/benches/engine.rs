//! Criterion micro-benchmarks of the simulator hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use simcore::{Engine, FlowSpec, FluidNet};

/// Max-min reallocation with a realistic flow population (36 cores + NIC
/// over henri's resource graph shape).
fn bench_maxmin(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxmin");
    for &flows in &[8usize, 40, 128] {
        group.bench_function(format!("reallocate_{}_flows", flows), |b| {
            b.iter_batched(
                || {
                    let mut net = FluidNet::new();
                    let resources: Vec<_> = (0..12)
                        .map(|i| net.add_resource(format!("r{}", i), 45e9))
                        .collect();
                    for i in 0..flows {
                        net.start_flow(FlowSpec {
                            path: vec![
                                resources[i % 12],
                                resources[(i * 5 + 1) % 12],
                            ],
                            volume: 1e9,
                            weight: 1.0,
                            cap: if i % 3 == 0 { Some(12e9) } else { None },
                            tag: i as u64,
                        });
                    }
                    net
                },
                |mut net| {
                    net.reallocate();
                    net
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Full event-loop throughput: many short flows through one engine.
fn bench_engine_events(c: &mut Criterion) {
    c.bench_function("engine_1000_flow_events", |b| {
        b.iter_batched(
            || {
                let mut e = Engine::new();
                let r = e.add_resource("bus", 1e9);
                for i in 0..1000u64 {
                    e.start_flow(FlowSpec {
                        path: vec![r],
                        volume: 1e3 * (i + 1) as f64,
                        weight: 1.0,
                        cap: None,
                        tag: i,
                    });
                }
                e
            },
            |mut e| {
                let mut n = 0;
                while e.next().is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
}

/// Simulated ping-pong rate (events per wall second).
fn bench_pingpong(c: &mut Criterion) {
    use freq::{Governor, UncorePolicy};
    use mpisim::pingpong::{self, PingPongConfig};
    use mpisim::Cluster;
    use topology::{henri, Placement};

    c.bench_function("sim_pingpong_20_reps", |b| {
        b.iter_batched(
            || {
                Cluster::new(
                    &henri(),
                    Governor::Userspace(2.3),
                    UncorePolicy::Fixed(2.4),
                    Placement::fig4_default(),
                )
            },
            |mut cluster| pingpong::run(&mut cluster, PingPongConfig::latency(20)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_maxmin, bench_engine_events, bench_pingpong
}
criterion_main!(benches);
