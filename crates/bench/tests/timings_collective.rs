//! `repro --timings` collective-path counters: the ISSUE 9 fast paths
//! (indexed matching, route interning, schedule memoization, waterfill)
//! must be observable from the timing export — both as a text section and
//! as a stable `"collective"` JSON object — so a regression that silently
//! falls back to a reference path shows up in CI dashboards.
//!
//! Drives the actual binary (`CARGO_BIN_EXE_repro`) so the test pins what
//! tooling really parses, not an internal helper.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// Extract `"key":value` from a flat JSON object fragment.
fn field(json: &str, key: &str) -> u64 {
    let pat = format!("\"{}\":", key);
    let start = json.find(&pat).unwrap_or_else(|| panic!("missing {key}: {json}")) + pat.len();
    json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key}"))
}

#[test]
fn timings_export_reports_collective_fast_paths() {
    let base = std::env::temp_dir().join(format!("repro-timings-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create dir");
    let timings = base.join("timings.json").to_str().unwrap().to_string();
    let trace = base.join("trace.json").to_str().unwrap().to_string();

    let out = repro()
        .args([
            "--quick", "--only", "collective_dvfs",
            "--trace", &trace,
            "--timings", &timings,
        ])
        .output()
        .expect("spawn repro");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);

    // Text section with every fast path engaged.
    assert!(stdout.contains("== collective path =="), "missing section:\n{stdout}");
    assert!(stdout.contains("matching:"), "missing match digest:\n{stdout}");
    assert!(stdout.contains("interned-path hit(s)"), "missing route digest:\n{stdout}");
    assert!(stdout.contains("schedule cache:"), "missing cache digest:\n{stdout}");
    assert!(stdout.contains("waterfill:"), "missing waterfill digest:\n{stdout}");

    // JSON object: stable key set, every counter engaged on this campaign.
    let t = std::fs::read_to_string(&timings).expect("timings export");
    let obj_at = t.find("\"collective\":{").expect("collective object present");
    let obj = &t[obj_at..t[obj_at..].find('}').map(|e| obj_at + e + 1).unwrap()];
    for key in [
        "match_probes",
        "match_bin_hits",
        "route_intern_hits",
        "schedule_cache_hits",
        "schedule_cache_misses",
        "waterfill_solves",
    ] {
        assert!(obj.contains(&format!("\"{key}\":")), "schema lost {key}: {obj}");
    }
    let probes = field(obj, "match_probes");
    let hits = field(obj, "match_bin_hits");
    assert!(hits > 0 && probes >= hits, "indexed matching engaged: {obj}");
    assert!(field(obj, "route_intern_hits") > 0, "route interning engaged: {obj}");
    assert!(field(obj, "schedule_cache_misses") > 0, "schedules were built: {obj}");
    assert!(
        field(obj, "schedule_cache_hits") > 0,
        "memoization re-served a schedule across sweep points: {obj}"
    );
    assert!(field(obj, "waterfill_solves") > 0, "waterfill fast path engaged: {obj}");

    // Without `--trace` the journal counters are absent (zero) but the
    // process-global schedule-cache stats must still be exported.
    let bare = base.join("bare.json").to_str().unwrap().to_string();
    let out = repro()
        .args(["--quick", "--only", "collective_dvfs", "--timings", &bare])
        .output()
        .expect("spawn repro (no trace)");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let t = std::fs::read_to_string(&bare).expect("bare timings export");
    assert!(t.contains("\"collective\":{"), "collective object present without --trace");
    assert!(t.contains("\"match_probes\":0"), "journal counters default to 0: {t}");
    let obj_at = t.find("\"collective\":{").unwrap();
    let obj = &t[obj_at..t[obj_at..].find('}').map(|e| obj_at + e + 1).unwrap()];
    assert!(field(obj, "schedule_cache_misses") > 0, "cache stats survive without --trace: {obj}");

    let _ = std::fs::remove_dir_all(&base);
}
