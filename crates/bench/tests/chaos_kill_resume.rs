//! Chaos integration test: SIGKILL a real `repro` campaign mid-flight,
//! resume it from the result store, and demand exports byte-identical to
//! an uninterrupted run — then damage the store and demand the corruption
//! is detected and recomputed, never served.
//!
//! This drives the actual binary (`CARGO_BIN_EXE_repro`) as a subprocess:
//! the kill is a real SIGKILL (no unwinding, no destructors, no atexit),
//! exactly the failure an OOM-kill or preemption delivers.

use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use interference::store::chaos::{corrupt_file, Fault};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// Count persisted point entries in a store directory (0 while it does
/// not exist yet).
fn res_entries(dir: &Path) -> Vec<std::path::PathBuf> {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "res"))
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn sigkill_mid_campaign_then_resume_is_byte_identical() {
    let base = std::env::temp_dir().join(format!("repro-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create chaos dir");
    let path = |name: &str| base.join(name).to_str().unwrap().to_string();

    // Reference: an uninterrupted run, no store involved.
    let clean_json = path("clean.json");
    let status = repro()
        .args(["--quick", "--only", "fig4", "--json", &clean_json])
        .stdout(Stdio::null())
        .status()
        .expect("spawn clean run");
    assert!(status.success(), "clean run failed: {}", status);
    let clean = std::fs::read(&clean_json).expect("clean export exists");

    // Victim: same campaign, slowed to ~250 ms per point so the kill
    // lands mid-flight, persisting to a store.
    let store = base.join("store");
    let killed_json = path("killed.json");
    let mut child = repro()
        .args(["--quick", "--only", "fig4", "--store", &path("store"), "--json", &killed_json])
        .env("REPRO_POINT_DELAY_MS", "250")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim run");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let n = res_entries(&store).len();
        if n >= 2 {
            break;
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("campaign finished before the kill ({}; {} entries)", status, n);
        }
        assert!(Instant::now() < deadline, "no points persisted within 60 s");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();
    let persisted = res_entries(&store).len();
    assert!(persisted >= 2, "kill landed after some points persisted");
    assert!(
        !Path::new(&killed_json).exists(),
        "an interrupted run must not leave a (truncated) export behind"
    );

    // Resume: completed points restore from the store, the rest recompute;
    // the export must be byte-identical to the uninterrupted run.
    let resumed_json = path("resumed.json");
    let out = repro()
        .args([
            "--quick", "--only", "fig4",
            "--store", &path("store"), "--resume",
            "--json", &resumed_json,
        ])
        .output()
        .expect("spawn resume run");
    assert!(out.status.success(), "resume failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("restored (hit)"),
        "resume did not report restored points:\n{}",
        stdout
    );
    let resumed = std::fs::read(&resumed_json).expect("resumed export exists");
    assert_eq!(clean, resumed, "resumed export differs from the clean run");

    // Corrupt a surviving entry: the next resume must detect it
    // (quarantine), recompute, and still export identical bytes.
    let victims = res_entries(&store);
    corrupt_file(&victims[0], Fault::BitFlip { offset: 33, bit: 5 });
    let rerun_json = path("rerun.json");
    let out = repro()
        .args([
            "--quick", "--only", "fig4",
            "--store", &path("store"), "--resume",
            "--json", &rerun_json,
        ])
        .output()
        .expect("spawn corrupted-resume run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("1 quarantined"),
        "corruption was not quarantined:\n{}",
        stdout
    );
    let rerun = std::fs::read(&rerun_json).expect("rerun export exists");
    assert_eq!(clean, rerun, "export diverged after store corruption");
    let quarantined = std::fs::read_dir(&store)
        .expect("read store")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "quarantined"))
        .count();
    assert_eq!(quarantined, 1, "damaged entry kept for post-mortem");

    let _ = std::fs::remove_dir_all(&base);
}

/// A campaign with a point deadline and a partial outcome: `repro` must
/// exit 3 without `--allow-partial` and 0 with it, and the timings export
/// must record the timeout. The faulted_pingpong extension experiment is
/// timing-robust; an absurdly small deadline times every point out.
#[test]
fn partial_campaign_exit_code_policy() {
    let base = std::env::temp_dir().join(format!("repro-partial-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("create dir");
    let timings = base.join("timings.json").to_str().unwrap().to_string();

    let out = repro()
        .args(["--quick", "--only", "fig9", "--timeout", "0.000001"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(3), "partial without --allow-partial exits 3");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--allow-partial"));

    let out = repro()
        .args([
            "--quick", "--only", "fig9",
            "--timeout", "0.000001",
            "--allow-partial",
            "--timings", &timings,
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0), "--allow-partial exits 0");
    let t = std::fs::read_to_string(&timings).expect("timings export");
    assert!(t.contains("\"partial\":true"), "timings record the partial flag: {}", t);
    assert!(t.contains("\"timed_out_points\":"), "timings record timeouts: {}", t);

    let _ = std::fs::remove_dir_all(&base);
}
