//! Content-addressed on-disk result store.
//!
//! Campaigns are exactly the runs that die to OOM-kills and preemption:
//! long, repeated, unattended. The store makes their work durable — each
//! completed sweep point is persisted as one self-verifying entry, and a
//! restarted campaign (`repro --store DIR --resume`) skips the points it
//! finds instead of recomputing them. Byte-identical determinism (the
//! golden-trace guarantee) is what makes this safe: a restored value is
//! bit-for-bit the value a fresh run would have produced.
//!
//! **Entry format** (version [`ENTRY_VERSION`]):
//!
//! ```text
//! magic "IFRS" | version u32 LE | key_len u32 LE | key bytes
//! | payload_len u64 LE | payload bytes | fnv1a64 checksum (LE, over all
//!   preceding bytes)
//! ```
//!
//! The file name is a 128-bit content address of the key (two independent
//! FNV-1a streams), so lookups are one `open`; the full key is stored and
//! re-verified inside the entry, so even an address collision can never
//! serve the wrong value.
//!
//! **Crash consistency.** Writes go through [`atomic_write`]: the entry is
//! written to a unique temp file in the same directory, flushed, then
//! renamed over the final name. A SIGKILL mid-write leaves at worst a temp
//! file (ignored and reaped on the next open) — never a half-written
//! entry under a live name.
//!
//! **Corruption policy.** A torn, truncated, bit-flipped or
//! version-skewed entry is *never* silently served: [`ResultStore::get`]
//! verifies magic, version, length framing, key and checksum, and on any
//! mismatch moves the file to a `*.quarantined` sibling (kept for
//! post-mortem) and reports a miss, so the caller recomputes and rewrites
//! it. The [`chaos`] module provides the fault injector used by the
//! corruption test-suite.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Entry format version. Bump on any layout change: old entries are then
/// quarantined and recomputed instead of being misparsed.
pub const ENTRY_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"IFRS";
/// Extension of live entries.
const ENTRY_EXT: &str = "res";
/// Extension quarantined (corrupt) entries are renamed to.
const QUARANTINE_EXT: &str = "quarantined";

/// FNV-1a over `bytes`, seeded with the standard offset basis XOR `salt`
/// (salt 0 is plain FNV-1a; a second salt yields an independent stream for
/// the 128-bit content address).
fn fnv1a64(bytes: &[u8], salt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Write `bytes` to `path` atomically: unique temp file in the target's
/// directory, flush + sync, rename over the final name. Readers (and a
/// SIGKILL at any instant) see either the old content or the new — never a
/// truncated hybrid.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(
        ".{}.tmp-{}-{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    let res = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    })();
    if res.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    res
}

/// Outcome of a [`ResultStore::get`].
#[derive(Debug, PartialEq, Eq)]
pub enum Lookup {
    /// A verified entry for the key; the payload is exactly what was put.
    Hit(Vec<u8>),
    /// No entry under the key's address.
    Miss,
    /// An entry existed but failed verification (torn write, bit flip,
    /// truncation, version skew). It has been moved aside to the returned
    /// quarantine path; the caller must recompute.
    Quarantined(PathBuf),
}

impl Lookup {
    /// The payload when the lookup hit.
    pub fn hit(self) -> Option<Vec<u8>> {
        match self {
            Lookup::Hit(p) => Some(p),
            _ => None,
        }
    }
}

/// Counters accumulated over the store's lifetime (this process only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that returned a verified payload.
    pub hits: u64,
    /// Lookups with no entry present.
    pub misses: u64,
    /// Lookups that found a corrupt entry and quarantined it.
    pub quarantined: u64,
    /// Entries persisted by [`ResultStore::put`].
    pub persisted: u64,
}

/// A content-addressed store of verified byte payloads in one directory.
/// All methods take `&self`; the store is shared freely across worker
/// threads (writes are independent files, stats are atomics).
pub struct ResultStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    quarantined: AtomicU64,
    persisted: AtomicU64,
}

impl ResultStore {
    /// Open (creating if needed) the store directory, reaping any orphaned
    /// temp files a killed writer left behind.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().starts_with('.') {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(ResultStore {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `key` (128-bit content address of the key).
    pub fn entry_path(&self, key: &str) -> PathBuf {
        let a = fnv1a64(key.as_bytes(), 0);
        let b = fnv1a64(key.as_bytes(), 0x9E37_79B9_7F4A_7C15);
        self.dir.join(format!("{:016x}{:016x}.{}", a, b, ENTRY_EXT))
    }

    /// Persist `payload` under `key` (atomic; replaces any previous entry).
    pub fn put(&self, key: &str, payload: &[u8]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(4 + 4 + 4 + key.len() + 8 + payload.len() + 8);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&ENTRY_VERSION.to_le_bytes());
        buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
        buf.extend_from_slice(key.as_bytes());
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(payload);
        let sum = fnv1a64(&buf, 0);
        buf.extend_from_slice(&sum.to_le_bytes());
        atomic_write(&self.entry_path(key), &buf)?;
        self.persisted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Look `key` up, verifying the entry end to end. Corrupt entries are
    /// quarantined (renamed to `*.quarantined`) and reported as such — the
    /// store never serves bytes that fail verification.
    pub fn get(&self, key: &str) -> Lookup {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Lookup::Miss;
            }
            // Unreadable for another reason (permissions, I/O error):
            // treat like corruption — quarantine if possible, recompute.
            Err(_) => return self.quarantine(&path),
        };
        match parse_entry(&bytes, key) {
            Ok(Some(payload)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit(payload)
            }
            // A checksum-valid entry for a *different* key: a genuine
            // 128-bit address collision. Not corruption — leave the other
            // key's entry alone and report a miss.
            Ok(None) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss
            }
            Err(_) => self.quarantine(&path),
        }
    }

    fn quarantine(&self, path: &Path) -> Lookup {
        let q = path.with_extension(QUARANTINE_EXT);
        let _ = fs::rename(path, &q);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        Lookup::Quarantined(q)
    }

    /// Number of live entries currently on disk.
    pub fn entries(&self) -> io::Result<usize> {
        let mut n = 0;
        for entry in fs::read_dir(&self.dir)? {
            let p = entry?.path();
            if p.extension().and_then(|e| e.to_str()) == Some(ENTRY_EXT) {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Lifetime counters (this process).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            persisted: self.persisted.load(Ordering::Relaxed),
        }
    }
}

/// Parse and verify one entry. `Ok(Some(payload))` on a verified entry for
/// `key`, `Ok(None)` on a verified entry for a different key (address
/// collision), `Err` on anything malformed.
fn parse_entry(bytes: &[u8], key: &str) -> Result<Option<Vec<u8>>, &'static str> {
    let take = |off: usize, len: usize| bytes.get(off..off + len).ok_or("truncated");
    if take(0, 4)? != MAGIC {
        return Err("bad magic");
    }
    let version = u32::from_le_bytes(take(4, 4)?.try_into().expect("4 bytes"));
    if version != ENTRY_VERSION {
        return Err("version skew");
    }
    let key_len = u32::from_le_bytes(take(8, 4)?.try_into().expect("4 bytes")) as usize;
    let stored_key = take(12, key_len)?;
    let pl_off = 12 + key_len;
    let payload_len =
        u64::from_le_bytes(take(pl_off, 8)?.try_into().expect("8 bytes")) as usize;
    let payload = take(pl_off + 8, payload_len)?;
    let sum_off = pl_off + 8 + payload_len;
    let sum = u64::from_le_bytes(take(sum_off, 8)?.try_into().expect("8 bytes"));
    if sum_off + 8 != bytes.len() {
        return Err("trailing bytes");
    }
    if fnv1a64(&bytes[..sum_off], 0) != sum {
        return Err("checksum mismatch");
    }
    if stored_key != key.as_bytes() {
        return Ok(None);
    }
    Ok(Some(payload.to_vec()))
}

/// Store fault injector for the chaos test-suite: deterministic torn
/// writes, bit flips and truncations applied to live entry files. Test
/// harness only — nothing in the production paths calls this.
pub mod chaos {
    use super::*;

    /// Ways an entry file can be damaged.
    #[derive(Clone, Copy, Debug)]
    pub enum Fault {
        /// Keep only the first `keep` bytes (a torn write that lost its
        /// tail, or a crashed non-atomic writer).
        Truncate(usize),
        /// Flip one bit: byte `offset % len`, bit `bit % 8`.
        BitFlip {
            /// Byte position (taken modulo the file length).
            offset: usize,
            /// Bit within the byte (taken modulo 8).
            bit: u8,
        },
        /// Keep a prefix and replace the tail with garbage of the original
        /// length (a torn write across a sector boundary).
        TornTail {
            /// Bytes of authentic prefix to keep.
            keep: usize,
        },
        /// Replace the whole file with `len` zero bytes.
        Zeroed {
            /// Length of the zeroed replacement.
            len: usize,
        },
    }

    /// Apply `fault` to the entry for `key`, returning the entry path.
    /// Panics if the entry does not exist — chaos tests corrupt entries
    /// they just created.
    pub fn corrupt_entry(store: &ResultStore, key: &str, fault: Fault) -> PathBuf {
        let path = store.entry_path(key);
        corrupt_file(&path, fault);
        path
    }

    /// Apply `fault` to an arbitrary file (non-atomically, on purpose).
    pub fn corrupt_file(path: &Path, fault: Fault) {
        let mut bytes = fs::read(path).expect("chaos target must exist");
        match fault {
            Fault::Truncate(keep) => bytes.truncate(keep),
            Fault::BitFlip { offset, bit } => {
                assert!(!bytes.is_empty(), "cannot flip a bit in an empty file");
                let i = offset % bytes.len();
                bytes[i] ^= 1 << (bit % 8);
            }
            Fault::TornTail { keep } => {
                let keep = keep.min(bytes.len());
                let tail = bytes.len() - keep;
                bytes.truncate(keep);
                // Deterministic garbage, clearly not the original tail.
                bytes.extend((0..tail).map(|i| (i as u8).wrapping_mul(37) ^ 0xA5));
            }
            Fault::Zeroed { len } => {
                bytes.clear();
                bytes.resize(len, 0);
            }
        }
        fs::write(path, &bytes).expect("chaos write");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "ifstore-test-{}-{}",
            tag,
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_hit_and_miss() {
        let store = ResultStore::open(tmpdir("roundtrip")).unwrap();
        assert_eq!(store.get("absent"), Lookup::Miss);
        store.put("k1", b"payload-one").unwrap();
        store.put("k2", &[]).unwrap();
        assert_eq!(store.get("k1"), Lookup::Hit(b"payload-one".to_vec()));
        assert_eq!(store.get("k2"), Lookup::Hit(Vec::new()));
        assert_eq!(store.entries().unwrap(), 2);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.quarantined, s.persisted), (2, 1, 0, 2));
    }

    #[test]
    fn put_replaces_previous_entry() {
        let store = ResultStore::open(tmpdir("replace")).unwrap();
        store.put("k", b"old").unwrap();
        store.put("k", b"new").unwrap();
        assert_eq!(store.get("k"), Lookup::Hit(b"new".to_vec()));
    }

    #[test]
    fn distinct_keys_have_distinct_addresses() {
        let store = ResultStore::open(tmpdir("addr")).unwrap();
        let mut seen = std::collections::HashSet::new();
        for i in 0..512 {
            assert!(seen.insert(store.entry_path(&format!("point/{}", i))));
        }
    }

    #[test]
    fn corrupt_entries_quarantined_never_served() {
        use chaos::Fault;
        let store = ResultStore::open(tmpdir("corrupt")).unwrap();
        let faults = [
            Fault::Truncate(0),
            Fault::Truncate(5),
            Fault::Truncate(20),
            Fault::BitFlip { offset: 0, bit: 0 },     // magic
            Fault::BitFlip { offset: 5, bit: 3 },     // version
            Fault::BitFlip { offset: 9, bit: 1 },     // key_len
            Fault::BitFlip { offset: 14, bit: 7 },    // key bytes
            Fault::BitFlip { offset: 1usize << 20, bit: 2 }, // wraps into payload/sum
            Fault::TornTail { keep: 16 },
            Fault::Zeroed { len: 64 },
            Fault::Zeroed { len: 0 },
        ];
        for (i, &fault) in faults.iter().enumerate() {
            let key = format!("victim-{}", i);
            store.put(&key, b"precious bytes that must never be half-served").unwrap();
            chaos::corrupt_entry(&store, &key, fault);
            match store.get(&key) {
                Lookup::Quarantined(q) => {
                    assert!(q.exists(), "quarantined file kept for post-mortem");
                }
                other => panic!("fault {:?} was served as {:?}", fault, other),
            }
            // The live name is gone; a recompute re-populates it.
            assert_eq!(store.get(&key), Lookup::Miss);
            store.put(&key, b"recomputed").unwrap();
            assert_eq!(store.get(&key), Lookup::Hit(b"recomputed".to_vec()));
        }
        assert_eq!(store.stats().quarantined, faults.len() as u64);
    }

    #[test]
    fn version_skew_is_quarantined() {
        let store = ResultStore::open(tmpdir("version")).unwrap();
        store.put("k", b"v").unwrap();
        // Rewrite the entry with a bumped version and a *valid* checksum:
        // the version gate alone must reject it.
        let path = store.entry_path("k");
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 8);
        bytes[4..8].copy_from_slice(&(ENTRY_VERSION + 1).to_le_bytes());
        let sum = fnv1a64(&bytes, 0);
        bytes.extend_from_slice(&sum.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(store.get("k"), Lookup::Quarantined(_)));
    }

    #[test]
    fn orphaned_temp_files_are_reaped_on_open() {
        let dir = tmpdir("reap");
        fs::create_dir_all(&dir).unwrap();
        let orphan = dir.join(".deadbeef.res.tmp-1234-0");
        fs::write(&orphan, b"half a write").unwrap();
        let store = ResultStore::open(&dir).unwrap();
        assert!(!orphan.exists(), "orphan reaped");
        assert_eq!(store.entries().unwrap(), 0);
    }

    #[test]
    fn atomic_write_leaves_no_temp_on_success() {
        let dir = tmpdir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("out.json");
        atomic_write(&target, b"{}").unwrap();
        atomic_write(&target, b"{\"v\":2}").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"{\"v\":2}");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with('.'))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {:?}", leftovers);
    }

    #[test]
    fn concurrent_puts_and_gets_are_safe() {
        let store = std::sync::Arc::new(ResultStore::open(tmpdir("concurrent")).unwrap());
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = std::sync::Arc::clone(&store);
                s.spawn(move || {
                    for i in 0..32 {
                        let key = format!("t{}-{}", t, i);
                        store.put(&key, key.as_bytes()).unwrap();
                        assert_eq!(store.get(&key), Lookup::Hit(key.clone().into_bytes()));
                    }
                });
            }
        });
        assert_eq!(store.entries().unwrap(), 128);
    }
}
