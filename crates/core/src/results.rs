//! Machine-readable result export.
//!
//! Figures can be exported as CSV (see [`crate::report::FigureData::to_csv`])
//! or as JSON via [`figure_to_json`] for downstream plotting. The JSON
//! encoder is a ~60-line hand-rolled writer so the simulator keeps its
//! dependency-free core (no serde format crate needed for this fixed,
//! shallow schema).

use crate::report::FigureData;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 as JSON (finite → shortest float, non-finite → null).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{}", v)
    } else {
        "null".to_string()
    }
}

/// Serialize one figure to a JSON object:
///
/// ```json
/// { "id": "...", "title": "...", "xlabel": "...", "ylabel": "...",
///   "series": [ { "name": "...",
///                 "points": [ {"x":…, "median":…, "d1":…, "d9":…,
///                              "min":…, "max":…, "n":…} ] } ],
///   "notes": [...],
///   "checks": [ {"name": "...", "pass": true, "detail": "..."} ],
///   "runs": [ {"rep":…, "seed":…, "status":"ok|recovered|failed",
///              "error":null, "retries":…, "retrans_bytes":…,
///              "retry_wait_s":…} ] }
/// ```
pub fn figure_to_json(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"id\":\"{}\",\"title\":\"{}\",\"xlabel\":\"{}\",\"ylabel\":\"{}\",\"series\":[",
        esc(fig.id),
        esc(&fig.title),
        esc(fig.xlabel),
        esc(fig.ylabel)
    );
    for (si, s) in fig.series.iter().enumerate() {
        if si > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{}\",\"points\":[", esc(&s.name));
        for (pi, p) in s.points.iter().enumerate() {
            if pi > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"x\":{},\"median\":{},\"d1\":{},\"d9\":{},\"min\":{},\"max\":{},\"n\":{}}}",
                num(p.x),
                num(p.y.median),
                num(p.y.d1),
                num(p.y.d9),
                num(p.y.min),
                num(p.y.max),
                p.y.n
            );
        }
        out.push_str("]}");
    }
    out.push_str("],\"notes\":[");
    for (ni, n) in fig.notes.iter().enumerate() {
        if ni > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", esc(n));
    }
    out.push_str("],\"checks\":[");
    for (ci, c) in fig.checks.iter().enumerate() {
        if ci > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"pass\":{},\"detail\":\"{}\"}}",
            esc(&c.name),
            c.pass,
            esc(&c.detail)
        );
    }
    out.push_str("],\"runs\":[");
    for (ri, r) in fig.runs.iter().enumerate() {
        if ri > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rep\":{},\"seed\":{},\"status\":\"{}\",\"error\":{},\
             \"retries\":{},\"retrans_bytes\":{},\"retry_wait_s\":{}}}",
            r.rep,
            r.seed,
            esc(r.status),
            match &r.error {
                Some(e) => format!("\"{}\"", esc(e)),
                None => "null".to_string(),
            },
            r.retries,
            r.retrans_bytes,
            num(r.retry_wait_s)
        );
    }
    out.push_str("]}");
    out
}

/// Serialize a set of figures to a JSON array.
pub fn figures_to_json(figs: &[FigureData]) -> String {
    let mut out = String::from("[");
    for (i, f) in figs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&figure_to_json(f));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Check;
    use simcore::Series;

    fn fig() -> FigureData {
        let mut s = Series::new("lat \"q\"");
        s.push(1.0, &[2.0, 3.0]);
        FigureData {
            id: "figT",
            title: "t\nx".into(),
            xlabel: "cores",
            ylabel: "us",
            series: vec![s],
            notes: vec!["a \"note\"".into()],
            checks: vec![Check::new("c", true, "d\\e")],
            runs: vec![crate::report::RunOutcome {
                rep: 0,
                seed: 0xABCD,
                status: "recovered",
                error: Some("transfer \"x\" failed".into()),
                retries: 3,
                retrans_bytes: 192,
                retry_wait_s: 1.5e-6,
            }],
        }
    }

    #[test]
    fn json_structure() {
        let j = figure_to_json(&fig());
        assert!(j.starts_with("{\"id\":\"figT\""));
        assert!(j.contains("\"series\":[{\"name\":\"lat \\\"q\\\"\""));
        assert!(j.contains("\"pass\":true"));
        assert!(j.contains("\"x\":1"));
        assert!(j.contains("\"runs\":[{\"rep\":0,\"seed\":43981,\"status\":\"recovered\""));
        assert!(j.contains("\"retries\":3"));
        assert!(j.contains("transfer \\\"x\\\" failed"));
        // Balanced braces/brackets.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(1.5), "1.5");
    }

    #[test]
    fn array_form() {
        let j = figures_to_json(&[fig(), fig()]);
        assert!(j.starts_with('['));
        assert!(j.ends_with(']'));
        assert_eq!(j.matches("\"id\":\"figT\"").count(), 2);
    }
}
