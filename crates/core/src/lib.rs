//! # interference — the ICPP'21 benchmark suite
//!
//! The paper's primary contribution, rebuilt on the simulated substrate:
//! a benchmark suite measuring **interferences between communications and
//! computations** when they run side by side.
//!
//! * [`protocol`] — the three-step measurement protocol of §2.1
//!   (computation alone → communication alone → both together), with
//!   median/decile statistics over seeded repetitions;
//! * [`experiments`] — one driver per figure/table of the paper
//!   (`fig1_frequency` … `fig10_usecases`, `table1`), each implementing
//!   the [`campaign::Experiment`] trait and returning
//!   [`report::FigureData`] with the simulated series, the paper's
//!   reference findings and automated qualitative checks;
//! * [`campaign`] — the declarative campaign engine: sweep plans,
//!   deterministic per-point seeding, a worker pool, per-point
//!   crash-proofing, timeouts and baseline memoization;
//! * [`store`] — the content-addressed on-disk result store behind
//!   `repro --store/--resume`: atomic writes, checksummed entries,
//!   corruption quarantine;
//! * [`report`] — ASCII rendering and CSV export of figure data;
//! * [`paper`] — the reference values extracted from the paper's text.
//!
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![warn(missing_docs)]
// Experiment seeds are grouped as figure mnemonics (0xF16_4A = "fig 4a"),
// not as equal-width digit groups.
#![allow(clippy::unusual_byte_groupings)]

pub mod campaign;
pub mod codec;
pub mod experiments;
pub mod paper;
pub mod protocol;
pub mod report;
pub mod results;
pub mod runner;
pub mod store;

pub use protocol::{ProtocolConfig, ProtocolError, RepMetrics, StepResults};
pub use report::{Check, FigureData, RunOutcome};
pub use runner::{run_campaign, Campaign, RunRecord, RunStatus};
pub use store::{atomic_write, Lookup, ResultStore, StoreStats};
