//! Declarative experiment campaigns: the `Experiment` trait and the
//! parallel engine that executes sweep plans.
//!
//! Each figure/table driver describes itself as an [`Experiment`]: a name,
//! a paper anchor, a fidelity-aware sweep plan of enumerable
//! [`SweepPoint`]s, a per-point measurement, and a `finalize` step that
//! folds the point values into [`FigureData`]. The engine flattens the
//! plans of every selected experiment into one work queue and executes the
//! points on a pool of `std::thread` workers.
//!
//! **Determinism.** A point's seed is derived *only* from the experiment
//! name and the point index ([`point_seed`]), never from execution order,
//! so a parallel run (`--jobs N`) produces byte-identical figures to a
//! serial one. Memoized baselines use a seed derived from their cache key
//! ([`baseline_seed`]) for the same reason.
//!
//! **Crash-proofness.** Every point runs under PR 1's
//! [`crate::runner::guarded`] (catch_unwind + quiet panic hook); a failed
//! point is retried once on a fresh [`crate::runner::retry_seed`] and
//! otherwise recorded as [`RunStatus::Failed`] so the remaining points
//! still reach `finalize`.
//!
//! **Baseline memoization.** The protocol's "alone" steps do not depend on
//! most sweep variables (communication alone is the same measurement at
//! every computing-core count; computation alone does not care about the
//! message size). Experiments share those runs through the
//! [`BaselineCache`], keyed by configuration content — which also lets
//! fig4, fig5 and table1 share entire contention points instead of
//! recomputing three overlapping placement sweeps.

use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use simcore::telemetry::{self, Journal, Lane, Record, RecordKind};
use simcore::{SimTime, SplitMix64};

use crate::experiments::Fidelity;
use crate::report::FigureData;
use crate::runner::{self, RunStatus};

/// Opaque per-point measurement value, downcast by `finalize`.
pub type PointValue = Box<dyn Any + Send>;

/// One enumerable point of an experiment's sweep plan.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Position in the plan (dense, 0-based). Seeds derive from it, and
    /// `run_point` re-derives the sweep coordinates from it.
    pub index: usize,
    /// Human-readable label ("lat @ 12 cores"), for progress and `--list`.
    pub label: String,
}

impl SweepPoint {
    /// Build a point.
    pub fn new(index: usize, label: impl Into<String>) -> SweepPoint {
        SweepPoint {
            index,
            label: label.into(),
        }
    }
}

/// Execution context handed to [`Experiment::run_point`].
pub struct PointCtx<'a> {
    /// Sweep density / repetition selector of the campaign.
    pub fidelity: Fidelity,
    /// The point's deterministic seed ([`point_seed`] on the first
    /// attempt, [`runner::retry_seed`] of it on the retry).
    pub seed: u64,
    /// Cross-experiment baseline cache.
    pub baselines: &'a BaselineCache,
}

/// A declarative experiment: sweep plan + per-point measurement + figure
/// assembly. Implementors are unit structs registered in
/// [`crate::experiments`].
pub trait Experiment: Sync {
    /// Registry name (unique, stable; used by `repro --only`).
    fn name(&self) -> &'static str;
    /// Where in the paper the experiment lives ("§4.2, Figures 4a/4b").
    fn anchor(&self) -> &'static str;
    /// Enumerate the sweep points at the given fidelity. Indices must be
    /// dense and 0-based — seeds and result slots key off them.
    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint>;
    /// Measure one sweep point. Runs on a worker thread; must derive all
    /// randomness from `ctx.seed` (or [`BaselineCache`] keys) so parallel
    /// and serial campaigns are bit-identical.
    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String>;
    /// Fold the executed points (in plan order) into figures.
    fn finalize(&self, fidelity: Fidelity, points: &[PointOutcome]) -> Vec<FigureData>;
}

/// How one sweep point ended, plus its value when any attempt succeeded.
pub struct PointOutcome {
    /// Plan index.
    pub index: usize,
    /// Plan label.
    pub label: String,
    /// Seed of the attempt the outcome describes (retry seed when the
    /// first attempt failed).
    pub seed: u64,
    /// Completed / recovered / failed.
    pub status: RunStatus,
    /// The measurement, when one of the attempts succeeded.
    pub value: Option<PointValue>,
    /// Wall time spent executing the point (all attempts).
    pub wall: Duration,
    /// Telemetry journal of the attempt the outcome describes, when the
    /// campaign ran with [`CampaignOptions::telemetry`] enabled.
    pub journal: Option<Journal>,
}

/// Downcast the value of point `index`, panicking with the recorded error
/// when the point failed both attempts — the same surface behaviour as the
/// pre-registry drivers, which panicked on a failed measurement.
pub fn expect_value<T: 'static>(points: &[PointOutcome], index: usize) -> &T {
    let p = &points[index];
    match &p.value {
        Some(v) => v
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("point {} ({}) has an unexpected value type", index, p.label)),
        None => panic!(
            "point {} ({}) failed: {}",
            index,
            p.label,
            p.status.error().unwrap_or("no error recorded")
        ),
    }
}

/// Deterministic seed of `(experiment, point index)`: FNV-1a over the
/// experiment name, offset by the index, pushed through
/// [`simcore::SplitMix64`]. Unlike the old additive `base + size` schemes,
/// distinct points can never collide on a seed.
pub fn point_seed(experiment: &str, index: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in experiment.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    SplitMix64::new(h.wrapping_add(index as u64)).next_u64()
}

/// Deterministic seed for a memoized baseline, derived from its cache key
/// alone so every requester computes (or reuses) the identical value.
pub fn baseline_seed(key: &str) -> u64 {
    point_seed(key, 0xBA5E)
}

type Slot = Arc<OnceLock<Arc<dyn Any + Send + Sync>>>;

/// Concurrent memo table for baseline measurements shared across sweep
/// points (and across experiments of one campaign). Each key is computed
/// exactly once — concurrent requesters block on the slot instead of
/// recomputing — with a seed derived from the key, so cached values are
/// identical no matter which point asks first.
#[derive(Default)]
pub struct BaselineCache {
    slots: Mutex<HashMap<String, Slot>>,
    calls: AtomicU64,
    computed: AtomicU64,
    /// Telemetry journals of computed baselines, keyed like `slots`. A
    /// baseline's journal depends only on its key (the seed derives from
    /// it), so the map content is deterministic no matter which worker
    /// computes first.
    journals: Mutex<BTreeMap<String, Journal>>,
}

impl BaselineCache {
    /// Empty cache.
    pub fn new() -> BaselineCache {
        BaselineCache::default()
    }

    /// Fetch the value under `key`, computing it with `f(baseline_seed(key))`
    /// on first use. Nested calls (a cached value that itself needs another
    /// baseline) are fine as long as keys do not form a cycle.
    ///
    /// Computation runs under [`telemetry::isolate`]: *which* sweep point
    /// happens to populate a shared slot is a scheduling race under
    /// `--jobs N`, so a baseline's internal events must never land in any
    /// point's journal — they are recorded into a per-key journal instead
    /// (see [`BaselineCache::take_journals`]), whose content depends only on
    /// the key.
    pub fn get_or_compute<T, F>(&self, key: &str, f: F) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce(u64) -> T,
    {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let mut slots = self.slots.lock().expect("baseline cache poisoned");
            slots.entry(key.to_string()).or_default().clone()
        };
        let v = slot.get_or_init(|| {
            self.computed.fetch_add(1, Ordering::Relaxed);
            let (v, journal) = telemetry::isolate(|| {
                Arc::new(f(baseline_seed(key))) as Arc<dyn Any + Send + Sync>
            });
            if let Some(j) = journal {
                self.journals
                    .lock()
                    .expect("baseline journals poisoned")
                    .insert(key.to_string(), j);
            }
            v
        });
        Arc::clone(v)
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("baseline cache type mismatch for key {:?}", key))
    }

    /// Drain the telemetry journals of every computed baseline, sorted by
    /// key (deterministic regardless of compute order).
    pub fn take_journals(&self) -> BTreeMap<String, Journal> {
        std::mem::take(&mut *self.journals.lock().expect("baseline journals poisoned"))
    }

    /// Total lookups (hits + computes) so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Lookups that actually ran the compute closure.
    pub fn computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// Number of distinct baselines computed so far.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("baseline cache poisoned").len()
    }

    /// True when nothing has been memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Campaign execution options.
#[derive(Clone, Copy, Debug)]
pub struct CampaignOptions {
    /// Sweep density / repetitions.
    pub fidelity: Fidelity,
    /// Worker threads executing sweep points (min 1).
    pub jobs: usize,
    /// Record a telemetry [`Journal`] per point and merge them into the
    /// campaign report. Journals are keyed to sim-time and plan order only,
    /// so the merged journal is byte-identical at any `jobs` level.
    pub telemetry: bool,
}

impl CampaignOptions {
    /// Options with an explicit worker count.
    pub fn new(fidelity: Fidelity, jobs: usize) -> CampaignOptions {
        CampaignOptions {
            fidelity,
            jobs: jobs.max(1),
            telemetry: false,
        }
    }

    /// Single-worker options (the classic sequential behaviour).
    pub fn serial(fidelity: Fidelity) -> CampaignOptions {
        CampaignOptions::new(fidelity, 1)
    }

    /// Toggle telemetry recording.
    pub fn with_telemetry(mut self, on: bool) -> CampaignOptions {
        self.telemetry = on;
        self
    }
}

/// Result of one experiment inside a campaign.
pub struct ExperimentRun {
    /// Registry name.
    pub name: &'static str,
    /// The finalized figures.
    pub figures: Vec<FigureData>,
    /// Executed sweep points.
    pub points: usize,
    /// Points that failed both attempts.
    pub failed_points: usize,
    /// Busy time: summed point execution time plus finalize. Under
    /// parallel execution this is work time, not elapsed wall time.
    pub busy: Duration,
    /// Total *simulated* time covered by the experiment's point journals.
    /// Deterministic (unlike `busy`); [`SimTime::ZERO`] with telemetry off.
    pub sim: SimTime,
}

impl ExperimentRun {
    /// Throughput over busy time.
    pub fn points_per_sec(&self) -> f64 {
        let s = self.busy.as_secs_f64();
        if s > 0.0 {
            self.points as f64 / s
        } else {
            f64::INFINITY
        }
    }
}

/// Execute one sweep point: guarded first attempt on [`point_seed`], one
/// guarded retry on a fresh seed, structured failure otherwise. With
/// `record` set, each attempt runs under a fresh thread-local telemetry
/// recorder and the outcome carries the journal of the attempt it
/// describes (the retry's journal when the first attempt failed).
fn execute_point(
    exp: &dyn Experiment,
    point: &SweepPoint,
    fidelity: Fidelity,
    record: bool,
    baselines: &BaselineCache,
) -> PointOutcome {
    let t0 = Instant::now();
    let seed = point_seed(exp.name(), point.index);
    let attempt = |seed: u64| {
        if record {
            telemetry::install();
        }
        let ctx = PointCtx {
            fidelity,
            seed,
            baselines,
        };
        let res = runner::guarded(|| exp.run_point(point, &ctx));
        let journal = if record { telemetry::take() } else { None };
        (res, journal)
    };
    let (seed, status, value, journal) = match attempt(seed) {
        (Ok(v), journal) => (seed, RunStatus::Completed, Some(v), journal),
        (Err(first_error), _) => {
            let fresh = runner::retry_seed(seed, point.index as u32);
            match attempt(fresh) {
                (Ok(v), journal) => (
                    fresh,
                    RunStatus::Recovered {
                        failed_seed: seed,
                        error: first_error,
                    },
                    Some(v),
                    journal,
                ),
                (Err(second_error), journal) => (
                    fresh,
                    RunStatus::Failed {
                        error: second_error,
                    },
                    None,
                    journal,
                ),
            }
        }
    };
    PointOutcome {
        index: point.index,
        label: point.label.clone(),
        seed,
        status,
        value,
        wall: t0.elapsed(),
        journal,
    }
}

/// Campaign-wide aggregates produced alongside the per-experiment runs.
pub struct CampaignReport {
    /// Baseline-cache lookups across the whole campaign.
    pub baseline_calls: u64,
    /// Baseline-cache lookups that actually computed (the rest were hits).
    pub baseline_computed: u64,
    /// Merged telemetry journal: every point's journal in plan order on one
    /// timeline, wrapped in per-point and per-experiment "campaign" spans.
    /// `None` when telemetry was off.
    pub journal: Option<Journal>,
}

/// Run a set of experiments as one campaign: every sweep point of every
/// experiment goes into a single work queue drained by `opts.jobs` worker
/// threads (so a short experiment's points fill the gaps of a long one),
/// then each experiment finalizes serially in the given order.
pub fn run_set(exps: &[&dyn Experiment], opts: &CampaignOptions) -> Vec<ExperimentRun> {
    run_set_with_report(exps, opts).0
}

/// [`run_set`] plus the campaign-wide [`CampaignReport`] (cache statistics
/// and, with [`CampaignOptions::telemetry`] on, the merged journal).
pub fn run_set_with_report(
    exps: &[&dyn Experiment],
    opts: &CampaignOptions,
) -> (Vec<ExperimentRun>, CampaignReport) {
    let cache = BaselineCache::new();
    let plans: Vec<Vec<SweepPoint>> = exps.iter().map(|e| e.plan(opts.fidelity)).collect();
    let tasks: Vec<(usize, usize)> = plans
        .iter()
        .enumerate()
        .flat_map(|(ei, plan)| (0..plan.len()).map(move |pi| (ei, pi)))
        .collect();
    let results: Vec<Vec<Mutex<Option<PointOutcome>>>> = plans
        .iter()
        .map(|p| (0..p.len()).map(|_| Mutex::new(None)).collect())
        .collect();

    let next = AtomicUsize::new(0);
    let workers = opts.jobs.clamp(1, tasks.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= tasks.len() {
                    break;
                }
                let (ei, pi) = tasks[t];
                let outcome =
                    execute_point(exps[ei], &plans[ei][pi], opts.fidelity, opts.telemetry, &cache);
                *results[ei][pi].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });

    // Merge point journals in plan order onto one campaign timeline. The
    // merge depends only on plan order and sim-time, so the merged journal
    // is byte-identical at any worker count.
    let mut merged = if opts.telemetry {
        Some(Journal::default())
    } else {
        None
    };
    let mut offset = SimTime::ZERO;

    let runs = exps
        .iter()
        .zip(results)
        .map(|(exp, slots)| {
            let mut outcomes: Vec<PointOutcome> = slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("result slot poisoned")
                        .expect("every queued point executes")
                })
                .collect();
            let exp_start = offset;
            if let Some(merged) = merged.as_mut() {
                for o in &mut outcomes {
                    let Some(mut j) = o.journal.take() else {
                        continue;
                    };
                    let end = j.end_time();
                    merged.records.push(Record {
                        t: offset,
                        kind: RecordKind::Complete {
                            cat: "campaign",
                            name: o.label.clone(),
                            lane: Lane::Campaign,
                            dur: end,
                        },
                    });
                    j.shift(offset);
                    merged.append(j);
                    offset = SimTime(offset.0.saturating_add(end.0));
                }
                merged.records.push(Record {
                    t: exp_start,
                    kind: RecordKind::Complete {
                        cat: "campaign",
                        name: exp.name().to_string(),
                        lane: Lane::Campaign,
                        dur: offset.saturating_sub(exp_start),
                    },
                });
            }
            let point_time: Duration = outcomes.iter().map(|o| o.wall).sum();
            let failed = outcomes
                .iter()
                .filter(|o| matches!(o.status, RunStatus::Failed { .. }))
                .count();
            let t0 = Instant::now();
            let figures = exp.finalize(opts.fidelity, &outcomes);
            ExperimentRun {
                name: exp.name(),
                figures,
                points: outcomes.len(),
                failed_points: failed,
                busy: point_time + t0.elapsed(),
                sim: offset.saturating_sub(exp_start),
            }
        })
        .collect();

    // Shared baselines recorded under `isolate` merge last, in key order:
    // deterministic no matter which worker computed them.
    if let Some(merged) = merged.as_mut() {
        for (key, mut j) in cache.take_journals() {
            let end = j.end_time();
            merged.records.push(Record {
                t: offset,
                kind: RecordKind::Complete {
                    cat: "campaign",
                    name: format!("baseline: {}", key),
                    lane: Lane::Campaign,
                    dur: end,
                },
            });
            j.shift(offset);
            merged.append(j);
            offset = SimTime(offset.0.saturating_add(end.0));
        }
    }

    let report = CampaignReport {
        baseline_calls: cache.calls(),
        baseline_computed: cache.computed(),
        journal: merged,
    };
    (runs, report)
}

/// Run a single experiment (its own cache, no cross-experiment sharing).
pub fn run_experiment(exp: &dyn Experiment, opts: &CampaignOptions) -> ExperimentRun {
    run_set(&[exp], opts)
        .pop()
        .expect("one experiment in, one run out")
}

/// Execute only the sweep points of one experiment, serially, returning the
/// raw outcomes — for callers that post-process points without the figure
/// assembly (e.g. `table1::rows`). Honours [`CampaignOptions::telemetry`];
/// `jobs` is ignored (points execute on the calling thread).
pub fn run_points_with(exp: &dyn Experiment, opts: &CampaignOptions) -> Vec<PointOutcome> {
    let cache = BaselineCache::new();
    exp.plan(opts.fidelity)
        .iter()
        .map(|p| execute_point(exp, p, opts.fidelity, opts.telemetry, &cache))
        .collect()
}

/// [`run_points_with`] at the given fidelity with telemetry off.
pub fn run_points(exp: &dyn Experiment, fidelity: Fidelity) -> Vec<PointOutcome> {
    run_points_with(exp, &CampaignOptions::serial(fidelity))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;

    impl Experiment for Doubler {
        fn name(&self) -> &'static str {
            "doubler"
        }
        fn anchor(&self) -> &'static str {
            "test"
        }
        fn plan(&self, _f: Fidelity) -> Vec<SweepPoint> {
            (0..6).map(|i| SweepPoint::new(i, format!("x={}", i))).collect()
        }
        fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
            if point.index == 3 && ctx.seed == point_seed("doubler", 3) {
                panic!("flaky first attempt");
            }
            if point.index == 5 {
                return Err("permanently broken".into());
            }
            Ok(Box::new(point.index * 2))
        }
        fn finalize(&self, _f: Fidelity, points: &[PointOutcome]) -> Vec<FigureData> {
            assert_eq!(points.len(), 6);
            for p in points.iter().take(5) {
                assert_eq!(*expect_value::<usize>(points, p.index), p.index * 2);
            }
            Vec::new()
        }
    }

    #[test]
    fn engine_retries_and_records_failures() {
        let run = run_experiment(&Doubler, &CampaignOptions::serial(Fidelity::Quick));
        assert_eq!(run.points, 6);
        assert_eq!(run.failed_points, 1);
    }

    #[test]
    fn parallel_outcomes_match_serial() {
        for jobs in [2, 4] {
            let run = run_experiment(&Doubler, &CampaignOptions::new(Fidelity::Quick, jobs));
            assert_eq!(run.points, 6);
            assert_eq!(run.failed_points, 1);
        }
    }

    #[test]
    fn point_seeds_never_collide() {
        let mut seen = std::collections::HashSet::new();
        for exp in ["fig1", "fig6", "overlap"] {
            for i in 0..512 {
                assert!(seen.insert(point_seed(exp, i)), "collision at {}/{}", exp, i);
            }
        }
        // The old additive scheme collided when size sweeps overlapped
        // (seed + 64 from base A == seed + 4 from base A+60); the hash
        // also differs from every retry seed it could meet.
        for i in 0..64u32 {
            assert_ne!(
                point_seed("fig6", i as usize),
                runner::retry_seed(point_seed("fig6", i as usize), i)
            );
        }
    }

    #[test]
    fn baseline_cache_computes_once_per_key() {
        let cache = BaselineCache::new();
        let mut calls = 0;
        let a = cache.get_or_compute("k", |seed| {
            calls += 1;
            seed
        });
        let b = cache.get_or_compute("k", |_| unreachable!("memoized"));
        assert_eq!(*a, *b);
        assert_eq!(*a, baseline_seed("k"));
        assert_eq!(calls, 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }
}
