//! Declarative experiment campaigns: the `Experiment` trait and the
//! parallel engine that executes sweep plans.
//!
//! Each figure/table driver describes itself as an [`Experiment`]: a name,
//! a paper anchor, a fidelity-aware sweep plan of enumerable
//! [`SweepPoint`]s, a per-point measurement, and a `finalize` step that
//! folds the point values into [`FigureData`]. The engine flattens the
//! plans of every selected experiment into one work queue and executes the
//! points on a pool of `std::thread` workers.
//!
//! **Determinism.** A point's seed is derived *only* from the experiment
//! name and the point index ([`point_seed`]), never from execution order,
//! so a parallel run (`--jobs N`) produces byte-identical figures to a
//! serial one. Memoized baselines use a seed derived from their cache key
//! ([`baseline_seed`]) for the same reason.
//!
//! **Crash-proofness.** Every point runs under PR 1's
//! [`crate::runner::guarded`] (catch_unwind + quiet panic hook); a failed
//! point is retried once on a fresh [`crate::runner::retry_seed`] and
//! otherwise recorded as [`RunStatus::Failed`] so the remaining points
//! still reach `finalize`.
//!
//! **Baseline memoization.** The protocol's "alone" steps do not depend on
//! most sweep variables (communication alone is the same measurement at
//! every computing-core count; computation alone does not care about the
//! message size). Experiments share those runs through the
//! [`BaselineCache`], keyed by configuration content — which also lets
//! fig4, fig5 and table1 share entire contention points instead of
//! recomputing three overlapping placement sweeps.

use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use simcore::cancel::{self, CancelToken};
use simcore::telemetry::{self, Journal, Lane, Record, RecordKind};
use simcore::{SimTime, SplitMix64};

use crate::codec::{Dec, Enc};
use crate::experiments::Fidelity;
use crate::report::FigureData;
use crate::runner::{self, RunStatus};
use crate::store::{Lookup, ResultStore};

/// Opaque per-point measurement value, downcast by `finalize`.
pub type PointValue = Box<dyn Any + Send>;

/// One enumerable point of an experiment's sweep plan.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Position in the plan (dense, 0-based). Seeds derive from it, and
    /// `run_point` re-derives the sweep coordinates from it.
    pub index: usize,
    /// Human-readable label ("lat @ 12 cores"), for progress and `--list`.
    pub label: String,
}

impl SweepPoint {
    /// Build a point.
    pub fn new(index: usize, label: impl Into<String>) -> SweepPoint {
        SweepPoint {
            index,
            label: label.into(),
        }
    }
}

/// Execution context handed to [`Experiment::run_point`].
pub struct PointCtx<'a> {
    /// Sweep density / repetition selector of the campaign.
    pub fidelity: Fidelity,
    /// The point's deterministic seed ([`point_seed`] on the first
    /// attempt, [`runner::retry_seed`] of it on the retry).
    pub seed: u64,
    /// Cross-experiment baseline cache.
    pub baselines: &'a BaselineCache,
}

/// A declarative experiment: sweep plan + per-point measurement + figure
/// assembly. Implementors are unit structs registered in
/// [`crate::experiments`].
pub trait Experiment: Sync {
    /// Registry name (unique, stable; used by `repro --only`).
    fn name(&self) -> &'static str;
    /// Where in the paper the experiment lives ("§4.2, Figures 4a/4b").
    fn anchor(&self) -> &'static str;
    /// Enumerate the sweep points at the given fidelity. Indices must be
    /// dense and 0-based — seeds and result slots key off them.
    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint>;
    /// Measure one sweep point. Runs on a worker thread; must derive all
    /// randomness from `ctx.seed` (or [`BaselineCache`] keys) so parallel
    /// and serial campaigns are bit-identical.
    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String>;
    /// Fold the executed points (in plan order) into figures.
    fn finalize(&self, fidelity: Fidelity, points: &[PointOutcome]) -> Vec<FigureData>;
    /// Serialize a point value for the durable result store (exact bits —
    /// see [`crate::codec`]). Default `None`: the experiment's points are
    /// recomputed on resume instead of restored. Implementations must
    /// round-trip through [`Experiment::decode_value`] bit-identically.
    fn encode_value(&self, _value: &PointValue) -> Option<Vec<u8>> {
        None
    }
    /// Inverse of [`Experiment::encode_value`]. Returns `None` on any
    /// malformed or stale layout (the point is then recomputed).
    fn decode_value(&self, _bytes: &[u8]) -> Option<PointValue> {
        None
    }
}

/// How one sweep point ended, plus its value when any attempt succeeded.
pub struct PointOutcome {
    /// Plan index.
    pub index: usize,
    /// Plan label.
    pub label: String,
    /// Seed of the attempt the outcome describes (retry seed when the
    /// first attempt failed).
    pub seed: u64,
    /// Completed / recovered / failed.
    pub status: RunStatus,
    /// The measurement, when one of the attempts succeeded.
    pub value: Option<PointValue>,
    /// Wall time spent executing the point (all attempts); zero when the
    /// point was restored from the result store.
    pub wall: Duration,
    /// Telemetry journal of the attempt the outcome describes, when the
    /// campaign ran with [`CampaignOptions::telemetry`] enabled.
    pub journal: Option<Journal>,
    /// True when the outcome was restored from the result store instead of
    /// being executed (resume path).
    pub restored: bool,
}

/// Downcast the value of point `index`, panicking with the recorded error
/// when the point failed both attempts — the same surface behaviour as the
/// pre-registry drivers, which panicked on a failed measurement.
pub fn expect_value<T: 'static>(points: &[PointOutcome], index: usize) -> &T {
    let p = &points[index];
    match &p.value {
        Some(v) => v
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("point {} ({}) has an unexpected value type", index, p.label)),
        None => panic!(
            "point {} ({}) failed: {}",
            index,
            p.label,
            p.status.error().unwrap_or("no error recorded")
        ),
    }
}

/// Deterministic seed of `(experiment, point index)`: FNV-1a over the
/// experiment name, offset by the index, pushed through
/// [`simcore::SplitMix64`]. Unlike the old additive `base + size` schemes,
/// distinct points can never collide on a seed.
pub fn point_seed(experiment: &str, index: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in experiment.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    SplitMix64::new(h.wrapping_add(index as u64)).next_u64()
}

/// Deterministic seed for a memoized baseline, derived from its cache key
/// alone so every requester computes (or reuses) the identical value.
pub fn baseline_seed(key: &str) -> u64 {
    point_seed(key, 0xBA5E)
}

/// A memo slot: empty, claimed by a computing worker, or holding the value.
enum SlotState {
    Empty,
    Computing,
    Ready(Arc<dyn Any + Send + Sync>),
}

struct MemoSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Default for MemoSlot {
    fn default() -> MemoSlot {
        MemoSlot {
            state: Mutex::new(SlotState::Empty),
            ready: Condvar::new(),
        }
    }
}

type Slot = Arc<MemoSlot>;

/// Concurrent memo table for baseline measurements shared across sweep
/// points (and across experiments of one campaign). Each key is computed
/// once — concurrent requesters block on the slot instead of recomputing —
/// with a seed derived from the key, so cached values are identical no
/// matter which point asks first.
///
/// Only *successful* computes are memoized: a compute that errors or
/// panics (model failure, cooperative cancellation on a per-point
/// deadline) resets its slot to empty, so the next requester retries under
/// its own seed-determined conditions instead of inheriting a poisoned
/// entry. Determinism makes the eventual successful value identical no
/// matter how many failed attempts preceded it.
#[derive(Default)]
pub struct BaselineCache {
    slots: Mutex<HashMap<String, Slot>>,
    calls: AtomicU64,
    computed: AtomicU64,
    /// Telemetry journals of computed baselines, keyed like `slots`. A
    /// baseline's journal depends only on its key (the seed derives from
    /// it), so the map content is deterministic no matter which worker
    /// computes first.
    journals: Mutex<BTreeMap<String, Journal>>,
}

impl BaselineCache {
    /// Empty cache.
    pub fn new() -> BaselineCache {
        BaselineCache::default()
    }

    /// Claim the slot for `key` (waiting out another worker's in-flight
    /// compute) and run `run` to fill it. `Err` is returned to this caller
    /// only and leaves the slot empty; a panic in `run` likewise resets the
    /// slot before unwinding.
    fn fetch_or_run<F>(&self, key: &str, run: F) -> Result<Arc<dyn Any + Send + Sync>, String>
    where
        F: FnOnce() -> Result<Arc<dyn Any + Send + Sync>, String>,
    {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let mut slots = self.slots.lock().expect("baseline cache poisoned");
            slots.entry(key.to_string()).or_default().clone()
        };
        {
            let mut st = slot.state.lock().expect("baseline slot poisoned");
            loop {
                match &*st {
                    SlotState::Ready(v) => return Ok(Arc::clone(v)),
                    SlotState::Computing => {
                        st = slot.ready.wait(st).expect("baseline slot poisoned");
                    }
                    SlotState::Empty => {
                        *st = SlotState::Computing;
                        break;
                    }
                }
            }
        }
        self.computed.fetch_add(1, Ordering::Relaxed);
        // Dropped on every exit path (including unwind): a slot still in
        // `Computing` reverts to `Empty`, and waiters are woken either way.
        struct Unclaim<'a>(&'a MemoSlot);
        impl Drop for Unclaim<'_> {
            fn drop(&mut self) {
                let mut st = self.0.state.lock().expect("baseline slot poisoned");
                if matches!(*st, SlotState::Computing) {
                    *st = SlotState::Empty;
                }
                drop(st);
                self.0.ready.notify_all();
            }
        }
        let unclaim = Unclaim(&slot);
        let res = run();
        if let Ok(v) = &res {
            *slot.state.lock().expect("baseline slot poisoned") = SlotState::Ready(Arc::clone(v));
        }
        drop(unclaim);
        res
    }

    /// Fetch the value under `key`, computing it with `f(baseline_seed(key))`
    /// on first use. Nested calls (a cached value that itself needs another
    /// baseline) are fine as long as keys do not form a cycle.
    ///
    /// Computation runs under [`telemetry::isolate`]: *which* sweep point
    /// happens to populate a shared slot is a scheduling race under
    /// `--jobs N`, so a baseline's internal events must never land in any
    /// point's journal — they are recorded into a per-key journal instead
    /// (see [`BaselineCache::take_journals`]), whose content depends only on
    /// the key.
    pub fn get_or_compute<T, F>(&self, key: &str, f: F) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce(u64) -> T,
    {
        let v = self
            .fetch_or_run(key, || {
                let (v, journal) = telemetry::isolate(|| {
                    Arc::new(f(baseline_seed(key))) as Arc<dyn Any + Send + Sync>
                });
                if let Some(j) = journal {
                    self.journals
                        .lock()
                        .expect("baseline journals poisoned")
                        .insert(key.to_string(), j);
                }
                Ok(v)
            })
            .expect("infallible baseline compute");
        v.downcast::<T>()
            .unwrap_or_else(|_| panic!("baseline cache type mismatch for key {:?}", key))
    }

    /// Fallible variant of [`BaselineCache::get_or_compute`]: an `Err` from
    /// `f` is returned to the caller but **never memoized** — the slot
    /// stays empty and the next requester computes afresh. This matters
    /// under per-point deadlines: a baseline compute cancelled by one
    /// point's timeout must not poison the shared cache and fail every
    /// later point that shares the baseline.
    pub fn get_or_compute_result<T, F>(&self, key: &str, f: F) -> Result<Arc<T>, String>
    where
        T: Any + Send + Sync,
        F: FnOnce(u64) -> Result<T, String>,
    {
        let v = self.fetch_or_run(key, || {
            let (res, journal) = telemetry::isolate(|| {
                f(baseline_seed(key)).map(|v| Arc::new(v) as Arc<dyn Any + Send + Sync>)
            });
            // The journal of a failed compute is dropped with it.
            let v = res?;
            if let Some(j) = journal {
                self.journals
                    .lock()
                    .expect("baseline journals poisoned")
                    .insert(key.to_string(), j);
            }
            Ok(v)
        })?;
        Ok(v.downcast::<T>()
            .unwrap_or_else(|_| panic!("baseline cache type mismatch for key {:?}", key)))
    }

    /// Drain the telemetry journals of every computed baseline, sorted by
    /// key (deterministic regardless of compute order).
    pub fn take_journals(&self) -> BTreeMap<String, Journal> {
        std::mem::take(&mut *self.journals.lock().expect("baseline journals poisoned"))
    }

    /// Total lookups (hits + computes) so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Lookups that actually ran the compute closure.
    pub fn computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// Number of distinct baselines computed so far.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("baseline cache poisoned").len()
    }

    /// True when nothing has been memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Campaign execution options.
#[derive(Clone, Copy, Debug)]
pub struct CampaignOptions {
    /// Sweep density / repetitions.
    pub fidelity: Fidelity,
    /// Worker threads executing sweep points (min 1).
    pub jobs: usize,
    /// Record a telemetry [`Journal`] per point and merge them into the
    /// campaign report. Journals are keyed to sim-time and plan order only,
    /// so the merged journal is byte-identical at any `jobs` level.
    pub telemetry: bool,
    /// Per-point wall-clock deadline. Each attempt runs under a
    /// [`CancelToken`] with this budget; a wedged simulation is
    /// cooperatively cancelled at the next event boundary and the point is
    /// recorded as [`RunStatus::TimedOut`] instead of leaking its worker
    /// thread. `None` (the default) imposes no deadline — timeouts are
    /// wall-clock and therefore machine-dependent, so they are strictly
    /// opt-in.
    pub timeout: Option<Duration>,
}

impl CampaignOptions {
    /// Options with an explicit worker count.
    pub fn new(fidelity: Fidelity, jobs: usize) -> CampaignOptions {
        CampaignOptions {
            fidelity,
            jobs: jobs.max(1),
            telemetry: false,
            timeout: None,
        }
    }

    /// Single-worker options (the classic sequential behaviour).
    pub fn serial(fidelity: Fidelity) -> CampaignOptions {
        CampaignOptions::new(fidelity, 1)
    }

    /// Toggle telemetry recording.
    pub fn with_telemetry(mut self, on: bool) -> CampaignOptions {
        self.telemetry = on;
        self
    }

    /// Arm a per-point wall-clock deadline.
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> CampaignOptions {
        self.timeout = timeout;
        self
    }
}

/// Binding of a campaign to a durable [`ResultStore`].
#[derive(Clone, Copy)]
pub struct StoreCtx<'a> {
    /// The store completed points are persisted to.
    pub store: &'a ResultStore,
    /// Restore previously persisted points instead of recomputing them.
    /// Restores are skipped while telemetry recording is on — a restored
    /// point has no journal, and serving it would change the merged trace;
    /// determinism makes the recomputation byte-identical anyway.
    pub resume: bool,
}

/// Version of the campaign-level point payload layout (wrapped around the
/// experiment's own value encoding). Part of the store key: bumping it
/// orphans old entries instead of misparsing them.
const POINT_FORMAT: u32 = 1;

/// Store key of one sweep point. Identity = experiment name, fidelity,
/// plan index and the hash-derived first-attempt seed ([`point_seed`]) —
/// so a change to the seeding scheme or the payload layout makes old
/// entries unreachable rather than wrong.
fn point_key(exp: &str, fidelity: Fidelity, index: usize) -> String {
    format!(
        "point/v{}/{}/{:?}/{}/{:016x}",
        POINT_FORMAT,
        exp,
        fidelity,
        index,
        point_seed(exp, index)
    )
}

/// Serialize a completed/recovered outcome (status header + the
/// experiment's value bytes). `None` for outcomes that must not be served
/// from the store (failures, timeouts, undurable experiments).
fn encode_outcome(exp: &dyn Experiment, o: &PointOutcome) -> Option<Vec<u8>> {
    let value = o.value.as_ref()?;
    let value_bytes = exp.encode_value(value)?;
    let mut e = Enc::new();
    match &o.status {
        RunStatus::Completed => {
            e.u8(0);
        }
        RunStatus::Recovered { failed_seed, error } => {
            e.u8(1).u64(*failed_seed).str(error);
        }
        RunStatus::Failed { .. } | RunStatus::TimedOut { .. } => return None,
    }
    e.u64(o.seed);
    let mut bytes = e.into_bytes();
    bytes.extend_from_slice(&value_bytes);
    Some(bytes)
}

/// Rebuild a [`PointOutcome`] from a stored payload. Verifies that the
/// recorded seeds match what this binary would derive for the point —
/// an entry from a different seeding scheme decodes to `None` and the
/// point is recomputed.
fn decode_outcome(
    exp: &dyn Experiment,
    point: &SweepPoint,
    bytes: &[u8],
) -> Option<PointOutcome> {
    let first = point_seed(exp.name(), point.index);
    let mut d = Dec::new(bytes);
    let (seed, status) = match d.u8()? {
        0 => (first, RunStatus::Completed),
        1 => {
            let failed_seed = d.u64()?;
            let error = d.str()?;
            if failed_seed != first {
                return None;
            }
            (
                runner::retry_seed(first, point.index as u32),
                RunStatus::Recovered { failed_seed, error },
            )
        }
        _ => return None,
    };
    if d.u64()? != seed {
        return None;
    }
    let value = exp.decode_value(d.rest())?;
    Some(PointOutcome {
        index: point.index,
        label: point.label.clone(),
        seed,
        status,
        value: Some(value),
        wall: Duration::ZERO,
        journal: None,
        restored: true,
    })
}

/// Result of one experiment inside a campaign.
pub struct ExperimentRun {
    /// Registry name.
    pub name: &'static str,
    /// The finalized figures (empty when `finalize` itself failed).
    pub figures: Vec<FigureData>,
    /// Executed sweep points.
    pub points: usize,
    /// Points that failed both attempts.
    pub failed_points: usize,
    /// Points cooperatively cancelled at their wall-clock deadline.
    pub timed_out_points: usize,
    /// Points restored from the result store instead of executed.
    pub restored_points: usize,
    /// Error text when `finalize` panicked (it runs guarded so one broken
    /// experiment cannot take down the rest of the campaign).
    pub finalize_error: Option<String>,
    /// Busy time: summed point execution time plus finalize. Under
    /// parallel execution this is work time, not elapsed wall time.
    pub busy: Duration,
    /// Total *simulated* time covered by the experiment's point journals.
    /// Deterministic (unlike `busy`); [`SimTime::ZERO`] with telemetry off.
    pub sim: SimTime,
}

impl ExperimentRun {
    /// Throughput over busy time.
    pub fn points_per_sec(&self) -> f64 {
        let s = self.busy.as_secs_f64();
        if s > 0.0 {
            self.points as f64 / s
        } else {
            f64::INFINITY
        }
    }

    /// True when any point produced no data or `finalize` failed — the
    /// run's figures do not cover the full plan.
    pub fn is_partial(&self) -> bool {
        self.failed_points > 0 || self.timed_out_points > 0 || self.finalize_error.is_some()
    }
}

/// Chaos-harness hook: an artificial pre-point delay (milliseconds) read
/// from `REPRO_POINT_DELAY_MS`. The kill-and-resume integration test uses
/// it to stretch a campaign enough to SIGKILL it mid-flight; unset (the
/// normal case) it costs one cached `Option` check per point.
fn chaos_point_delay() -> Option<Duration> {
    static DELAY: OnceLock<Option<Duration>> = OnceLock::new();
    *DELAY.get_or_init(|| {
        std::env::var("REPRO_POINT_DELAY_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
    })
}

/// Execute one sweep point: guarded first attempt on [`point_seed`], one
/// guarded retry on a fresh seed, structured failure otherwise. With
/// [`CampaignOptions::telemetry`] set, each attempt runs under a fresh
/// thread-local telemetry recorder and the outcome carries the journal of
/// the attempt it describes (the retry's journal when the first attempt
/// failed). With [`CampaignOptions::timeout`] set, each attempt runs under
/// a deadline [`CancelToken`]; a timed-out attempt is terminal
/// ([`RunStatus::TimedOut`], no retry). With a [`StoreCtx`] bound, a
/// resumable outcome is restored instead of executed when present, and a
/// computed outcome is persisted before being returned.
fn execute_point(
    exp: &dyn Experiment,
    point: &SweepPoint,
    opts: &CampaignOptions,
    baselines: &BaselineCache,
    store: Option<&StoreCtx<'_>>,
) -> PointOutcome {
    let record = opts.telemetry;
    let key = store.map(|_| point_key(exp.name(), opts.fidelity, point.index));
    if let (Some(s), Some(key)) = (store, key.as_deref()) {
        // Restored points carry no journal, so resume is bypassed while
        // recording (recomputation is byte-identical by determinism).
        if s.resume && !record {
            if let Lookup::Hit(bytes) = s.store.get(key) {
                if let Some(outcome) = decode_outcome(exp, point, &bytes) {
                    return outcome;
                }
                // Verified entry with a stale inner layout: recompute
                // (the fresh put below overwrites it).
            }
        }
    }
    if let Some(delay) = chaos_point_delay() {
        std::thread::sleep(delay);
    }
    let t0 = Instant::now();
    let seed = point_seed(exp.name(), point.index);
    let attempt = |seed: u64| {
        if record {
            telemetry::install();
        }
        let token = opts.timeout.map(CancelToken::with_deadline);
        let ctx = PointCtx {
            fidelity: opts.fidelity,
            seed,
            baselines,
        };
        let run = || runner::guarded(|| exp.run_point(point, &ctx));
        let res = match &token {
            Some(t) => cancel::scoped(t.clone(), run),
            None => run(),
        };
        // Only a *failed* attempt counts as timed out: a value computed
        // just as the deadline passed is still a valid measurement.
        let timed_out = res.is_err() && token.as_ref().is_some_and(|t| t.is_cancelled());
        let journal = if record { telemetry::take() } else { None };
        (res, timed_out, journal)
    };
    let (seed, status, value, journal) = match attempt(seed) {
        (Ok(v), _, journal) => (seed, RunStatus::Completed, Some(v), journal),
        (Err(error), true, journal) => (seed, RunStatus::TimedOut { error }, None, journal),
        (Err(first_error), false, _) => {
            let fresh = runner::retry_seed(seed, point.index as u32);
            match attempt(fresh) {
                (Ok(v), _, journal) => (
                    fresh,
                    RunStatus::Recovered {
                        failed_seed: seed,
                        error: first_error,
                    },
                    Some(v),
                    journal,
                ),
                (Err(error), true, journal) => {
                    (fresh, RunStatus::TimedOut { error }, None, journal)
                }
                (Err(second_error), false, journal) => (
                    fresh,
                    RunStatus::Failed {
                        error: second_error,
                    },
                    None,
                    journal,
                ),
            }
        }
    };
    let outcome = PointOutcome {
        index: point.index,
        label: point.label.clone(),
        seed,
        status,
        value,
        wall: t0.elapsed(),
        journal,
        restored: false,
    };
    if let (Some(s), Some(key)) = (store, key.as_deref()) {
        if let Some(payload) = encode_outcome(exp, &outcome) {
            // A failed put must not fail the point: the measurement is in
            // hand, only its durability is lost. Surface it on stderr.
            if let Err(e) = s.store.put(key, &payload) {
                eprintln!("warning: result store write failed for {}: {}", key, e);
            }
        }
    }
    outcome
}

/// Campaign-wide aggregates produced alongside the per-experiment runs.
pub struct CampaignReport {
    /// Baseline-cache lookups across the whole campaign.
    pub baseline_calls: u64,
    /// Baseline-cache lookups that actually computed (the rest were hits).
    pub baseline_computed: u64,
    /// Merged telemetry journal: every point's journal in plan order on one
    /// timeline, wrapped in per-point and per-experiment "campaign" spans.
    /// `None` when telemetry was off.
    pub journal: Option<Journal>,
}

/// Run a set of experiments as one campaign: every sweep point of every
/// experiment goes into a single work queue drained by `opts.jobs` worker
/// threads (so a short experiment's points fill the gaps of a long one),
/// then each experiment finalizes serially in the given order.
pub fn run_set(exps: &[&dyn Experiment], opts: &CampaignOptions) -> Vec<ExperimentRun> {
    run_set_with_report(exps, opts).0
}

/// [`run_set`] plus the campaign-wide [`CampaignReport`] (cache statistics
/// and, with [`CampaignOptions::telemetry`] on, the merged journal).
pub fn run_set_with_report(
    exps: &[&dyn Experiment],
    opts: &CampaignOptions,
) -> (Vec<ExperimentRun>, CampaignReport) {
    run_set_with_store(exps, opts, None)
}

/// [`run_set_with_report`] bound to a durable [`ResultStore`]: every
/// completed point is persisted as it finishes, and with
/// [`StoreCtx::resume`] set, previously persisted points are restored
/// instead of recomputed. Determinism makes the two paths
/// indistinguishable in the final figures — a resumed campaign's exports
/// are byte-identical to an uninterrupted run's.
pub fn run_set_with_store(
    exps: &[&dyn Experiment],
    opts: &CampaignOptions,
    store: Option<StoreCtx<'_>>,
) -> (Vec<ExperimentRun>, CampaignReport) {
    let cache = BaselineCache::new();
    let plans: Vec<Vec<SweepPoint>> = exps.iter().map(|e| e.plan(opts.fidelity)).collect();
    let tasks: Vec<(usize, usize)> = plans
        .iter()
        .enumerate()
        .flat_map(|(ei, plan)| (0..plan.len()).map(move |pi| (ei, pi)))
        .collect();
    let results: Vec<Vec<Mutex<Option<PointOutcome>>>> = plans
        .iter()
        .map(|p| (0..p.len()).map(|_| Mutex::new(None)).collect())
        .collect();

    let next = AtomicUsize::new(0);
    let workers = opts.jobs.clamp(1, tasks.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= tasks.len() {
                    break;
                }
                let (ei, pi) = tasks[t];
                let outcome =
                    execute_point(exps[ei], &plans[ei][pi], opts, &cache, store.as_ref());
                *results[ei][pi].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });

    // Merge point journals in plan order onto one campaign timeline. The
    // merge depends only on plan order and sim-time, so the merged journal
    // is byte-identical at any worker count.
    let mut merged = if opts.telemetry {
        Some(Journal::default())
    } else {
        None
    };
    let mut offset = SimTime::ZERO;

    let runs = exps
        .iter()
        .zip(results)
        .map(|(exp, slots)| {
            let mut outcomes: Vec<PointOutcome> = slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("result slot poisoned")
                        .expect("every queued point executes")
                })
                .collect();
            let exp_start = offset;
            if let Some(merged) = merged.as_mut() {
                for o in &mut outcomes {
                    let Some(mut j) = o.journal.take() else {
                        continue;
                    };
                    let end = j.end_time();
                    merged.records.push(Record {
                        t: offset,
                        kind: RecordKind::Complete {
                            cat: "campaign",
                            name: o.label.clone(),
                            lane: Lane::Campaign,
                            dur: end,
                        },
                    });
                    j.shift(offset);
                    merged.append(j);
                    offset = SimTime(offset.0.saturating_add(end.0));
                }
                merged.records.push(Record {
                    t: exp_start,
                    kind: RecordKind::Complete {
                        cat: "campaign",
                        name: exp.name().to_string(),
                        lane: Lane::Campaign,
                        dur: offset.saturating_sub(exp_start),
                    },
                });
            }
            let point_time: Duration = outcomes.iter().map(|o| o.wall).sum();
            let failed = outcomes
                .iter()
                .filter(|o| matches!(o.status, RunStatus::Failed { .. }))
                .count();
            let timed_out = outcomes
                .iter()
                .filter(|o| matches!(o.status, RunStatus::TimedOut { .. }))
                .count();
            let restored = outcomes.iter().filter(|o| o.restored).count();
            let t0 = Instant::now();
            // Guarded: most finalizers call `expect_value` and panic on a
            // lost point; one partial experiment must not take down the
            // figures of every other experiment in the campaign.
            let (figures, finalize_error) =
                match runner::guarded(|| Ok::<_, String>(exp.finalize(opts.fidelity, &outcomes)))
                {
                    Ok(figures) => (figures, None),
                    Err(e) => (Vec::new(), Some(e)),
                };
            ExperimentRun {
                name: exp.name(),
                figures,
                points: outcomes.len(),
                failed_points: failed,
                timed_out_points: timed_out,
                restored_points: restored,
                finalize_error,
                busy: point_time + t0.elapsed(),
                sim: offset.saturating_sub(exp_start),
            }
        })
        .collect();

    // Shared baselines recorded under `isolate` merge last, in key order:
    // deterministic no matter which worker computed them.
    if let Some(merged) = merged.as_mut() {
        for (key, mut j) in cache.take_journals() {
            let end = j.end_time();
            merged.records.push(Record {
                t: offset,
                kind: RecordKind::Complete {
                    cat: "campaign",
                    name: format!("baseline: {}", key),
                    lane: Lane::Campaign,
                    dur: end,
                },
            });
            j.shift(offset);
            merged.append(j);
            offset = SimTime(offset.0.saturating_add(end.0));
        }
    }

    let report = CampaignReport {
        baseline_calls: cache.calls(),
        baseline_computed: cache.computed(),
        journal: merged,
    };
    (runs, report)
}

/// Execute one experiment's sweep points on `opts.jobs` worker threads and
/// return the raw outcomes in plan order, without the figure assembly —
/// for callers that consume point *values* rather than figures (the
/// prediction subsystem harvests training pairs this way). Honours the
/// result store exactly like [`run_set_with_store`]: completed points are
/// persisted as they finish and, with [`StoreCtx::resume`], restored
/// instead of recomputed. Outcome order depends only on the plan, never on
/// worker scheduling.
pub fn run_outcomes_with_store(
    exp: &dyn Experiment,
    opts: &CampaignOptions,
    store: Option<StoreCtx<'_>>,
) -> Vec<PointOutcome> {
    let cache = BaselineCache::new();
    let plan = exp.plan(opts.fidelity);
    let results: Vec<Mutex<Option<PointOutcome>>> =
        (0..plan.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = opts.jobs.clamp(1, plan.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= plan.len() {
                    break;
                }
                let outcome = execute_point(exp, &plan[t], opts, &cache, store.as_ref());
                *results[t].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every queued point executes")
        })
        .collect()
}

/// Run a single experiment (its own cache, no cross-experiment sharing).
pub fn run_experiment(exp: &dyn Experiment, opts: &CampaignOptions) -> ExperimentRun {
    run_set(&[exp], opts)
        .pop()
        .expect("one experiment in, one run out")
}

/// Execute only the sweep points of one experiment, serially, returning the
/// raw outcomes — for callers that post-process points without the figure
/// assembly (e.g. `table1::rows`). Honours [`CampaignOptions::telemetry`];
/// `jobs` is ignored (points execute on the calling thread).
pub fn run_points_with(exp: &dyn Experiment, opts: &CampaignOptions) -> Vec<PointOutcome> {
    let cache = BaselineCache::new();
    exp.plan(opts.fidelity)
        .iter()
        .map(|p| execute_point(exp, p, opts, &cache, None))
        .collect()
}

/// [`run_points_with`] at the given fidelity with telemetry off.
pub fn run_points(exp: &dyn Experiment, fidelity: Fidelity) -> Vec<PointOutcome> {
    run_points_with(exp, &CampaignOptions::serial(fidelity))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;

    impl Experiment for Doubler {
        fn name(&self) -> &'static str {
            "doubler"
        }
        fn anchor(&self) -> &'static str {
            "test"
        }
        fn plan(&self, _f: Fidelity) -> Vec<SweepPoint> {
            (0..6).map(|i| SweepPoint::new(i, format!("x={}", i))).collect()
        }
        fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
            if point.index == 3 && ctx.seed == point_seed("doubler", 3) {
                panic!("flaky first attempt");
            }
            if point.index == 5 {
                return Err("permanently broken".into());
            }
            Ok(Box::new(point.index * 2))
        }
        fn finalize(&self, _f: Fidelity, points: &[PointOutcome]) -> Vec<FigureData> {
            assert_eq!(points.len(), 6);
            for p in points.iter().take(5) {
                assert_eq!(*expect_value::<usize>(points, p.index), p.index * 2);
            }
            Vec::new()
        }
    }

    #[test]
    fn engine_retries_and_records_failures() {
        let run = run_experiment(&Doubler, &CampaignOptions::serial(Fidelity::Quick));
        assert_eq!(run.points, 6);
        assert_eq!(run.failed_points, 1);
    }

    #[test]
    fn parallel_outcomes_match_serial() {
        for jobs in [2, 4] {
            let run = run_experiment(&Doubler, &CampaignOptions::new(Fidelity::Quick, jobs));
            assert_eq!(run.points, 6);
            assert_eq!(run.failed_points, 1);
        }
    }

    #[test]
    fn point_seeds_never_collide() {
        let mut seen = std::collections::HashSet::new();
        for exp in ["fig1", "fig6", "overlap"] {
            for i in 0..512 {
                assert!(seen.insert(point_seed(exp, i)), "collision at {}/{}", exp, i);
            }
        }
        // The old additive scheme collided when size sweeps overlapped
        // (seed + 64 from base A == seed + 4 from base A+60); the hash
        // also differs from every retry seed it could meet.
        for i in 0..64u32 {
            assert_ne!(
                point_seed("fig6", i as usize),
                runner::retry_seed(point_seed("fig6", i as usize), i)
            );
        }
    }

    /// A durable Doubler: same sweep, plus a value codec so points can be
    /// restored from a store.
    struct DurableDoubler;

    impl Experiment for DurableDoubler {
        fn name(&self) -> &'static str {
            "durable_doubler"
        }
        fn anchor(&self) -> &'static str {
            "test"
        }
        fn plan(&self, _f: Fidelity) -> Vec<SweepPoint> {
            (0..4).map(|i| SweepPoint::new(i, format!("x={}", i))).collect()
        }
        fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
            if point.index == 1 && ctx.seed == point_seed("durable_doubler", 1) {
                panic!("flaky first attempt");
            }
            Ok(Box::new(point.index * 2))
        }
        fn finalize(&self, _f: Fidelity, points: &[PointOutcome]) -> Vec<FigureData> {
            for p in points {
                assert_eq!(*expect_value::<usize>(points, p.index), p.index * 2);
            }
            Vec::new()
        }
        fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
            let v = value.downcast_ref::<usize>()?;
            let mut e = Enc::new();
            e.usize(*v);
            Some(e.into_bytes())
        }
        fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
            let mut d = Dec::new(bytes);
            let v = d.usize()?;
            d.finish(Box::new(v) as PointValue)
        }
    }

    /// An experiment whose simulation wedges (timer storm) on selected
    /// attempts, driven purely by the seed — deterministic under replay.
    struct Wedger {
        /// Wedge whenever the attempt seed is NOT the first-attempt seed
        /// (i.e. the retry wedges) when true; wedge on the first attempt
        /// when false.
        wedge_on_retry: bool,
    }

    impl Experiment for Wedger {
        fn name(&self) -> &'static str {
            "wedger"
        }
        fn anchor(&self) -> &'static str {
            "test"
        }
        fn plan(&self, _f: Fidelity) -> Vec<SweepPoint> {
            vec![SweepPoint::new(0, "the wedge".to_string())]
        }
        fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
            let first = ctx.seed == point_seed("wedger", point.index);
            if first && self.wedge_on_retry {
                // First attempt fails fast (a plain panic), retry wedges.
                panic!("flaky first attempt");
            }
            if first || self.wedge_on_retry {
                // Timer storm: never quiesces; only cancellation stops it.
                let mut e = simcore::Engine::new();
                e.after(SimTime::PS, 1);
                e.try_run(|eng, _| {
                    eng.after(SimTime::PS, 1);
                })
                .map_err(|err| err.to_string())?;
                unreachable!("the storm never runs dry");
            }
            Ok(Box::new(0usize))
        }
        fn finalize(&self, _f: Fidelity, _points: &[PointOutcome]) -> Vec<FigureData> {
            Vec::new()
        }
    }

    fn test_store(tag: &str) -> crate::store::ResultStore {
        let dir = std::env::temp_dir().join(format!(
            "ifcampaign-test-{}-{}",
            tag,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        crate::store::ResultStore::open(dir).expect("open test store")
    }

    #[test]
    fn first_attempt_timeout_is_terminal() {
        let opts = CampaignOptions::serial(Fidelity::Quick)
            .with_timeout(Some(Duration::from_millis(30)));
        let outcomes = run_points_with(&Wedger { wedge_on_retry: false }, &opts);
        assert_eq!(outcomes.len(), 1);
        match &outcomes[0].status {
            RunStatus::TimedOut { error } => {
                assert!(error.contains("cancelled"), "{}", error);
                assert!(error.contains("deadline"), "{}", error);
            }
            s => panic!("expected TimedOut, got {:?}", s),
        }
        // Terminal: the seed is still the first-attempt seed (no retry ran).
        assert_eq!(outcomes[0].seed, point_seed("wedger", 0));
        assert_eq!(outcomes[0].status.label(), "timeout");
    }

    #[test]
    fn panic_then_wedged_retry_records_timeout_deterministically() {
        // The satellite scenario: attempt 1 panics (retried), attempt 2
        // wedges and is cancelled at the deadline → TimedOut, replayable.
        let opts = CampaignOptions::serial(Fidelity::Quick)
            .with_timeout(Some(Duration::from_millis(30)));
        let run_once = || {
            let outcomes = run_points_with(&Wedger { wedge_on_retry: true }, &opts);
            let o = &outcomes[0];
            (o.seed, o.status.label(), o.status.error().map(str::to_owned))
        };
        let (seed_a, label_a, _) = run_once();
        let (seed_b, label_b, _) = run_once();
        assert_eq!(label_a, "timeout");
        // Deterministic replay: same final seed (the retry seed), same
        // classification, both runs.
        assert_eq!((seed_a, label_a), (seed_b, label_b));
        assert_eq!(seed_a, runner::retry_seed(point_seed("wedger", 0), 0));
        // And the campaign marks the experiment partial.
        let run = run_set_with_store(&[&Wedger { wedge_on_retry: true }], &opts, None)
            .0
            .pop()
            .unwrap();
        assert_eq!(run.timed_out_points, 1);
        assert!(run.is_partial());
    }

    #[test]
    fn store_roundtrip_restores_points_and_outcome_metadata() {
        let store = test_store("roundtrip");
        let opts = CampaignOptions::serial(Fidelity::Quick);
        // First run computes and persists all 4 points (incl. the
        // recovered one).
        let ctx = StoreCtx { store: &store, resume: true };
        let (runs, _) = run_set_with_store(&[&DurableDoubler], &opts, Some(ctx));
        assert_eq!(runs[0].restored_points, 0);
        assert_eq!(store.stats().persisted, 4);
        // Second run restores every point: no recompute, same statuses.
        let (runs2, _) = run_set_with_store(&[&DurableDoubler], &opts, Some(ctx));
        assert_eq!(runs2[0].restored_points, 4);
        assert_eq!(runs2[0].failed_points, 0);
        // The recovered point's status survives the roundtrip (it would
        // re-panic if actually re-executed with the first-attempt seed,
        // so Recovered proves restoration).
        let outcomes = {
            let cache = BaselineCache::new();
            DurableDoubler
                .plan(opts.fidelity)
                .iter()
                .map(|p| execute_point(&DurableDoubler, p, &opts, &cache, Some(&ctx)))
                .collect::<Vec<_>>()
        };
        match &outcomes[1].status {
            RunStatus::Recovered { failed_seed, error } => {
                assert_eq!(*failed_seed, point_seed("durable_doubler", 1));
                assert!(error.contains("flaky"), "{}", error);
            }
            s => panic!("expected restored Recovered, got {:?}", s),
        }
        assert!(outcomes[1].restored);
        assert_eq!(outcomes[1].wall, Duration::ZERO);
    }

    #[test]
    fn corrupt_store_entry_is_recomputed_not_served() {
        let store = test_store("corrupt");
        let opts = CampaignOptions::serial(Fidelity::Quick);
        let ctx = StoreCtx { store: &store, resume: true };
        run_set_with_store(&[&DurableDoubler], &opts, Some(ctx));
        // Flip a bit in one entry's payload region.
        let key = point_key("durable_doubler", Fidelity::Quick, 2);
        crate::store::chaos::corrupt_entry(
            &store,
            &key,
            crate::store::chaos::Fault::BitFlip { offset: 40, bit: 4 },
        );
        let (runs, _) = run_set_with_store(&[&DurableDoubler], &opts, Some(ctx));
        // 3 restored, 1 quarantined + recomputed; nothing failed.
        assert_eq!(runs[0].restored_points, 3);
        assert_eq!(runs[0].failed_points, 0);
        assert_eq!(store.stats().quarantined, 1);
        // The recomputed entry is durable again.
        let (runs2, _) = run_set_with_store(&[&DurableDoubler], &opts, Some(ctx));
        assert_eq!(runs2[0].restored_points, 4);
    }

    #[test]
    fn undurable_experiment_recomputes_on_resume() {
        let store = test_store("undurable");
        let opts = CampaignOptions::serial(Fidelity::Quick);
        let ctx = StoreCtx { store: &store, resume: true };
        let (runs, _) = run_set_with_store(&[&Doubler], &opts, Some(ctx));
        assert_eq!(runs[0].points, 6);
        // Doubler has no codec: nothing persisted, nothing restored.
        assert_eq!(store.stats().persisted, 0);
        let (runs2, _) = run_set_with_store(&[&Doubler], &opts, Some(ctx));
        assert_eq!(runs2[0].restored_points, 0);
        assert_eq!(runs2[0].points, 6);
    }

    #[test]
    fn finalize_panic_is_contained() {
        struct BrokenFinalize;
        impl Experiment for BrokenFinalize {
            fn name(&self) -> &'static str {
                "broken_finalize"
            }
            fn anchor(&self) -> &'static str {
                "test"
            }
            fn plan(&self, _f: Fidelity) -> Vec<SweepPoint> {
                vec![SweepPoint::new(0, "p".to_string())]
            }
            fn run_point(
                &self,
                _point: &SweepPoint,
                _ctx: &PointCtx<'_>,
            ) -> Result<PointValue, String> {
                Ok(Box::new(()))
            }
            fn finalize(&self, _f: Fidelity, _points: &[PointOutcome]) -> Vec<FigureData> {
                panic!("finalize exploded");
            }
        }
        let opts = CampaignOptions::serial(Fidelity::Quick);
        let runs = run_set(&[&BrokenFinalize, &Doubler], &opts);
        assert_eq!(runs.len(), 2, "the healthy experiment still finalized");
        assert!(runs[0].finalize_error.as_deref().unwrap().contains("exploded"));
        assert!(runs[0].figures.is_empty());
        assert!(runs[0].is_partial());
        assert!(runs[1].finalize_error.is_none());
    }

    #[test]
    fn baseline_cache_computes_once_per_key() {
        let cache = BaselineCache::new();
        let mut calls = 0;
        let a = cache.get_or_compute("k", |seed| {
            calls += 1;
            seed
        });
        let b = cache.get_or_compute("k", |_| unreachable!("memoized"));
        assert_eq!(*a, *b);
        assert_eq!(*a, baseline_seed("k"));
        assert_eq!(calls, 1);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn baseline_cache_never_memoizes_errors() {
        let cache = BaselineCache::new();
        let r: Result<Arc<u64>, String> =
            cache.get_or_compute_result("k", |_| Err("transient".into()));
        assert_eq!(r.unwrap_err(), "transient");
        // The error was not cached: the next requester computes afresh.
        let v = cache
            .get_or_compute_result("k", Ok)
            .expect("retry succeeds");
        assert_eq!(*v, baseline_seed("k"));
        // …and the success IS memoized.
        let again: Arc<u64> = cache
            .get_or_compute_result("k", |_| Err("must not recompute".into()))
            .expect("memoized");
        assert_eq!(*again, *v);
        assert_eq!(cache.computed(), 2, "one failed + one successful compute");
    }

    #[test]
    fn baseline_cache_recovers_from_a_panicked_compute() {
        let cache = BaselineCache::new();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute::<u64, _>("k", |_| panic!("compute exploded"))
        }));
        assert!(panicked.is_err());
        // The slot reverted to empty: a later requester computes cleanly.
        let v = cache.get_or_compute("k", |seed| seed);
        assert_eq!(*v, baseline_seed("k"));
    }

    /// Sweep points that all share one memoized baseline whose compute
    /// wedges forever — only a deadline stops it.
    struct SharedWedgedBaseline;

    impl Experiment for SharedWedgedBaseline {
        fn name(&self) -> &'static str {
            "shared_wedged_baseline"
        }
        fn anchor(&self) -> &'static str {
            "test"
        }
        fn plan(&self, _f: Fidelity) -> Vec<SweepPoint> {
            (0..3).map(|i| SweepPoint::new(i, format!("x={}", i))).collect()
        }
        fn run_point(&self, _point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
            let v: Arc<u64> = ctx.baselines.get_or_compute_result("wedged-baseline", |_| {
                let mut e = simcore::Engine::new();
                e.after(SimTime::PS, 1);
                e.try_run(|eng, _| {
                    eng.after(SimTime::PS, 1);
                })
                .map_err(|err| err.to_string())?;
                unreachable!("the storm never runs dry");
            })?;
            Ok(Box::new(*v))
        }
        fn finalize(&self, _f: Fidelity, _points: &[PointOutcome]) -> Vec<FigureData> {
            Vec::new()
        }
    }

    #[test]
    fn cancelled_baseline_does_not_poison_later_points() {
        // Every point's own deadline cancels its own baseline attempt: all
        // points classify as TimedOut. Before errors were un-memoized, the
        // first cancellation was served from the cache to every later
        // point, which then (wrongly) recorded Failed — and in a long
        // campaign one transient timeout would poison the whole key.
        let opts = CampaignOptions::serial(Fidelity::Quick)
            .with_timeout(Some(Duration::from_millis(20)));
        let run = run_set_with_store(&[&SharedWedgedBaseline], &opts, None)
            .0
            .pop()
            .unwrap();
        assert_eq!(run.points, 3);
        assert_eq!(run.timed_out_points, 3, "every point timed out on its own");
        assert_eq!(run.failed_points, 0, "no point inherited a cached error");
    }
}
