//! The three-step benchmarking protocol of §2.1.
//!
//! 1. **Computation without communication** — jobs run alone for a
//!    measurement window; the metric is the attained per-core memory
//!    bandwidth (STREAM-style) and flop rate.
//! 2. **Communication without computation** — a ping-pong alone.
//! 3. **Computation with side-by-side communication** — the jobs restart
//!    and the same ping-pong runs beside them; both metrics are collected
//!    from the overlap window.
//!
//! Computations and communications use different data and are completely
//! independent, each pinned to its own core — exactly the paper's setup.
//! Every repetition is an independent seeded "run" (fresh cluster, fresh
//! jitter draw), which yields the median/decile bands of the figures.

use std::fmt;

use freq::{Governor, UncorePolicy};
use kernels::Workload;
use mpisim::pingpong::{self, PingPongConfig};
use mpisim::{Cluster, ClusterError};
use simcore::{JitterFamily, SimTime};
use topology::{MachineSpec, Placement, TopologyError};

/// Why a protocol configuration is unusable or a run failed.
#[derive(Debug)]
pub enum ProtocolError {
    /// The placement cannot be resolved on the configured machine.
    Topology(TopologyError),
    /// More computing cores requested than the machine provides after
    /// reserving the communication core.
    TooManyComputeCores {
        /// Requested computing cores.
        requested: usize,
        /// Cores actually available.
        available: usize,
    },
    /// A count that must be positive is zero.
    Zero {
        /// Which field ("reps", "ping-pong reps", "ping-pong size").
        what: &'static str,
    },
    /// A repetition's simulation failed (wedged engine, dried-up event
    /// queue or a permanently failed transfer).
    Cluster(ClusterError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Topology(e) => write!(f, "placement does not resolve: {}", e),
            ProtocolError::TooManyComputeCores {
                requested,
                available,
            } => write!(
                f,
                "requested {} computing cores, only {} available",
                requested, available
            ),
            ProtocolError::Zero { what } => write!(f, "{} must be positive", what),
            ProtocolError::Cluster(e) => write!(f, "repetition failed: {}", e),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Topology(e) => Some(e),
            ProtocolError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusterError> for ProtocolError {
    fn from(e: ClusterError) -> Self {
        ProtocolError::Cluster(e)
    }
}

/// Configuration of one protocol run.
#[derive(Clone)]
pub struct ProtocolConfig {
    /// Machine description (both nodes).
    pub machine: MachineSpec,
    /// Core-frequency governor.
    pub governor: Governor,
    /// Uncore policy.
    pub uncore: UncorePolicy,
    /// Thread/data placement.
    pub placement: Placement,
    /// Number of computing cores (first N compute cores, logical order).
    pub compute_cores: usize,
    /// Per-core workload (one iteration's phases; the executor repeats it).
    pub workload: Option<Workload>,
    /// Ping-pong parameters.
    pub pingpong: PingPongConfig,
    /// Repetitions (independent runs).
    pub reps: u32,
    /// RNG seed for the jitter family.
    pub seed: u64,
    /// Duration of the computation-alone window.
    pub compute_window: SimTime,
    /// Whether computation also runs on node 1 (the paper computes on both
    /// ranks).
    pub compute_both_nodes: bool,
}

impl ProtocolConfig {
    /// A reasonable default around a machine and workload.
    pub fn new(machine: MachineSpec, workload: Option<Workload>) -> ProtocolConfig {
        ProtocolConfig {
            machine,
            governor: Governor::Performance { turbo: true },
            uncore: UncorePolicy::Auto,
            placement: Placement::fig4_default(),
            compute_cores: 0,
            workload,
            pingpong: PingPongConfig::latency(9),
            reps: 5,
            seed: 0xC0FFEE,
            compute_window: SimTime::from_millis(2),
            compute_both_nodes: true,
        }
    }

    /// Check the configuration against the machine before running: the
    /// placement must resolve, requested computing cores must exist, and
    /// the repetition counts must be positive.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        let resolved = self
            .machine
            .try_resolve(self.placement)
            .map_err(ProtocolError::Topology)?;
        if self.compute_cores > resolved.compute_cores.len() {
            return Err(ProtocolError::TooManyComputeCores {
                requested: self.compute_cores,
                available: resolved.compute_cores.len(),
            });
        }
        if self.reps == 0 {
            return Err(ProtocolError::Zero { what: "reps" });
        }
        if self.pingpong.reps == 0 {
            return Err(ProtocolError::Zero {
                what: "ping-pong reps",
            });
        }
        if self.pingpong.size == 0 {
            return Err(ProtocolError::Zero {
                what: "ping-pong size",
            });
        }
        Ok(())
    }
}

/// Metrics of one repetition.
#[derive(Clone, Debug, Default)]
pub struct RepMetrics {
    /// Median ping-pong latency, µs (NaN if no communication step).
    pub comm_latency_us: f64,
    /// Median ping-pong bandwidth, bytes/s.
    pub comm_bandwidth: f64,
    /// Mean per-core attained memory bandwidth, bytes/s (0 for pure
    /// compute).
    pub compute_bw_per_core: f64,
    /// Mean per-core attained flop rate, flops/s.
    pub compute_flop_rate: f64,
    /// Mean memory-stall fraction of the computing cores.
    pub compute_stall_fraction: f64,
    /// Rendezvous retransmissions summed over every send of the rep (0 on
    /// a healthy fabric).
    pub comm_retries: u64,
    /// Control-message bytes re-sent across the wire.
    pub comm_retrans_bytes: u64,
    /// Simulated seconds spent waiting in expired retransmission timeouts.
    pub comm_retry_wait_s: f64,
}

impl RepMetrics {
    /// Duration one workload iteration would take at the measured rates
    /// (the paper's "computation time" metric), seconds.
    pub fn iteration_time(&self, workload: &Workload) -> f64 {
        let bytes = workload.phases.iter().map(|p| p.bytes).sum::<f64>();
        let flops = workload.phases.iter().map(|p| p.flops).sum::<f64>();
        if bytes > 0.0 && self.compute_bw_per_core > 0.0 {
            bytes / self.compute_bw_per_core
        } else if flops > 0.0 && self.compute_flop_rate > 0.0 {
            flops / self.compute_flop_rate
        } else {
            f64::NAN
        }
    }
}

/// Which steps of the three-step protocol to execute.
///
/// The steps are independent measurements — each repetition builds a fresh
/// cluster per step from the same jitter family — so skipping a step never
/// perturbs the others: the executed steps stay byte-identical to a full
/// run. The campaign engine uses masks to memoize the "alone" baselines
/// (steps 1 and 2), which do not depend on the sweep variable of most
/// figures, while the together step runs fresh for every sweep point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepMask {
    /// Step 1: computation alone.
    pub compute_alone: bool,
    /// Step 2: communication alone.
    pub comm_alone: bool,
    /// Step 3: both together.
    pub together: bool,
}

impl StepMask {
    /// All three steps (the classic protocol).
    pub const ALL: StepMask = StepMask {
        compute_alone: true,
        comm_alone: true,
        together: true,
    };
    /// Only the communication-alone step.
    pub const COMM_ALONE: StepMask = StepMask {
        compute_alone: false,
        comm_alone: true,
        together: false,
    };
    /// Only the computation-alone step.
    pub const COMPUTE_ALONE: StepMask = StepMask {
        compute_alone: true,
        comm_alone: false,
        together: false,
    };
    /// Everything except the communication-alone step.
    pub const WITHOUT_COMM_ALONE: StepMask = StepMask {
        compute_alone: true,
        comm_alone: false,
        together: true,
    };
    /// Only the together step.
    pub const TOGETHER: StepMask = StepMask {
        compute_alone: false,
        comm_alone: false,
        together: true,
    };
}

/// Results of the three steps across repetitions.
#[derive(Clone, Debug, Default)]
pub struct StepResults {
    /// Step 1: computation alone.
    pub compute_alone: Vec<RepMetrics>,
    /// Step 2: communication alone.
    pub comm_alone: Vec<RepMetrics>,
    /// Step 3: both together.
    pub together: Vec<RepMetrics>,
}

impl StepResults {
    fn collect(metrics: &[RepMetrics], f: impl Fn(&RepMetrics) -> f64) -> Vec<f64> {
        metrics.iter().map(f).collect()
    }

    /// Latencies (µs) of the communication-alone step, one per rep.
    pub fn lat_alone(&self) -> Vec<f64> {
        Self::collect(&self.comm_alone, |m| m.comm_latency_us)
    }

    /// Latencies (µs) of the together step.
    pub fn lat_together(&self) -> Vec<f64> {
        Self::collect(&self.together, |m| m.comm_latency_us)
    }

    /// Bandwidths (bytes/s) of the communication-alone step.
    pub fn bw_alone(&self) -> Vec<f64> {
        Self::collect(&self.comm_alone, |m| m.comm_bandwidth)
    }

    /// Bandwidths (bytes/s) of the together step.
    pub fn bw_together(&self) -> Vec<f64> {
        Self::collect(&self.together, |m| m.comm_bandwidth)
    }

    /// Per-core compute memory bandwidth, alone.
    pub fn compute_bw_alone(&self) -> Vec<f64> {
        Self::collect(&self.compute_alone, |m| m.compute_bw_per_core)
    }

    /// Per-core compute memory bandwidth, together.
    pub fn compute_bw_together(&self) -> Vec<f64> {
        Self::collect(&self.together, |m| m.compute_bw_per_core)
    }

    /// Per-core flop rate, alone.
    pub fn flops_alone(&self) -> Vec<f64> {
        Self::collect(&self.compute_alone, |m| m.compute_flop_rate)
    }

    /// Per-core flop rate, together.
    pub fn flops_together(&self) -> Vec<f64> {
        Self::collect(&self.together, |m| m.compute_flop_rate)
    }
}

/// Build the cluster for one repetition.
pub fn build_cluster(cfg: &ProtocolConfig, family: &JitterFamily, rep: u64) -> Cluster {
    let mut cluster = Cluster::new(&cfg.machine, cfg.governor, cfg.uncore, cfg.placement);
    cluster.apply_run_jitter(family, rep);
    cluster
}

/// Start the configured computation jobs; returns their ids per node, or a
/// typed error when more cores are requested than the machine provides.
fn try_start_compute(
    cfg: &ProtocolConfig,
    cluster: &mut Cluster,
) -> Result<Vec<(usize, memsim::exec::JobId)>, ProtocolError> {
    let mut jobs = Vec::new();
    let Some(w) = &cfg.workload else {
        return Ok(jobs);
    };
    if cfg.compute_cores == 0 {
        return Ok(jobs);
    }
    let cores = cluster.compute_cores();
    if cfg.compute_cores > cores.len() {
        return Err(ProtocolError::TooManyComputeCores {
            requested: cfg.compute_cores,
            available: cores.len(),
        });
    }
    let nodes: &[usize] = if cfg.compute_both_nodes { &[0, 1] } else { &[0] };
    for &node in nodes {
        for &core in &cores[..cfg.compute_cores] {
            let mut spec = w.on_core(core);
            // Run "forever": the protocol stops jobs at the end of the
            // window and reads partial statistics.
            spec.iterations = u64::MAX / 2;
            jobs.push((node, cluster.start_job(node, spec)));
        }
    }
    Ok(jobs)
}

/// Stop jobs and aggregate their metrics.
fn stop_compute(
    cluster: &mut Cluster,
    jobs: Vec<(usize, memsim::exec::JobId)>,
    out: &mut RepMetrics,
) {
    let mut n = 0.0;
    for (node, id) in jobs {
        if let Some(st) = cluster.stop_job(node, id) {
            let el = st.elapsed_s();
            if el > 0.0 {
                out.compute_bw_per_core += st.bytes / el;
                out.compute_flop_rate += st.flops / el;
                out.compute_stall_fraction += st.stall_fraction();
                n += 1.0;
            }
        }
    }
    if n > 0.0 {
        out.compute_bw_per_core /= n;
        out.compute_flop_rate /= n;
        out.compute_stall_fraction /= n;
    }
}

/// Record the profiler's retry totals into a rep's metrics.
fn collect_retry_totals(cluster: &Cluster, m: &mut RepMetrics) {
    for rec in cluster.send_profile() {
        m.comm_retries += rec.retries as u64;
        m.comm_retrans_bytes += rec.retrans_bytes;
        m.comm_retry_wait_s += rec.retry_wait.as_secs_f64();
    }
}

/// Run the full three-step protocol.
///
/// Panics on an invalid configuration or a failed repetition; see
/// [`try_run`].
pub fn run(cfg: &ProtocolConfig) -> StepResults {
    match try_run(cfg) {
        Ok(r) => r,
        Err(e) => panic!("{}", e),
    }
}

/// Fallible [`run`]: an invalid configuration or a repetition that wedges,
/// dries up or loses a transfer permanently comes back as
/// [`ProtocolError`] instead of a panic. Use [`crate::runner`] to keep a
/// campaign going across such failures.
pub fn try_run(cfg: &ProtocolConfig) -> Result<StepResults, ProtocolError> {
    try_run_faulted(cfg, &simcore::FaultPlan::new(cfg.seed))
}

/// [`try_run`] with a fault plan injected into every repetition's cluster.
/// An empty plan reproduces `try_run` exactly (byte-identical event
/// streams).
pub fn try_run_faulted(
    cfg: &ProtocolConfig,
    plan: &simcore::FaultPlan,
) -> Result<StepResults, ProtocolError> {
    try_run_masked(cfg, plan, StepMask::ALL)
}

/// [`try_run_faulted`] restricted to a subset of the three steps. The
/// executed steps produce byte-identical metrics to a `StepMask::ALL` run
/// of the same configuration; the skipped steps' vectors stay empty.
pub fn try_run_masked(
    cfg: &ProtocolConfig,
    plan: &simcore::FaultPlan,
    mask: StepMask,
) -> Result<StepResults, ProtocolError> {
    cfg.validate()?;
    plan.validate()
        .map_err(|e| ProtocolError::Cluster(ClusterError::from(e)))?;
    let family = JitterFamily::new(cfg.seed);
    let mut results = StepResults::default();
    for rep in 0..cfg.reps {
        // Step 1: computation alone.
        if mask.compute_alone && cfg.workload.is_some() && cfg.compute_cores > 0 {
            if simcore::telemetry::is_active() {
                simcore::telemetry::mark_run(&format!("rep{}/compute_alone", rep));
            }
            let mut cluster = build_cluster(cfg, &family, rep as u64);
            apply_plan(&mut cluster, plan)?;
            let jobs = try_start_compute(cfg, &mut cluster)?;
            let deadline = cluster.engine.now() + cfg.compute_window;
            while cluster.step_until(deadline).is_some() {}
            let mut m = RepMetrics::default();
            stop_compute(&mut cluster, jobs, &mut m);
            results.compute_alone.push(m);
        }

        // Step 2: communication alone.
        if mask.comm_alone {
            if simcore::telemetry::is_active() {
                simcore::telemetry::mark_run(&format!("rep{}/comm_alone", rep));
            }
            let mut cluster = build_cluster(cfg, &family, rep as u64);
            apply_plan(&mut cluster, plan)?;
            cluster.enable_profiling();
            let res = pingpong::try_run(&mut cluster, cfg.pingpong)?;
            let mut m = RepMetrics {
                comm_latency_us: res.median_latency_us(),
                comm_bandwidth: res.median_bandwidth(),
                ..Default::default()
            };
            collect_retry_totals(&cluster, &mut m);
            results.comm_alone.push(m);
        }

        // Step 3: together.
        if mask.together {
            if simcore::telemetry::is_active() {
                simcore::telemetry::mark_run(&format!("rep{}/together", rep));
            }
            let mut cluster = build_cluster(cfg, &family, rep as u64);
            apply_plan(&mut cluster, plan)?;
            cluster.enable_profiling();
            let jobs = try_start_compute(cfg, &mut cluster)?;
            let res = pingpong::try_run_with_background(&mut cluster, cfg.pingpong, |_, ev| {
                // Jobs are effectively endless; completions are impossible,
                // other events are ignored.
                let _ = ev;
            })?;
            let mut m = RepMetrics {
                comm_latency_us: res.median_latency_us(),
                comm_bandwidth: res.median_bandwidth(),
                ..Default::default()
            };
            collect_retry_totals(&cluster, &mut m);
            stop_compute(&mut cluster, jobs, &mut m);
            results.together.push(m);
        }
    }
    Ok(results)
}

/// Inject a fault plan into a freshly built cluster (no-op for an empty
/// plan, preserving the healthy event stream byte for byte).
fn apply_plan(cluster: &mut Cluster, plan: &simcore::FaultPlan) -> Result<(), ProtocolError> {
    if plan.is_empty() {
        return Ok(());
    }
    cluster
        .apply_faults(plan)
        .map_err(|e| ProtocolError::Cluster(ClusterError::from(e)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernels::stream::{workload, StreamKernel};
    use topology::{henri, NumaId};

    fn stream_cfg(cores: usize, pp: PingPongConfig) -> ProtocolConfig {
        let w = workload(StreamKernel::Triad, 2_000_000, NumaId(0), 1);
        let mut cfg = ProtocolConfig::new(henri(), Some(w));
        cfg.compute_cores = cores;
        cfg.pingpong = pp;
        cfg.reps = 3;
        cfg.compute_window = SimTime::from_millis(1);
        cfg
    }

    #[test]
    fn three_steps_produce_metrics() {
        let cfg = stream_cfg(4, PingPongConfig::latency(5));
        let r = run(&cfg);
        assert_eq!(r.compute_alone.len(), 3);
        assert_eq!(r.comm_alone.len(), 3);
        assert_eq!(r.together.len(), 3);
        assert!(r.comm_alone[0].comm_latency_us > 0.5);
        assert!(r.compute_alone[0].compute_bw_per_core > 1e9);
    }

    #[test]
    fn contention_reduces_both_sides() {
        // 35 memory-bound cores against a 64 MiB ping-pong: both metrics
        // must degrade vs alone.
        let mut cfg = stream_cfg(
            35,
            PingPongConfig {
                size: 64 << 20,
                reps: 2,
                warmup: 1,
                mtag: 1,
            },
        );
        cfg.reps = 2;
        let r = run(&cfg);
        let bw_alone = simcore::Summary::of(&r.bw_alone()).median;
        let bw_tog = simcore::Summary::of(&r.bw_together()).median;
        assert!(
            bw_tog < bw_alone * 0.7,
            "network bw: alone {} together {}",
            bw_alone,
            bw_tog
        );
        let cbw_alone = simcore::Summary::of(&r.compute_bw_alone()).median;
        let cbw_tog = simcore::Summary::of(&r.compute_bw_together()).median;
        assert!(
            cbw_tog < cbw_alone,
            "compute bw: alone {} together {}",
            cbw_alone,
            cbw_tog
        );
    }

    #[test]
    fn no_compute_cores_skips_step_one() {
        let mut cfg = stream_cfg(0, PingPongConfig::latency(3));
        cfg.reps = 2;
        let r = run(&cfg);
        assert!(r.compute_alone.is_empty());
        assert_eq!(r.comm_alone.len(), 2);
    }

    #[test]
    fn iteration_time_derivation() {
        let w = workload(StreamKernel::Triad, 1_000_000, NumaId(0), 1);
        let m = RepMetrics {
            compute_bw_per_core: 12.0e9,
            ..Default::default()
        };
        // 24 MB per pass at 12 GB/s = 2 ms.
        let t = m.iteration_time(&w);
        assert!((t - 2e-3).abs() < 1e-9, "t {}", t);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = stream_cfg(4, PingPongConfig::latency(3));
        cfg.compute_cores = 1000;
        assert!(matches!(
            cfg.validate(),
            Err(ProtocolError::TooManyComputeCores {
                requested: 1000,
                available: 35
            })
        ));
        assert!(cfg
            .validate()
            .unwrap_err()
            .to_string()
            .contains("computing cores"));
        assert!(matches!(
            try_run(&cfg),
            Err(ProtocolError::TooManyComputeCores { .. })
        ));
        let mut zero_reps = stream_cfg(2, PingPongConfig::latency(3));
        zero_reps.reps = 0;
        assert!(matches!(
            zero_reps.validate(),
            Err(ProtocolError::Zero { what: "reps" })
        ));
        let mut zero_size = stream_cfg(2, PingPongConfig::latency(3));
        zero_size.pingpong.size = 0;
        assert!(matches!(
            zero_size.validate(),
            Err(ProtocolError::Zero {
                what: "ping-pong size"
            })
        ));
    }

    #[test]
    fn faulted_protocol_records_retry_work() {
        let mut cfg = stream_cfg(
            0,
            PingPongConfig {
                size: 256 * 1024,
                reps: 4,
                warmup: 1,
                mtag: 3,
            },
        );
        cfg.reps = 2;
        let plan = simcore::FaultPlan::new(cfg.seed).with_cts_drop(0.4);
        let r = try_run_faulted(&cfg, &plan).unwrap();
        let total: u64 = r.comm_alone.iter().map(|m| m.comm_retries).sum();
        assert!(total > 0, "p=0.4 CTS drops must force retransmissions");
        assert!(r.comm_alone.iter().any(|m| m.comm_retrans_bytes > 0));
        // The same config on a healthy fabric records zero retry work.
        let h = try_run(&cfg).unwrap();
        assert!(h.comm_alone.iter().all(|m| m.comm_retries == 0));
        assert!(h.comm_alone.iter().all(|m| m.comm_retry_wait_s == 0.0));
    }

    #[test]
    fn masked_steps_match_full_run() {
        let cfg = stream_cfg(4, PingPongConfig::latency(3));
        let full = run(&cfg);
        let plan = simcore::FaultPlan::new(cfg.seed);
        let comm = try_run_masked(&cfg, &plan, StepMask::COMM_ALONE).unwrap();
        assert!(comm.compute_alone.is_empty());
        assert!(comm.together.is_empty());
        assert_eq!(comm.lat_alone(), full.lat_alone());
        let rest = try_run_masked(&cfg, &plan, StepMask::WITHOUT_COMM_ALONE).unwrap();
        assert!(rest.comm_alone.is_empty());
        assert_eq!(rest.lat_together(), full.lat_together());
        assert_eq!(rest.compute_bw_alone(), full.compute_bw_alone());
    }

    #[test]
    fn reps_differ_with_jitter() {
        let cfg = stream_cfg(2, PingPongConfig::latency(3));
        let r = run(&cfg);
        let lats = r.lat_alone();
        assert!(lats.iter().any(|&l| (l - lats[0]).abs() > 1e-6));
    }
}
