//! Figure data containers, qualitative checks and rendering.

use simcore::Series;
use std::fmt::Write as _;

/// A qualitative criterion extracted from the paper, evaluated against the
/// simulated data ("who wins, by roughly what factor, where the crossover
/// falls").
#[derive(Clone, Debug)]
pub struct Check {
    /// Short name.
    pub name: String,
    /// Whether the simulated data satisfies it.
    pub pass: bool,
    /// Human-readable evidence (measured vs expected).
    pub detail: String,
}

impl Check {
    /// Build a check.
    pub fn new(name: impl Into<String>, pass: bool, detail: impl Into<String>) -> Check {
        Check {
            name: name.into(),
            pass,
            detail: detail.into(),
        }
    }
}

/// Per-repetition outcome attached to a figure when the experiment ran
/// through the crash-proof runner (see [`crate::runner`]). Healthy
/// experiments leave `runs` empty; fault-injection campaigns record one
/// entry per repetition so the export shows which reps completed, which
/// recovered on a retry seed and which failed — plus the rendezvous retry
/// work each one performed.
#[derive(Clone, Debug, Default)]
pub struct RunOutcome {
    /// Repetition index.
    pub rep: u32,
    /// Seed the (final) attempt ran with.
    pub seed: u64,
    /// `"ok"`, `"recovered"` or `"failed"`.
    pub status: &'static str,
    /// Error text for failed/recovered runs.
    pub error: Option<String>,
    /// Rendezvous retransmissions across all sends of the rep.
    pub retries: u64,
    /// Control-message bytes re-sent across the wire.
    pub retrans_bytes: u64,
    /// Simulated seconds spent in expired retransmission timeouts.
    pub retry_wait_s: f64,
}

/// Everything an experiment produces for one figure or table.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Identifier matching the paper ("fig4a", "table1", …).
    pub id: &'static str,
    /// Title.
    pub title: String,
    /// X-axis label.
    pub xlabel: &'static str,
    /// Y-axis label.
    pub ylabel: &'static str,
    /// Data series (plain = alone, "(+comm)"/"(+compute)" = together).
    pub series: Vec<Series>,
    /// Free-form notes (paper reference points, substitutions).
    pub notes: Vec<String>,
    /// Automated qualitative checks.
    pub checks: Vec<Check>,
    /// Per-repetition outcomes (empty unless the experiment ran under the
    /// crash-proof runner).
    pub runs: Vec<RunOutcome>,
}

impl FigureData {
    /// True if every check passed.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// True when at least one recorded repetition failed permanently or
    /// timed out — the figure's bands were computed from the surviving
    /// reps only.
    pub fn is_partial(&self) -> bool {
        self.runs
            .iter()
            .any(|r| r.status == "failed" || r.status == "timeout")
    }

    /// Render as an ASCII report block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "   x: {}   y: {}", self.xlabel, self.ylabel);
        for s in &self.series {
            let _ = writeln!(out, "   series: {}", s.name);
            let _ = writeln!(
                out,
                "   {:>14} {:>14} {:>14} {:>14}",
                self.xlabel, "median", "d1", "d9"
            );
            for p in &s.points {
                let _ = writeln!(
                    out,
                    "   {:>14} {:>14} {:>14} {:>14}",
                    fmt_num(p.x),
                    fmt_num(p.y.median),
                    fmt_num(p.y.d1),
                    fmt_num(p.y.d9)
                );
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "   note: {}", n);
        }
        for r in &self.runs {
            let _ = writeln!(
                out,
                "   run {:>3} seed {:#018x} [{}] retries {} retrans {} B wait {:.1} us{}",
                r.rep,
                r.seed,
                r.status,
                r.retries,
                r.retrans_bytes,
                r.retry_wait_s * 1e6,
                r.error
                    .as_deref()
                    .map(|e| format!(" — {}", e))
                    .unwrap_or_default()
            );
        }
        for c in &self.checks {
            let _ = writeln!(
                out,
                "   [{}] {}: {}",
                if c.pass { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            );
        }
        out
    }

    /// Export all series as CSV (`series,x,median,d1,d9,min,max,n`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,median,d1,d9,min,max,n\n");
        for s in &self.series {
            for p in &s.points {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{}",
                    s.name, p.x, p.y.median, p.y.d1, p.y.d9, p.y.min, p.y.max, p.y.n
                );
            }
        }
        out
    }
}

/// Compact number formatting for mixed-magnitude tables.
pub fn fmt_num(v: f64) -> String {
    let a = v.abs();
    if v == 0.0 {
        "0".into()
    } else if a >= 1e9 {
        format!("{:.3}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.3}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.3}k", v / 1e3)
    } else if a >= 0.01 {
        format!("{:.3}", v)
    } else {
        format!("{:.3e}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fig() -> FigureData {
        let mut s = Series::new("latency (alone)");
        s.push(1.0, &[1.5, 1.6, 1.7]);
        s.push(2.0, &[2.5, 2.6, 2.7]);
        FigureData {
            id: "figX",
            title: "sample".into(),
            xlabel: "cores",
            ylabel: "latency (us)",
            series: vec![s],
            notes: vec!["paper: something".into()],
            checks: vec![
                Check::new("grows", true, "2.6 > 1.6"),
                Check::new("bounded", true, "under 10"),
            ],
            runs: Vec::new(),
        }
    }

    #[test]
    fn render_contains_everything() {
        let f = sample_fig();
        let r = f.render();
        assert!(r.contains("figX"));
        assert!(r.contains("latency (alone)"));
        assert!(r.contains("[PASS] grows"));
        assert!(r.contains("note: paper"));
        assert!(f.all_pass());
    }

    #[test]
    fn failing_check_detected() {
        let mut f = sample_fig();
        f.checks.push(Check::new("nope", false, "bad"));
        assert!(!f.all_pass());
        assert!(f.render().contains("[FAIL] nope"));
    }

    #[test]
    fn csv_shape() {
        let f = sample_fig();
        let csv = f.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 points
        assert!(lines[0].starts_with("series,x,median"));
        assert_eq!(lines[1].split(',').count(), 8);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(10.5e9), "10.500G");
        assert_eq!(fmt_num(1.234e6), "1.234M");
        assert_eq!(fmt_num(4096.0), "4.096k");
        assert_eq!(fmt_num(1.8), "1.800");
        assert_eq!(fmt_num(0.0001), "1.000e-4");
    }
}
