//! Shared STREAM-vs-ping-pong contention measurements (Figures 4, 5 and
//! Table 1).
//!
//! One *contention point* is the three-step protocol at a given
//! (machine, placement, network metric, computing-core count). Figure 4
//! sweeps core counts for the paper's default placement, Figure 5 sweeps
//! all four placements, and Table 1 summarizes Figure 5 — so the three
//! experiments request overlapping points. Points are memoized in the
//! campaign's [`BaselineCache`] keyed by configuration content: within one
//! campaign, fig4, fig5 and table1 share every overlapping measurement
//! instead of recomputing three placement sweeps.
//!
//! The communication-alone step does not depend on the computing-core
//! count at all (no jobs run beside it), so it is memoized once per
//! (machine, placement, metric) and shared by every core count of the
//! sweep.

use kernels::stream::{workload, StreamKernel};
use mpisim::pingpong::PingPongConfig;
use topology::{BindingPolicy, MachineSpec, Placement};

use crate::campaign::PointCtx;
use crate::codec::{Dec, Enc};
use crate::experiments::Fidelity;
use crate::protocol::{self, ProtocolConfig, RepMetrics, StepMask, StepResults};

/// STREAM array length per pass (paper-style large arrays).
pub const STREAM_ELEMS: usize = 2_000_000;

/// Core-count sweep used by Figures 4 and 5.
pub fn core_sweep(max: usize) -> Vec<usize> {
    let mut v: Vec<usize> = vec![1, 2, 3, 5, 7, 9, 12, 15, 18, 21, 24, 27, 30, 33, 35];
    v.retain(|&c| c <= max);
    v
}

/// The network metric a contention sweep measures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Small-message latency (µs).
    Latency,
    /// Large-message bandwidth (B/s).
    Bandwidth,
}

impl Metric {
    /// Short tag used in cache keys and point labels.
    pub fn tag(self) -> &'static str {
        match self {
            Metric::Latency => "lat",
            Metric::Bandwidth => "bw",
        }
    }

    /// The ping-pong configuration of the metric.
    pub fn pingpong(self, fidelity: Fidelity) -> PingPongConfig {
        match self {
            Metric::Latency => PingPongConfig::latency(fidelity.lat_reps()),
            Metric::Bandwidth => PingPongConfig {
                size: 64 << 20,
                reps: fidelity.bw_reps(),
                warmup: 1,
                mtag: 2,
            },
        }
    }

    /// Extract the metric from per-rep protocol metrics.
    fn extract(self, reps: &[RepMetrics]) -> Vec<f64> {
        reps.iter()
            .map(|m| match self {
                Metric::Latency => m.comm_latency_us,
                Metric::Bandwidth => m.comm_bandwidth,
            })
            .collect()
    }
}

/// Per-rep measurements of one contention point.
#[derive(Clone, Debug)]
pub struct ContentionPoint {
    /// Network metric alone (latency µs or bandwidth B/s), one per rep.
    pub comm_alone: Vec<f64>,
    /// Network metric beside STREAM.
    pub comm_together: Vec<f64>,
    /// STREAM per-core bandwidth alone.
    pub stream_alone: Vec<f64>,
    /// STREAM per-core bandwidth beside the ping-pong.
    pub stream_together: Vec<f64>,
}

impl ContentionPoint {
    /// Exact-bits serialization for the result store (see [`crate::codec`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.f64s(&self.comm_alone)
            .f64s(&self.comm_together)
            .f64s(&self.stream_alone)
            .f64s(&self.stream_together);
        e.into_bytes()
    }

    /// Inverse of [`ContentionPoint::encode`]; `None` on any malformation.
    pub fn decode(bytes: &[u8]) -> Option<ContentionPoint> {
        let mut d = Dec::new(bytes);
        let p = ContentionPoint {
            comm_alone: d.f64s()?,
            comm_together: d.f64s()?,
            stream_alone: d.f64s()?,
            stream_together: d.f64s()?,
        };
        d.finish(p)
    }
}

/// The STREAM NUMA node implied by a placement's data policy.
pub fn data_numa(machine: &MachineSpec, placement: Placement) -> topology::NumaId {
    match placement.data {
        BindingPolicy::NearNic => machine.near_numa(),
        BindingPolicy::FarFromNic => machine.far_numa(),
        BindingPolicy::Numa(n) => n,
    }
}

fn base_config(
    machine: &MachineSpec,
    placement: Placement,
    metric: Metric,
    cores: usize,
    fidelity: Fidelity,
    seed: u64,
) -> ProtocolConfig {
    let w = workload(StreamKernel::Triad, STREAM_ELEMS, data_numa(machine, placement), 1);
    let mut cfg = ProtocolConfig::new(machine.clone(), Some(w));
    cfg.placement = placement;
    cfg.compute_cores = cores;
    cfg.pingpong = metric.pingpong(fidelity);
    cfg.reps = fidelity.reps();
    cfg.seed = seed;
    cfg
}

/// Measure (or fetch from the campaign cache) one contention point. The
/// point's value derives only from its cache key, so every experiment
/// requesting the same (machine, placement, metric, cores) gets the
/// identical measurement — serial or parallel.
pub fn measure(
    ctx: &PointCtx<'_>,
    machine: &MachineSpec,
    placement_label: &str,
    placement: Placement,
    metric: Metric,
    cores: usize,
) -> Result<ContentionPoint, String> {
    let fidelity = ctx.fidelity;
    let point_key = format!(
        "contention/{}/{}/{}/{}",
        machine.name,
        placement_label,
        metric.tag(),
        cores
    );
    // Errors are deliberately not memoized (see
    // `BaselineCache::get_or_compute_result`): a cancelled or failed
    // baseline must not be served to every later point sharing the key.
    let cached: std::sync::Arc<ContentionPoint> =
        ctx.baselines.get_or_compute_result(&point_key, |seed| {
            // The communication-alone step is core-count independent:
            // memoize it once per (machine, placement, metric).
            let comm_key = format!(
                "contention/{}/{}/{}/comm-alone",
                machine.name,
                placement_label,
                metric.tag()
            );
            let comm: std::sync::Arc<StepResults> =
                ctx.baselines.get_or_compute_result(&comm_key, |comm_seed| {
                    let cfg = base_config(machine, placement, metric, cores, fidelity, comm_seed);
                    protocol::try_run_masked(
                        &cfg,
                        &simcore::FaultPlan::new(cfg.seed),
                        StepMask::COMM_ALONE,
                    )
                    .map_err(|e| e.to_string())
                })?;
            let cfg = base_config(machine, placement, metric, cores, fidelity, seed);
            let fresh = protocol::try_run_masked(
                &cfg,
                &simcore::FaultPlan::new(cfg.seed),
                StepMask::WITHOUT_COMM_ALONE,
            )
            .map_err(|e| e.to_string())?;
            Ok(ContentionPoint {
                comm_alone: metric.extract(&comm.comm_alone),
                comm_together: metric.extract(&fresh.together),
                stream_alone: fresh.compute_bw_alone(),
                stream_together: fresh.compute_bw_together(),
            })
        })?;
    Ok((*cached).clone())
}

/// The four series of one contention plot, named as in Figures 4/5.
pub struct ContentionSeries {
    /// Network metric alone (latency µs or bandwidth B/s).
    pub comm_alone: simcore::Series,
    /// Network metric beside STREAM.
    pub comm_together: simcore::Series,
    /// STREAM per-core bandwidth alone.
    pub stream_alone: simcore::Series,
    /// STREAM per-core bandwidth beside the ping-pong.
    pub stream_together: simcore::Series,
}

/// Assemble the four figure series of one metric from per-core-count
/// contention points (in sweep order).
pub fn series_for(
    metric: Metric,
    cores: &[usize],
    points: &[&ContentionPoint],
) -> ContentionSeries {
    let latency = metric == Metric::Latency;
    let mut out = ContentionSeries {
        comm_alone: simcore::Series::new(if latency {
            "latency alone (us)"
        } else {
            "bandwidth alone (B/s)"
        }),
        comm_together: simcore::Series::new(if latency {
            "latency + STREAM (us)"
        } else {
            "bandwidth + STREAM (B/s)"
        }),
        stream_alone: simcore::Series::new("STREAM per-core BW alone (B/s)"),
        stream_together: simcore::Series::new("STREAM per-core BW + comm (B/s)"),
    };
    for (&n, p) in cores.iter().zip(points) {
        out.comm_alone.push(n as f64, &p.comm_alone);
        out.comm_together.push(n as f64, &p.comm_together);
        out.stream_alone.push(n as f64, &p.stream_alone);
        out.stream_together.push(n as f64, &p.stream_together);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_sweep_respects_max() {
        assert!(core_sweep(35).contains(&35));
        assert!(!core_sweep(20).contains(&35));
    }

    #[test]
    fn fig4_default_is_a_table1_row() {
        // Figure 4's placement must be one of the four Table 1 combos so
        // the cache can share its points with Figure 5 and Table 1.
        let combos = Placement::all_combinations();
        assert_eq!(combos[1].1, Placement::fig4_default());
        assert_eq!(combos[1].0, "data near, thread far");
    }
}
