//! Table 1 — qualitative summary of data / communication-thread placement
//! impacts, derived from the Figure 5 sweeps.
//!
//! The sweep plan is identical to Figure 5's, so inside a shared campaign
//! every point is a cache hit: Table 1 costs nothing beyond Figure 5.

use simcore::Series;
use topology::{henri, Placement};

use super::contention::{core_sweep, measure, series_for, ContentionPoint, Metric};
use crate::campaign::{self, expect_value, Experiment, PointCtx, PointOutcome, PointValue, SweepPoint};
use crate::experiments::Fidelity;
use crate::report::{Check, FigureData};

const METRICS: [Metric; 2] = [Metric::Latency, Metric::Bandwidth];

fn cores(fidelity: Fidelity) -> Vec<usize> {
    fidelity.thin(&core_sweep(henri().core_count() as usize - 1))
}

/// One derived row of Table 1.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Placement label.
    pub label: &'static str,
    /// Latency inflation factor at full occupancy.
    pub lat_factor: f64,
    /// 10 %-degradation onset of the latency curve (computing cores).
    pub lat_onset: Option<f64>,
    /// Bandwidth loss at full occupancy, fraction.
    pub bw_loss: f64,
    /// 10 %-degradation onset of the bandwidth curve.
    pub bw_onset: Option<f64>,
}

fn rows_from(fidelity: Fidelity, points: &[PointOutcome]) -> Vec<TableRow> {
    let cores = cores(fidelity);
    Placement::all_combinations()
        .iter()
        .enumerate()
        .map(|(pi, (label, _))| {
            let collect = |mi: usize| -> Vec<&ContentionPoint> {
                (0..cores.len())
                    .map(|ci| {
                        expect_value::<ContentionPoint>(
                            points,
                            (pi * METRICS.len() + mi) * cores.len() + ci,
                        )
                    })
                    .collect()
            };
            let lat = series_for(Metric::Latency, &cores, &collect(0));
            let bw = series_for(Metric::Bandwidth, &cores, &collect(1));
            let lat_base = lat.comm_alone.points[0].y.median;
            let lat_full = lat.comm_together.points.last().expect("points").y.median;
            let bw_base = bw.comm_alone.points[0].y.median;
            let bw_full = bw.comm_together.points.last().expect("points").y.median;
            TableRow {
                label,
                lat_factor: lat_full / lat_base,
                lat_onset: lat.comm_together.onset_x(lat_base, 0.10),
                bw_loss: 1.0 - bw_full / bw_base,
                bw_onset: bw.comm_together.onset_x(bw_base, 0.10),
            }
        })
        .collect()
}

/// Compute the rows (standalone serial campaign).
pub fn rows(fidelity: Fidelity) -> Vec<TableRow> {
    rows_from(fidelity, &campaign::run_points(&Table1, fidelity))
}

/// Registry driver for Table 1 (same plan as Figure 5; every point shared
/// through the campaign cache).
pub struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn anchor(&self) -> &'static str {
        "§4.3, Table 1"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let cores = cores(fidelity);
        let mut plan = Vec::new();
        for (pi, (label, _)) in Placement::all_combinations().into_iter().enumerate() {
            for (mi, m) in METRICS.iter().enumerate() {
                for (ci, &n) in cores.iter().enumerate() {
                    plan.push(SweepPoint::new(
                        (pi * METRICS.len() + mi) * cores.len() + ci,
                        format!("{}, {} @ {} cores", label, m.tag(), n),
                    ));
                }
            }
        }
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let cores = cores(ctx.fidelity);
        let combos = Placement::all_combinations();
        let pi = point.index / (METRICS.len() * cores.len());
        let mi = (point.index / cores.len()) % METRICS.len();
        let n = cores[point.index % cores.len()];
        let (label, placement) = combos[pi];
        let machine = henri();
        let p = measure(ctx, &machine, label, placement, METRICS[mi], n)?;
        Ok(Box::new(p))
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        Some(value.downcast_ref::<ContentionPoint>()?.encode())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        Some(Box::new(ContentionPoint::decode(bytes)?))
    }

    fn finalize(&self, fidelity: Fidelity, points: &[PointOutcome]) -> Vec<FigureData> {
        let rows = rows_from(fidelity, points);
        // Encode the table as series: x = row index.
        let mut s_lat = Series::new("latency inflation factor at full occupancy");
        let mut s_bw = Series::new("bandwidth loss (%) at full occupancy");
        let mut notes = vec![
            "rows: 0 = data near/thread near, 1 = near/far, 2 = far/near, 3 = far/far".into(),
        ];
        for (i, r) in rows.iter().enumerate() {
            s_lat.push(i as f64, &[r.lat_factor]);
            s_bw.push(i as f64, &[r.bw_loss * 100.0]);
            notes.push(format!(
                "{}: latency ×{:.2} (onset {:?}), bandwidth −{:.0} % (onset {:?})",
                r.label,
                r.lat_factor,
                r.lat_onset,
                r.bw_loss * 100.0,
                r.bw_onset
            ));
        }

        // Table 1's qualitative content.
        let near_thread_max = rows[0].lat_factor.max(rows[2].lat_factor);
        let far_thread_min = rows[1].lat_factor.min(rows[3].lat_factor);
        let near_data_max = rows[0].bw_loss.max(rows[1].bw_loss);
        let far_data_min = rows[2].bw_loss.min(rows[3].bw_loss);
        let checks = vec![
            Check::new(
                "thread far ⇒ latency increases highly; thread near ⇒ slightly",
                far_thread_min > near_thread_max,
                format!(
                    "far ≥ ×{:.2} vs near ≤ ×{:.2}",
                    far_thread_min, near_thread_max
                ),
            ),
            Check::new(
                "data far ⇒ bandwidth drops more than data near",
                far_data_min > near_data_max,
                format!(
                    "far ≥ {:.0} % vs near ≤ {:.0} %",
                    far_data_min * 100.0,
                    near_data_max * 100.0
                ),
            ),
        ];

        vec![FigureData {
            id: "table1",
            title: "Summary of data / communication-thread placement impact (henri)".into(),
            xlabel: "placement row",
            ylabel: "factor / %",
            series: vec![s_lat, s_bw],
            notes,
            checks,
            runs: Vec::new(),
        }]
    }
}

/// Run Table 1.
pub fn run(fidelity: Fidelity) -> FigureData {
    campaign::run_experiment(&Table1, &campaign::CampaignOptions::serial(fidelity))
        .figures
        .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_quick_passes_checks() {
        let t = run(Fidelity::Quick);
        for c in &t.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
        assert_eq!(t.series.len(), 2);
        assert_eq!(t.series[0].points.len(), 4);
    }
}
