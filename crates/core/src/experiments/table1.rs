//! Table 1 — qualitative summary of data / communication-thread placement
//! impacts, derived from the Figure 5 sweeps.

use crate::experiments::fig5_placement::run_placements;
use crate::experiments::Fidelity;
use crate::report::{Check, FigureData};
use simcore::Series;

/// One derived row of Table 1.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Placement label.
    pub label: &'static str,
    /// Latency inflation factor at full occupancy.
    pub lat_factor: f64,
    /// 10 %-degradation onset of the latency curve (computing cores).
    pub lat_onset: Option<f64>,
    /// Bandwidth loss at full occupancy, fraction.
    pub bw_loss: f64,
    /// 10 %-degradation onset of the bandwidth curve.
    pub bw_onset: Option<f64>,
}

/// Compute the rows.
pub fn rows(fidelity: Fidelity) -> Vec<TableRow> {
    run_placements(fidelity)
        .into_iter()
        .map(|r| {
            let lat_base = r.lat.comm_alone.points[0].y.median;
            let lat_full = r.lat.comm_together.points.last().expect("points").y.median;
            let bw_base = r.bw.comm_alone.points[0].y.median;
            let bw_full = r.bw.comm_together.points.last().expect("points").y.median;
            TableRow {
                label: r.label,
                lat_factor: lat_full / lat_base,
                lat_onset: r.lat.comm_together.onset_x(lat_base, 0.10),
                bw_loss: 1.0 - bw_full / bw_base,
                bw_onset: r.bw.comm_together.onset_x(bw_base, 0.10),
            }
        })
        .collect()
}

/// Run Table 1.
pub fn run(fidelity: Fidelity) -> FigureData {
    let rows = rows(fidelity);
    // Encode the table as series: x = row index.
    let mut s_lat = Series::new("latency inflation factor at full occupancy");
    let mut s_bw = Series::new("bandwidth loss (%) at full occupancy");
    let mut notes = vec![
        "rows: 0 = data near/thread near, 1 = near/far, 2 = far/near, 3 = far/far".into(),
    ];
    for (i, r) in rows.iter().enumerate() {
        s_lat.push(i as f64, &[r.lat_factor]);
        s_bw.push(i as f64, &[r.bw_loss * 100.0]);
        notes.push(format!(
            "{}: latency ×{:.2} (onset {:?}), bandwidth −{:.0} % (onset {:?})",
            r.label, r.lat_factor, r.lat_onset, r.bw_loss * 100.0, r.bw_onset
        ));
    }

    // Table 1's qualitative content.
    let near_thread_max = rows[0].lat_factor.max(rows[2].lat_factor);
    let far_thread_min = rows[1].lat_factor.min(rows[3].lat_factor);
    let near_data_max = rows[0].bw_loss.max(rows[1].bw_loss);
    let far_data_min = rows[2].bw_loss.min(rows[3].bw_loss);
    let checks = vec![
        Check::new(
            "thread far ⇒ latency increases highly; thread near ⇒ slightly",
            far_thread_min > near_thread_max,
            format!("far ≥ ×{:.2} vs near ≤ ×{:.2}", far_thread_min, near_thread_max),
        ),
        Check::new(
            "data far ⇒ bandwidth drops more than data near",
            far_data_min > near_data_max,
            format!(
                "far ≥ {:.0} % vs near ≤ {:.0} %",
                far_data_min * 100.0,
                near_data_max * 100.0
            ),
        ),
    ];

    FigureData {
        id: "table1",
        title: "Summary of data / communication-thread placement impact (henri)".into(),
        xlabel: "placement row",
        ylabel: "factor / %",
        series: vec![s_lat, s_bw],
        notes,
        checks,
        runs: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_quick_passes_checks() {
        let t = run(Fidelity::Quick);
        for c in &t.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
        assert_eq!(t.series.len(), 2);
        assert_eq!(t.series[0].points.len(), 4);
    }
}
