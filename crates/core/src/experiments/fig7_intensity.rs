//! Figure 7 — impact of the application's memory pressure on network
//! performance, via the tunable-arithmetic-intensity TRIAD (§4.5).
//!
//! The *cursor* repeats the TRIAD update on each element before moving on:
//! few repetitions → memory-bound (high pressure), many → CPU-bound. On
//! henri the boundary sits around 6 flop/B: below it the network latency
//! doubles and the bandwidth drops ~60 %; above it communication returns to
//! nominal.
//!
//! The communication-alone baseline does not depend on the cursor (no jobs
//! run beside it), so it is measured once per metric through the campaign
//! cache and shared by every cursor of the sweep.

use kernels::tunable;
use mpisim::pingpong::PingPongConfig;
use simcore::Series;
use topology::{henri, Placement};

use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::experiments::Fidelity;
use crate::paper;
use crate::protocol::{self, ProtocolConfig, StepMask, StepResults};
use crate::report::{Check, FigureData};

/// Elements per tunable-TRIAD pass.
const ELEMS: usize = 1_000_000;

/// Cursor sweep covering 0.17–85 flop/B.
fn cursor_sweep() -> Vec<u32> {
    vec![1, 2, 4, 8, 16, 24, 36, 48, 72, 96, 144, 240, 480, 1020]
}

/// Quick mode needs points straddling the crossover (≈8 flop/B with 35
/// normal-license cores at the 2.5 GHz ladder tail), so it keeps a
/// hand-picked subset instead of generic thinning.
fn cursors(fidelity: Fidelity) -> Vec<u32> {
    fidelity.pick(&cursor_sweep(), &[1, 48, 144, 1020])
}

/// One latency point: per-rep alone and together latencies (µs).
struct LatOut {
    alone: Vec<f64>,
    together: Vec<f64>,
}

/// One bandwidth point: per-rep alone/together bandwidths plus compute
/// pass times (ms).
struct BwOut {
    alone: Vec<f64>,
    together: Vec<f64>,
    t_alone: Vec<f64>,
    t_together: Vec<f64>,
}

fn base_config(cursor: u32, pingpong: PingPongConfig, fidelity: Fidelity, seed: u64) -> ProtocolConfig {
    let machine = henri();
    let w = tunable::workload(ELEMS, cursor, machine.near_numa(), 1);
    let mut cfg = ProtocolConfig::new(machine.clone(), Some(w));
    cfg.placement = Placement::fig4_default();
    cfg.compute_cores = 35.min(machine.core_count() as usize - 1);
    cfg.pingpong = pingpong;
    cfg.reps = fidelity.reps();
    cfg.seed = seed;
    cfg
}

/// Communication-alone baseline, memoized per metric (cursor-independent:
/// nothing computes beside it).
fn comm_alone(
    ctx: &PointCtx<'_>,
    tag: &str,
    pingpong: PingPongConfig,
) -> Result<StepResults, String> {
    let key = format!("fig7/comm-alone/{}", tag);
    // Errors are not memoized: a cancelled baseline must not poison every
    // later cursor point sharing this key.
    let cached: std::sync::Arc<StepResults> =
        ctx.baselines.get_or_compute_result(&key, |seed| {
            let cfg = base_config(cursor_sweep()[0], pingpong, ctx.fidelity, seed);
            protocol::try_run_masked(
                &cfg,
                &simcore::FaultPlan::new(cfg.seed),
                StepMask::COMM_ALONE,
            )
            .map_err(|e| e.to_string())
        })?;
    Ok((*cached).clone())
}

/// Registry driver for Figure 7 (sweep: {latency, bandwidth} × cursors).
pub struct Fig7;

impl Experiment for Fig7 {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn anchor(&self) -> &'static str {
        "§4.5, Figures 7a/7b"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let cursors = cursors(fidelity);
        let mut plan = Vec::new();
        for (mi, tag) in ["lat", "bw"].iter().enumerate() {
            for (ci, &cursor) in cursors.iter().enumerate() {
                plan.push(SweepPoint::new(
                    mi * cursors.len() + ci,
                    format!("{} @ cursor {} ({:.2} flop/B)", tag, cursor, tunable::intensity(cursor)),
                ));
            }
        }
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let cursors = cursors(ctx.fidelity);
        let latency = point.index < cursors.len();
        let cursor = cursors[point.index % cursors.len()];
        if latency {
            let pp = PingPongConfig::latency(ctx.fidelity.lat_reps());
            let alone = comm_alone(ctx, "lat", pp)?;
            let cfg = base_config(cursor, pp, ctx.fidelity, ctx.seed);
            // The latency figure does not use the computation-alone step.
            let r = protocol::try_run_masked(
                &cfg,
                &simcore::FaultPlan::new(cfg.seed),
                StepMask::TOGETHER,
            )
            .map_err(|e| e.to_string())?;
            Ok(Box::new(LatOut {
                alone: alone.lat_alone(),
                together: r.lat_together(),
            }))
        } else {
            let pp = PingPongConfig {
                size: 64 << 20,
                reps: ctx.fidelity.bw_reps(),
                warmup: 1,
                mtag: 5,
            };
            let alone = comm_alone(ctx, "bw", pp)?;
            let cfg = base_config(cursor, pp, ctx.fidelity, ctx.seed);
            let r = protocol::try_run_masked(
                &cfg,
                &simcore::FaultPlan::new(cfg.seed),
                StepMask::WITHOUT_COMM_ALONE,
            )
            .map_err(|e| e.to_string())?;
            let w = cfg.workload.clone().expect("workload set");
            let t_alone: Vec<f64> = r
                .compute_alone
                .iter()
                .map(|m| m.iteration_time(&w) * 1e3)
                .collect();
            let t_together: Vec<f64> = r
                .together
                .iter()
                .map(|m| m.iteration_time(&w) * 1e3)
                .collect();
            Ok(Box::new(BwOut {
                alone: alone.bw_alone(),
                together: r.bw_together(),
                t_alone,
                t_together,
            }))
        }
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        let mut e = Enc::new();
        if let Some(p) = value.downcast_ref::<LatOut>() {
            e.u8(0).f64s(&p.alone).f64s(&p.together);
        } else if let Some(p) = value.downcast_ref::<BwOut>() {
            e.u8(1)
                .f64s(&p.alone)
                .f64s(&p.together)
                .f64s(&p.t_alone)
                .f64s(&p.t_together);
        } else {
            return None;
        }
        Some(e.into_bytes())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        let mut d = Dec::new(bytes);
        match d.u8()? {
            0 => {
                let p = LatOut { alone: d.f64s()?, together: d.f64s()? };
                d.finish(Box::new(p) as PointValue)
            }
            1 => {
                let p = BwOut {
                    alone: d.f64s()?,
                    together: d.f64s()?,
                    t_alone: d.f64s()?,
                    t_together: d.f64s()?,
                };
                d.finish(Box::new(p) as PointValue)
            }
            _ => None,
        }
    }

    fn finalize(&self, fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let cursors = cursors(fidelity);
        let mut lat_alone = Series::new("latency alone (us)");
        let mut lat_tog = Series::new("latency + compute (us)");
        let mut bw_alone = Series::new("bandwidth alone (B/s)");
        let mut bw_tog = Series::new("bandwidth + compute (B/s)");
        let mut t_alone = Series::new("compute time alone (ms/pass)");
        let mut t_tog = Series::new("compute time + comm (ms/pass)");
        for (ci, &cursor) in cursors.iter().enumerate() {
            let ai = tunable::intensity(cursor);
            let l = expect_value::<LatOut>(points, ci);
            lat_alone.push(ai, &l.alone);
            lat_tog.push(ai, &l.together);
            let b = expect_value::<BwOut>(points, cursors.len() + ci);
            bw_alone.push(ai, &b.alone);
            bw_tog.push(ai, &b.together);
            t_alone.push(ai, &b.t_alone);
            t_tog.push(ai, &b.t_together);
        }

        // ---- checks ----
        let low_ai = lat_tog.points[0].y.median / lat_alone.points[0].y.median;
        let hi_ai = lat_tog.points.last().expect("points").y.median
            / lat_alone.points.last().expect("points").y.median;
        let bw_low = bw_tog.points[0].y.median / bw_alone.points[0].y.median;
        let bw_hi = bw_tog.points.last().expect("points").y.median
            / bw_alone.points.last().expect("points").y.median;
        // Crossover: first AI where together-bandwidth recovers ≥ 90 % of alone.
        let crossover = bw_tog
            .points
            .iter()
            .zip(&bw_alone.points)
            .find(|(t, a)| t.y.median >= 0.9 * a.y.median)
            .map(|(t, _)| t.x);

        let checks_a = vec![
            Check::new(
                "low arithmetic intensity inflates latency (paper: ×2)",
                low_ai > 1.4,
                format!("×{:.2} at {:.2} flop/B", low_ai, lat_tog.points[0].x),
            ),
            Check::new(
                "high arithmetic intensity leaves latency nominal",
                hi_ai < 1.15,
                format!(
                    "×{:.2} at {:.1} flop/B",
                    hi_ai,
                    lat_tog.points.last().unwrap().x
                ),
            ),
        ];
        let checks_b = vec![
            Check::new(
                "low arithmetic intensity crushes bandwidth (paper: −60 %)",
                bw_low < 0.6,
                format!("ratio {:.2} at {:.2} flop/B", bw_low, bw_tog.points[0].x),
            ),
            Check::new(
                "high arithmetic intensity restores bandwidth",
                bw_hi > 0.9,
                format!("ratio {:.2}", bw_hi),
            ),
            Check::new(
                "memory/CPU-bound boundary in the paper's ballpark (~6 flop/B on henri)",
                crossover.map(|x| (2.0..14.0).contains(&x)).unwrap_or(false),
                format!("90 %-recovery crossover at {:?} flop/B", crossover),
            ),
        ];

        vec![
            FigureData {
                id: "fig7a",
                title: "Memory pressure (tunable intensity) vs network latency (henri)".into(),
                xlabel: "arithmetic intensity (flop/B)",
                ylabel: "us / ms",
                series: vec![lat_alone, lat_tog, t_alone.clone(), t_tog.clone()],
                notes: vec![format!(
                    "paper: boundary ≈ {} flop/B on henri ({} on billy); latency doubles below it",
                    paper::FIG7_HENRI_BOUNDARY,
                    paper::FIG7_BILLY_BOUNDARY
                )],
                checks: checks_a,
                runs: Vec::new(),
            },
            FigureData {
                id: "fig7b",
                title: "Memory pressure (tunable intensity) vs network bandwidth (henri)".into(),
                xlabel: "arithmetic intensity (flop/B)",
                ylabel: "B/s / ms",
                series: vec![bw_alone, bw_tog, t_alone, t_tog],
                notes: vec![format!(
                    "paper: bandwidth drops ~{:.0} % and compute slows ~{:.0} % below the boundary",
                    paper::FIG7_BW_DROP * 100.0,
                    paper::FIG7_COMPUTE_SLOWDOWN * 100.0
                )],
                checks: checks_b,
                runs: Vec::new(),
            },
        ]
    }
}

/// Run Figure 7 (returns `[fig7a latency, fig7b bandwidth]`).
pub fn run(fidelity: Fidelity) -> Vec<FigureData> {
    campaign::run_experiment(&Fig7, &campaign::CampaignOptions::serial(fidelity)).figures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_quick_passes_checks() {
        let figs = run(Fidelity::Quick);
        assert_eq!(figs.len(), 2);
        for f in &figs {
            for c in &f.checks {
                assert!(c.pass, "{}: {} — {}", f.id, c.name, c.detail);
            }
        }
    }
}
