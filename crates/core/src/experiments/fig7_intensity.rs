//! Figure 7 — impact of the application's memory pressure on network
//! performance, via the tunable-arithmetic-intensity TRIAD (§4.5).
//!
//! The *cursor* repeats the TRIAD update on each element before moving on:
//! few repetitions → memory-bound (high pressure), many → CPU-bound. On
//! henri the boundary sits around 6 flop/B: below it the network latency
//! doubles and the bandwidth drops ~60 %; above it communication returns to
//! nominal.

use kernels::tunable;
use mpisim::pingpong::PingPongConfig;
use simcore::Series;
use topology::{henri, Placement};

use crate::experiments::Fidelity;
use crate::paper;
use crate::protocol::{self, ProtocolConfig};
use crate::report::{Check, FigureData};

/// Elements per tunable-TRIAD pass.
const ELEMS: usize = 1_000_000;

/// Cursor sweep covering 0.17–85 flop/B.
fn cursor_sweep() -> Vec<u32> {
    vec![1, 2, 4, 8, 16, 24, 36, 48, 72, 96, 144, 240, 480, 1020]
}

/// Run Figure 7 (returns `[fig7a latency, fig7b bandwidth]`).
pub fn run(fidelity: Fidelity) -> Vec<FigureData> {
    let machine = henri();
    let placement = Placement::fig4_default();
    let data = machine.near_numa();
    // Quick mode needs points straddling the crossover (≈8 flop/B with 35
    // normal-license cores at the 2.5 GHz ladder tail), so it keeps a
    // hand-picked subset instead of generic thinning.
    let cursors = match fidelity {
        Fidelity::Full => cursor_sweep(),
        Fidelity::Quick => vec![1, 48, 144, 1020],
    };
    let cores = 35.min(machine.core_count() as usize - 1);

    let mut lat_alone = Series::new("latency alone (us)");
    let mut lat_tog = Series::new("latency + compute (us)");
    let mut bw_alone = Series::new("bandwidth alone (B/s)");
    let mut bw_tog = Series::new("bandwidth + compute (B/s)");
    let mut t_alone = Series::new("compute time alone (ms/pass)");
    let mut t_tog = Series::new("compute time + comm (ms/pass)");

    for &cursor in &cursors {
        let ai = tunable::intensity(cursor);
        let w = tunable::workload(ELEMS, cursor, data, 1);
        // Latency experiment.
        let mut cfg = ProtocolConfig::new(machine.clone(), Some(w.clone()));
        cfg.placement = placement;
        cfg.compute_cores = cores;
        cfg.pingpong = PingPongConfig::latency(fidelity.lat_reps());
        cfg.reps = fidelity.reps();
        cfg.seed = 0xF16_7A + cursor as u64;
        let rl = protocol::run(&cfg);
        lat_alone.push(ai, &rl.lat_alone());
        lat_tog.push(ai, &rl.lat_together());

        // Bandwidth experiment.
        let mut cfg = ProtocolConfig::new(machine.clone(), Some(w.clone()));
        cfg.placement = placement;
        cfg.compute_cores = cores;
        cfg.pingpong = PingPongConfig {
            size: 64 << 20,
            reps: fidelity.bw_reps(),
            warmup: 1,
            mtag: 5,
        };
        cfg.reps = fidelity.reps();
        cfg.seed = 0xF16_7B + cursor as u64;
        let rb = protocol::run(&cfg);
        bw_alone.push(ai, &rb.bw_alone());
        bw_tog.push(ai, &rb.bw_together());
        // Compute pass time from measured rates.
        let times_alone: Vec<f64> = rb
            .compute_alone
            .iter()
            .map(|m| m.iteration_time(&w) * 1e3)
            .collect();
        let times_tog: Vec<f64> = rb
            .together
            .iter()
            .map(|m| m.iteration_time(&w) * 1e3)
            .collect();
        t_alone.push(ai, &times_alone);
        t_tog.push(ai, &times_tog);
    }

    // ---- checks ----
    let low_ai = lat_tog.points[0].y.median / lat_alone.points[0].y.median;
    let hi_ai = lat_tog.points.last().expect("points").y.median
        / lat_alone.points.last().expect("points").y.median;
    let bw_low = bw_tog.points[0].y.median / bw_alone.points[0].y.median;
    let bw_hi = bw_tog.points.last().expect("points").y.median
        / bw_alone.points.last().expect("points").y.median;
    // Crossover: first AI where together-bandwidth recovers ≥ 90 % of alone.
    let crossover = bw_tog
        .points
        .iter()
        .zip(&bw_alone.points)
        .find(|(t, a)| t.y.median >= 0.9 * a.y.median)
        .map(|(t, _)| t.x);

    let checks_a = vec![
        Check::new(
            "low arithmetic intensity inflates latency (paper: ×2)",
            low_ai > 1.4,
            format!("×{:.2} at {:.2} flop/B", low_ai, lat_tog.points[0].x),
        ),
        Check::new(
            "high arithmetic intensity leaves latency nominal",
            hi_ai < 1.15,
            format!(
                "×{:.2} at {:.1} flop/B",
                hi_ai,
                lat_tog.points.last().unwrap().x
            ),
        ),
    ];
    let checks_b = vec![
        Check::new(
            "low arithmetic intensity crushes bandwidth (paper: −60 %)",
            bw_low < 0.6,
            format!("ratio {:.2} at {:.2} flop/B", bw_low, bw_tog.points[0].x),
        ),
        Check::new(
            "high arithmetic intensity restores bandwidth",
            bw_hi > 0.9,
            format!("ratio {:.2}", bw_hi),
        ),
        Check::new(
            "memory/CPU-bound boundary in the paper's ballpark (~6 flop/B on henri)",
            crossover.map(|x| (2.0..14.0).contains(&x)).unwrap_or(false),
            format!("90 %-recovery crossover at {:?} flop/B", crossover),
        ),
    ];

    vec![
        FigureData {
            id: "fig7a",
            title: "Memory pressure (tunable intensity) vs network latency (henri)".into(),
            xlabel: "arithmetic intensity (flop/B)",
            ylabel: "us / ms",
            series: vec![lat_alone, lat_tog, t_alone.clone(), t_tog.clone()],
            notes: vec![format!(
                "paper: boundary ≈ {} flop/B on henri ({} on billy); latency doubles below it",
                paper::FIG7_HENRI_BOUNDARY,
                paper::FIG7_BILLY_BOUNDARY
            )],
            checks: checks_a,
            runs: Vec::new(),
        },
        FigureData {
            id: "fig7b",
            title: "Memory pressure (tunable intensity) vs network bandwidth (henri)".into(),
            xlabel: "arithmetic intensity (flop/B)",
            ylabel: "B/s / ms",
            series: vec![bw_alone, bw_tog, t_alone, t_tog],
            notes: vec![format!(
                "paper: bandwidth drops ~{:.0} % and compute slows ~{:.0} % below the boundary",
                paper::FIG7_BW_DROP * 100.0,
                paper::FIG7_COMPUTE_SLOWDOWN * 100.0
            )],
            checks: checks_b,
            runs: Vec::new(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_quick_passes_checks() {
        let figs = run(Fidelity::Quick);
        assert_eq!(figs.len(), 2);
        for f in &figs {
            for c in &f.checks {
                assert!(c.pass, "{}: {} — {}", f.id, c.name, c.detail);
            }
        }
    }
}
