//! Training-pair harvest for the counter-driven interference predictor
//! (ROADMAP item 4; modelled on arXiv 2410.18126's counter-based slowdown
//! prediction).
//!
//! One *pair* is a (machine preset, placement, workload family, computing
//! cores, network metric) configuration run through the three-step
//! protocol. The harvest extracts:
//!
//! * a **feature vector** from the *alone* steps only — PMU-style telemetry
//!   counters (memory-channel bytes, stall residency, frequency-license
//!   phases, fluid reallocations, NIC DMA/PIO bytes, retransmits, MPI match
//!   probes) normalized per simulated second, plus configuration scalars —
//!   everything a scheduler could know **without** co-running the pair;
//! * the **ground-truth slowdowns** from the together step: the
//!   communication penalty (alone/together bandwidth, or together/alone
//!   latency) and the computation penalty (alone/together flop rate).
//!
//! Alone steps are memoized in the campaign [`BaselineCache`]: the
//! communication side is placement/metric-specific but core-count- and
//! family-independent, the computation side is metric-independent, so a
//! full grid shares most of its simulation work. Pairs serialize with
//! exact-bits codecs ([`crate::codec`]), making harvest campaigns
//! resumable through the content-addressed result store and byte-stable at
//! any worker count.

use kernels::{gemm, stream, tunable, vecops, Workload};
use simcore::telemetry::{self, Journal};
use simcore::{Series, Summary};
use topology::presets::Preset;
use topology::{MachineSpec, Placement};

use crate::campaign::{Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::experiments::contention::{data_numa, Metric};
use crate::experiments::Fidelity;
use crate::protocol::{self, ProtocolConfig, StepMask, StepResults};
use crate::report::{Check, FigureData};

/// Workload families the predictor trains on. Each stresses a different
/// bottleneck: memory channels (STREAM triad, CG), the roofline knee
/// (tunable triad), compute/licensing (blocked GEMM tiles, AVX-512 burn).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Family {
    /// STREAM triad: memory-bound, AI ≈ 1/12.
    Stream,
    /// Tunable triad pinned near the roofline knee (AI ≈ 4).
    Tunable,
    /// Blocked GEMM tiles: compute-bound, AVX2 license.
    Gemm,
    /// Pure AVX-512 FMA burn: no memory traffic, heaviest license.
    Avx,
    /// Dense CG iteration: mixed gemv/axpy phase stream.
    Cg,
}

impl Family {
    /// Every family, in codec order.
    pub fn all() -> [Family; 5] {
        [
            Family::Stream,
            Family::Tunable,
            Family::Gemm,
            Family::Avx,
            Family::Cg,
        ]
    }

    /// Stable tag used in labels and cache keys.
    pub fn tag(self) -> &'static str {
        match self {
            Family::Stream => "stream",
            Family::Tunable => "tunable",
            Family::Gemm => "gemm",
            Family::Avx => "avx",
            Family::Cg => "cg",
        }
    }

    /// Parse a tag back to a family.
    pub fn from_tag(tag: &str) -> Option<Family> {
        Family::all().into_iter().find(|f| f.tag() == tag)
    }

    /// The family's per-core workload with data on the given NUMA node.
    pub fn workload(self, data: topology::NumaId) -> Workload {
        match self {
            Family::Stream => stream::workload(stream::StreamKernel::Triad, 2_000_000, data, 2),
            Family::Tunable => {
                tunable::workload(1_000_000, tunable::cursor_for_intensity(4.0), data, 2)
            }
            Family::Gemm => Workload {
                phases: vec![gemm::tile_phase(128, data)],
                iterations: 64,
                name: "gemm tiles",
            },
            Family::Avx => vecops::avx_workload(4.0e7, freq::License::Avx512, 16),
            Family::Cg => Workload {
                phases: kernels::cg::iteration_phases(1000, data),
                iterations: 16,
                name: "cg iteration",
            },
        }
    }
}

/// One grid configuration: the identity of a training pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PairSpec {
    /// Cluster preset.
    pub preset: Preset,
    /// Index into [`Placement::all_combinations`].
    pub placement: usize,
    /// Computation workload family.
    pub family: Family,
    /// Computing cores per node.
    pub cores: u32,
    /// Network metric of the communication side.
    pub metric: Metric,
}

/// Codec index of a preset (stable across releases; append only).
fn preset_index(p: Preset) -> u8 {
    match p {
        Preset::Henri => 0,
        Preset::Bora => 1,
        Preset::Billy => 2,
        Preset::Pyxis => 3,
        Preset::Tiny2x2 => 4,
    }
}

fn preset_from_index(i: u8) -> Option<Preset> {
    Some(match i {
        0 => Preset::Henri,
        1 => Preset::Bora,
        2 => Preset::Billy,
        3 => Preset::Pyxis,
        4 => Preset::Tiny2x2,
        _ => return None,
    })
}

impl PairSpec {
    /// Human-readable label, also used as the sweep-point label.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/c{}/{}",
            self.preset.spec().name,
            Placement::all_combinations()[self.placement].0,
            self.family.tag(),
            self.cores,
            self.metric.tag()
        )
    }

    /// Deterministic content seed (independent of grid position), used by
    /// the advisor when measuring a pair outside a campaign.
    pub fn content_seed(&self) -> u64 {
        // FNV-1a over the label, whitened through SplitMix64 — the same
        // construction as the campaign's point seeds.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.label().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut z = h.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Computing-core counts harvested per machine.
pub fn core_counts(spec: &MachineSpec, fidelity: Fidelity) -> Vec<u32> {
    let total = spec.sockets * spec.numa_per_socket * spec.cores_per_numa;
    match fidelity {
        Fidelity::Full => vec![2, total / 6, total / 3, total / 2],
        Fidelity::Quick => vec![total / 6, total / 3],
    }
}

/// The full harvest grid at the given fidelity: every cluster preset ×
/// placement × family × core count × metric.
pub fn grid(fidelity: Fidelity) -> Vec<PairSpec> {
    let mut out = Vec::new();
    for preset in Preset::clusters() {
        let spec = preset.spec();
        for placement in 0..Placement::all_combinations().len() {
            for family in Family::all() {
                for &cores in &core_counts(&spec, fidelity) {
                    for metric in [Metric::Bandwidth, Metric::Latency] {
                        out.push(PairSpec {
                            preset,
                            placement,
                            family,
                            cores,
                            metric,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Feature names, in vector order. `cfg.*` are configuration scalars,
/// `comp.*` come from the computation-alone journal, `comm.*` from the
/// communication-alone journal; `*_per_s` counters are normalized per
/// simulated second of their step.
pub const FEATURES: &[&str] = &[
    "cfg.cores",
    "cfg.cores_frac",
    "cfg.log2_msg_bytes",
    "cfg.metric_is_lat",
    "cfg.data_near",
    "cfg.thread_near",
    "cfg.numa_nodes",
    "cfg.cores_per_numa",
    "cfg.core_bw_demand_frac",
    "cfg.intensity_norm",
    "cfg.license",
    "comp.mem_bytes_per_s",
    "comp.stall_ps_per_s",
    "comp.license_normal_per_s",
    "comp.license_avx2_per_s",
    "comp.license_avx512_per_s",
    "comp.freq_transitions_per_s",
    "comp.fluid_reallocs_per_s",
    "comp.engine_events_per_s",
    "comp.bw_alone",
    "comp.flops_alone",
    "comp.stall_frac_alone",
    "comm.dma_bytes_per_s",
    "comm.pio_bytes_per_s",
    "comm.retrans_per_s",
    "comm.reg_miss_per_s",
    "comm.match_probes_per_s",
    "comm.fluid_reallocs_per_s",
    "comm.engine_events_per_s",
    "comm.lat_alone_us",
    "comm.bw_alone",
    // Engineered pressure features (the ratios the paper's contention
    // model is built from): channel saturation of the shared data NUMA
    // node and its interaction with the placement flags. These give the
    // additive learner the multiplicative physics — e.g. "data far only
    // hurts when the channels are loaded" is a product, not a sum.
    "eng.compute_sat",
    "eng.comm_bytes_per_s",
    "eng.comm_sat",
    "eng.joint_sat",
    "eng.overcommit",
    "eng.far_x_compute_sat",
    "eng.far_x_comm_sat",
    "eng.contention",
    "eng.far_x_contention",
    "eng.comm_oracle",
    "eng.compute_oracle",
];

/// Index of `comp.mem_bytes_per_s` in [`FEATURES`]: the memory-channel
/// pressure feature the learner constrains to a monotone response.
pub const MEM_CHANNEL_FEATURE: usize = 11;

/// Index of `cfg.metric_is_lat` in [`FEATURES`]: the flag the advisor's
/// feature expansion uses to split the latency and bandwidth regimes.
pub const METRIC_FLAG_FEATURE: usize = 3;

/// One harvested training pair.
#[derive(Clone, Debug)]
pub struct TrainingPair {
    /// Grid configuration this pair measures.
    pub spec: PairSpec,
    /// Feature vector (see [`FEATURES`]), alone-steps only.
    pub features: Vec<f64>,
    /// Communication penalty: alone/together bandwidth (bw metric) or
    /// together/alone latency (lat metric); > 1 means interference, < 1 is
    /// the idle-penalty fade making communication *faster* beside compute.
    pub comm_penalty: f64,
    /// Computation penalty: alone/together flop rate (bandwidth when the
    /// family does no flops).
    pub compute_penalty: f64,
}

impl TrainingPair {
    /// Exact-bits serialization for the result store.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(preset_index(self.spec.preset))
            .u8(self.spec.placement as u8)
            .u8(match self.spec.family {
                Family::Stream => 0,
                Family::Tunable => 1,
                Family::Gemm => 2,
                Family::Avx => 3,
                Family::Cg => 4,
            })
            .u32(self.spec.cores)
            .u8(match self.spec.metric {
                Metric::Bandwidth => 0,
                Metric::Latency => 1,
            })
            .f64s(&self.features)
            .f64(self.comm_penalty)
            .f64(self.compute_penalty);
        e.into_bytes()
    }

    /// Inverse of [`TrainingPair::encode`]; `None` on any malformation.
    pub fn decode(bytes: &[u8]) -> Option<TrainingPair> {
        let mut d = Dec::new(bytes);
        let preset = preset_from_index(d.u8()?)?;
        let placement = d.u8()? as usize;
        if placement >= Placement::all_combinations().len() {
            return None;
        }
        let family = match d.u8()? {
            0 => Family::Stream,
            1 => Family::Tunable,
            2 => Family::Gemm,
            3 => Family::Avx,
            4 => Family::Cg,
            _ => return None,
        };
        let cores = d.u32()?;
        let metric = match d.u8()? {
            0 => Metric::Bandwidth,
            1 => Metric::Latency,
            _ => return None,
        };
        let p = TrainingPair {
            spec: PairSpec {
                preset,
                placement,
                family,
                cores,
                metric,
            },
            features: d.f64s()?,
            comm_penalty: d.f64()?,
            compute_penalty: d.f64()?,
        };
        d.finish(p)
    }
}

/// Run `f` under a telemetry recorder whether or not the surrounding
/// campaign records: nested inside an active recorder it isolates (the
/// outer journal is untouched), otherwise it installs a scratch recorder
/// and tears it down. Recording is a pure observer, so the captured run is
/// bit-identical either way.
fn capture<T>(f: impl FnOnce() -> T) -> (T, Journal) {
    if telemetry::is_active() {
        let (v, j) = telemetry::isolate(f);
        (v, j.expect("isolate records while active"))
    } else {
        telemetry::install();
        let v = f();
        let j = telemetry::take().expect("recorder was installed");
        (v, j)
    }
}

fn base_config(spec: &PairSpec, fidelity: Fidelity, seed: u64) -> ProtocolConfig {
    let machine = spec.preset.spec();
    let placement = Placement::all_combinations()[spec.placement].1;
    let w = spec.family.workload(data_numa(&machine, placement));
    let mut cfg = ProtocolConfig::new(machine, Some(w));
    cfg.placement = placement;
    cfg.compute_cores = spec.cores as usize;
    cfg.pingpong = spec.metric.pingpong(fidelity);
    cfg.reps = fidelity.reps();
    cfg.seed = seed;
    cfg
}

/// Counter rate per simulated second of the journal's timeline.
fn rate(j: &Journal, name: &str, per: f64) -> f64 {
    let v = j.counters.get(name).copied().unwrap_or(0) as f64;
    if per > 0.0 {
        v / per
    } else {
        0.0
    }
}

fn median(samples: &[f64]) -> f64 {
    Summary::of(samples).median
}

/// Communication-alone measurement: counter rates + alone medians.
/// Core-count- and family-independent, memoized per (machine, placement,
/// metric).
struct CommAlone {
    dma_bytes_per_s: f64,
    pio_bytes_per_s: f64,
    retrans_per_s: f64,
    reg_miss_per_s: f64,
    match_probes_per_s: f64,
    fluid_reallocs_per_s: f64,
    engine_events_per_s: f64,
    lat_alone_us: f64,
    bw_alone: f64,
    lat_reps: Vec<f64>,
    bw_reps: Vec<f64>,
}

fn measure_comm_alone(spec: &PairSpec, fidelity: Fidelity, seed: u64) -> Result<CommAlone, String> {
    let cfg = base_config(spec, fidelity, seed);
    let (res, j) = capture(|| {
        protocol::try_run_masked(&cfg, &simcore::FaultPlan::new(cfg.seed), StepMask::COMM_ALONE)
            .map_err(|e| e.to_string())
    });
    let res = res?;
    let per = j.end_time().as_secs_f64();
    Ok(CommAlone {
        dma_bytes_per_s: rate(&j, "net.dma.bytes", per),
        pio_bytes_per_s: rate(&j, "net.pio.bytes", per),
        retrans_per_s: rate(&j, "net.retrans", per),
        reg_miss_per_s: rate(&j, "net.reg_miss", per),
        match_probes_per_s: rate(&j, "mpi.match.probes", per),
        fluid_reallocs_per_s: rate(&j, "fluid.reallocs", per),
        engine_events_per_s: rate(&j, "engine.events", per),
        lat_alone_us: median(&res.lat_alone()),
        bw_alone: median(&res.bw_alone()),
        lat_reps: res.lat_alone(),
        bw_reps: res.bw_alone(),
    })
}

/// Computation-alone measurement: counter rates + alone medians.
/// Metric-independent, memoized per (machine, placement, family, cores).
struct ComputeAlone {
    mem_bytes_per_s: f64,
    stall_ps_per_s: f64,
    license_normal_per_s: f64,
    license_avx2_per_s: f64,
    license_avx512_per_s: f64,
    freq_transitions_per_s: f64,
    fluid_reallocs_per_s: f64,
    engine_events_per_s: f64,
    bw_alone: f64,
    flops_alone: f64,
    stall_frac_alone: f64,
    bw_reps: Vec<f64>,
    flops_reps: Vec<f64>,
}

fn measure_compute_alone(
    spec: &PairSpec,
    fidelity: Fidelity,
    seed: u64,
) -> Result<ComputeAlone, String> {
    let cfg = base_config(spec, fidelity, seed);
    let (res, j) = capture(|| {
        protocol::try_run_masked(
            &cfg,
            &simcore::FaultPlan::new(cfg.seed),
            StepMask::COMPUTE_ALONE,
        )
        .map_err(|e| e.to_string())
    });
    let res = res?;
    let per = j.end_time().as_secs_f64();
    let stall: Vec<f64> = res
        .compute_alone
        .iter()
        .map(|m| m.compute_stall_fraction)
        .collect();
    Ok(ComputeAlone {
        mem_bytes_per_s: rate(&j, "mem.channel.bytes", per),
        stall_ps_per_s: rate(&j, "mem.stall_ps", per),
        license_normal_per_s: rate(&j, "freq.license.normal", per),
        license_avx2_per_s: rate(&j, "freq.license.avx2", per),
        license_avx512_per_s: rate(&j, "freq.license.avx512", per),
        freq_transitions_per_s: rate(&j, "freq.transitions", per),
        fluid_reallocs_per_s: rate(&j, "fluid.reallocs", per),
        engine_events_per_s: rate(&j, "engine.events", per),
        bw_alone: median(&res.compute_bw_alone()),
        flops_alone: median(&res.flops_alone()),
        stall_frac_alone: median(&stall),
        bw_reps: res.compute_bw_alone(),
        flops_reps: res.flops_alone(),
    })
}

fn assemble_features(spec: &PairSpec, comm: &CommAlone, comp: &ComputeAlone) -> Vec<f64> {
    let machine = spec.preset.spec();
    let placement = Placement::all_combinations()[spec.placement].1;
    let total = (machine.sockets * machine.numa_per_socket * machine.cores_per_numa) as f64;
    let w = spec.family.workload(data_numa(&machine, placement));
    let ai = w.intensity();
    let intensity_norm = if ai.is_finite() { ai / (1.0 + ai) } else { 1.0 };
    let license = w
        .phases
        .iter()
        .map(|p| p.license.index())
        .max()
        .unwrap_or(0) as f64;
    let msg = spec.metric.pingpong(Fidelity::Full).size as f64;
    let mut v = vec![
        spec.cores as f64,
        spec.cores as f64 / total,
        msg.max(1.0).log2(),
        match spec.metric {
            Metric::Latency => 1.0,
            Metric::Bandwidth => 0.0,
        },
        match placement.data {
            topology::BindingPolicy::NearNic => 1.0,
            _ => 0.0,
        },
        match placement.comm_thread {
            topology::BindingPolicy::NearNic => 1.0,
            _ => 0.0,
        },
        (machine.sockets * machine.numa_per_socket) as f64,
        machine.cores_per_numa as f64,
        machine.per_core_bw * spec.cores as f64 / machine.mem_bw_per_numa,
        intensity_norm,
        license,
        comp.mem_bytes_per_s,
        comp.stall_ps_per_s,
        comp.license_normal_per_s,
        comp.license_avx2_per_s,
        comp.license_avx512_per_s,
        comp.freq_transitions_per_s,
        comp.fluid_reallocs_per_s,
        comp.engine_events_per_s,
        comp.bw_alone,
        comp.flops_alone,
        comp.stall_frac_alone,
        comm.dma_bytes_per_s,
        comm.pio_bytes_per_s,
        comm.retrans_per_s,
        comm.reg_miss_per_s,
        comm.match_probes_per_s,
        comm.fluid_reallocs_per_s,
        comm.engine_events_per_s,
        comm.lat_alone_us,
        comm.bw_alone,
    ];
    let data_far = 1.0
        - match placement.data {
            topology::BindingPolicy::NearNic => 1.0,
            _ => 0.0,
        };
    let compute_sat = comp.mem_bytes_per_s / machine.mem_bw_per_numa;
    let comm_bytes = comm.dma_bytes_per_s + comm.pio_bytes_per_s;
    let comm_sat = comm_bytes / machine.mem_bw_per_numa;
    let joint_sat = compute_sat + comm_sat;
    // Max-min fair-share oracles: play the fluid model's own allocation
    // rule forward on the shared data node — `cores` compute flows plus
    // the communication flow, alone-step demands, node channel capacity —
    // and record each side's predicted log-slowdown. The learner only has
    // to calibrate these, not rediscover water-filling from scratch.
    let comm_oracle;
    let compute_oracle;
    {
        let per_core = if spec.cores > 0 {
            comp.mem_bytes_per_s / spec.cores as f64
        } else {
            0.0
        };
        let mut demands = vec![per_core; spec.cores as usize];
        demands.push(comm_bytes.max(comm.bw_alone));
        let shares = waterfill(&demands, machine.mem_bw_per_numa);
        let slow = |demand: f64, share: f64| {
            if demand > 0.0 && share > 0.0 {
                (demand / share).max(1.0).ln()
            } else {
                0.0
            }
        };
        comm_oracle = slow(demands[spec.cores as usize], shares[spec.cores as usize]);
        compute_oracle = if spec.cores > 0 {
            slow(per_core, shares[0])
        } else {
            0.0
        };
    }
    v.extend_from_slice(&[
        compute_sat,
        comm_bytes,
        comm_sat,
        joint_sat,
        (joint_sat - 1.0).max(0.0),
        data_far * compute_sat,
        data_far * comm_sat,
        compute_sat * comm_sat,
        data_far * compute_sat * comm_sat,
        comm_oracle,
        compute_oracle,
    ]);
    debug_assert_eq!(v.len(), FEATURES.len());
    v
}

/// Max-min fair (water-filling) allocation of `capacity` over `demands`:
/// ascending-demand sweep, each flow gets `min(demand, fair share of the
/// rest)`. Returns per-flow allocations in input order.
fn waterfill(demands: &[f64], capacity: f64) -> Vec<f64> {
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&a, &b| demands[a].total_cmp(&demands[b]));
    let mut alloc = vec![0.0; demands.len()];
    let mut remaining = capacity;
    let mut left = demands.len();
    for &i in &order {
        let fair = remaining / left as f64;
        let got = demands[i].min(fair);
        alloc[i] = got;
        remaining -= got;
        left -= 1;
    }
    alloc
}

fn penalties(
    spec: &PairSpec,
    comm: &CommAlone,
    comp: &ComputeAlone,
    together: &StepResults,
) -> (f64, f64) {
    let comm_penalty = match spec.metric {
        Metric::Bandwidth => {
            let t = median(&together.bw_together());
            if t > 0.0 {
                median(&comm.bw_reps) / t
            } else {
                1.0
            }
        }
        Metric::Latency => {
            let a = median(&comm.lat_reps);
            if a > 0.0 {
                median(&together.lat_together()) / a
            } else {
                1.0
            }
        }
    };
    // Computation penalty from the flop rate (defined for every family);
    // memory-bound families fall back to bandwidth if the flop rate is
    // degenerate.
    let ft = median(&together.flops_together());
    let compute_penalty = if ft > 0.0 && median(&comp.flops_reps) > 0.0 {
        median(&comp.flops_reps) / ft
    } else {
        let bt = median(&together.compute_bw_together());
        if bt > 0.0 && median(&comp.bw_reps) > 0.0 {
            median(&comp.bw_reps) / bt
        } else {
            1.0
        }
    };
    (comm_penalty, compute_penalty)
}

/// Measure one pair inside a campaign: alone steps through the baseline
/// cache, together step fresh on the point's seed.
pub fn measure_pair(spec: &PairSpec, ctx: &PointCtx<'_>) -> Result<TrainingPair, String> {
    let fidelity = ctx.fidelity;
    let machine_name = spec.preset.spec().name;
    let placement_label = Placement::all_combinations()[spec.placement].0;
    let comm_key = format!(
        "predict/comm/{}/{}/{}",
        machine_name,
        placement_label,
        spec.metric.tag()
    );
    let comm_spec = *spec;
    let comm: std::sync::Arc<CommAlone> = ctx
        .baselines
        .get_or_compute_result(&comm_key, |seed| measure_comm_alone(&comm_spec, fidelity, seed))?;
    let comp_key = format!(
        "predict/compute/{}/{}/{}/{}",
        machine_name,
        placement_label,
        spec.family.tag(),
        spec.cores
    );
    let comp_spec = *spec;
    let comp: std::sync::Arc<ComputeAlone> =
        ctx.baselines.get_or_compute_result(&comp_key, |seed| {
            measure_compute_alone(&comp_spec, fidelity, seed)
        })?;
    let cfg = base_config(spec, fidelity, ctx.seed);
    let together = protocol::try_run_masked(
        &cfg,
        &simcore::FaultPlan::new(cfg.seed),
        StepMask::TOGETHER,
    )
    .map_err(|e| e.to_string())?;
    let features = assemble_features(spec, &comm, &comp);
    let (comm_penalty, compute_penalty) = penalties(spec, &comm, &comp, &together);
    Ok(TrainingPair {
        spec: *spec,
        features,
        comm_penalty,
        compute_penalty,
    })
}

/// Measure one pair outside a campaign (the advisor's ground-truth path),
/// on the spec's content seed.
pub fn measure_pair_direct(spec: &PairSpec, fidelity: Fidelity) -> Result<TrainingPair, String> {
    let seed = spec.content_seed();
    let comm = measure_comm_alone(spec, fidelity, seed ^ 0xC0111)?;
    let comp = measure_compute_alone(spec, fidelity, seed ^ 0xC0217)?;
    let cfg = base_config(spec, fidelity, seed);
    let together = protocol::try_run_masked(
        &cfg,
        &simcore::FaultPlan::new(cfg.seed),
        StepMask::TOGETHER,
    )
    .map_err(|e| e.to_string())?;
    let features = assemble_features(spec, &comm, &comp);
    let (comm_penalty, compute_penalty) = penalties(spec, &comm, &comp, &together);
    Ok(TrainingPair {
        spec: *spec,
        features,
        comm_penalty,
        compute_penalty,
    })
}

/// Compute the feature vector of a pair **without ever running the
/// together step** — the prediction path: only the two alone steps
/// execute.
pub fn alone_features(spec: &PairSpec, fidelity: Fidelity) -> Result<Vec<f64>, String> {
    let seed = spec.content_seed();
    let comm = measure_comm_alone(spec, fidelity, seed ^ 0xC0111)?;
    let comp = measure_compute_alone(spec, fidelity, seed ^ 0xC0217)?;
    Ok(assemble_features(spec, &comm, &comp))
}

/// The harvest campaign experiment. `filter` restricts the grid (tests and
/// the golden fixture harvest focused subsets); the full grid is
/// [`crate::experiments::HARVEST_EXPERIMENT`].
pub struct Harvest {
    /// Optional grid restriction (`None` = full grid).
    pub filter: Option<fn(&PairSpec) -> bool>,
}

impl Harvest {
    /// The grid this instance plans, at the given fidelity.
    pub fn specs(&self, fidelity: Fidelity) -> Vec<PairSpec> {
        let mut g = grid(fidelity);
        if let Some(f) = self.filter {
            g.retain(f);
        }
        g
    }
}

impl Experiment for Harvest {
    fn name(&self) -> &'static str {
        "predict_harvest"
    }

    fn anchor(&self) -> &'static str {
        "predictor training pairs (ROADMAP item 4, arXiv 2410.18126)"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        self.specs(fidelity)
            .iter()
            .enumerate()
            .map(|(i, s)| SweepPoint::new(i, s.label()))
            .collect()
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let specs = self.specs(ctx.fidelity);
        let spec = specs
            .get(point.index)
            .ok_or_else(|| format!("point {} outside the harvest grid", point.index))?;
        let pair = measure_pair(spec, ctx)?;
        Ok(Box::new(pair))
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        value.downcast_ref::<TrainingPair>().map(TrainingPair::encode)
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        TrainingPair::decode(bytes).map(|p| Box::new(p) as PointValue)
    }

    fn finalize(&self, fidelity: Fidelity, points: &[crate::campaign::PointOutcome]) -> Vec<FigureData> {
        let pairs = collect_pairs(points);
        let mut comm = Series::new("comm penalty (alone/together)");
        let mut compute = Series::new("compute penalty (alone/together)");
        for (i, p) in pairs.iter().enumerate() {
            comm.push(i as f64, &[p.comm_penalty]);
            compute.push(i as f64, &[p.compute_penalty]);
        }
        let planned = self.specs(fidelity).len();
        let finite = pairs
            .iter()
            .all(|p| p.comm_penalty.is_finite() && p.compute_penalty.is_finite());
        let sane = pairs
            .iter()
            .all(|p| (0.2..=64.0).contains(&p.comm_penalty) && (0.2..=64.0).contains(&p.compute_penalty));
        vec![FigureData {
            id: "predict_harvest",
            title: "Harvested interference training pairs".into(),
            xlabel: "pair index (grid order)",
            ylabel: "slowdown penalty (x)",
            series: vec![comm, compute],
            notes: vec![
                format!("{} pairs harvested, {} features each", pairs.len(), FEATURES.len()),
                "features come from the alone steps only; penalties from the together step".into(),
            ],
            checks: vec![
                Check::new(
                    "every planned pair harvested",
                    pairs.len() == planned,
                    format!("{}/{} pairs", pairs.len(), planned),
                ),
                Check::new("penalties finite", finite, "no NaN/inf slowdowns"),
                Check::new(
                    "penalties within physical bounds",
                    sane,
                    "all slowdowns in [0.2, 64]x",
                ),
            ],
            runs: Vec::new(),
        }]
    }
}

/// Extract the successfully harvested pairs from campaign outcomes, in
/// plan order.
pub fn collect_pairs(points: &[crate::campaign::PointOutcome]) -> Vec<TrainingPair> {
    points
        .iter()
        .filter_map(|o| o.value.as_ref())
        .filter_map(|v| v.downcast_ref::<TrainingPair>())
        .cloned()
        .collect()
}

/// Byte-stable textual dump of a feature matrix: one header line naming
/// the columns, then one line per pair (label, features, targets) with
/// exact decimal formatting — the golden-fixture surface of the harvest
/// stage.
pub fn feature_matrix_text(pairs: &[TrainingPair]) -> String {
    let mut out = String::new();
    out.push_str("# predict feature matrix v1\n");
    out.push_str(&format!("# columns: label {} comm_penalty compute_penalty\n", FEATURES.join(" ")));
    for p in pairs {
        out.push_str(&p.spec.label());
        for f in &p.features {
            out.push_str(&format!(" {:.9e}", f));
        }
        out.push_str(&format!(" {:.9e} {:.9e}\n", p.comm_penalty, p.compute_penalty));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_dimension() {
        let g = grid(Fidelity::Quick);
        assert!(g.iter().any(|s| s.preset == Preset::Pyxis));
        assert!(g.iter().any(|s| s.family == Family::Cg));
        assert!(g.iter().any(|s| s.metric == Metric::Latency));
        assert!(g.iter().any(|s| s.placement == 3));
        // Full grid is strictly denser.
        assert!(grid(Fidelity::Full).len() > g.len());
    }

    #[test]
    fn pair_codec_roundtrips_exactly() {
        let p = TrainingPair {
            spec: PairSpec {
                preset: Preset::Billy,
                placement: 2,
                family: Family::Gemm,
                cores: 21,
                metric: Metric::Latency,
            },
            features: vec![1.0, -0.5, 3.25e9, f64::MIN_POSITIVE],
            comm_penalty: 1.37,
            compute_penalty: 0.93,
        };
        let d = TrainingPair::decode(&p.encode()).expect("roundtrip");
        assert_eq!(d.spec, p.spec);
        assert_eq!(d.features, p.features);
        assert_eq!(d.comm_penalty.to_bits(), p.comm_penalty.to_bits());
        // Trailing garbage is rejected.
        let mut bytes = p.encode();
        bytes.push(0);
        assert!(TrainingPair::decode(&bytes).is_none());
    }

    #[test]
    fn labels_are_unique() {
        let g = grid(Fidelity::Full);
        let mut labels: Vec<String> = g.iter().map(|s| s.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), g.len());
    }

    #[test]
    fn feature_vector_matches_names() {
        // A tiny2x2 pair assembles without running anything heavy: check
        // the assembled width against the FEATURES table.
        let spec = PairSpec {
            preset: Preset::Tiny2x2,
            placement: 1,
            family: Family::Stream,
            cores: 1,
            metric: Metric::Bandwidth,
        };
        let comm = CommAlone {
            dma_bytes_per_s: 0.0,
            pio_bytes_per_s: 0.0,
            retrans_per_s: 0.0,
            reg_miss_per_s: 0.0,
            match_probes_per_s: 0.0,
            fluid_reallocs_per_s: 0.0,
            engine_events_per_s: 0.0,
            lat_alone_us: 0.0,
            bw_alone: 0.0,
            lat_reps: vec![0.0],
            bw_reps: vec![0.0],
        };
        let comp = ComputeAlone {
            mem_bytes_per_s: 0.0,
            stall_ps_per_s: 0.0,
            license_normal_per_s: 0.0,
            license_avx2_per_s: 0.0,
            license_avx512_per_s: 0.0,
            freq_transitions_per_s: 0.0,
            fluid_reallocs_per_s: 0.0,
            engine_events_per_s: 0.0,
            bw_alone: 0.0,
            flops_alone: 0.0,
            stall_frac_alone: 0.0,
            bw_reps: vec![0.0],
            flops_reps: vec![0.0],
        };
        assert_eq!(assemble_features(&spec, &comm, &comp).len(), FEATURES.len());
        assert_eq!(FEATURES[MEM_CHANNEL_FEATURE], "comp.mem_bytes_per_s");
    }
}
