//! Figure 2 — frequency variations during (A) communications only,
//! (B) idle, and (C) communications beside 20 CPU-bound computing cores
//! (§3.2).
//!
//! The computing benchmark is the naive prime counter (no memory traffic).
//! The headline findings: all cores clock up when computation runs; the
//! communication core's frequency is the *same* in (A) and (C); and yet
//! latency is slightly *better* together (1.52 vs 1.7 µs) — the
//! package-idle effect.

use freq::{Governor, UncorePolicy};
use kernels::primes;
use mpisim::pingpong::PingPongConfig;
use simcore::{Series, SimTime, Summary};
use topology::{henri, BindingPolicy, CoreId, Placement};

use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::experiments::Fidelity;
use crate::paper;
use crate::protocol::{self, ProtocolConfig};
use crate::report::{Check, FigureData};

/// Everything Figure 2 measures: the three-step protocol results plus the
/// per-phase frequency snapshots.
struct Fig2Point {
    lat_alone: Vec<f64>,
    lat_together: Vec<f64>,
    flops_alone: Vec<f64>,
    flops_together: Vec<f64>,
    f_ab_comm: f64,
    f_b_compute: f64,
    f_c_compute: f64,
    f_c_comm: f64,
    f_c_idle: f64,
}

/// Registry driver for Figure 2 (a single measurement point covering the
/// three phases).
pub struct Fig2;

impl Experiment for Fig2 {
    fn name(&self) -> &'static str {
        "fig2"
    }

    fn anchor(&self) -> &'static str {
        "§3.2, Figure 2"
    }

    fn plan(&self, _fidelity: Fidelity) -> Vec<SweepPoint> {
        vec![SweepPoint::new(0, "phases A/B/C + latency protocol")]
    }

    fn run_point(&self, _point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let machine = henri();
        let workload = primes::workload(0, 40_000, 1);
        let mut cfg = ProtocolConfig::new(machine.clone(), Some(workload));
        cfg.governor = Governor::Performance { turbo: true };
        cfg.uncore = UncorePolicy::Auto;
        cfg.placement = Placement {
            comm_thread: BindingPolicy::FarFromNic,
            data: BindingPolicy::NearNic,
        };
        cfg.compute_cores = 20;
        cfg.pingpong = PingPongConfig::latency(ctx.fidelity.lat_reps());
        cfg.reps = ctx.fidelity.reps();
        cfg.seed = ctx.seed;
        let r = protocol::try_run(&cfg).map_err(|e| e.to_string())?;

        // Frequency states in the three phases, from the frequency model
        // directly (the paper samples /proc-style traces; the governor model
        // is piecewise constant so three snapshots capture Figure 2 exactly).
        let family = simcore::JitterFamily::new(cfg.seed);
        let mut cluster = protocol::build_cluster(&cfg, &family, 0);
        let comm_core = cluster.comm_core[0];
        // (B) idle-but-for-the-comm-thread (it polls from cluster creation).
        let f_b_compute = cluster.freqs[0].core_freq(CoreId(0));
        let f_ab_comm = cluster.freqs[0].core_freq(comm_core);
        // (C) with 20 heavy cores.
        let w = primes::workload(0, 40_000, 1);
        let cores = cluster.compute_cores();
        let mut jobs = Vec::new();
        for &c in &cores[..20] {
            let mut spec = w.on_core(c);
            spec.iterations = u64::MAX / 2;
            jobs.push(cluster.start_job(0, spec));
        }
        let f_c_compute = cluster.freqs[0].core_freq(CoreId(0));
        let f_c_comm = cluster.freqs[0].core_freq(comm_core);
        let f_c_idle = cluster.freqs[0].core_freq(CoreId(17)); // idle core, socket 0
        for j in jobs {
            cluster.stop_job(0, j);
        }

        Ok(Box::new(Fig2Point {
            lat_alone: r.lat_alone(),
            lat_together: r.lat_together(),
            flops_alone: r.compute_alone.iter().map(|m| m.compute_flop_rate).collect(),
            flops_together: r.together.iter().map(|m| m.compute_flop_rate).collect(),
            f_ab_comm,
            f_b_compute,
            f_c_compute,
            f_c_comm,
            f_c_idle,
        }))
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        let p = value.downcast_ref::<Fig2Point>()?;
        let mut e = Enc::new();
        e.f64s(&p.lat_alone)
            .f64s(&p.lat_together)
            .f64s(&p.flops_alone)
            .f64s(&p.flops_together)
            .f64(p.f_ab_comm)
            .f64(p.f_b_compute)
            .f64(p.f_c_compute)
            .f64(p.f_c_comm)
            .f64(p.f_c_idle);
        Some(e.into_bytes())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        let mut d = Dec::new(bytes);
        let p = Fig2Point {
            lat_alone: d.f64s()?,
            lat_together: d.f64s()?,
            flops_alone: d.f64s()?,
            flops_together: d.f64s()?,
            f_ab_comm: d.f64()?,
            f_b_compute: d.f64()?,
            f_c_compute: d.f64()?,
            f_c_comm: d.f64()?,
            f_c_idle: d.f64()?,
        };
        d.finish(Box::new(p) as PointValue)
    }

    fn finalize(&self, _fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let p = expect_value::<Fig2Point>(points, 0);

        // Series: one synthetic "trace" per phase (x = phase index A/B/C).
        let mut s_comm = Series::new("communication core freq (GHz)");
        s_comm.push(0.0, &[p.f_ab_comm]); // A
        s_comm.push(1.0, &[p.f_ab_comm]); // B (still polling)
        s_comm.push(2.0, &[p.f_c_comm]); // C
        let mut s_compute = Series::new("computing core freq (GHz)");
        s_compute.push(0.0, &[p.f_b_compute]);
        s_compute.push(1.0, &[p.f_b_compute]);
        s_compute.push(2.0, &[p.f_c_compute]);
        let mut s_idle = Series::new("other idle core freq (GHz)");
        s_idle.push(0.0, &[p.f_b_compute]);
        s_idle.push(1.0, &[p.f_b_compute]);
        s_idle.push(2.0, &[p.f_c_idle]);
        let mut s_lat = Series::new("latency (us): alone vs together");
        s_lat.push(0.0, &p.lat_alone);
        s_lat.push(2.0, &p.lat_together);

        let lat_alone = Summary::of(&p.lat_alone).median;
        let lat_tog = Summary::of(&p.lat_together).median;
        let t_alone = Summary::of(&p.flops_alone).median;
        let t_tog = Summary::of(&p.flops_together).median;

        let checks = vec![
            Check::new(
                "all cores clock up when computation runs (C vs B)",
                p.f_c_compute > p.f_b_compute && p.f_c_idle > p.f_b_compute,
                format!(
                    "compute {:.1} GHz, idle {:.1} GHz vs idle-phase {:.1} GHz",
                    p.f_c_compute, p.f_c_idle, p.f_b_compute
                ),
            ),
            Check::new(
                "communication-core frequency identical in (A) and (C)",
                (p.f_ab_comm - p.f_c_comm).abs() < 0.15,
                format!("A: {:.2} GHz, C: {:.2} GHz", p.f_ab_comm, p.f_c_comm),
            ),
            Check::new(
                "latency slightly better beside computation (paper: 1.52 vs 1.7 µs)",
                lat_tog < lat_alone,
                format!("together {:.2} µs vs alone {:.2} µs", lat_tog, lat_alone),
            ),
            Check::new(
                "CPU-bound computation unaffected by the latency benchmark",
                (t_tog / t_alone - 1.0).abs() < 0.05,
                format!("flop rate together/alone = {:.3}", t_tog / t_alone),
            ),
        ];

        vec![FigureData {
            id: "fig2",
            title: "Frequency variations: comm only / idle / comm + 20 computing cores (henri)"
                .into(),
            xlabel: "phase (0=A comm, 1=B idle, 2=C both)",
            ylabel: "GHz / us",
            series: vec![s_comm, s_compute, s_idle, s_lat],
            notes: vec![
                format!(
                    "paper: latency {} vs {} µs; bandwidth {:.3} vs {:.3} GB/s (slight gain together)",
                    paper::FIG2_LAT_TOGETHER_US,
                    paper::FIG2_LAT_ALONE_US,
                    paper::FIG2_BW_TOGETHER / 1e9,
                    paper::FIG2_BW_ALONE / 1e9
                ),
                "computing benchmark: naive prime counting (no memory accesses)".into(),
            ],
            checks,
            runs: Vec::new(),
        }]
    }
}

/// Run Figure 2.
pub fn run(fidelity: Fidelity) -> FigureData {
    campaign::run_experiment(&Fig2, &campaign::CampaignOptions::serial(fidelity))
        .figures
        .remove(0)
}

/// Measured frequency snapshot used by examples: (comm, compute, idle) GHz
/// during phase (C).
pub fn phase_c_frequencies() -> (f64, f64, f64) {
    let machine = henri();
    let cfg = ProtocolConfig::new(machine, Some(primes::workload(0, 10_000, 1)));
    let family = simcore::JitterFamily::new(1);
    let mut cluster = protocol::build_cluster(&cfg, &family, 0);
    let comm_core = cluster.comm_core[0];
    let w = primes::workload(0, 10_000, 1);
    let cores = cluster.compute_cores();
    for &c in &cores[..20] {
        let mut spec = w.on_core(c);
        spec.iterations = 10;
        cluster.start_job(0, spec);
    }
    let out = (
        cluster.freqs[0].core_freq(comm_core),
        cluster.freqs[0].core_freq(CoreId(0)),
        cluster.freqs[0].core_freq(CoreId(17)),
    );
    // Let the engine drain so the jobs don't leak into other tests.
    let deadline = cluster.engine.now() + SimTime::from_micros(1);
    while cluster.step_until(deadline).is_some() {}
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_quick_passes_checks() {
        let f = run(Fidelity::Quick);
        for c in &f.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
        assert_eq!(f.series.len(), 4);
    }

    #[test]
    fn phase_c_snapshot() {
        let (comm, compute, idle) = phase_c_frequencies();
        assert!((comm - 2.5).abs() < 0.2, "comm {}", comm);
        assert!(compute >= 2.3, "compute {}", compute);
        assert!(idle >= 2.3, "idle follows socket {}", idle);
    }
}
