//! Figure 1 — impact of constant core/uncore frequencies on network
//! latency (1a) and bandwidth (1b), §3.1.
//!
//! The paper pins the `userspace` governor (core frequency 1.0 or 2.3 GHz)
//! and the uncore (1.2 or 2.4 GHz) and runs plain ping-pongs across message
//! sizes. No computation runs at the same time.

use freq::{Governor, UncorePolicy};
use mpisim::pingpong::{self, PingPongConfig};
use simcore::{JitterFamily, Series};
use topology::{henri, BindingPolicy, Placement};

use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::experiments::{size_sweep, Fidelity};
use crate::paper;
use crate::protocol::build_cluster;
use crate::report::{Check, FigureData};
use crate::ProtocolConfig;

/// The four frequency configurations of Figure 1.
fn configs() -> [(&'static str, Governor, UncorePolicy); 4] {
    [
        ("core 2.3 GHz, uncore 2.4 GHz", Governor::Userspace(2.3), UncorePolicy::Fixed(2.4)),
        ("core 1.0 GHz, uncore 2.4 GHz", Governor::Userspace(1.0), UncorePolicy::Fixed(2.4)),
        ("core 2.3 GHz, uncore 1.2 GHz", Governor::Userspace(2.3), UncorePolicy::Fixed(1.2)),
        ("core 1.0 GHz, uncore 1.2 GHz", Governor::Userspace(1.0), UncorePolicy::Fixed(1.2)),
    ]
}

fn sizes(fidelity: Fidelity) -> Vec<usize> {
    fidelity.thin(&size_sweep())
}

/// Per-rep latencies and bandwidths of one (config, size) point.
struct Fig1Point {
    lats: Vec<f64>,
    bws: Vec<f64>,
}

/// Registry driver for Figure 1 (sweep: 4 frequency configs × sizes).
pub struct Fig1;

impl Experiment for Fig1 {
    fn name(&self) -> &'static str {
        "fig1"
    }

    fn anchor(&self) -> &'static str {
        "§3.1, Figures 1a/1b"
    }

    fn plan(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let sizes = sizes(fidelity);
        let mut plan = Vec::new();
        for (ci, (name, _, _)) in configs().iter().enumerate() {
            for (si, &size) in sizes.iter().enumerate() {
                plan.push(SweepPoint::new(
                    ci * sizes.len() + si,
                    format!("{} @ {} B", name, size),
                ));
            }
        }
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let sizes = sizes(ctx.fidelity);
        let (_, gov, unc) = configs()[point.index / sizes.len()];
        let size = sizes[point.index % sizes.len()];
        let machine = henri();
        let placement = Placement {
            comm_thread: BindingPolicy::NearNic,
            data: BindingPolicy::NearNic,
        };
        let mut lats = Vec::new();
        let mut bws = Vec::new();
        for rep in 0..ctx.fidelity.reps() {
            let mut cfg = ProtocolConfig::new(machine.clone(), None);
            cfg.governor = gov;
            cfg.uncore = unc;
            cfg.placement = placement;
            cfg.seed = ctx.seed.wrapping_add(rep as u64);
            let family = JitterFamily::new(cfg.seed);
            let mut cluster = build_cluster(&cfg, &family, rep as u64);
            let reps = if size >= 1 << 20 {
                ctx.fidelity.bw_reps()
            } else {
                ctx.fidelity.lat_reps()
            };
            let res = pingpong::try_run(
                &mut cluster,
                PingPongConfig {
                    size,
                    reps,
                    warmup: 2,
                    mtag: 1,
                },
            )
            .map_err(|e| e.to_string())?;
            lats.push(res.median_latency_us());
            bws.push(res.median_bandwidth());
        }
        Ok(Box::new(Fig1Point { lats, bws }))
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        let p = value.downcast_ref::<Fig1Point>()?;
        let mut e = Enc::new();
        e.f64s(&p.lats).f64s(&p.bws);
        Some(e.into_bytes())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        let mut d = Dec::new(bytes);
        let p = Fig1Point { lats: d.f64s()?, bws: d.f64s()? };
        d.finish(Box::new(p) as PointValue)
    }

    fn finalize(&self, fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let sizes = sizes(fidelity);
        let mut lat_series = Vec::new();
        let mut bw_series = Vec::new();
        for (ci, (name, _, _)) in configs().iter().enumerate() {
            let mut lat = Series::new(*name);
            let mut bw = Series::new(*name);
            for (si, &size) in sizes.iter().enumerate() {
                let p = expect_value::<Fig1Point>(points, ci * sizes.len() + si);
                lat.push(size as f64, &p.lats);
                bw.push(size as f64, &p.bws);
            }
            lat_series.push(lat);
            bw_series.push(bw);
        }

        // ---- checks ----
        let small = 4.0;
        let big = *sizes.last().expect("non-empty") as f64;
        let l_fast = lat_series[0].median_at(small).expect("point");
        let l_slow = lat_series[1].median_at(small).expect("point");
        let l_unc_lo = lat_series[2].median_at(small).expect("point");
        let bw_unc_hi = bw_series[0].median_at(big).expect("point");
        let bw_unc_lo = bw_series[2].median_at(big).expect("point");
        let bw_slow_core = bw_series[1].median_at(big).expect("point");

        let core_ratio = l_slow / l_fast;
        let uncore_ratio = l_unc_lo / l_fast;
        let checks_a = vec![
            Check::new(
                "latency rises at low core frequency (paper: 3.1 vs 1.8 µs, +72 %)",
                core_ratio > 1.4 && core_ratio < 2.2,
                format!("measured ratio {:.2} ({:.2} vs {:.2} µs)", core_ratio, l_slow, l_fast),
            ),
            Check::new(
                "uncore frequency has little latency effect (paper: +5 %)",
                (uncore_ratio - 1.0).abs() < 0.12,
                format!("measured ratio {:.3}", uncore_ratio),
            ),
            Check::new(
                "absolute latency near paper point (1.8 µs at 2.3 GHz)",
                (1.3..2.4).contains(&l_fast),
                format!("measured {:.2} µs", l_fast),
            ),
        ];
        let checks_b = vec![
            Check::new(
                "uncore scales asymptotic bandwidth slightly (paper: 10.5 vs 10.1 GB/s)",
                bw_unc_hi > bw_unc_lo && bw_unc_hi / bw_unc_lo < 1.10,
                format!(
                    "measured {:.2} vs {:.2} GB/s",
                    bw_unc_hi / 1e9,
                    bw_unc_lo / 1e9
                ),
            ),
            Check::new(
                "core frequency does not move asymptotic bandwidth (DMA path)",
                (bw_slow_core / bw_unc_hi - 1.0).abs() < 0.05,
                format!(
                    "measured {:.2} vs {:.2} GB/s",
                    bw_slow_core / 1e9,
                    bw_unc_hi / 1e9
                ),
            ),
            Check::new(
                "asymptotic bandwidth near paper point (~10.5 GB/s)",
                (9.0e9..11.5e9).contains(&bw_unc_hi),
                format!("measured {:.2} GB/s", bw_unc_hi / 1e9),
            ),
        ];

        vec![
            FigureData {
                id: "fig1a",
                title: "Impact of constant frequencies on network latency (henri)".into(),
                xlabel: "message size (B)",
                ylabel: "latency (us)",
                series: lat_series,
                notes: vec![format!(
                    "paper: {:.1} µs at 2.3 GHz vs {:.1} µs at 1.0 GHz; uncore effect +5 %",
                    paper::LAT_US_AT_2300MHZ,
                    paper::LAT_US_AT_1000MHZ
                )],
                checks: checks_a,
                runs: Vec::new(),
            },
            FigureData {
                id: "fig1b",
                title: "Impact of constant frequencies on network bandwidth (henri)".into(),
                xlabel: "message size (B)",
                ylabel: "bandwidth (B/s)",
                series: bw_series,
                notes: vec![format!(
                    "paper: {:.1} vs {:.1} GB/s across the uncore range",
                    paper::BW_AT_UNCORE_MAX / 1e9,
                    paper::BW_AT_UNCORE_MIN / 1e9
                )],
                checks: checks_b,
                runs: Vec::new(),
            },
        ]
    }
}

/// Run Figure 1 (returns `[fig1a, fig1b]`).
pub fn run(fidelity: Fidelity) -> Vec<FigureData> {
    campaign::run_experiment(&Fig1, &campaign::CampaignOptions::serial(fidelity)).figures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_quick_passes_checks() {
        let figs = run(Fidelity::Quick);
        assert_eq!(figs.len(), 2);
        for f in &figs {
            for c in &f.checks {
                assert!(c.pass, "{}: {} — {}", f.id, c.name, c.detail);
            }
            assert_eq!(f.series.len(), 4);
        }
    }
}
