//! Cross-machine validation (§2.2, §4.2, §4.5 notes).
//!
//! The paper states that "results are generally similar on all tested
//! clusters" and calls out the differences we must also reproduce:
//!
//! * **bora** (Omni-Path): bandwidth impacted *later* (from ~20 computing
//!   cores) and with a wide run-to-run deviation;
//! * **billy** (EPYC): the memory/CPU-bound boundary sits at ~20 flop/B and
//!   the network bandwidth only recovers above ~70 flop/B;
//! * **pyxis** (ThunderX2): contention results similar to henri.

use kernels::stream::{workload, StreamKernel};
use kernels::tunable;
use mpisim::pingpong::PingPongConfig;
use simcore::Series;
use topology::{MachineSpec, Placement, Preset};

use crate::campaign::{self, expect_value, Experiment, PointCtx, PointValue, SweepPoint};
use crate::codec::{Dec, Enc};
use crate::experiments::Fidelity;
use crate::protocol::{self, ProtocolConfig};
use crate::report::{Check, FigureData};

/// The two billy arithmetic intensities probed (paper boundary straddle).
const BILLY_AIS: [f64; 2] = [20.0, 70.0];

/// Bandwidth-contention summary for one machine: (alone median, together
/// median, relative run-to-run band).
#[derive(Clone, Copy)]
struct MachinePoint(f64, f64, f64);

/// Tunable-intensity recovery ratio (together/alone bandwidth) at one AI.
#[derive(Clone, Copy)]
struct RatioPoint(f64);

fn contention_point(
    machine: &MachineSpec,
    cores: usize,
    fidelity: Fidelity,
    seed: u64,
) -> Result<MachinePoint, String> {
    let data = machine.near_numa();
    let w = workload(StreamKernel::Triad, 2_000_000, data, 1);
    let mut cfg = ProtocolConfig::new(machine.clone(), Some(w));
    cfg.placement = Placement::fig4_default();
    cfg.compute_cores = cores;
    cfg.pingpong = PingPongConfig {
        size: 64 << 20,
        reps: fidelity.bw_reps(),
        warmup: 1,
        mtag: 8,
    };
    cfg.reps = fidelity.reps().max(5); // need a few reps for the band width
    cfg.seed = seed;
    let r = protocol::try_run(&cfg).map_err(|e| e.to_string())?;
    let alone = simcore::Summary::of(&r.bw_alone());
    let tog = simcore::Summary::of(&r.bw_together());
    Ok(MachinePoint(alone.median, tog.median, alone.band_rel()))
}

fn intensity_ratio(
    machine: &MachineSpec,
    ai: f64,
    fidelity: Fidelity,
    seed: u64,
) -> Result<RatioPoint, String> {
    let cursor = tunable::cursor_for_intensity(ai);
    let w = tunable::workload(1_000_000, cursor, machine.near_numa(), 1);
    let cores = machine.core_count() as usize - 1;
    let mut cfg = ProtocolConfig::new(machine.clone(), Some(w));
    cfg.placement = Placement::fig4_default();
    cfg.compute_cores = cores;
    cfg.pingpong = PingPongConfig {
        size: 64 << 20,
        reps: fidelity.bw_reps(),
        warmup: 1,
        mtag: 9,
    };
    cfg.reps = fidelity.reps();
    cfg.seed = seed;
    let r = protocol::try_run(&cfg).map_err(|e| e.to_string())?;
    Ok(RatioPoint(
        simcore::Summary::of(&r.bw_together()).median / simcore::Summary::of(&r.bw_alone()).median,
    ))
}

/// Registry driver for the cross-machine validation (4 cluster contention
/// points + 2 billy intensity points).
pub struct CrossMachine;

impl Experiment for CrossMachine {
    fn name(&self) -> &'static str {
        "cross_machine"
    }

    fn anchor(&self) -> &'static str {
        "§2.2/§4.2/§4.5 cross-cluster notes"
    }

    fn plan(&self, _fidelity: Fidelity) -> Vec<SweepPoint> {
        let mut plan: Vec<SweepPoint> = Preset::clusters()
            .iter()
            .enumerate()
            .map(|(i, preset)| SweepPoint::new(i, format!("contention on {}", preset.spec().name)))
            .collect();
        for (i, &ai) in BILLY_AIS.iter().enumerate() {
            plan.push(SweepPoint::new(
                Preset::clusters().len() + i,
                format!("billy intensity {} flop/B", ai),
            ));
        }
        plan
    }

    fn run_point(&self, point: &SweepPoint, ctx: &PointCtx<'_>) -> Result<PointValue, String> {
        let clusters = Preset::clusters();
        if point.index < clusters.len() {
            let m = clusters[point.index].spec();
            let cores = m.core_count() as usize - 1;
            let p = contention_point(&m, cores, ctx.fidelity, ctx.seed)?;
            Ok(Box::new(p))
        } else {
            let ai = BILLY_AIS[point.index - clusters.len()];
            let billy = Preset::Billy.spec();
            let p = intensity_ratio(&billy, ai, ctx.fidelity, ctx.seed)?;
            Ok(Box::new(p))
        }
    }

    fn encode_value(&self, value: &PointValue) -> Option<Vec<u8>> {
        let mut e = Enc::new();
        if let Some(p) = value.downcast_ref::<MachinePoint>() {
            e.u8(0).f64(p.0).f64(p.1).f64(p.2);
        } else if let Some(p) = value.downcast_ref::<RatioPoint>() {
            e.u8(1).f64(p.0);
        } else {
            return None;
        }
        Some(e.into_bytes())
    }

    fn decode_value(&self, bytes: &[u8]) -> Option<PointValue> {
        let mut d = Dec::new(bytes);
        match d.u8()? {
            0 => {
                let p = MachinePoint(d.f64()?, d.f64()?, d.f64()?);
                d.finish(Box::new(p) as PointValue)
            }
            1 => {
                let p = RatioPoint(d.f64()?);
                d.finish(Box::new(p) as PointValue)
            }
            _ => None,
        }
    }

    fn finalize(&self, _fidelity: Fidelity, points: &[campaign::PointOutcome]) -> Vec<FigureData> {
        let clusters = Preset::clusters();
        let mut s_loss = Series::new("bandwidth loss at full occupancy (%)");
        let mut s_band = Series::new("run-to-run bandwidth band (d9-d1)/median (%)");
        let mut notes = Vec::new();
        let mut machines = Vec::new();
        for (i, preset) in clusters.iter().enumerate() {
            let m = preset.spec();
            let cores = m.core_count() as usize - 1;
            let MachinePoint(alone, tog, band) = *expect_value::<MachinePoint>(points, i);
            let loss = (1.0 - tog / alone) * 100.0;
            s_loss.push(i as f64, &[loss]);
            s_band.push(i as f64, &[band * 100.0]);
            notes.push(format!(
                "{}: {:.1} → {:.1} GB/s at {} cores (−{:.0} %), band {:.1} %",
                m.name,
                alone / 1e9,
                tog / 1e9,
                cores,
                loss,
                band * 100.0
            ));
            machines.push((m.name.clone(), loss, band));
        }

        // billy's intensity boundary (paper: recovered only above ~70
        // flop/B, still impacted at 20).
        let RatioPoint(at20) = *expect_value::<RatioPoint>(points, clusters.len());
        let RatioPoint(at70) = *expect_value::<RatioPoint>(points, clusters.len() + 1);
        notes.push(format!(
            "billy tunable intensity: together/alone = {:.2} at 20 flop/B, {:.2} at 70 flop/B",
            at20, at70
        ));

        let henri_loss = machines[0].1;
        let bora_band = machines[1].2;
        let henri_band = machines[0].2;
        let checks = vec![
            Check::new(
                "all four clusters lose bandwidth under full memory contention",
                machines.iter().all(|(_, loss, _)| *loss > 30.0),
                format!(
                    "losses: {:?} %",
                    machines.iter().map(|(_, l, _)| l.round()).collect::<Vec<_>>()
                ),
            ),
            Check::new(
                "pyxis behaves like henri (paper: 'similar results')",
                (machines[3].1 - henri_loss).abs() < 30.0,
                format!("pyxis {:.0} % vs henri {:.0} %", machines[3].1, henri_loss),
            ),
            Check::new(
                "bora (Omni-Path) shows the wide bandwidth deviation",
                bora_band > henri_band * 3.0,
                format!(
                    "bora band {:.1} % vs henri {:.1} %",
                    bora_band * 1.0,
                    henri_band * 1.0
                ),
            ),
            Check::new(
                "billy still impacted at 20 flop/B, recovered by 70 (paper boundary)",
                at20 < 0.8 && at70 > 0.85,
                format!("ratio {:.2} at 20 flop/B, {:.2} at 70", at20, at70),
            ),
        ];

        vec![FigureData {
            id: "cross-machine",
            title: "Cross-cluster validation: contention on henri/bora/billy/pyxis".into(),
            xlabel: "machine (0=henri 1=bora 2=billy 3=pyxis)",
            ylabel: "%",
            series: vec![s_loss, s_band],
            notes,
            checks,
            runs: Vec::new(),
        }]
    }
}

/// Run the cross-machine validation.
pub fn run(fidelity: Fidelity) -> FigureData {
    campaign::run_experiment(&CrossMachine, &campaign::CampaignOptions::serial(fidelity))
        .figures
        .remove(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_machine_quick_passes_checks() {
        let f = run(Fidelity::Quick);
        for c in &f.checks {
            assert!(c.pass, "{} — {}", c.name, c.detail);
        }
        assert_eq!(f.series[0].points.len(), 4);
    }
}
