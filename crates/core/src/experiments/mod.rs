//! One driver per paper figure/table, registered behind the
//! [`crate::campaign::Experiment`] trait.
//!
//! Every driver returns [`crate::report::FigureData`] containing the
//! simulated series, notes quoting the paper's reference values and
//! automated qualitative checks. Drivers take a [`Fidelity`]: `Full`
//! matches the paper's sweep density (used by the `repro` binary and the
//! benches), `Quick` thins sweeps and repetitions for tests.
//!
//! The per-module `run(fidelity)` helpers are thin wrappers over
//! [`crate::campaign::run_experiment`]; whole-suite campaigns go through
//! [`run_all`] / [`run_extensions`] or, with explicit options (parallel
//! workers, shared baseline cache), [`crate::campaign::run_set`] over
//! [`PAPER_EXPERIMENTS`] / [`EXTENSION_EXPERIMENTS`].

pub mod ablations;
pub mod collective_contention;
pub mod collective_dvfs;
pub mod contention;
pub mod cross_machine;
pub mod fig1_frequency;
pub mod fig2_freq_dynamics;
pub mod fig3_avx;
pub mod fig4_contention;
pub mod fig5_placement;
pub mod fig6_msgsize;
pub mod fig7_intensity;
pub mod fig8_runtime_overhead;
pub mod fig9_polling;
pub mod faulted_pingpong;
pub mod overlap;
pub mod fig10_usecases;
pub mod harvest;
pub mod table1;
pub mod validation;

use crate::campaign::{self, CampaignOptions, Experiment};
use crate::report::FigureData;

/// Sweep density / repetition selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fidelity {
    /// Paper-density sweeps (repro binary, benches).
    Full,
    /// Thinned sweeps for fast tests.
    Quick,
}

impl Fidelity {
    /// Repetitions per configuration.
    pub fn reps(self) -> u32 {
        match self {
            Fidelity::Full => 7,
            Fidelity::Quick => 2,
        }
    }

    /// Ping-pong repetitions for latency measurements.
    pub fn lat_reps(self) -> u32 {
        match self {
            Fidelity::Full => 20,
            Fidelity::Quick => 4,
        }
    }

    /// Ping-pong repetitions for bandwidth measurements.
    pub fn bw_reps(self) -> u32 {
        match self {
            Fidelity::Full => 4,
            Fidelity::Quick => 2,
        }
    }

    /// Pick a fidelity-dependent scalar (`Full` vs `Quick`).
    pub fn choose<T>(self, full: T, quick: T) -> T {
        match self {
            Fidelity::Full => full,
            Fidelity::Quick => quick,
        }
    }

    /// Pick a fidelity-dependent sweep: the full sweep, or a hand-picked
    /// `Quick` subset (for sweeps where generic thinning would lose the
    /// qualitative shape, e.g. a crossover that must stay straddled).
    pub fn pick<T: Copy>(self, full: &[T], quick: &[T]) -> Vec<T> {
        match self {
            Fidelity::Full => full.to_vec(),
            Fidelity::Quick => quick.to_vec(),
        }
    }

    /// Thin a sweep: `Full` keeps it, `Quick` keeps the endpoints plus the
    /// midpoint.
    pub fn thin<T: Copy>(self, xs: &[T]) -> Vec<T> {
        match self {
            Fidelity::Full => xs.to_vec(),
            Fidelity::Quick => {
                if xs.len() <= 3 {
                    return xs.to_vec();
                }
                let mut out = vec![xs[0]];
                let mid = xs.len() / 2;
                out.push(xs[mid]);
                out.push(*xs.last().expect("non-empty"));
                out
            }
        }
    }
}

/// The paper's figures and table, in `run_all` (= figure) order.
pub static PAPER_EXPERIMENTS: &[&dyn Experiment] = &[
    &fig1_frequency::Fig1,
    &fig2_freq_dynamics::Fig2,
    &fig3_avx::Fig3,
    &fig4_contention::Fig4,
    &fig5_placement::Fig5,
    &table1::Table1,
    &fig6_msgsize::Fig6,
    &fig7_intensity::Fig7,
    &fig8_runtime_overhead::Fig8,
    &fig9_polling::Fig9,
    &fig10_usecases::Fig10,
];

/// The extension studies (not paper figures), in `run_extensions` order.
pub static EXTENSION_EXPERIMENTS: &[&dyn Experiment] = &[
    &cross_machine::CrossMachine,
    &ablations::Ablations,
    &overlap::Overlap,
    &faulted_pingpong::FaultedPingpong,
    &collective_contention::CollectiveContention,
    &collective_dvfs::CollectiveDvfs,
];

/// Every registered experiment: paper figures first, then extensions.
pub fn all_experiments() -> Vec<&'static dyn Experiment> {
    PAPER_EXPERIMENTS
        .iter()
        .chain(EXTENSION_EXPERIMENTS)
        .copied()
        .collect()
}

/// Look an experiment up by registry name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    all_experiments().into_iter().find(|e| e.name() == name)
}

/// The validation campaign (`repro --validate`). Deliberately *outside*
/// the registries: `--all` reproduces the paper, validation interrogates
/// the simulator itself (see [`validation`]).
pub static VALIDATION_EXPERIMENT: &dyn Experiment = &validation::Validate;

/// The predictor's training-pair harvest (`repro predict` pipelines).
/// Outside the registries for the same reason as validation: it feeds the
/// placement advisor rather than reproducing a paper figure.
pub static HARVEST_EXPERIMENT: &dyn Experiment = &harvest::Harvest { filter: None };

/// Run every figure driver on henri at the given fidelity. Used by the
/// repro binary's `--all` mode and by the end-to-end integration test.
pub fn run_all(fidelity: Fidelity) -> Vec<FigureData> {
    campaign::run_set(PAPER_EXPERIMENTS, &CampaignOptions::serial(fidelity))
        .into_iter()
        .flat_map(|r| r.figures)
        .collect()
}

/// Run the extension experiments (cross-machine validation, model
/// ablations, overlap study and the fault-injection demo) — not paper
/// figures, but the studies DESIGN.md promises.
pub fn run_extensions(fidelity: Fidelity) -> Vec<FigureData> {
    campaign::run_set(EXTENSION_EXPERIMENTS, &CampaignOptions::serial(fidelity))
        .into_iter()
        .flat_map(|r| r.figures)
        .collect()
}

/// Standard message-size sweep (powers of four, 4 B – 64 MiB).
pub fn size_sweep() -> Vec<usize> {
    (0..=12).map(|i| 4usize << (2 * i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweep_shape() {
        let s = size_sweep();
        assert_eq!(s[0], 4);
        assert_eq!(*s.last().unwrap(), 64 << 20);
        assert!(s.windows(2).all(|w| w[1] == w[0] * 4));
    }

    #[test]
    fn thinning() {
        let xs: Vec<u32> = (0..10).collect();
        assert_eq!(Fidelity::Full.thin(&xs).len(), 10);
        let t = Fidelity::Quick.thin(&xs);
        assert_eq!(t.first(), Some(&0));
        assert_eq!(t.last(), Some(&9));
        assert!(t.len() <= 4);
        let small = [1u32, 2];
        assert_eq!(Fidelity::Quick.thin(&small), vec![1, 2]);
    }

    #[test]
    fn fidelity_selectors() {
        assert_eq!(Fidelity::Full.choose(3, 2), 3);
        assert_eq!(Fidelity::Quick.choose(3, 2), 2);
        assert_eq!(Fidelity::Full.pick(&[1, 2, 3], &[1]), vec![1, 2, 3]);
        assert_eq!(Fidelity::Quick.pick(&[1, 2, 3], &[1]), vec![1]);
    }
}
