//! One driver per paper figure/table.
//!
//! Every driver returns a [`crate::report::FigureData`] containing the
//! simulated series, notes quoting the paper's reference values and
//! automated qualitative checks. Drivers take a [`Fidelity`]: `Full`
//! matches the paper's sweep density (used by the `repro` binary and the
//! benches), `Quick` thins sweeps and repetitions for tests.

pub mod ablations;
pub mod cross_machine;
pub mod fig1_frequency;
pub mod fig2_freq_dynamics;
pub mod fig3_avx;
pub mod fig4_contention;
pub mod fig5_placement;
pub mod fig6_msgsize;
pub mod fig7_intensity;
pub mod fig8_runtime_overhead;
pub mod fig9_polling;
pub mod faulted_pingpong;
pub mod overlap;
pub mod fig10_usecases;
pub mod table1;

use crate::report::FigureData;

/// Sweep density / repetition selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fidelity {
    /// Paper-density sweeps (repro binary, benches).
    Full,
    /// Thinned sweeps for fast tests.
    Quick,
}

impl Fidelity {
    /// Repetitions per configuration.
    pub fn reps(self) -> u32 {
        match self {
            Fidelity::Full => 7,
            Fidelity::Quick => 2,
        }
    }

    /// Ping-pong repetitions for latency measurements.
    pub fn lat_reps(self) -> u32 {
        match self {
            Fidelity::Full => 20,
            Fidelity::Quick => 4,
        }
    }

    /// Ping-pong repetitions for bandwidth measurements.
    pub fn bw_reps(self) -> u32 {
        match self {
            Fidelity::Full => 4,
            Fidelity::Quick => 2,
        }
    }

    /// Thin a sweep: `Full` keeps it, `Quick` keeps every k-th point plus
    /// the endpoints.
    pub fn thin<T: Copy>(self, xs: &[T]) -> Vec<T> {
        match self {
            Fidelity::Full => xs.to_vec(),
            Fidelity::Quick => {
                if xs.len() <= 3 {
                    return xs.to_vec();
                }
                let mut out = vec![xs[0]];
                let mid = xs.len() / 2;
                out.push(xs[mid]);
                out.push(*xs.last().expect("non-empty"));
                out
            }
        }
    }
}

/// Run every figure driver on henri at the given fidelity. Used by the
/// repro binary's `--all` mode and by the end-to-end integration test.
pub fn run_all(fidelity: Fidelity) -> Vec<FigureData> {
    let mut out = Vec::new();
    out.extend(fig1_frequency::run(fidelity));
    out.push(fig2_freq_dynamics::run(fidelity));
    out.extend(fig3_avx::run(fidelity));
    out.extend(fig4_contention::run(fidelity));
    out.extend(fig5_placement::run(fidelity));
    out.push(table1::run(fidelity));
    out.extend(fig6_msgsize::run(fidelity));
    out.extend(fig7_intensity::run(fidelity));
    out.push(fig8_runtime_overhead::run(fidelity));
    out.push(fig9_polling::run(fidelity));
    out.extend(fig10_usecases::run(fidelity));
    out
}

/// Run the extension experiments (cross-machine validation, model
/// ablations, overlap study and the fault-injection demo) — not paper
/// figures, but the studies DESIGN.md promises.
pub fn run_extensions(fidelity: Fidelity) -> Vec<FigureData> {
    vec![
        cross_machine::run(fidelity),
        ablations::run(fidelity),
        overlap::run(fidelity),
        faulted_pingpong::run(fidelity),
    ]
}

/// Standard message-size sweep (powers of four, 4 B – 64 MiB).
pub fn size_sweep() -> Vec<usize> {
    (0..=12).map(|i| 4usize << (2 * i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_sweep_shape() {
        let s = size_sweep();
        assert_eq!(s[0], 4);
        assert_eq!(*s.last().unwrap(), 64 << 20);
        assert!(s.windows(2).all(|w| w[1] == w[0] * 4));
    }

    #[test]
    fn thinning() {
        let xs: Vec<u32> = (0..10).collect();
        assert_eq!(Fidelity::Full.thin(&xs).len(), 10);
        let t = Fidelity::Quick.thin(&xs);
        assert_eq!(t.first(), Some(&0));
        assert_eq!(t.last(), Some(&9));
        assert!(t.len() <= 4);
        let small = [1u32, 2];
        assert_eq!(Fidelity::Quick.thin(&small), vec![1, 2]);
    }
}
